#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fairness/waterfill.hpp"
#include "obs/obs.hpp"
#include "routing/ecmp.hpp"
#include "routing/exhaustive.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

FlowSet cross_tor_flows(const ClosNetwork& net) {
  // One flow per (source ToR, dest ToR) pair exercises every fabric link.
  FlowCollection specs;
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int k = 1; k <= net.num_tors(); ++k) {
      specs.push_back(FlowSpec{i, 1, k, 1});
    }
  }
  return instantiate(net, specs);
}

TEST(Fault, FailedMiddleKillsAllItsLinks) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(2);
  const std::size_t changed = fault::apply(net, scenario);
  EXPECT_EQ(changed, 2u * static_cast<std::size_t>(net.num_tors()));

  const Topology& topo = net.topology();
  for (int i = 1; i <= net.num_tors(); ++i) {
    EXPECT_EQ(topo.link(net.uplink(i, 2)).capacity, Rational{0});
    EXPECT_EQ(topo.link(net.downlink(2, i)).capacity, Rational{0});
    EXPECT_EQ(topo.link(net.uplink(i, 1)).capacity, Rational{1});
    EXPECT_EQ(topo.link(net.uplink(i, 3)).capacity, Rational{1});
  }
  EXPECT_FALSE(fault::middle_alive(net, 2));
  EXPECT_TRUE(fault::middle_alive(net, 1));
  EXPECT_EQ(fault::surviving_middles(net), (std::vector<int>{1, 3}));
  EXPECT_TRUE(fault::has_dead_fabric_links(net));
}

TEST(Fault, ApplyIsIdempotentOnDeadLinks) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(1);
  EXPECT_GT(fault::apply(net, scenario), 0u);
  // Re-applying the same mask changes nothing: 0 * 0 == 0.
  EXPECT_EQ(fault::apply(net, scenario), 0u);
}

TEST(Fault, DerationScalesNotReplaces) {
  ClosNetwork net = ClosNetwork::paper(2);
  fault::FailureScenario scenario;
  scenario.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 2, Rational{1, 2}});
  fault::apply(net, scenario);
  EXPECT_EQ(net.topology().link(net.uplink(1, 2)).capacity, (Rational{1, 2}));
  // Second application multiplies again: masks compose multiplicatively.
  fault::apply(net, scenario);
  EXPECT_EQ(net.topology().link(net.uplink(1, 2)).capacity, (Rational{1, 4}));
  // A derated (but positive) link leaves its middle alive.
  EXPECT_TRUE(fault::middle_alive(net, 2));
  EXPECT_FALSE(fault::has_dead_fabric_links(net));
}

TEST(Fault, MaskNeverRevives) {
  ClosNetwork net = ClosNetwork::paper(2);
  fault::FailureScenario grow;
  grow.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 1, Rational{2}});
  EXPECT_THROW(fault::apply(net, grow), ContractViolation);

  fault::FailureScenario negative;
  negative.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kDownlink, 1, 1, Rational{-1, 2}});
  EXPECT_THROW(fault::apply(net, negative), ContractViolation);

  fault::FailureScenario bad_pod;
  bad_pod.degraded_pods.push_back(fault::PodDegradation{1, Rational{3, 2}});
  EXPECT_THROW(fault::apply(net, bad_pod), ContractViolation);

  // Nothing was changed by the throwing applications.
  EXPECT_FALSE(fault::has_dead_fabric_links(net));
  EXPECT_EQ(net.topology().link(net.uplink(1, 1)).capacity, Rational{1});
}

TEST(Fault, PodDegradationScalesEveryPodLink) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.degraded_pods.push_back(fault::PodDegradation{2, Rational{1, 3}});
  const std::size_t changed = fault::apply(net, scenario);
  EXPECT_EQ(changed, 2u * static_cast<std::size_t>(net.num_middles()));
  for (int m = 1; m <= net.num_middles(); ++m) {
    EXPECT_EQ(net.topology().link(net.uplink(2, m)).capacity, (Rational{1, 3}));
    EXPECT_EQ(net.topology().link(net.downlink(m, 2)).capacity, (Rational{1, 3}));
    EXPECT_EQ(net.topology().link(net.uplink(1, m)).capacity, Rational{1});
  }
}

TEST(Fault, DegradeReturnsCopyLeavingOriginalIntact) {
  const ClosNetwork pristine = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(1);
  const ClosNetwork degraded = fault::degrade(pristine, scenario);
  EXPECT_FALSE(fault::middle_alive(degraded, 1));
  EXPECT_TRUE(fault::middle_alive(pristine, 1));
  EXPECT_FALSE(fault::has_dead_fabric_links(pristine));
}

TEST(Fault, SurvivorsStaySymmetricUnderMiddleFailures) {
  ClosNetwork net = ClosNetwork::paper(4);
  EXPECT_TRUE(fault::surviving_middles_symmetric(net));

  fault::FailureScenario outage;
  outage.failed_middles = {2, 4};
  fault::apply(net, outage);
  // Whole-middle failures leave the survivors interchangeable...
  EXPECT_TRUE(fault::surviving_middles_symmetric(net));

  // ...but a single-link kill breaks the symmetry between survivors.
  fault::FailureScenario nick;
  nick.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 3, Rational{0}});
  fault::apply(net, nick);
  EXPECT_FALSE(fault::surviving_middles_symmetric(net));
}

TEST(Fault, MiddleUsableIsDirectional) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 2, Rational{0}});
  fault::apply(net, scenario);
  for (int dst = 1; dst <= net.num_tors(); ++dst) {
    EXPECT_FALSE(fault::middle_usable(net, 1, dst, 2));
    EXPECT_TRUE(fault::middle_usable(net, 2, dst, 2));
    EXPECT_TRUE(fault::middle_usable(net, 1, dst, 1));
  }
}

TEST(Fault, LinkFailureSamplerIsDeterministicAndExactAtExtremes) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const std::size_t fabric_links =
      2u * static_cast<std::size_t>(net.num_tors()) *
      static_cast<std::size_t>(net.num_middles());

  Rng zero(7);
  EXPECT_TRUE(fault::sample_link_failures(net, 0.0, zero).empty());
  Rng one(7);
  EXPECT_EQ(fault::sample_link_failures(net, 1.0, one).derated_links.size(), fabric_links);

  Rng a(42);
  Rng b(42);
  const auto sa = fault::sample_link_failures(net, 0.3, a);
  const auto sb = fault::sample_link_failures(net, 0.3, b);
  ASSERT_EQ(sa.derated_links.size(), sb.derated_links.size());
  for (std::size_t i = 0; i < sa.derated_links.size(); ++i) {
    EXPECT_EQ(sa.derated_links[i].stage, sb.derated_links[i].stage);
    EXPECT_EQ(sa.derated_links[i].tor, sb.derated_links[i].tor);
    EXPECT_EQ(sa.derated_links[i].middle, sb.derated_links[i].middle);
    EXPECT_EQ(sa.derated_links[i].factor, Rational{0});
  }
}

TEST(Fault, MiddleOutageSamplerDrawsExactlyKDistinct) {
  const ClosNetwork net = ClosNetwork::paper(5);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (int k = 0; k <= net.num_middles(); ++k) {
      Rng rng(seed);
      auto scenario = fault::sample_middle_outage(net, k, rng);
      ASSERT_EQ(scenario.failed_middles.size(), static_cast<std::size_t>(k));
      EXPECT_TRUE(std::is_sorted(scenario.failed_middles.begin(),
                                 scenario.failed_middles.end()));
      EXPECT_EQ(std::unique(scenario.failed_middles.begin(),
                            scenario.failed_middles.end()) -
                    scenario.failed_middles.begin(),
                k);
      for (int m : scenario.failed_middles) {
        EXPECT_GE(m, 1);
        EXPECT_LE(m, net.num_middles());
      }
      Rng again(seed);
      EXPECT_EQ(fault::sample_middle_outage(net, k, again).failed_middles,
                scenario.failed_middles);
    }
  }
  Rng rng(1);
  EXPECT_THROW(fault::sample_middle_outage(net, net.num_middles() + 1, rng),
               ContractViolation);
}

TEST(Fault, WorstCaseOutageTargetsRemainingCapacity) {
  // Pristine symmetric fabric: the adversary gains nothing, ties resolve to
  // the lowest indices.
  const ClosNetwork pristine = ClosNetwork::paper(4);
  EXPECT_EQ(fault::worst_case_outage(pristine, 2).failed_middles,
            (std::vector<int>{1, 2}));

  // After halving every link of middle 1, the most valuable survivor is 2.
  ClosNetwork net = ClosNetwork::paper(4);
  fault::FailureScenario weaken;
  for (int i = 1; i <= net.num_tors(); ++i) {
    weaken.derated_links.push_back(
        fault::LinkDeration{fault::LinkStage::kUplink, i, 1, Rational{1, 2}});
    weaken.derated_links.push_back(
        fault::LinkDeration{fault::LinkStage::kDownlink, i, 1, Rational{1, 2}});
  }
  fault::apply(net, weaken);
  EXPECT_EQ(fault::worst_case_outage(net, 1).failed_middles, (std::vector<int>{2}));
}

TEST(Fault, RerouteMovesDeadPathFlowsOnly) {
  ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = cross_tor_flows(net);
  MiddleAssignment middles(flows.size(), 2);

  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(2);
  fault::apply(net, scenario);

  const std::size_t moved = fault::reroute_dead_paths(net, flows, middles);
  EXPECT_EQ(moved, flows.size());  // every flow sat on the dead middle
  for (int m : middles) EXPECT_NE(m, 2);

  // Second pass: nothing left to move.
  EXPECT_EQ(fault::reroute_dead_paths(net, flows, middles), 0u);
}

TEST(Fault, RerouteLeavesStrandedFlowsInPlace) {
  ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  MiddleAssignment middles{1};

  // Kill every uplink of ToR 1: the flow has no usable middle at all.
  fault::FailureScenario scenario;
  for (int m = 1; m <= net.num_middles(); ++m) {
    scenario.derated_links.push_back(
        fault::LinkDeration{fault::LinkStage::kUplink, 1, m, Rational{0}});
  }
  fault::apply(net, scenario);
  EXPECT_EQ(fault::reroute_dead_paths(net, flows, middles), 0u);
  EXPECT_EQ(middles[0], 1);

  // Water-filling the stranded routing is still well-defined: rate 0.
  const auto alloc = max_min_fair<Rational>(net, flows, middles);
  EXPECT_EQ(alloc.rate(0), Rational{0});
}

TEST(Fault, EcmpNeverPicksDeadMiddles) {
  ClosNetwork net = ClosNetwork::paper(4);
  fault::FailureScenario scenario;
  scenario.failed_middles = {1, 3};
  fault::apply(net, scenario);

  Rng rng(11);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 40, rng));
  const MiddleAssignment middles = ecmp_routing(net, flows, rng);
  for (int m : middles) {
    EXPECT_TRUE(m == 2 || m == 4) << "ECMP routed via dead middle " << m;
  }
}

TEST(Fault, GreedyAvoidsDeadMiddles) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(3);
  fault::apply(net, scenario);

  Rng rng(5);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 20, rng));
  const MiddleAssignment middles = greedy_routing_unit(net, flows);
  for (int m : middles) EXPECT_NE(m, 3);
}

TEST(Fault, LocalSearchClimbsOffDeadMiddles) {
  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(1);
  fault::apply(net, scenario);

  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 4, 1}, FlowSpec{2, 1, 5, 1}});
  const MiddleAssignment start(flows.size(), 1);  // everyone on the dead middle
  const auto result = lex_max_min_local_search(net, flows, start);
  for (int m : result.middles) EXPECT_NE(m, 1);
  EXPECT_EQ(result.alloc.rate(0), Rational{1});
  EXPECT_EQ(result.alloc.rate(1), Rational{1});
}

TEST(Fault, ExhaustiveSearchesAgreeAcrossEnumerationModes) {
  // Canonical enumeration over the surviving pool must match the odometer
  // over the same degraded fabric — outputs and middles restricted to
  // survivors.
  ClosNetwork net = ClosNetwork::paper(4);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(2);
  fault::apply(net, scenario);

  Rng rng(9);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 6, rng));

  ExhaustiveOptions canonical;
  ExhaustiveOptions odometer;
  odometer.exploit_middle_symmetry = false;
  const auto a = lex_max_min_exhaustive(net, flows, canonical);
  const auto b = lex_max_min_exhaustive(net, flows, odometer);
  EXPECT_EQ(a.alloc.sorted(), b.alloc.sorted());
  for (int m : a.middles) EXPECT_NE(m, 2);
  for (int m : b.middles) EXPECT_NE(m, 2);
  // Canonical does strictly less water-filling work on the 3-survivor pool
  // (restricted-growth classes vs the pinned 3^5 odometer).
  EXPECT_LT(a.waterfill_invocations, b.waterfill_invocations);

  const auto ta = throughput_max_min_exhaustive(net, flows, canonical);
  const auto tb = throughput_max_min_exhaustive(net, flows, odometer);
  EXPECT_EQ(ta.alloc.throughput(), tb.alloc.throughput());
}

TEST(Fault, ObsCountersTrackScenarioApplication) {
  if (!obs::kEnabled) GTEST_SKIP() << "library built with CLOSFAIR_OBS=OFF";
  obs::Registry& registry = obs::Registry::instance();
  const std::uint64_t failed_before = registry.counter("fault.links_failed").total();
  const std::uint64_t derated_before = registry.counter("fault.links_derated").total();
  const std::uint64_t middles_before = registry.counter("fault.middles_failed").total();

  ClosNetwork net = ClosNetwork::paper(3);
  fault::FailureScenario scenario;
  scenario.failed_middles.push_back(1);
  scenario.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 2, 2, Rational{1, 2}});
  fault::apply(net, scenario);

  EXPECT_EQ(registry.counter("fault.links_failed").total() - failed_before,
            2u * static_cast<std::uint64_t>(net.num_tors()));
  EXPECT_EQ(registry.counter("fault.links_derated").total() - derated_before, 1u);
  EXPECT_EQ(registry.counter("fault.middles_failed").total() - middles_before, 1u);
}

}  // namespace
}  // namespace closfair
