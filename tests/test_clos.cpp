#include "net/clos.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

TEST(Clos, PaperDimensions) {
  // C_n: n middles, 2n ToRs per side, n servers per ToR, all unit capacity.
  for (int n : {1, 2, 3, 5}) {
    const ClosNetwork net = ClosNetwork::paper(n);
    EXPECT_EQ(net.num_middles(), n);
    EXPECT_EQ(net.num_tors(), 2 * n);
    EXPECT_EQ(net.servers_per_tor(), n);
    EXPECT_EQ(net.num_sources(), 2 * n * n);
    EXPECT_EQ(net.num_destinations(), 2 * n * n);
    // Nodes: 2n inputs + 2n outputs + n middles + 2*2n^2 servers.
    EXPECT_EQ(net.topology().num_nodes(),
              static_cast<std::size_t>(4 * n + n + 4 * n * n));
    // Links: 2*2n^2 edge links + 2*(2n*n) switch links.
    EXPECT_EQ(net.topology().num_links(), static_cast<std::size_t>(4 * n * n + 4 * n * n));
  }
}

TEST(Clos, NodeNamesAndKinds) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const Topology& topo = net.topology();
  EXPECT_EQ(topo.node(net.source(1, 2)).name, "s1^2");
  EXPECT_EQ(topo.node(net.source(1, 2)).kind, NodeKind::kSource);
  EXPECT_EQ(topo.node(net.destination(4, 1)).name, "t4^1");
  EXPECT_EQ(topo.node(net.destination(4, 1)).kind, NodeKind::kDestination);
  EXPECT_EQ(topo.node(net.input_switch(3)).name, "I3");
  EXPECT_EQ(topo.node(net.middle(2)).name, "M2");
  EXPECT_EQ(topo.node(net.output_switch(1)).name, "O1");
}

TEST(Clos, LinkEndpoints) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const Topology& topo = net.topology();
  {
    const Link& l = topo.link(net.source_link(2, 1));
    EXPECT_EQ(l.from, net.source(2, 1));
    EXPECT_EQ(l.to, net.input_switch(2));
    EXPECT_EQ(l.capacity, Rational(1));
  }
  {
    const Link& l = topo.link(net.uplink(3, 2));
    EXPECT_EQ(l.from, net.input_switch(3));
    EXPECT_EQ(l.to, net.middle(2));
  }
  {
    const Link& l = topo.link(net.downlink(1, 4));
    EXPECT_EQ(l.from, net.middle(1));
    EXPECT_EQ(l.to, net.output_switch(4));
  }
  {
    const Link& l = topo.link(net.dest_link(4, 2));
    EXPECT_EQ(l.from, net.output_switch(4));
    EXPECT_EQ(l.to, net.destination(4, 2));
  }
}

TEST(Clos, CoordRoundTrip) {
  const ClosNetwork net = ClosNetwork::paper(3);
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int j = 1; j <= net.servers_per_tor(); ++j) {
      const auto s = net.source_coord(net.source(i, j));
      EXPECT_EQ(s.tor, i);
      EXPECT_EQ(s.server, j);
      const auto t = net.dest_coord(net.destination(i, j));
      EXPECT_EQ(t.tor, i);
      EXPECT_EQ(t.server, j);
    }
  }
}

TEST(Clos, CoordOnWrongKindThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  EXPECT_THROW(net.source_coord(net.destination(1, 1)), ContractViolation);
  EXPECT_THROW(net.dest_coord(net.input_switch(1)), ContractViolation);
}

TEST(Clos, PathTraversesChosenMiddle) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const NodeId src = net.source(2, 3);
  const NodeId dst = net.destination(5, 1);
  for (int m = 1; m <= 3; ++m) {
    const Path p = net.path(src, dst, m);
    ASSERT_EQ(p.size(), 4u);
    EXPECT_TRUE(net.topology().is_path(p, src, dst));
    EXPECT_EQ(p[1], net.uplink(2, m));
    EXPECT_EQ(p[2], net.downlink(m, 5));
  }
}

TEST(Clos, NPathsPerPair) {
  // There are exactly n link-disjoint paths between any source-destination
  // pair (one per middle), sharing only edge links.
  const int n = 4;
  const ClosNetwork net = ClosNetwork::paper(n);
  const NodeId src = net.source(1, 1);
  const NodeId dst = net.destination(8, 4);
  for (int m1 = 1; m1 <= n; ++m1) {
    for (int m2 = m1 + 1; m2 <= n; ++m2) {
      const Path a = net.path(src, dst, m1);
      const Path b = net.path(src, dst, m2);
      EXPECT_EQ(a[0], b[0]);  // same source link
      EXPECT_EQ(a[3], b[3]);  // same destination link
      EXPECT_NE(a[1], b[1]);  // disjoint uplinks
      EXPECT_NE(a[2], b[2]);  // disjoint downlinks
    }
  }
}

TEST(Clos, IndexBoundsChecked) {
  const ClosNetwork net = ClosNetwork::paper(2);
  EXPECT_THROW(net.source(0, 1), ContractViolation);
  EXPECT_THROW(net.source(5, 1), ContractViolation);
  EXPECT_THROW(net.source(1, 3), ContractViolation);
  EXPECT_THROW(net.middle(0), ContractViolation);
  EXPECT_THROW(net.middle(3), ContractViolation);
  EXPECT_THROW(net.uplink(1, 3), ContractViolation);
  EXPECT_THROW(net.downlink(3, 1), ContractViolation);
}

TEST(Clos, GeneralizedParams) {
  // 4 middles, 3 ToRs, 2 servers per ToR, capacity 1/2.
  const ClosNetwork net(ClosNetwork::Params{4, 3, 2, Rational{1, 2}});
  EXPECT_EQ(net.num_middles(), 4);
  EXPECT_EQ(net.num_tors(), 3);
  EXPECT_EQ(net.servers_per_tor(), 2);
  EXPECT_EQ(net.topology().link(net.uplink(1, 4)).capacity, Rational(1, 2));
  EXPECT_EQ(net.topology().link(net.source_link(3, 2)).capacity, Rational(1, 2));
}

TEST(Clos, InvalidParamsThrow) {
  EXPECT_THROW(ClosNetwork::paper(0), ContractViolation);
  EXPECT_THROW(ClosNetwork(ClosNetwork::Params{0, 2, 1, Rational{1}}), ContractViolation);
  EXPECT_THROW(ClosNetwork(ClosNetwork::Params{1, 0, 1, Rational{1}}), ContractViolation);
  EXPECT_THROW(ClosNetwork(ClosNetwork::Params{1, 2, 0, Rational{1}}), ContractViolation);
}

}  // namespace
}  // namespace closfair
