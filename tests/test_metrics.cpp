#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace closfair {
namespace {

TEST(Metrics, JainIndexEqualRatesIsOne) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.5, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{2.0}), 1.0);
}

TEST(Metrics, JainIndexDegenerateCases) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_THROW(jain_index(std::vector<double>{-1.0}), ContractViolation);
}

TEST(Metrics, JainIndexSkewedRates) {
  // One flow hogging everything among n flows gives 1/n.
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{1.0, 0.0, 0.0, 0.0}), 0.25);
  // Known value: (1+2+3)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jain_index(std::vector<double>{1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(Metrics, JainIndexFromExactAllocation) {
  const Allocation<Rational> alloc({Rational{1, 2}, Rational{1, 2}});
  EXPECT_DOUBLE_EQ(jain_index(alloc), 1.0);
}

TEST(Metrics, MinAndMean) {
  const std::vector<double> rates = {0.25, 0.75, 0.5};
  EXPECT_DOUBLE_EQ(min_rate(rates), 0.25);
  EXPECT_DOUBLE_EQ(mean_rate(rates), 0.5);
  EXPECT_DOUBLE_EQ(min_rate({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_rate({}), 0.0);
}

TEST(Metrics, AlphaFairWelfare) {
  // alpha = 0: plain throughput.
  EXPECT_DOUBLE_EQ(alpha_fair_welfare({1.0, 2.0}, 0.0), 3.0);
  // alpha = 1: sum of logs.
  EXPECT_NEAR(alpha_fair_welfare({1.0, std::exp(1.0)}, 1.0), 1.0, 1e-12);
  // alpha = 2: -sum(1/x).
  EXPECT_DOUBLE_EQ(alpha_fair_welfare({0.5, 1.0}, 2.0), -3.0);
  // Zero rate under proportional fairness: -inf.
  EXPECT_EQ(alpha_fair_welfare({0.0, 1.0}, 1.0),
            -std::numeric_limits<double>::infinity());
  // But fine for alpha = 0.
  EXPECT_DOUBLE_EQ(alpha_fair_welfare({0.0, 1.0}, 0.0), 1.0);
  EXPECT_THROW(alpha_fair_welfare({1.0}, -1.0), ContractViolation);
}

TEST(Metrics, MaxMinImprovesJainOverThroughputOptimal) {
  // The R1 tension in metric form: the max-min allocation of Example 3.3 has
  // Jain index 1 (all equal), while the maximum-throughput allocation
  // (1, 1, 0) scores 2/3.
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.5, 0.5, 0.5}), 1.0);
  EXPECT_NEAR(jain_index(std::vector<double>{1.0, 1.0, 0.0}), 4.0 / 6.0, 1e-12);
}

TEST(Metrics, AsDoubles) {
  const Allocation<Rational> alloc({Rational{1, 4}, Rational{3}});
  const auto d = as_doubles(alloc);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

}  // namespace
}  // namespace closfair
