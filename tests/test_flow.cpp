#include "flow/flow.hpp"
#include "flow/routing.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

TEST(Flow, InstantiateOnClos) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowCollection specs = {FlowSpec{1, 2, 3, 1}, FlowSpec{4, 2, 1, 1}};
  const FlowSet flows = instantiate(net, specs);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].src, net.source(1, 2));
  EXPECT_EQ(flows[0].dst, net.destination(3, 1));
  EXPECT_EQ(flows[1].src, net.source(4, 2));
  EXPECT_EQ(flows[1].dst, net.destination(1, 1));
}

TEST(Flow, InstantiateOnMacroSwitch) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowCollection specs = {FlowSpec{2, 1, 2, 2}};
  const FlowSet flows = instantiate(ms, specs);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].src, ms.source(2, 1));
  EXPECT_EQ(flows[0].dst, ms.destination(2, 2));
}

TEST(Flow, SpecRoundTrip) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const MacroSwitch ms = MacroSwitch::paper(3);
  const FlowSpec spec{5, 2, 6, 3};
  EXPECT_EQ(spec_of(net, instantiate(net, {spec})[0]), spec);
  EXPECT_EQ(spec_of(ms, instantiate(ms, {spec})[0]), spec);
}

TEST(Flow, ParallelFlowsAllowed) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowCollection specs = {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 1, 2, 1}};
  const FlowSet flows = instantiate(net, specs);
  EXPECT_EQ(flows[0], flows[1]);
}

TEST(Routing, ExpandMiddleAssignment) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 2}, FlowSpec{2, 2, 4, 1}});
  const Routing r = expand_routing(net, flows, {2, 1});
  r.validate(net.topology(), flows);
  EXPECT_EQ(r.path(0)[1], net.uplink(1, 2));
  EXPECT_EQ(r.path(1)[1], net.uplink(2, 1));
}

TEST(Routing, ExpandSizeMismatchThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 2}});
  EXPECT_THROW(expand_routing(net, flows, {1, 2}), ContractViolation);
}

TEST(Routing, MacroRoutingValid) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 2}, FlowSpec{2, 2, 4, 1}});
  const Routing r = macro_routing(ms, flows);
  r.validate(ms.topology(), flows);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Routing, ValidateRejectsBrokenPath) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 2}});
  Routing r = expand_routing(net, flows, {1});
  Path p = r.path(0);
  std::swap(p[0], p[1]);  // break contiguity
  r.set_path(0, p);
  EXPECT_THROW(r.validate(net.topology(), flows), ContractViolation);
}

TEST(Routing, ValidateRejectsWrongCount) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 2}});
  const Routing r;
  EXPECT_THROW(r.validate(net.topology(), flows), ContractViolation);
}

TEST(Routing, FlowsPerLinkInverts) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2}, FlowSpec{2, 1, 4, 1}});
  const Routing r = expand_routing(net, flows, {1, 1, 2});
  const auto on_link = flows_per_link(net.topology(), r);

  // Both flows from ToR 1 ride uplink(1,1).
  const auto& up11 = on_link[static_cast<std::size_t>(net.uplink(1, 1))];
  EXPECT_EQ(up11, (std::vector<FlowIndex>{0, 1}));
  // Flow 2 rides uplink(2,2) alone.
  const auto& up22 = on_link[static_cast<std::size_t>(net.uplink(2, 2))];
  EXPECT_EQ(up22, (std::vector<FlowIndex>{2}));
  // Unused uplink carries nothing.
  EXPECT_TRUE(on_link[static_cast<std::size_t>(net.uplink(4, 1))].empty());
}

TEST(Routing, PathAccessorBoundsChecked) {
  Routing r;
  EXPECT_THROW(r.path(0), ContractViolation);
  EXPECT_THROW(r.set_path(0, {}), ContractViolation);
}

}  // namespace
}  // namespace closfair
