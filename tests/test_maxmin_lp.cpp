#include "lp/maxmin_lp.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"
#include "lp/throughput_lp.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(MaxMinLp, MatchesWaterfillOnExample23Macro) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
           FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto lp = max_min_fair_lp<Rational>(ms.topology(), flows, routing);
  const auto wf = max_min_fair<Rational>(ms.topology(), flows, routing);
  EXPECT_EQ(lp.rates(), wf.rates());
}

TEST(MaxMinLp, MatchesWaterfillOnClosRouting) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
            FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  for (const MiddleAssignment& middles :
       {MiddleAssignment{2, 1, 2, 1, 2, 1}, MiddleAssignment{2, 2, 2, 1, 2, 1},
        MiddleAssignment{1, 1, 1, 1, 1, 1}}) {
    const Routing routing = expand_routing(net, flows, middles);
    const auto lp = max_min_fair_lp<Rational>(net.topology(), flows, routing);
    const auto wf = max_min_fair<Rational>(net.topology(), flows, routing);
    EXPECT_EQ(lp.rates(), wf.rates());
  }
}

// The headline cross-validation: two independent implementations of
// Definition 2.1 (combinatorial water-filling vs iterative exact LP) must
// agree *exactly* on random instances.
class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, WaterfillEqualsLp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.next_below(2));  // C_2, C_3
  const ClosNetwork net = ClosNetwork::paper(n);
  const Fabric fabric{net.num_tors(), net.servers_per_tor()};
  const std::size_t count = 1 + rng.next_below(10);
  const FlowSet flows = instantiate(net, uniform_random(fabric, count, rng));
  const Routing routing =
      expand_routing(net, flows, ecmp_routing(net, flows, rng));

  const auto wf = max_min_fair<Rational>(net.topology(), flows, routing);
  const auto lp = max_min_fair_lp<Rational>(net.topology(), flows, routing);
  EXPECT_EQ(wf.rates(), lp.rates());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CrossValidation, ::testing::Range(0, 25));

TEST(ThroughputLp, SingleFlow) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const auto r = max_throughput_lp<Rational>(ms.topology(), flows, macro_routing(ms, flows));
  EXPECT_EQ(r.throughput, Rational(1));
  EXPECT_EQ(r.alloc.rate(0), Rational(1));
}

TEST(ThroughputLp, Example33GivesTwo) {
  // Maximum throughput sacrifices the type 2 flow entirely (Lemma 3.2).
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 1, 1}, FlowSpec{2, 1, 2, 1}, FlowSpec{2, 1, 1, 1}});
  const auto r = max_throughput_lp<Rational>(ms.topology(), flows, macro_routing(ms, flows));
  EXPECT_EQ(r.throughput, Rational(2));
}

// Lemma 3.2 cross-check: the throughput LP optimum equals the maximum
// matching size of G^MS on random macro-switch instances.
class ThroughputEqualsMatching : public ::testing::TestWithParam<int> {};

TEST_P(ThroughputEqualsMatching, LpEqualsHopcroftKarp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int n = 1 + static_cast<int>(rng.next_below(3));
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{ms.num_tors(), ms.servers_per_tor()};
  const std::size_t count = 1 + rng.next_below(12);
  const FlowSet flows = instantiate(ms, uniform_random(fabric, count, rng));

  const auto lp =
      max_throughput_lp<Rational>(ms.topology(), flows, macro_routing(ms, flows));
  const auto matching = maximum_matching(server_flow_graph(ms, flows));
  EXPECT_EQ(lp.throughput, Rational(static_cast<std::int64_t>(matching.size())));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ThroughputEqualsMatching,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace closfair
