#include "routing/generic.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"
#include "net/fattree.hpp"

namespace closfair {
namespace {

// Fixture: k=4 fat-tree with four cross-pod flows from the same edge switch,
// which have 4 candidate paths each and collide unless spread.
struct FatTreeFixture {
  FatTree ft{4};
  FlowSet flows;
  PathCandidates candidates;

  FatTreeFixture() {
    // Two flows per source server of edge (1,1), to distinct remote servers.
    flows = {Flow{ft.source(1, 1, 1), ft.destination(3, 1, 1)},
             Flow{ft.source(1, 1, 2), ft.destination(3, 1, 2)},
             Flow{ft.source(1, 2, 1), ft.destination(4, 1, 1)},
             Flow{ft.source(1, 2, 2), ft.destination(4, 1, 2)}};
    for (const Flow& f : flows) candidates.push_back(ft.paths(f.src, f.dst));
  }
};

TEST(GenericRouting, EcmpPathsPicksValidCandidates) {
  FatTreeFixture fx;
  Rng rng(1);
  const Routing routing = ecmp_paths(fx.candidates, rng);
  routing.validate(fx.ft.topology(), fx.flows);
  for (FlowIndex f = 0; f < fx.flows.size(); ++f) {
    bool found = false;
    for (const Path& p : fx.candidates[f]) found |= p == routing.path(f);
    EXPECT_TRUE(found);
  }
}

TEST(GenericRouting, EcmpRejectsEmptyCandidates) {
  Rng rng(2);
  PathCandidates candidates(1);
  EXPECT_THROW(ecmp_paths(candidates, rng), ContractViolation);
}

TEST(GenericRouting, GreedySpreadsCollidingFlows) {
  FatTreeFixture fx;
  const std::vector<double> unit(fx.flows.size(), 1.0);
  const Routing routing = greedy_paths(fx.ft.topology(), fx.candidates, unit);
  routing.validate(fx.ft.topology(), fx.flows);
  // With unit demands the greedy must achieve full rate for all four flows
  // (there is a collision-free assignment: distinct (agg, core) pairs).
  const auto alloc = max_min_fair<Rational>(fx.ft.topology(), fx.flows, routing);
  for (FlowIndex f = 0; f < fx.flows.size(); ++f) {
    EXPECT_EQ(alloc.rate(f), Rational(1)) << "flow " << f;
  }
}

TEST(GenericRouting, GreedyDemandMismatchThrows) {
  FatTreeFixture fx;
  EXPECT_THROW(greedy_paths(fx.ft.topology(), fx.candidates, {1.0}), ContractViolation);
}

TEST(GenericRouting, LocalSearchFixesCollisions) {
  FatTreeFixture fx;
  const std::vector<double> unit(fx.flows.size(), 1.0);
  // Adversarial start: every flow on its first candidate (same agg+core).
  std::vector<Path> first;
  for (const auto& c : fx.candidates) first.push_back(c[0]);
  Routing start{std::move(first)};
  const auto before = max_min_fair<Rational>(fx.ft.topology(), fx.flows, start);

  const Routing improved =
      congestion_local_search_paths(fx.ft.topology(), fx.candidates, unit, start);
  const auto after = max_min_fair<Rational>(fx.ft.topology(), fx.flows, improved);
  EXPECT_GE(after.throughput(), before.throughput());
  EXPECT_EQ(after.throughput(), Rational(4));  // collision-free exists
}

TEST(GenericRouting, LocalSearchRespectsBudget) {
  FatTreeFixture fx;
  const std::vector<double> unit(fx.flows.size(), 1.0);
  std::vector<Path> first;
  for (const auto& c : fx.candidates) first.push_back(c[0]);
  const Routing improved = congestion_local_search_paths(
      fx.ft.topology(), fx.candidates, unit, Routing{std::move(first)}, /*max_moves=*/0);
  // Zero budget: unchanged.
  for (FlowIndex f = 0; f < fx.flows.size(); ++f) {
    EXPECT_EQ(improved.path(f), fx.candidates[f][0]);
  }
}

TEST(GenericRouting, SingleCandidateIsForced) {
  FatTreeFixture fx;
  // Intra-edge flow: exactly one candidate everywhere.
  const FlowSet flows = {Flow{fx.ft.source(2, 1, 1), fx.ft.destination(2, 1, 2)}};
  const PathCandidates candidates = {fx.ft.paths(flows[0].src, flows[0].dst)};
  ASSERT_EQ(candidates[0].size(), 1u);
  Rng rng(3);
  EXPECT_EQ(ecmp_paths(candidates, rng).path(0), candidates[0][0]);
  EXPECT_EQ(greedy_paths(fx.ft.topology(), candidates, {1.0}).path(0), candidates[0][0]);
}

}  // namespace
}  // namespace closfair
