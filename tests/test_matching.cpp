#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace closfair {
namespace {

// Exhaustive maximum matching size by bitmask DP over edges (exponential;
// test-only oracle for small graphs).
std::size_t brute_force_matching_size(const BipartiteMultigraph& g) {
  std::size_t best = 0;
  const std::size_t m = g.num_edges();
  CF_CHECK(m <= 20);
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    std::vector<std::size_t> edges;
    for (std::size_t e = 0; e < m; ++e) {
      if (mask & (std::size_t{1} << e)) edges.push_back(e);
    }
    if (is_matching(g, edges)) best = std::max(best, edges.size());
  }
  return best;
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteMultigraph g(3, 3);
  EXPECT_TRUE(maximum_matching(g).empty());
}

TEST(HopcroftKarp, SingleEdge) {
  BipartiteMultigraph g(1, 1);
  g.add_edge(0, 0);
  const auto m = maximum_matching(g);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], 0u);
}

TEST(HopcroftKarp, ParallelEdgesCountOnce) {
  BipartiteMultigraph g(1, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(maximum_matching(g).size(), 1u);
}

TEST(HopcroftKarp, PerfectMatchingOnCycle) {
  // 3x3 "cycle": i -> i and i -> (i+1) mod 3; perfect matching exists.
  BipartiteMultigraph g(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    g.add_edge(i, i);
    g.add_edge(i, (i + 1) % 3);
  }
  const auto m = maximum_matching(g);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(is_matching(g, m));
}

TEST(HopcroftKarp, AugmentingPathRequired) {
  // Greedy left-to-right would match (0,0) and strand vertex 1; HK must
  // find the augmenting path.
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto m = maximum_matching(g);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(is_matching(g, m));
}

TEST(HopcroftKarp, StarGraph) {
  BipartiteMultigraph g(1, 5);
  for (std::size_t r = 0; r < 5; ++r) g.add_edge(0, r);
  EXPECT_EQ(maximum_matching(g).size(), 1u);
}

TEST(HopcroftKarp, UnbalancedSides) {
  BipartiteMultigraph g(4, 2);
  for (std::size_t l = 0; l < 4; ++l) {
    g.add_edge(l, 0);
    g.add_edge(l, 1);
  }
  EXPECT_EQ(maximum_matching(g).size(), 2u);
}

TEST(IsMatching, RejectsSharedEndpoints) {
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  EXPECT_TRUE(is_matching(g, {0, 2}));
  EXPECT_FALSE(is_matching(g, {0, 1}));  // share left 0
  EXPECT_FALSE(is_matching(g, {1, 2}));  // share right 1
  EXPECT_FALSE(is_matching(g, {7}));     // bogus index
}

TEST(Bipartite, MaxDegreeCountsBothSides) {
  BipartiteMultigraph g(2, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.max_degree(), 3u);  // left 0 has degree 3
  EXPECT_EQ(g.left_edges(0).size(), 3u);
  EXPECT_EQ(g.right_edges(2).size(), 2u);
  EXPECT_THROW(g.add_edge(2, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3), ContractViolation);
  EXPECT_THROW(g.edge(99), ContractViolation);
}

// Property: Hopcroft–Karp matches the brute-force oracle on random small
// multigraphs.
class MatchingOracle : public ::testing::TestWithParam<int> {};

TEST_P(MatchingOracle, AgreesWithBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const std::size_t nl = 1 + rng.next_below(5);
  const std::size_t nr = 1 + rng.next_below(5);
  const std::size_t m = rng.next_below(13);
  BipartiteMultigraph g(nl, nr);
  for (std::size_t e = 0; e < m; ++e) {
    g.add_edge(rng.next_below(nl), rng.next_below(nr));
  }
  const auto hk = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, hk));
  EXPECT_EQ(hk.size(), brute_force_matching_size(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MatchingOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace closfair
