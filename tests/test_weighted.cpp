#include "fairness/weighted.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "lp/maxmin_lp.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Weighted, UnitWeightsReduceToPlainMaxMin) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 8, rng));
    const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
    const std::vector<Rational> unit(flows.size(), Rational{1});
    EXPECT_EQ(weighted_max_min_fair<Rational>(net.topology(), flows, routing, unit).rates(),
              max_min_fair<Rational>(net.topology(), flows, routing).rates());
  }
}

TEST(Weighted, ProportionalSplitOnSharedLink) {
  // Two flows with weights 2:1 through the same source link split 2/3, 1/3.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  const std::vector<Rational> weights = {Rational{2}, Rational{1}};
  const auto alloc = weighted_max_min_fair<Rational>(ms.topology(), flows, routing, weights);
  EXPECT_EQ(alloc.rate(0), Rational(2, 3));
  EXPECT_EQ(alloc.rate(1), Rational(1, 3));
}

TEST(Weighted, TwoLevelWeightedFill) {
  // Flows A, B share source s_1^1 (weights 3, 1); B also shares destination
  // t_3^1 with C (weight 1). First level: s-link saturates at A=3/4, B=1/4.
  // Then C is limited only by the destination residual: 3/4.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 4, 1}, FlowSpec{1, 1, 3, 1}, FlowSpec{2, 1, 3, 1}});
  const Routing routing = macro_routing(ms, flows);
  const std::vector<Rational> weights = {Rational{3}, Rational{1}, Rational{1}};
  const auto alloc = weighted_max_min_fair<Rational>(ms.topology(), flows, routing, weights);
  EXPECT_EQ(alloc.rate(0), Rational(3, 4));
  EXPECT_EQ(alloc.rate(1), Rational(1, 4));
  EXPECT_EQ(alloc.rate(2), Rational(3, 4));
}

TEST(Weighted, RejectsNonPositiveWeights) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = macro_routing(ms, flows);
  EXPECT_THROW(
      weighted_max_min_fair<Rational>(ms.topology(), flows, routing, {Rational{0}}),
      ContractViolation);
  EXPECT_THROW(
      weighted_max_min_fair<Rational>(ms.topology(), flows, routing, {Rational{-1}}),
      ContractViolation);
  EXPECT_THROW(weighted_max_min_fair<Rational>(ms.topology(), flows, routing, {}),
               ContractViolation);
}

TEST(Weighted, CertifierAcceptsAndRejects) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  const std::vector<Rational> weights = {Rational{2}, Rational{1}};

  const Allocation<Rational> good({Rational{2, 3}, Rational{1, 3}});
  EXPECT_TRUE(is_weighted_max_min_fair(ms.topology(), routing, good, weights));

  // The *unweighted* fair split is not weighted-fair here.
  const Allocation<Rational> unweighted({Rational{1, 2}, Rational{1, 2}});
  EXPECT_FALSE(is_weighted_max_min_fair(ms.topology(), routing, unweighted, weights));

  // Underutilization fails the saturation requirement.
  const Allocation<Rational> slack({Rational{1, 3}, Rational{1, 6}});
  EXPECT_FALSE(is_weighted_max_min_fair(ms.topology(), routing, slack, weights));
}

// On the Theorem 4.3 instance, weighting flows by their macro-switch rates
// rescues the type 3 flow from 1/n starvation to ~1/2 under the very same
// witness routing — the dynamic counterpart of the paper's §7
// relative-max-min proposal.
TEST(Weighted, MacroWeightsMitigateStarvation) {
  for (int n : {3, 4, 5}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const Routing routing = expand_routing(net, flows, *inst.witness);

    const auto plain = max_min_fair<Rational>(net.topology(), flows, routing);
    const auto weighted = weighted_max_min_fair<Rational>(net.topology(), flows, routing,
                                                          inst.macro_rates);
    const FlowIndex type3 = flows.size() - 1;
    EXPECT_EQ(plain.rate(type3), Rational(1, n));
    // Weighted fill on M_n O_{n+1}: level * (1 + (n-1)/n) = 1.
    EXPECT_EQ(weighted.rate(type3), Rational(n, 2 * n - 1)) << "n=" << n;
    EXPECT_GT(weighted.rate(type3), plain.rate(type3));
    // Certified weighted-max-min for the routing.
    EXPECT_TRUE(
        is_weighted_max_min_fair(net.topology(), routing, weighted, inst.macro_rates));
  }
}

// Property: weighted water-fill is feasible, saturating, and certified by the
// independent weighted bottleneck checker on random instances.
class WeightedProperty : public ::testing::TestWithParam<int> {};

TEST_P(WeightedProperty, FeasibleAndCertified) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 353 + 11);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const std::size_t count = 1 + rng.next_below(16);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    weights.emplace_back(rng.next_int(1, 5), rng.next_int(1, 3));
  }
  const auto alloc =
      weighted_max_min_fair<Rational>(net.topology(), flows, routing, weights);
  EXPECT_TRUE(is_feasible(net.topology(), routing, alloc));
  EXPECT_TRUE(is_weighted_max_min_fair(net.topology(), routing, alloc, weights));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WeightedProperty, ::testing::Range(0, 30));

// Cross-validation against the independent weighted LP oracle.
class WeightedCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(WeightedCrossValidation, WaterfillEqualsLp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 467 + 29);
  const int n = 2 + static_cast<int>(rng.next_below(2));
  const ClosNetwork net = ClosNetwork::paper(n);
  const std::size_t count = 1 + rng.next_below(8);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  std::vector<Rational> weights;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    weights.emplace_back(rng.next_int(1, 4), rng.next_int(1, 3));
  }
  const auto wf = weighted_max_min_fair<Rational>(net.topology(), flows, routing, weights);
  const auto lp = weighted_max_min_fair_lp(net.topology(), flows, routing, weights);
  EXPECT_EQ(wf.rates(), lp.rates());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WeightedCrossValidation,
                         ::testing::Range(0, 20));

TEST(Weighted, DoubleInstantiationTracksRational) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(77);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 6, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  std::vector<Rational> weights;
  std::vector<double> weights_d;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Rational w{rng.next_int(1, 4)};
    weights.push_back(w);
    weights_d.push_back(w.to_double());
  }
  const auto exact = weighted_max_min_fair<Rational>(net.topology(), flows, routing, weights);
  const auto approx =
      weighted_max_min_fair<double>(net.topology(), flows, routing, weights_d);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(approx.rate(f), exact.rate(f).to_double(), 1e-9);
  }
}

}  // namespace
}  // namespace closfair
