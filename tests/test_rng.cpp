#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace closfair {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) ++seen[rng.next_below(7)];
  for (int count : seen) EXPECT_GT(count, 700);  // uniform ~1000 each
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.next_int(3, 2), ContractViolation);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.next_exponential(0.0), ContractViolation);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  for (std::size_t n : {0u, 1u, 2u, 10u, 100u}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::vector<std::size_t> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, UniformWhenSkewZero) {
  Rng rng(23);
  ZipfSampler z(4, 0.0);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 8000; ++i) ++seen[z.sample(rng)];
  for (int count : seen) EXPECT_NEAR(count, 2000, 300);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(29);
  ZipfSampler z(100, 1.2);
  std::vector<int> seen(100, 0);
  for (int i = 0; i < 20000; ++i) ++seen[z.sample(rng)];
  EXPECT_GT(seen[0], seen[10]);
  EXPECT_GT(seen[0], 20000 / 20);  // rank 1 gets a large share
}

TEST(Zipf, SingleElement) {
  Rng rng(31);
  ZipfSampler z(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace closfair
