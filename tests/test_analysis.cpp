#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "core/report.hpp"
#include "fairness/waterfill.hpp"
#include "flow/allocation.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(AnalyzeMacro, Example33) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const AdversarialInstance inst = theorem_3_4_instance(1, 1);
  const auto a = analyze_macro(ms, instantiate(ms, inst.flows));
  EXPECT_EQ(a.t_maxmin, Rational(3, 2));
  EXPECT_EQ(a.t_max_throughput, Rational(2));
  EXPECT_EQ(a.price_of_fairness, Rational(3, 4));
  EXPECT_EQ(a.max_matching.size(), 2u);
}

TEST(AnalyzeMacro, EmptyCollection) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const auto a = analyze_macro(ms, FlowSet{});
  EXPECT_EQ(a.t_maxmin, Rational(0));
  EXPECT_EQ(a.t_max_throughput, Rational(0));
  EXPECT_EQ(a.price_of_fairness, Rational(1));
}

TEST(AnalyzeClos, MatchesWaterfill) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const Example23 ex = example_2_3();
  const FlowSet flows = instantiate(net, ex.instance.flows);
  const auto a = analyze_clos(net, flows, ex.routing_a);
  EXPECT_EQ(a.maxmin.rates(), ex.rates_a);
  EXPECT_EQ(a.throughput, Rational(3));
}

TEST(MaxThroughputRouting, AchievesMatchingThroughput) {
  // Lemma 5.2: T^T-MT == T^MT, witnessed by a link-disjoint routing.
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(3);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 12, rng);
  const FlowSet flows = instantiate(net, specs);

  const auto r = max_throughput_routing(net, flows);
  const auto macro = analyze_macro(ms, instantiate(ms, specs));
  EXPECT_EQ(r.throughput, macro.t_max_throughput);

  // The rate-1-on-matched allocation is feasible in the Clos network.
  const Routing routing = expand_routing(net, flows, r.middles);
  EXPECT_TRUE(is_feasible(net.topology(), routing, r.alloc));
}

TEST(Compare, Example23RoutingA) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const Comparison c = compare(net, ms, ex.instance.flows, ex.routing_a);

  EXPECT_EQ(c.macro.t_maxmin, Rational(10, 3));
  EXPECT_EQ(c.clos.throughput, Rational(3));
  EXPECT_EQ(c.throughput_ratio, Rational(9, 10));
  // The type 3 flow drops from 1 to 2/3.
  EXPECT_EQ(c.min_rate_ratio, Rational(2, 3));
  EXPECT_EQ(c.lex_vs_macro, std::strong_ordering::less);
}

TEST(Compare, PerfectReplicationIsEqual) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  // Flows on disjoint middle-friendly pairs: one flow per (src,dst) ToR pair.
  const FlowCollection specs = {FlowSpec{1, 1, 3, 1}, FlowSpec{2, 1, 4, 1}};
  const Comparison c = compare(net, ms, specs, MiddleAssignment{1, 2});
  EXPECT_EQ(c.throughput_ratio, Rational(1));
  EXPECT_EQ(c.min_rate_ratio, Rational(1));
  EXPECT_EQ(c.lex_vs_macro, std::strong_ordering::equal);
}

TEST(Compare, DimensionMismatchThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(3);
  EXPECT_THROW(compare(net, ms, {}, {}), ContractViolation);
}

TEST(Report, SummarizeByLabelGroups) {
  const Allocation<Rational> alloc(
      {Rational{1, 3}, Rational{1, 3}, Rational{2, 3}, Rational{1}});
  const std::vector<std::string> labels = {"a", "a", "b", "c"};
  const auto summary = summarize_by_label(labels, alloc);
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].label, "a");
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_EQ(summary[0].min_rate, Rational(1, 3));
  EXPECT_EQ(summary[0].max_rate, Rational(1, 3));
  EXPECT_EQ(summary[2].label, "c");
  EXPECT_EQ(summary[2].max_rate, Rational(1));
}

TEST(Report, SummarizeSizeMismatchThrows) {
  const Allocation<Rational> alloc({Rational{1}});
  EXPECT_THROW(summarize_by_label({"a", "b"}, alloc), ContractViolation);
}

TEST(Report, LabelTableRendersBothColumns) {
  const Allocation<Rational> left({Rational{1, 3}, Rational{1}});
  const Allocation<Rational> right({Rational{1, 6}, Rational{1, 2}});
  const std::vector<std::string> labels = {"x", "y"};
  const std::string out = render_label_table(labels, left, "macro", &right, "clos");
  EXPECT_NE(out.find("macro rate"), std::string::npos);
  EXPECT_NE(out.find("clos rate"), std::string::npos);
  EXPECT_NE(out.find("1/3"), std::string::npos);
  EXPECT_NE(out.find("1/6"), std::string::npos);
}

TEST(Report, RenderComparisonMentionsKeyNumbers) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const Comparison c = compare(net, ms, ex.instance.flows, ex.routing_a);
  const std::string out = render_comparison(c);
  EXPECT_NE(out.find("10/3"), std::string::npos);
  EXPECT_NE(out.find("2/3"), std::string::npos);
  EXPECT_NE(out.find("less"), std::string::npos);
}

}  // namespace
}  // namespace closfair
