// Differential gate for the WaterfillWorkspace int64 fixed-denominator fast
// path: on every instance the fast engine, the forced Rational fallback, and
// the generic max_min_fair<Rational> reference must produce byte-identical
// rate vectors — including instances engineered to overflow the fast path at
// bind time or mid-round.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "fault/fault.hpp"
#include "routing/exhaustive.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

FlowSet random_flows(const ClosNetwork& net, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
}

MiddleAssignment random_assignment(int num_middles, std::size_t num_flows, Rng& rng) {
  MiddleAssignment middles(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    middles[f] = static_cast<int>(rng.next_int(1, num_middles));
  }
  return middles;
}

/// Evaluates `middles` through a fast-path workspace, a forced-fallback
/// workspace, and the generic Rational reference, and requires exact
/// (num/den byte-level) equality everywhere.
void expect_all_engines_identical(const ClosNetwork& net, const FlowSet& flows,
                                  WaterfillWorkspace& fast, WaterfillWorkspace& fallback,
                                  const MiddleAssignment& middles) {
  const std::vector<Rational>& fast_rates = fast.max_min_rates(middles);
  const std::vector<Rational>& fallback_rates = fallback.max_min_rates(middles);
  const Allocation<Rational> reference = max_min_fair<Rational>(net, flows, middles);
  ASSERT_EQ(fast_rates.size(), flows.size());
  ASSERT_EQ(fallback_rates.size(), flows.size());
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_EQ(fast_rates[f].num(), reference.rate(f).num());
    EXPECT_EQ(fast_rates[f].den(), reference.rate(f).den());
    EXPECT_EQ(fallback_rates[f].num(), reference.rate(f).num());
    EXPECT_EQ(fallback_rates[f].den(), reference.rate(f).den());
  }
}

TEST(WaterfillFastpath, FastPathAvailableAndTakenOnPaperInstances) {
  const ClosNetwork net = ClosNetwork::paper(4);
  const FlowSet flows = random_flows(net, 8, 101);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  EXPECT_TRUE(workspace.fast_path_available());
  Rng rng(7);
  const MiddleAssignment middles = random_assignment(4, flows.size(), rng);
  (void)workspace.max_min_rates(middles);
  EXPECT_TRUE(workspace.last_call_was_fast());
  EXPECT_EQ(workspace.steady_state_allocs(), 0u);
}

TEST(WaterfillFastpath, ForceFallbackRoutesOntoRationalEngine) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 6, 11);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  workspace.set_force_fallback(true);
  Rng rng(8);
  (void)workspace.max_min_rates(random_assignment(3, flows.size(), rng));
  EXPECT_FALSE(workspace.last_call_was_fast());
}

TEST(WaterfillFastpath, DifferentialRandomClosInstances) {
  // Randomized sweep over fabric sizes, flow counts, and candidates: every
  // engine must agree exactly on every instance.
  for (const auto& [n, num_flows, seed] :
       {std::tuple{2, 4, 1u}, std::tuple{3, 6, 2u}, std::tuple{4, 8, 3u},
        std::tuple{4, 12, 4u}, std::tuple{5, 10, 5u}, std::tuple{6, 9, 6u}}) {
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = random_flows(net, static_cast<std::size_t>(num_flows), seed);
    WaterfillWorkspace fast;
    WaterfillWorkspace fallback;
    fast.bind(net, flows);
    fallback.bind(net, flows);
    fallback.set_force_fallback(true);
    ASSERT_TRUE(fast.fast_path_available());
    Rng rng(seed * 1000 + 17);
    for (int trial = 0; trial < 25; ++trial) {
      expect_all_engines_identical(net, flows, fast, fallback,
                                   random_assignment(n, flows.size(), rng));
    }
    EXPECT_EQ(fast.steady_state_allocs(), 0u);
    EXPECT_EQ(fallback.steady_state_allocs(), 0u);
  }
}

TEST(WaterfillFastpath, DifferentialFractionalCapacities) {
  // Non-integer uniform capacity: the common denominator is no longer 1.
  const ClosNetwork net = ClosNetwork(
      ClosNetwork::Params{3, 4, 2, Rational{2, 3}});
  const FlowSet flows = random_flows(net, 7, 23);
  WaterfillWorkspace fast;
  WaterfillWorkspace fallback;
  fast.bind(net, flows);
  fallback.bind(net, flows);
  fallback.set_force_fallback(true);
  ASSERT_TRUE(fast.fast_path_available());
  Rng rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    expect_all_engines_identical(net, flows, fast, fallback,
                                 random_assignment(3, flows.size(), rng));
  }
}

TEST(WaterfillFastpath, DifferentialDeratedFabric) {
  // Capacities produced by the fault layer: mixed denominators from
  // deration factors, some dead links, one degraded pod. The fast path must
  // agree with the exact engines on the degraded fabric, and the fast
  // result must still satisfy the bottleneck property (Lemma 2.2) on it.
  ClosNetwork net = ClosNetwork::paper(4);
  fault::FailureScenario scenario;
  scenario.failed_middles = {2};
  scenario.derated_links = {
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 1, Rational{1, 3}},
      fault::LinkDeration{fault::LinkStage::kDownlink, 3, 3, Rational{5, 7}},
      fault::LinkDeration{fault::LinkStage::kUplink, 2, 4, Rational{0}},
  };
  scenario.degraded_pods = {fault::PodDegradation{4, Rational{9, 11}}};
  fault::apply(net, scenario);

  const FlowSet flows = random_flows(net, 8, 31);
  WaterfillWorkspace fast;
  WaterfillWorkspace fallback;
  fast.bind(net, flows);
  fallback.bind(net, flows);
  fallback.set_force_fallback(true);
  ASSERT_TRUE(fast.fast_path_available());
  Rng rng(37);
  for (int trial = 0; trial < 25; ++trial) {
    const MiddleAssignment middles = random_assignment(4, flows.size(), rng);
    expect_all_engines_identical(net, flows, fast, fallback, middles);
    const Routing routing = expand_routing(net, flows, middles);
    const Allocation<Rational> alloc{fast.max_min_rates(middles)};
    EXPECT_TRUE(is_max_min_fair(net.topology(), routing, alloc));
  }
}

TEST(WaterfillFastpath, BindLevelOverflowFallsBackToRational) {
  // The workspace's common denominator is the lcm over ALL links, so four
  // distinct ~2^31-scale prime denominators on the uplinks of ToRs 3 and 4
  // kill the fast path at bind time (p1*p2 fits int64, *p3 does not). The
  // flows all originate at ToRs 1 and 2, so no candidate ever touches a
  // poisoned link: the Rational engines only meet unit capacities and every
  // call must still succeed, on the fallback.
  ClosNetwork net = ClosNetwork::paper(2);
  const std::int64_t primes[] = {2147483647, 2147483629, 2147483587, 2147483579};
  int next = 0;
  for (int i : {3, 4}) {
    for (int m = 1; m <= net.num_middles(); ++m) {
      net.set_uplink_capacity(i, m, Rational{1, primes[next++]});
    }
  }
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2}, FlowSpec{2, 1, 4, 1},
            FlowSpec{2, 2, 4, 2}, FlowSpec{1, 1, 2, 1}});
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  EXPECT_FALSE(workspace.fast_path_available());
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const MiddleAssignment middles = random_assignment(2, flows.size(), rng);
    const std::vector<Rational>& rates = workspace.max_min_rates(middles);
    EXPECT_FALSE(workspace.last_call_was_fast());
    const Allocation<Rational> reference = max_min_fair<Rational>(net, flows, middles);
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      EXPECT_EQ(rates[f], reference.rate(f));
    }
  }
}

TEST(WaterfillFastpath, MidRoundOverflowFallsBackToRational) {
  // Adversarial mid-round overflow with all-unit capacities: 16 flow groups
  // of distinct *prime* sizes, each group alone on its own uplink. Groups
  // freeze largest-first (share 1/53 < 1/47 < ...), and every round
  // multiplies the fast path's running denominator by the freezing group's
  // prime, so the denominator marches through 53*47*43*... and overflows
  // int64 around the 15th round. The state is irreducible (frozen rate
  // numerators den/k_g over distinct primes have gcd 1 with the
  // denominator), so the gcd-reduction retry cannot rescue it and the call
  // must transparently complete on the Rational engine — whose own
  // intermediates telescope to tiny pairwise denominators (every rate is
  // exactly 1/k_g). This is exactly the regime where the fast path's single
  // global denominator loses to per-value normalization.
  const int primes[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53};
  const int n = 16;
  int total = 0;
  for (int p : primes) total += p;  // 381 flows

  ClosNetwork net = ClosNetwork(ClosNetwork::Params{n, 2, total, Rational{1}});
  FlowCollection specs;
  MiddleAssignment middles;
  int src = 0;
  for (int g = 0; g < n; ++g) {
    for (int i = 0; i < primes[g]; ++i) {
      specs.push_back(FlowSpec{1, src + 1, src % 2 + 1, src / 2 + 1});
      middles.push_back(g + 1);
      ++src;
    }
  }
  const FlowSet flows = instantiate(net, specs);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  ASSERT_TRUE(workspace.fast_path_available());

  const std::vector<Rational>& rates = workspace.max_min_rates(middles);
  EXPECT_FALSE(workspace.last_call_was_fast());

  std::size_t f = 0;
  for (int g = 0; g < n; ++g) {
    for (int i = 0; i < primes[g]; ++i, ++f) {
      EXPECT_EQ(rates[f], Rational(1, primes[g]));
    }
  }
  const Allocation<Rational> reference = max_min_fair<Rational>(net, flows, middles);
  for (FlowIndex fl = 0; fl < flows.size(); ++fl) {
    EXPECT_EQ(rates[fl].num(), reference.rate(fl).num());
    EXPECT_EQ(rates[fl].den(), reference.rate(fl).den());
  }
}

TEST(WaterfillFastpath, EngineSplitCountersAreConsistent) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "CLOSFAIR_OBS=OFF";
  obs::Registry::instance().reset();
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 6, 53);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  Rng rng(59);
  for (int trial = 0; trial < 10; ++trial) {
    (void)workspace.max_min_rates(random_assignment(3, flows.size(), rng));
  }
  workspace.set_force_fallback(true);
  for (int trial = 0; trial < 4; ++trial) {
    (void)workspace.max_min_rates(random_assignment(3, flows.size(), rng));
  }
  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("waterfill.fast_calls").total(), 10u);
  EXPECT_EQ(reg.counter("waterfill.fallback_calls").total(), 4u);
  EXPECT_EQ(reg.counter("waterfill.fast_calls").total() +
                reg.counter("waterfill.fallback_calls").total(),
            reg.counter("waterfill.calls").total());
}

TEST(WaterfillFastpath, SearchWithForcedFallbackMatchesFastSearch) {
  // End-to-end: the exhaustive lex search with force_waterfill_fallback must
  // return bit-identical results to the default fast-path search.
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 6, 61);
  ExhaustiveOptions fast_opts;
  ExhaustiveOptions fallback_opts;
  fallback_opts.force_waterfill_fallback = true;
  const ExactRoutingResult fast = lex_max_min_exhaustive(net, flows, fast_opts);
  const ExactRoutingResult slow = lex_max_min_exhaustive(net, flows, fallback_opts);
  EXPECT_EQ(fast.middles, slow.middles);
  EXPECT_EQ(fast.alloc, slow.alloc);
  EXPECT_EQ(fast.waterfill_invocations, slow.waterfill_invocations);
}

}  // namespace
}  // namespace closfair
