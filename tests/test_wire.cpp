// Tests for closfair::wire — length-prefixed framing (round-trip, partial
// reads, oversized-frame rejection), the request/response line protocol, the
// per-connection Pipeline (in-order responses from out-of-order completions,
// dedup, admission control), the TCP server end to end over a real
// loopback socket (byte-identity with the batch binary for 1/2/8 workers,
// overload shedding, graceful drain — docs/SERVICE.md "Wire protocol"),
// and the admin plane / request tracing: metricsz/statusz/tracez verbs,
// failure-path counters, and the stage-sum = wall-time invariant of every
// flight-recorder entry (docs/OBSERVABILITY.md).
#include "wire/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/rt.hpp"
#include "svc/service.hpp"
#include "wire/client.hpp"
#include "wire/connection.hpp"
#include "wire/framing.hpp"
#include "wire/protocol.hpp"

namespace closfair {
namespace {

// ------------------------------------------------------------------- framing

TEST(WireFraming, RoundTripPreservesPayloadsInOrder) {
  const std::vector<std::string> payloads = {"hello", "", R"({"id":1})",
                                             std::string(1000, 'x')};
  std::string stream;
  for (const std::string& p : payloads) wire::append_frame(stream, p);
  EXPECT_EQ(stream.size(),
            4 * wire::kFrameHeaderBytes + 5 + 0 + 8 + 1000);

  wire::FrameDecoder decoder;
  decoder.feed(stream);
  for (const std::string& p : payloads) {
    const auto got = decoder.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
  }
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireFraming, OneByteAtATimeReassembles) {
  // The decoder must tolerate arbitrarily unlucky read() boundaries: feed a
  // three-frame stream one byte at a time and harvest after every byte.
  const std::vector<std::string> payloads = {"a", "bb", std::string(300, 'z')};
  std::string stream;
  for (const std::string& p : payloads) wire::append_frame(stream, p);

  wire::FrameDecoder decoder;
  std::vector<std::string> got;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) got.push_back(std::move(*frame));
  }
  EXPECT_EQ(got, payloads);
}

TEST(WireFraming, EncodeFrameMatchesAppendFrame) {
  std::string appended;
  wire::append_frame(appended, "payload");
  EXPECT_EQ(wire::encode_frame("payload"), appended);
  // Header is big-endian.
  EXPECT_EQ(appended[0], '\0');
  EXPECT_EQ(appended[3], '\x07');
}

TEST(WireFraming, OversizedFrameRejectedBeforePayloadArrives) {
  wire::FrameDecoder decoder(/*max_frame_bytes=*/16);
  // Header announcing 17 bytes: rejected at feed() time, before any of the
  // 17 payload bytes exist — the guard is what bounds a hostile peer.
  const char header[4] = {0, 0, 0, 17};
  EXPECT_THROW(decoder.feed(header, 4), wire::WireError);
  EXPECT_EQ(decoder.buffered(), 0u);  // nothing retained
  // The stream is unusable afterwards: every call reports the poisoning.
  EXPECT_THROW(decoder.feed("x", 1), wire::WireError);
  EXPECT_THROW(decoder.next(), wire::WireError);
}

TEST(WireFraming, HeaderSplitAcrossTwoFeedsReassembles) {
  // The 4-byte header itself can straddle a read() boundary: nothing may
  // surface (and nothing may be misparsed) until all four length bytes exist.
  const std::string stream = wire::encode_frame("payload");
  wire::FrameDecoder decoder;
  decoder.feed(stream.data(), 2);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 2u);
  decoder.feed(stream.data() + 2, stream.size() - 2);
  const auto got = decoder.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(WireFraming, FrameExactlyAtMaxFrameBytesIsAccepted) {
  // The limit is inclusive: exactly max_frame_bytes passes, one more poisons.
  const std::string at_limit(16, 'a');
  wire::FrameDecoder decoder(/*max_frame_bytes=*/16);
  decoder.feed(wire::encode_frame(at_limit));
  EXPECT_EQ(decoder.next(), at_limit);

  wire::FrameDecoder strict(/*max_frame_bytes=*/16);
  EXPECT_THROW(strict.feed(wire::encode_frame(std::string(17, 'a'))),
               wire::WireError);
}

TEST(WireFraming, ZeroLengthPayloadIsAFrameNotSilence) {
  // An empty payload is a legal frame: next() must distinguish "a complete
  // empty frame" (engaged optional) from "nothing buffered yet" (nullopt).
  wire::FrameDecoder decoder;
  decoder.feed(wire::encode_frame(""));
  const auto got = decoder.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(WireFraming, BackToBackFramesInOneFeedAllSurface) {
  std::string stream;
  wire::append_frame(stream, "one");
  wire::append_frame(stream, "");
  wire::append_frame(stream, "three");
  wire::FrameDecoder decoder;
  decoder.feed(stream);
  EXPECT_EQ(decoder.next(), "one");
  EXPECT_EQ(decoder.next(), "");
  EXPECT_EQ(decoder.next(), "three");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireFraming, EncodeSideRefusesOversizedPayloadBeforeTouchingOut) {
  // The encode-side guard (the framing.cpp:8 bugfix): a payload over the
  // limit throws before any header byte lands, so frames already appended
  // stay complete and sendable.
  std::string out;
  wire::append_frame(out, "ok");
  const std::string snapshot = out;
  EXPECT_THROW(wire::append_frame(out, std::string(9, 'x'), /*max=*/8),
               wire::WireError);
  EXPECT_EQ(out, snapshot);
  EXPECT_THROW(wire::encode_frame(std::string(9, 'x'), /*max=*/8),
               wire::WireError);
  // At the limit still encodes.
  wire::append_frame(out, std::string(8, 'x'), /*max=*/8);
  wire::FrameDecoder decoder;
  decoder.feed(out);
  EXPECT_EQ(decoder.next(), "ok");
  EXPECT_EQ(decoder.next(), std::string(8, 'x'));
}

TEST(WireFraming, FrameBeforeOversizedOneIsNotLost) {
  // A valid frame followed by an oversized header: the valid payload must
  // come out before the rejection fires (the check runs when the bad frame
  // becomes current, not retroactively).
  wire::FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string stream = wire::encode_frame("ok");
  const char bad[4] = {0x7f, 0, 0, 0};
  stream.append(bad, 4);
  decoder.feed(stream.data(), stream.size());
  const auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "ok");
  EXPECT_THROW(decoder.next(), wire::WireError);
}

// ------------------------------------------------------------------ protocol

std::string tiny_spec_json(std::uint64_t seed) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "uniform";
  spec.workload.count = 6;
  spec.workload.seed = seed;
  spec.routing.policy = "greedy";
  return spec.to_json().dump();
}

TEST(WireProtocol, ParsesBareSpecsAndEnvelopes) {
  const wire::Request bare = wire::parse_request(tiny_spec_json(1));
  EXPECT_TRUE(bare.ok());
  EXPECT_TRUE(bare.id.is_null());

  const wire::Request enveloped =
      wire::parse_request(R"({"id":42,"spec":)" + tiny_spec_json(1) + "}");
  EXPECT_TRUE(enveloped.ok());
  EXPECT_EQ(enveloped.id.as_int(), 42);
  EXPECT_EQ(enveloped.spec->canonical(), bare.spec->canonical());
}

TEST(WireProtocol, BadLinesKeepTheEnvelopeId) {
  const wire::Request garbage = wire::parse_request("{nope");
  EXPECT_FALSE(garbage.ok());
  EXPECT_FALSE(garbage.error.empty());

  // The envelope parsed but the spec inside is invalid: the id must survive
  // so the client can still match the error to its request.
  const wire::Request bad_spec =
      wire::parse_request(R"({"id":"req-7","spec":{"bogus":1}})");
  EXPECT_FALSE(bad_spec.ok());
  EXPECT_EQ(bad_spec.id.as_string(), "req-7");
}

TEST(WireProtocol, ParsesDeltaRequestsBareAndEnveloped) {
  // A bare delta: "base" can never be a ScenarioSpec key, so the two bare
  // forms cannot collide.
  const wire::Request bare = wire::parse_request(R"({"base":"00000000deadbeef"})");
  EXPECT_TRUE(bare.ok());
  EXPECT_TRUE(bare.is_delta());
  EXPECT_FALSE(bare.spec.has_value());
  EXPECT_EQ(bare.delta->base, 0xdeadbeefULL);
  EXPECT_TRUE(bare.delta->patch.empty());

  const wire::Request enveloped = wire::parse_request(
      R"({"id":7,"delta":{"base":"00000000deadbeef","patch":{"fail_middles":[2]}}})");
  EXPECT_TRUE(enveloped.is_delta());
  EXPECT_EQ(enveloped.id.as_int(), 7);
  EXPECT_EQ(enveloped.delta->patch.fail_middles, std::vector<int>{2});

  // A bad delta inside an envelope keeps the id, exactly like a bad spec.
  const wire::Request bad = wire::parse_request(R"({"id":9,"delta":{"base":"xyz"}})");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.is_delta());
  EXPECT_EQ(bad.id.as_int(), 9);
  EXPECT_FALSE(bad.error.empty());
}

TEST(WireProtocol, RenderedResponsesMatchDocumentedShapes) {
  svc::ScenarioResult result;
  result.num_flows = 1;
  result.macro_rates = {Rational{1, 2}};
  result.macro_throughput = Rational{1, 2};

  const std::string anonymous = wire::render_result(Json::null(), 0xabcULL,
                                                    /*cached=*/false, result);
  EXPECT_EQ(anonymous.find("\"id\""), std::string::npos);
  EXPECT_NE(anonymous.find("\"hash\":\"0000000000000abc\""), std::string::npos);
  EXPECT_NE(anonymous.find("\"cached\":false"), std::string::npos);

  const std::string with_id =
      wire::render_result(Json::number(std::int64_t{3}), 0xabcULL, true, result);
  EXPECT_EQ(with_id.find("{\"id\":3,"), 0u);  // id present and first
  EXPECT_NE(with_id.find("\"cached\":true"), std::string::npos);

  const std::string overload =
      wire::render_overload(Json::null(), "queue over watermark");
  EXPECT_NE(overload.find("\"overload\":true"), std::string::npos);
  EXPECT_NE(overload.find("\"error\":"), std::string::npos);

  const std::string parse_error =
      wire::render_parse_error(Json::string("x"), "bad line");
  EXPECT_EQ(parse_error, R"({"id":"x","error":"bad line"})");
}

// ------------------------------------------------------------------ pipeline

svc::ScenarioResult fake_result(std::size_t num_flows) {
  svc::ScenarioResult r;
  r.num_flows = num_flows;
  r.macro_rates.assign(num_flows, Rational{1, 2});
  r.macro_throughput = Rational{static_cast<std::int64_t>(num_flows), 2};
  return r;
}

wire::Pipeline::Admission admit_line(wire::Pipeline& pipeline, std::uint64_t seed) {
  return pipeline.admit(R"({"id":)" + std::to_string(seed) + R"(,"spec":)" +
                        tiny_spec_json(seed) + "}");
}

TEST(WirePipeline, OutOfOrderCompletionsComeBackInSequenceOrder) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  const auto a0 = admit_line(pipeline, 1);
  const auto a1 = admit_line(pipeline, 2);
  const auto a2 = admit_line(pipeline, 3);
  ASSERT_TRUE(a0.evaluate && a1.evaluate && a2.evaluate);

  pipeline.complete(a2.seq, fake_result(3), "");
  EXPECT_TRUE(pipeline.take_ready().empty());  // head of line still evaluating
  pipeline.complete(a0.seq, fake_result(1), "");
  const auto first = pipeline.take_ready();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].find("{\"id\":1,"), 0u);
  pipeline.complete(a1.seq, fake_result(2), "");
  const auto rest = pipeline.take_ready();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].find("{\"id\":2,"), 0u);
  EXPECT_EQ(rest[1].find("{\"id\":3,"), 0u);
  EXPECT_TRUE(pipeline.idle());
  EXPECT_EQ(pipeline.inflight(), 0u);
}

TEST(WirePipeline, DuplicateOfInFlightWaitsAndRendersCached) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  const auto first = admit_line(pipeline, 1);
  ASSERT_TRUE(first.evaluate);
  const auto dup = admit_line(pipeline, 1);
  EXPECT_FALSE(dup.evaluate);  // dedup: never re-evaluates
  EXPECT_TRUE(pipeline.take_ready().empty());

  pipeline.complete(first.seq, fake_result(1), "");
  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].find("\"cached\":false"), std::string::npos);
  EXPECT_NE(out[1].find("\"cached\":true"), std::string::npos);
  // Both carry the same content hash.
  const std::string hash = wire::hash_hex(svc::fnv1a64(
      svc::ScenarioSpec::from_json(Json::parse(tiny_spec_json(1))).canonical()));
  EXPECT_NE(out[0].find(hash), std::string::npos);
  EXPECT_NE(out[1].find(hash), std::string::npos);
}

TEST(WirePipeline, DuplicateAfterErrorGetsTheSameError) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  const auto first = admit_line(pipeline, 1);
  pipeline.complete(first.seq, {}, "middle stage exploded");
  // First occurrence completed (with an error) but not yet taken: a
  // duplicate must answer immediately with the same error, never hang.
  const auto dup = admit_line(pipeline, 1);
  EXPECT_FALSE(dup.evaluate);
  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].find("middle stage exploded"), std::string::npos);
  EXPECT_NE(out[1].find("middle stage exploded"), std::string::npos);
  // Errors are not cached: a fresh admission evaluates again.
  EXPECT_TRUE(admit_line(pipeline, 1).evaluate);
}

TEST(WirePipeline, CacheHitsSkipEvaluation) {
  svc::ResultCache cache(64);
  const std::string canonical =
      svc::ScenarioSpec::from_json(Json::parse(tiny_spec_json(5))).canonical();
  cache.insert(canonical, fake_result(7));
  wire::Pipeline pipeline(cache);
  EXPECT_FALSE(admit_line(pipeline, 5).evaluate);
  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("\"cached\":true"), std::string::npos);
}

TEST(WirePipeline, BudgetAndShedProduceOverloadResponses) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache, wire::PipelineLimits{1});
  const auto first = admit_line(pipeline, 1);
  ASSERT_TRUE(first.evaluate);
  // Budget of 1 exhausted: a distinct second spec sheds.
  EXPECT_FALSE(admit_line(pipeline, 2).evaluate);
  // Global watermark shed, even with budget available after completion.
  pipeline.complete(first.seq, fake_result(1), "");
  const auto shed =
      pipeline.admit(R"({"id":9,"spec":)" + tiny_spec_json(3) + "}", /*shed=*/true);
  EXPECT_FALSE(shed.evaluate);
  EXPECT_EQ(pipeline.overloads(), 2u);

  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0].find("\"cached\":false"), std::string::npos);
  EXPECT_NE(out[1].find("\"overload\":true"), std::string::npos);
  EXPECT_NE(out[1].find("budget"), std::string::npos);
  EXPECT_NE(out[2].find("\"overload\":true"), std::string::npos);
  EXPECT_NE(out[2].find("watermark"), std::string::npos);
}

TEST(WirePipeline, ParseErrorsAnswerImmediately) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  EXPECT_FALSE(pipeline.admit("{nope").evaluate);
  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("\"error\":"), std::string::npos);
  EXPECT_EQ(out[0].find("\"hash\""), std::string::npos);
  EXPECT_TRUE(pipeline.idle());
}

// ------------------------------------------------------- server over loopback

/// The byte-identity fixture: mixed request lines (bare specs, envelopes,
/// duplicates, a parse error, an evaluation error) mirroring small_batch()
/// in tests/test_svc.cpp.
std::vector<std::string> mixed_request_lines() {
  std::vector<std::string> lines;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    lines.push_back(R"({"id":)" + std::to_string(seed) + R"(,"spec":)" +
                    tiny_spec_json(seed) + "}");
  }
  lines.push_back(tiny_spec_json(2));  // bare duplicate of an earlier spec
  lines.push_back("{definitely not json");
  // Evaluation error: static routing with a wrong-length start assignment.
  svc::ScenarioSpec bad;
  bad.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  bad.workload.generator = "permutation";
  bad.routing.policy = "static";
  bad.routing.start = {1};
  lines.push_back(R"({"id":"boom","spec":)" + bad.to_json().dump() + "}");
  lines.push_back(lines[0]);  // envelope duplicate, same id
  return lines;
}

/// What the batch binary would answer: the reference half of the
/// byte-identity gate, computed in process exactly like run_batch().
std::vector<std::string> batch_responses(const std::vector<std::string>& lines) {
  std::vector<wire::Request> requests;
  std::vector<svc::ScenarioSpec> specs;
  std::vector<std::size_t> spec_of;
  for (const std::string& line : lines) {
    wire::Request request = wire::parse_request(line);
    if (request.ok()) {
      spec_of.push_back(specs.size());
      specs.push_back(*request.spec);
    } else {
      spec_of.push_back(SIZE_MAX);
    }
    requests.push_back(std::move(request));
  }
  svc::Service service(svc::ServiceOptions{1, 64});
  const std::vector<svc::BatchEntry> batch = service.evaluate_batch(specs);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (spec_of[i] == SIZE_MAX) {
      out.push_back(wire::render_parse_error(requests[i].id, requests[i].error));
      continue;
    }
    const svc::BatchEntry& entry = batch[spec_of[i]];
    out.push_back(entry.ok()
                      ? wire::render_result(requests[i].id, entry.hash, entry.cached,
                                            entry.result)
                      : wire::render_eval_error(requests[i].id, entry.hash,
                                                entry.error));
  }
  return out;
}

TEST(WireServer, SocketResponsesAreByteIdenticalToBatchForEveryWorkerCount) {
  const std::vector<std::string> lines = mixed_request_lines();
  const std::vector<std::string> expected = batch_responses(lines);
  for (const unsigned workers : {1u, 2u, 8u}) {
    svc::Service service(svc::ServiceOptions{workers, 64});
    wire::ServerOptions options;
    options.workers = workers;
    wire::Server server(service, options);
    server.start();

    wire::Client client;
    client.connect("127.0.0.1", server.port());
    for (const std::string& line : lines) client.send(line);  // fully pipelined
    client.finish_sending();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const auto response = client.recv();
      ASSERT_TRUE(response.has_value()) << "workers=" << workers << " line " << i;
      EXPECT_EQ(*response, expected[i]) << "workers=" << workers << " line " << i;
    }
    EXPECT_FALSE(client.recv().has_value());  // server closes after our half-close
    server.drain();
  }
}

TEST(WireServer, SequentialCallsSeeTheSharedCache) {
  svc::Service service(svc::ServiceOptions{2, 64});
  wire::Server server(service, wire::ServerOptions{});
  server.start();

  wire::Client first;
  first.connect("127.0.0.1", server.port());
  EXPECT_NE(first.call(tiny_spec_json(1)).find("\"cached\":false"),
            std::string::npos);
  first.close();

  // A new connection hits the cache the first one warmed.
  wire::Client second;
  second.connect("127.0.0.1", server.port());
  EXPECT_NE(second.call(tiny_spec_json(1)).find("\"cached\":true"),
            std::string::npos);
  second.close();
  server.drain();
}

TEST(WireServer, DeltaRequestsMatchColdEvaluationOverLoopback) {
  // The wire half of the tentpole gate: delta responses over a real socket
  // must be the exact bytes a cold evaluation of the patched spec renders —
  // including when the delta is pipelined so hard its base is still in
  // flight at admit time (the pending-set resolution path).
  const svc::ScenarioSpec base =
      svc::ScenarioSpec::from_json(Json::parse(tiny_spec_json(1)));
  const std::string base_hash = wire::hash_hex(svc::fnv1a64(base.canonical()));
  const svc::SpecPatch patch =
      svc::SpecPatch::from_json(Json::parse(R"({"objective":"maxmin_lp"})"));
  const svc::ScenarioSpec patched = patch.apply(base);
  const std::uint64_t patched_hash = svc::fnv1a64(patched.canonical());
  const svc::ScenarioResult cold = svc::evaluate_scenario(patched);
  const std::string expected_base = wire::render_result(
      Json::number(std::int64_t{1}), svc::fnv1a64(base.canonical()),
      /*cached=*/false, svc::evaluate_scenario(base));
  const std::string expected_delta = wire::render_result(
      Json::number(std::int64_t{2}), patched_hash, /*cached=*/false, cold);
  const std::string expected_dup = wire::render_result(
      Json::number(std::int64_t{4}), patched_hash, /*cached=*/true, cold);
  const std::string delta_line_tail =
      R"(,"delta":{"base":")" + base_hash + R"(","patch":{"objective":"maxmin_lp"}}})";

  for (const unsigned workers : {1u, 2u, 8u}) {
    svc::Service service(svc::ServiceOptions{workers, 64});
    wire::ServerOptions options;
    options.workers = workers;
    wire::Server server(service, options);
    server.start();

    wire::Client client;
    client.connect("127.0.0.1", server.port());
    // One pipelined burst: base, delta-on-that-base, unknown base, dup delta.
    client.send(R"({"id":1,"spec":)" + tiny_spec_json(1) + "}");
    client.send(R"({"id":2)" + delta_line_tail);
    client.send(R"({"id":3,"delta":{"base":"00000000000000aa"}})");
    client.send(R"({"id":4)" + delta_line_tail);
    client.finish_sending();

    const auto r1 = client.recv();
    const auto r2 = client.recv();
    const auto r3 = client.recv();
    const auto r4 = client.recv();
    ASSERT_TRUE(r1 && r2 && r3 && r4) << "workers=" << workers;
    EXPECT_EQ(*r1, expected_base) << "workers=" << workers;
    EXPECT_EQ(*r2, expected_delta) << "workers=" << workers;
    // Unknown base answers like a parse error: no hash ever existed.
    EXPECT_EQ(*r3,
              R"({"id":3,"error":"unknown base 00000000000000aa: not in the result cache"})");
    EXPECT_EQ(*r4, expected_dup) << "workers=" << workers;
    EXPECT_FALSE(client.recv().has_value());
    server.drain();
  }
}

TEST(WireClient, SendRefusesPayloadOverItsFrameLimitWithoutTearing) {
  svc::Service service(svc::ServiceOptions{1, 64});
  wire::Server server(service, wire::ServerOptions{});
  server.start();

  wire::Client client(/*max_frame_bytes=*/4096);
  client.connect("127.0.0.1", server.port());
  // The refusal happens before any byte reaches the socket...
  EXPECT_THROW(client.send(std::string(5000, 'x')), wire::WireError);
  // ...so the connection is still perfectly usable afterwards.
  EXPECT_NE(client.call(tiny_spec_json(1)).find("\"result\":"),
            std::string::npos);
  client.close();
  server.drain();
}

TEST(WireServer, OversizedResponseFlushesEarlierFramesThenCloses) {
  // A response the peer could never decode must not be truncated onto the
  // wire: the writer flushes the complete frames built so far, then gives
  // up on the connection.
  svc::Service service(svc::ServiceOptions{1, 64});
  const svc::ScenarioSpec base =
      svc::ScenarioSpec::from_json(Json::parse(tiny_spec_json(1)));
  (void)service.evaluate(base);  // warm the cache so a short delta line hits
  const std::string base_hash = wire::hash_hex(svc::fnv1a64(base.canonical()));

  wire::ServerOptions options;
  options.max_frame_bytes = 96;  // requests below fit; a result response does not
  wire::Server server(service, options);
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  // Short error response (< 96 bytes): survives.
  client.send(R"({"id":1,"delta":{"base":"00000000000000aa"}})");
  // Cache-hit result response (> 96 bytes): unencodable at this limit.
  client.send(R"({"id":2,"delta":{"base":")" + base_hash + R"("}})");
  client.finish_sending();

  const auto first = client.recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("unknown base"), std::string::npos);
  EXPECT_FALSE(client.recv().has_value());  // closed instead of torn bytes
  server.drain();
}

TEST(WireServer, OverloadWatermarkShedsInsteadOfBuffering) {
  svc::Service service(svc::ServiceOptions{1, 256});
  wire::ServerOptions options;
  options.workers = 1;
  options.queue_high_watermark = 1;  // shed as soon as one evaluation waits
  wire::Server server(service, options);
  server.start();

  const std::size_t kBlast = 40;
  wire::Client client;
  client.connect("127.0.0.1", server.port());
  for (std::uint64_t i = 0; i < kBlast; ++i) {
    client.send(R"({"id":)" + std::to_string(i) + R"(,"spec":)" +
                tiny_spec_json(100 + i) + "}");
  }
  client.finish_sending();

  std::size_t completed = 0, overloads = 0, ok = 0;
  while (auto response = client.recv()) {
    // In-order even under shedding: response i echoes id i.
    EXPECT_NE(response->find("{\"id\":" + std::to_string(completed) + ","),
              std::string::npos)
        << *response;
    if (response->find("\"overload\":true") != std::string::npos) {
      ++overloads;
    } else if (response->find("\"result\":") != std::string::npos) {
      ++ok;
    }
    ++completed;
  }
  EXPECT_EQ(completed, kBlast);          // every request answered...
  EXPECT_GT(overloads, 0u);              // ...some with an explicit shed...
  EXPECT_GT(ok, 0u);                     // ...and the admitted ones evaluated.
  EXPECT_EQ(server.queue_depth(), 0u);
  server.drain();
}

TEST(WireServer, OversizedFrameGetsOneErrorThenClose) {
  svc::Service service(svc::ServiceOptions{1, 64});
  wire::ServerOptions options;
  options.max_frame_bytes = 64;
  wire::Server server(service, options);
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  client.send(std::string(65, 'x'));  // framed payload over the server's cap
  const auto response = client.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"error\":"), std::string::npos);
  EXPECT_NE(response->find("exceeds"), std::string::npos);
  EXPECT_FALSE(client.recv().has_value());  // connection is closed after it
  server.drain();
}

TEST(WireServer, DrainFlushesEverythingAlreadyAdmitted) {
  svc::Service service(svc::ServiceOptions{2, 64});
  wire::ServerOptions options;
  options.workers = 2;
  wire::Server server(service, options);
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  const std::size_t kRequests = 6;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send(R"({"id":)" + std::to_string(i) + R"(,"spec":)" +
                tiny_spec_json(200 + i) + "}");
  }
  // Let the reader admit (most of) the burst, then drain concurrently with
  // the in-flight evaluations.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.drain();
  EXPECT_TRUE(server.draining());

  // Every admitted request got a response, in order, before the close.
  std::size_t received = 0;
  while (auto response = client.recv()) {
    EXPECT_NE(response->find("{\"id\":" + std::to_string(received) + ","),
              std::string::npos)
        << *response;
    ++received;
  }
  EXPECT_LE(received, kRequests);
  EXPECT_EQ(server.queue_depth(), 0u);
}

// ------------------------------------------------ admin plane + request traces

TEST(WireProtocol, AdminVerbDetectionIsExact) {
  EXPECT_TRUE(wire::is_admin_verb("metricsz"));
  EXPECT_TRUE(wire::is_admin_verb("statusz"));
  EXPECT_TRUE(wire::is_admin_verb("tracez"));
  // Anything else — including near-misses — is a data-plane payload. Verbs
  // are not valid JSON, so no legal request can collide with them.
  EXPECT_FALSE(wire::is_admin_verb("METRICSZ"));
  EXPECT_FALSE(wire::is_admin_verb("metricsz "));
  EXPECT_FALSE(wire::is_admin_verb(""));
  EXPECT_FALSE(wire::is_admin_verb(R"({"id":1})"));
}

TEST(WirePipeline, AdminResponsesInterleaveInArrivalOrder) {
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  const auto first = admit_line(pipeline, 1);
  ASSERT_TRUE(first.evaluate);
  pipeline.admit_ready("ADMIN-PAYLOAD");  // takes the seq between the two
  const auto second = admit_line(pipeline, 2);
  ASSERT_TRUE(second.evaluate);

  // Even with the later evaluation finishing first, the admin payload holds
  // its arrival-order position behind the head-of-line request.
  pipeline.complete(second.seq, fake_result(2), "");
  EXPECT_TRUE(pipeline.take_ready().empty());
  pipeline.complete(first.seq, fake_result(1), "");
  const auto out = pipeline.take_ready();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].find("{\"id\":1,"), 0u);
  EXPECT_EQ(out[1], "ADMIN-PAYLOAD");
  EXPECT_EQ(out[2].find("{\"id\":2,"), 0u);
  EXPECT_TRUE(pipeline.idle());
}

#if CLOSFAIR_OBS_ENABLED

std::uint64_t counter_total(const std::string& name) {
  return obs::Registry::instance().counter(name).total();
}

TEST(WireCounters, OversizedFramePoisoningBumpsCounter) {
  // Decoder-level: the counter fires when the hostile header is rejected.
  const std::uint64_t before = counter_total("wire.oversized_frames");
  wire::FrameDecoder decoder(/*max_frame_bytes=*/16);
  const char header[4] = {0, 0, 0, 17};
  EXPECT_THROW(decoder.feed(header, 4), wire::WireError);
  EXPECT_EQ(counter_total("wire.oversized_frames"), before + 1);
  // The poisoned decoder re-throws without re-counting the same frame.
  EXPECT_THROW(decoder.next(), wire::WireError);
  EXPECT_EQ(counter_total("wire.oversized_frames"), before + 1);

  // Server-level: the same counter fires on a live oversized frame.
  svc::Service service(svc::ServiceOptions{1, 64});
  wire::ServerOptions options;
  options.max_frame_bytes = 64;
  wire::Server server(service, options);
  server.start();
  wire::Client client;
  client.connect("127.0.0.1", server.port());
  client.send(std::string(65, 'x'));
  ASSERT_TRUE(client.recv().has_value());   // the final error response
  EXPECT_FALSE(client.recv().has_value());  // then close
  server.drain();
  EXPECT_EQ(counter_total("wire.oversized_frames"), before + 2);
}

TEST(WireCounters, BudgetAndWatermarkShedsBumpCounter) {
  const std::uint64_t before = counter_total("wire.overload_sheds");
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache, wire::PipelineLimits{1});
  const auto first = admit_line(pipeline, 1);
  ASSERT_TRUE(first.evaluate);
  EXPECT_FALSE(admit_line(pipeline, 2).evaluate);  // budget exhausted
  EXPECT_EQ(counter_total("wire.overload_sheds"), before + 1);
  pipeline.complete(first.seq, fake_result(1), "");
  const auto shed =
      pipeline.admit(R"({"id":9,"spec":)" + tiny_spec_json(3) + "}", /*shed=*/true);
  EXPECT_FALSE(shed.evaluate);  // watermark shed with budget available
  EXPECT_EQ(counter_total("wire.overload_sheds"), before + 2);
  (void)pipeline.take_ready();
}

TEST(WireCounters, OversizedSendBumpsCounter) {
  const std::uint64_t before = counter_total("wire.oversized_sends");
  std::string out;
  EXPECT_THROW(wire::append_frame(out, std::string(9, 'x'), /*max=*/8),
               wire::WireError);
  EXPECT_EQ(counter_total("wire.oversized_sends"), before + 1);
  // The Client send path routes through the same guard.
  wire::Client client(/*max_frame_bytes=*/64);
  svc::Service service(svc::ServiceOptions{1, 64});
  wire::Server server(service, wire::ServerOptions{});
  server.start();
  client.connect("127.0.0.1", server.port());
  EXPECT_THROW(client.send(std::string(65, 'x')), wire::WireError);
  EXPECT_EQ(counter_total("wire.oversized_sends"), before + 2);
  client.close();
  server.drain();
}

TEST(WireCounters, DeltaTrafficCountsHitsOnDedupAndCache) {
  const std::uint64_t hits_before = counter_total("svc.delta_hits");
  svc::ResultCache cache(64);
  wire::Pipeline pipeline(cache);
  const std::string base_line = tiny_spec_json(1);
  const std::string base_hash = wire::hash_hex(svc::fnv1a64(
      svc::ScenarioSpec::from_json(Json::parse(base_line)).canonical()));
  const auto first = admit_line(pipeline, 1);
  ASSERT_TRUE(first.evaluate);
  // An empty-patch delta re-addresses the base, which is still in flight on
  // this pipeline: resolved from the pending set, then deduped — a hit.
  const auto dup = pipeline.admit(R"({"id":2,"delta":{"base":")" + base_hash + R"("}})");
  EXPECT_FALSE(dup.evaluate);
  EXPECT_EQ(counter_total("svc.delta_hits"), hits_before + 1);
  pipeline.complete(first.seq, fake_result(1), "");
  (void)pipeline.take_ready();
  // Base now committed to the shared cache: the same delta is a cache hit.
  const auto again = pipeline.admit(R"({"id":3,"delta":{"base":")" + base_hash + R"("}})");
  EXPECT_FALSE(again.evaluate);
  EXPECT_EQ(counter_total("svc.delta_hits"), hits_before + 2);
  (void)pipeline.take_ready();
}

TEST(WireAdmin, VerbsInterleaveWithDataAndOnlyCountAsAdmin) {
  const std::uint64_t admin_before = counter_total("wire.admin_requests");
  const std::uint64_t requests_before = counter_total("wire.requests");
  const std::uint64_t responses_before = counter_total("wire.responses");

  svc::Service service(svc::ServiceOptions{2, 64});
  wire::ServerOptions options;
  options.workers = 2;
  wire::Server server(service, options);
  server.start();
  wire::Client client;
  client.connect("127.0.0.1", server.port());

  // Pipelined data / admin / data: responses come back in arrival order.
  client.send(R"({"id":0,"spec":)" + tiny_spec_json(400) + "}");
  client.send("statusz");
  client.send(R"({"id":1,"spec":)" + tiny_spec_json(401) + "}");
  client.finish_sending();
  const auto r0 = client.recv();
  const auto r1 = client.recv();
  const auto r2 = client.recv();
  ASSERT_TRUE(r0 && r1 && r2);
  EXPECT_EQ(r0->find("{\"id\":0,"), 0u);
  EXPECT_EQ(r1->find("{\"admin\":\"statusz\""), 0u);
  EXPECT_EQ(r2->find("{\"id\":1,"), 0u);
  EXPECT_FALSE(client.recv().has_value());

  const Json status = Json::parse(*r1);
  EXPECT_EQ(status.find("workers")->as_int(), 2);
  EXPECT_FALSE(status.find("draining")->as_bool());
  EXPECT_GT(status.find("uptime_ns")->as_int(), 0);
  EXPECT_EQ(status.find("conns_accepted")->as_int(), 1);
  server.drain();

  // Admin traffic is invisible to the data-plane counters: scraping any
  // number of times cannot move the bench.sh-gated totals.
  EXPECT_EQ(counter_total("wire.admin_requests"), admin_before + 1);
  EXPECT_EQ(counter_total("wire.requests"), requests_before + 2);
  EXPECT_EQ(counter_total("wire.responses"), responses_before + 2);
}

TEST(WireAdmin, MetricszAndTracezAreWellFormed) {
  obs::rt::FlightRecorder::instance().reset();
  svc::Service service(svc::ServiceOptions{2, 64});
  wire::Server server(service, wire::ServerOptions{});
  server.start();
  wire::Client client;
  client.connect("127.0.0.1", server.port());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_NE(client.call(tiny_spec_json(500 + i)).find("\"result\":"),
              std::string::npos);
  }

  const Json metricsz = Json::parse(client.call("metricsz"));
  EXPECT_EQ(metricsz.find("admin")->as_string(), "metricsz");
  const Json* counters = metricsz.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("wire.requests"), nullptr);
  EXPECT_GE(counters->find("wire.requests")->as_int(), 3);
  const Json* hists = metricsz.find("metrics")->find("histograms");
  ASSERT_NE(hists, nullptr);

  const Json tracez = Json::parse(client.call("tracez"));
  EXPECT_EQ(tracez.find("admin")->as_string(), "tracez");
  EXPECT_GT(tracez.find("slow_threshold_ns")->as_int(), 0);
  ASSERT_NE(tracez.find("recent"), nullptr);
  ASSERT_NE(tracez.find("shame"), nullptr);
  client.close();
  server.drain();
}

TEST(WireTrace, FlightRecorderStageSumsEqualWallTime) {
  obs::rt::FlightRecorder::instance().reset();
  const std::vector<std::string> lines = mixed_request_lines();
  svc::Service service(svc::ServiceOptions{2, 64});
  wire::ServerOptions options;
  options.workers = 2;
  wire::Server server(service, options);
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  for (const std::string& line : lines) client.send(line);
  client.send("tracez");  // an admin request rides along in the same stream
  client.finish_sending();
  std::size_t responses = 0;
  while (client.recv()) ++responses;
  EXPECT_EQ(responses, lines.size() + 1);
  server.drain();  // joins the writer: every trace is committed by now

  const auto recent = obs::rt::FlightRecorder::instance().recent();
  ASSERT_EQ(recent.size(), lines.size() + 1);
  std::map<obs::rt::Outcome, std::size_t> outcomes;
  for (const obs::rt::RequestTrace& trace : recent) {
    std::uint64_t sum = 0;
    for (const std::uint64_t ns : trace.stage_ns) sum += ns;
    // The acceptance invariant, with tolerance 0: successive marks charge
    // every nanosecond between arrival and the write mark to exactly one
    // stage, so the breakdown accounts for the full wall time.
    EXPECT_EQ(sum, trace.wall_ns()) << "seq " << trace.seq;
    EXPECT_GT(trace.wall_ns(), 0u) << "seq " << trace.seq;
    EXPECT_EQ(trace.conn_id, 1u);
    ++outcomes[trace.outcome];
  }
  // The mixed stream's outcome mix survives into the recorder.
  EXPECT_EQ(outcomes[obs::rt::Outcome::kAdmin], 1u);
  EXPECT_EQ(outcomes[obs::rt::Outcome::kParseError], 1u);
  EXPECT_EQ(outcomes[obs::rt::Outcome::kEvalError], 1u);
  EXPECT_GE(outcomes[obs::rt::Outcome::kEvaluated], 4u);
  obs::rt::FlightRecorder::instance().reset();
}

#endif  // CLOSFAIR_OBS_ENABLED

TEST(WireServer, ManyConnectionsShareOneServer) {
  svc::Service service(svc::ServiceOptions{4, 256});
  wire::ServerOptions options;
  options.workers = 4;
  wire::Server server(service, options);
  server.start();

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        wire::Client client;
        client.connect("127.0.0.1", server.port());
        for (std::uint64_t i = 0; i < 5; ++i) {
          const std::string response = client.call(tiny_spec_json(300 + i));
          if (response.find("\"result\":") == std::string::npos) {
            failures[c] = "bad response: " + response;
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "") << "client " << c;
  EXPECT_EQ(server.connections_accepted(), static_cast<std::uint64_t>(kClients));
  server.drain();
}

}  // namespace
}  // namespace closfair
