#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Scheduler, SingleFlowBothPoliciesEqual) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const std::vector<double> sizes = {3.0};
  const auto cc =
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), sizes);
  const auto sched = batch_matching_schedule(ms, flows, sizes);
  EXPECT_NEAR(cc.fct[0], 3.0, 1e-9);
  EXPECT_NEAR(sched.fct[0], 3.0, 1e-9);
}

TEST(Scheduler, Example33SchedulingBeatsCongestionControlOnMeanFct) {
  // The R1 discussion: on the adversarial family, max-min sharing drags
  // every flow out, while scheduling finishes the matching first.
  const MacroSwitch ms = MacroSwitch::paper(1);
  const AdversarialInstance inst = theorem_3_4_instance(1, 1);
  const FlowSet flows = instantiate(ms, inst.flows);
  const std::vector<double> sizes(flows.size(), 1.0);

  const auto cc =
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), sizes);
  const auto sched = batch_matching_schedule(ms, flows, sizes);

  // Congestion control: all three flows at 1/2 -> type 1 flows done at 2,
  // then the type 2 flow finishes at 2 as well (it was also at 1/2)...
  // water-filling gives all 1/2, so everything completes at t=2: mean 2.
  EXPECT_NEAR(cc.mean_fct, 2.0, 1e-9);
  // Scheduling: the two type 1 flows run at rate 1 (done at 1), then the
  // type 2 flow runs alone (done at 2): mean 4/3.
  EXPECT_NEAR(sched.mean_fct, 4.0 / 3.0, 1e-9);
  EXPECT_LT(sched.mean_fct, cc.mean_fct);
}

TEST(Scheduler, MakespanNeverBeatsTotalWorkBound) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(5);
  const FlowSet flows =
      instantiate(ms, uniform_random(Fabric{4, 2}, 12, rng));
  std::vector<double> sizes;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    sizes.push_back(0.5 + rng.next_double());
  }
  const auto cc =
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), sizes);
  const auto sched = batch_matching_schedule(ms, flows, sizes);

  // Any single source must ship all its bytes through a unit link.
  double per_source_max = 0.0;
  for (int i = 1; i <= 4; ++i) {
    for (int j = 1; j <= 2; ++j) {
      double total = 0.0;
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (flows[f].src == ms.source(i, j)) total += sizes[f];
      }
      per_source_max = std::max(per_source_max, total);
    }
  }
  EXPECT_GE(cc.max_fct, per_source_max - 1e-9);
  EXPECT_GE(sched.max_fct, per_source_max - 1e-9);
}

TEST(Scheduler, AllFlowsComplete) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(6);
  const FlowSet flows = instantiate(ms, uniform_random(Fabric{4, 2}, 15, rng));
  const std::vector<double> sizes(flows.size(), 1.0);
  const auto cc =
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), sizes);
  const auto sched = batch_matching_schedule(ms, flows, sizes);
  for (double fct : cc.fct) EXPECT_GT(fct, 0.0);
  for (double fct : sched.fct) EXPECT_GT(fct, 0.0);
  EXPECT_GT(cc.throughput_time_avg, 0.0);
  EXPECT_GT(sched.throughput_time_avg, 0.0);
}

TEST(Scheduler, SrptPrefersShortFlows) {
  // Two flows share endpoints: sizes 10 and 1. Plain matching picks either
  // (the multigraph edge order decides); SRPT must run the short one first:
  // FCTs {1, 11} -> mean 6, vs {10, 11} -> mean 10.5 the other way.
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 1, 2, 1}});
  const std::vector<double> sizes = {10.0, 1.0};
  const auto srpt = batch_srpt_schedule(ms, flows, sizes);
  EXPECT_NEAR(srpt.fct[1], 1.0, 1e-9);
  EXPECT_NEAR(srpt.fct[0], 11.0, 1e-9);
  EXPECT_NEAR(srpt.mean_fct, 6.0, 1e-9);
}

TEST(Scheduler, SrptNoWorseThanPlainMatchingOnSkewedSizes) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(17);
  const FlowSet flows = instantiate(ms, uniform_random(Fabric{4, 2}, 14, rng));
  std::vector<double> sizes;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    sizes.push_back(rng.next_bool(0.8) ? 0.2 : 5.0);  // mice and elephants
  }
  const auto plain = batch_matching_schedule(ms, flows, sizes);
  const auto srpt = batch_srpt_schedule(ms, flows, sizes);
  EXPECT_LE(srpt.mean_fct, plain.mean_fct + 1e-9);
}

TEST(Scheduler, SrptKeepsMaximumCardinality) {
  // The weighting must not sacrifice parallelism: with disjoint endpoint
  // pairs everything runs immediately, so every FCT equals its size.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2}, FlowSpec{2, 1, 4, 1}});
  const std::vector<double> sizes = {3.0, 1.0, 2.0};
  const auto srpt = batch_srpt_schedule(ms, flows, sizes);
  for (std::size_t f = 0; f < sizes.size(); ++f) {
    EXPECT_NEAR(srpt.fct[f], sizes[f], 1e-9);
  }
}

TEST(Scheduler, SizeMismatchThrows) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  EXPECT_THROW(batch_matching_schedule(ms, flows, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), {}),
      ContractViolation);
}

}  // namespace
}  // namespace closfair
