// The symmetry-reduced search engine: canonical class counts, orbit
// reconstruction, odometer fallback, serial/parallel equivalence, the
// throughput prune, and the allocation-free waterfill workspace.
#include "routing/search_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "fairness/waterfill.hpp"
#include "routing/exhaustive.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

// Global allocation counter for the no-allocation-per-candidate test. Only
// operator new/new[] are counted; the counter is atomic so instrumented
// multi-threaded tests stay well-defined.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete[](p); }

namespace closfair {
namespace {

FlowSet random_flows(const ClosNetwork& net, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
}

TEST(SearchEngine, CanonicalClassCountsClosedForm) {
  // sum_{k<=n} S(F, k): Stirling numbers of the second kind.
  EXPECT_EQ(canonical_class_count(1, 5), 1u);
  EXPECT_EQ(canonical_class_count(2, 4), 8u);    // 1 + 7
  EXPECT_EQ(canonical_class_count(3, 4), 14u);   // 1 + 7 + 6
  EXPECT_EQ(canonical_class_count(4, 4), 15u);   // Bell(4)
  EXPECT_EQ(canonical_class_count(3, 5), 41u);   // 1 + 15 + 25
  EXPECT_EQ(canonical_class_count(4, 8), 2795u); // 1 + 127 + 966 + 1701
  EXPECT_EQ(canonical_class_count(5, 0), 1u);
  // Saturation, not overflow, on absurd sizes.
  EXPECT_EQ(canonical_class_count(40, 80), UINT64_MAX);
}

TEST(SearchEngine, OrbitSizesAreFallingFactorials) {
  EXPECT_EQ(orbit_size(4, 0), 1u);
  EXPECT_EQ(orbit_size(4, 1), 4u);
  EXPECT_EQ(orbit_size(4, 2), 12u);
  EXPECT_EQ(orbit_size(4, 4), 24u);
  EXPECT_EQ(orbit_size(3, 3), 6u);
}

TEST(SearchEngine, CanonicalVisitCountsAndOrbitReconstruction) {
  // The lex search must water-fill exactly one representative per class and
  // reconstruct the full n^F space (pinned n^(F-1) under fix_first_flow)
  // from orbit sizes.
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 4, 7);

  ExhaustiveOptions full;
  full.fix_first_flow = false;
  const auto unpinned = lex_max_min_exhaustive(net, flows, full);
  EXPECT_EQ(unpinned.waterfill_invocations, canonical_class_count(3, 4));  // 14
  EXPECT_EQ(unpinned.routings_evaluated, 81u);                             // 3^4

  const auto pinned = lex_max_min_exhaustive(net, flows);
  EXPECT_EQ(pinned.waterfill_invocations, canonical_class_count(3, 4));
  EXPECT_EQ(pinned.routings_evaluated, 27u);  // 3^3
  EXPECT_EQ(pinned.alloc.sorted(), unpinned.alloc.sorted());
}

TEST(SearchEngine, MiddlesSymmetricPredicate) {
  ClosNetwork net = ClosNetwork::paper(3);
  EXPECT_TRUE(net.middles_symmetric());

  // One deviating uplink breaks it; restoring a uniform (if different)
  // capacity per ToR keeps it.
  net.set_uplink_capacity(1, 2, Rational{1, 2});
  EXPECT_FALSE(net.middles_symmetric());
  net.set_uplink_capacity(1, 1, Rational{1, 2});
  net.set_uplink_capacity(1, 3, Rational{1, 2});
  EXPECT_TRUE(net.middles_symmetric());

  net.set_downlink_capacity(2, 4, Rational{3});
  EXPECT_FALSE(net.middles_symmetric());
}

TEST(SearchEngine, CanonicalMatchesOdometerOnC3) {
  const ClosNetwork net = ClosNetwork::paper(3);
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const FlowSet flows = random_flows(net, 5, seed);
    ExhaustiveOptions odometer;
    odometer.exploit_middle_symmetry = false;
    const auto lex_full = lex_max_min_exhaustive(net, flows, odometer);
    const auto lex_canon = lex_max_min_exhaustive(net, flows);
    EXPECT_EQ(lex_canon.alloc.sorted(), lex_full.alloc.sorted()) << "seed " << seed;
    EXPECT_EQ(lex_canon.routings_evaluated, lex_full.routings_evaluated);
    EXPECT_LT(lex_canon.waterfill_invocations, lex_full.waterfill_invocations);

    const auto tput_full = throughput_max_min_exhaustive(net, flows, odometer);
    const auto tput_canon = throughput_max_min_exhaustive(net, flows);
    EXPECT_EQ(tput_canon.alloc.throughput(), tput_full.alloc.throughput())
        << "seed " << seed;
  }
}

TEST(SearchEngine, CanonicalMatchesOdometerOnC4) {
  const ClosNetwork net = ClosNetwork::paper(4);
  const FlowSet flows = random_flows(net, 6, 21);
  ExhaustiveOptions odometer;
  odometer.exploit_middle_symmetry = false;
  const auto lex_full = lex_max_min_exhaustive(net, flows, odometer);
  const auto lex_canon = lex_max_min_exhaustive(net, flows);
  EXPECT_EQ(lex_canon.alloc.sorted(), lex_full.alloc.sorted());
  EXPECT_EQ(lex_canon.routings_evaluated, lex_full.routings_evaluated);
  // 4^5 = 1024 pinned-odometer candidates vs sum_{k<=4} S(6,k) = 187.
  EXPECT_EQ(lex_full.waterfill_invocations, 1024u);
  EXPECT_EQ(lex_canon.waterfill_invocations, canonical_class_count(4, 6));

  const auto tput_full = throughput_max_min_exhaustive(net, flows, odometer);
  const auto tput_canon = throughput_max_min_exhaustive(net, flows);
  EXPECT_EQ(tput_canon.alloc.throughput(), tput_full.alloc.throughput());
}

TEST(SearchEngine, AsymmetricMiddlesFallBackToOdometer) {
  ClosNetwork net = ClosNetwork::paper(3);
  net.set_uplink_capacity(2, 3, Rational{1, 4});  // middles no longer interchangeable
  ASSERT_FALSE(net.middles_symmetric());
  const FlowSet flows = random_flows(net, 4, 33);

  // Default options fall back to the full *unpinned* odometer: asymmetric
  // middles void both quotients — the canonical classes and the
  // fix_first_flow pin (pinning flow 0 quotients by the same broken
  // relabeling symmetry) — so every assignment is water-filled.
  const auto result = lex_max_min_exhaustive(net, flows);
  EXPECT_EQ(result.waterfill_invocations, 81u);  // 3^4, nothing pinned
  EXPECT_EQ(result.routings_evaluated, 81u);

  ExhaustiveOptions no_sym;
  no_sym.exploit_middle_symmetry = false;
  const auto explicit_odometer = lex_max_min_exhaustive(net, flows, no_sym);
  EXPECT_EQ(result.alloc.sorted(), explicit_odometer.alloc.sorted());
  EXPECT_EQ(result.middles, explicit_odometer.middles);
}

TEST(SearchEngine, ParallelLexIdenticalToSerial) {
  const ClosNetwork net = ClosNetwork::paper(3);
  for (std::uint64_t seed : {5u, 6u}) {
    const FlowSet flows = random_flows(net, 6, seed);
    const auto serial = lex_max_min_exhaustive(net, flows);
    for (unsigned threads : {2u, 8u}) {
      ExhaustiveOptions options;
      options.num_threads = threads;
      const auto parallel = lex_max_min_exhaustive(net, flows, options);
      EXPECT_EQ(parallel.middles, serial.middles) << threads << " threads, seed " << seed;
      EXPECT_EQ(parallel.alloc.rates(), serial.alloc.rates());
      EXPECT_EQ(parallel.routings_evaluated, serial.routings_evaluated);
      EXPECT_EQ(parallel.waterfill_invocations, serial.waterfill_invocations);
    }
  }
}

TEST(SearchEngine, ParallelThroughputIdenticalToSerial) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 6, 9);
  // Prune off: with it on, a bound-attaining witness may legitimately differ
  // across schedules (the throughput itself never does).
  ExhaustiveOptions serial_options;
  serial_options.prune_throughput_bound = false;
  const auto serial = throughput_max_min_exhaustive(net, flows, serial_options);
  for (unsigned threads : {2u, 8u}) {
    ExhaustiveOptions options = serial_options;
    options.num_threads = threads;
    const auto parallel = throughput_max_min_exhaustive(net, flows, options);
    EXPECT_EQ(parallel.middles, serial.middles) << threads << " threads";
    EXPECT_EQ(parallel.alloc.rates(), serial.alloc.rates());
    EXPECT_EQ(parallel.routings_evaluated, serial.routings_evaluated);
    EXPECT_EQ(parallel.waterfill_invocations, serial.waterfill_invocations);
  }
}

TEST(SearchEngine, ParallelFrontierIdenticalToSerial) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 6, 14);
  const auto serial = throughput_fairness_frontier(net, flows);
  for (unsigned threads : {2u, 8u}) {
    ExhaustiveOptions options;
    options.num_threads = threads;
    const auto parallel = throughput_fairness_frontier(net, flows, options);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].throughput, serial[i].throughput);
      EXPECT_EQ(parallel[i].min_rate, serial[i].min_rate);
      EXPECT_EQ(parallel[i].middles, serial[i].middles);
    }
  }
}

TEST(SearchEngine, ThroughputPruneStopsAtCapacityBound) {
  // Three flows between pairwise-distinct ToRs: routing them all through M_1
  // already gives every flow rate 1, attaining the sum-of-capacities bound 3
  // on the first candidate.
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 4, 1}, FlowSpec{2, 1, 5, 1}, FlowSpec{3, 1, 6, 1}});
  EXPECT_EQ(throughput_capacity_bound(net, flows), Rational(3));

  const auto pruned = throughput_max_min_exhaustive(net, flows);
  EXPECT_EQ(pruned.waterfill_invocations, 1u);
  EXPECT_EQ(pruned.alloc.throughput(), Rational(3));

  ExhaustiveOptions no_prune;
  no_prune.prune_throughput_bound = false;
  const auto full = throughput_max_min_exhaustive(net, flows, no_prune);
  EXPECT_EQ(full.waterfill_invocations, canonical_class_count(3, 3));  // 5
  EXPECT_EQ(full.alloc.throughput(), pruned.alloc.throughput());
}

TEST(SearchEngine, WorkspaceMatchesGenericWaterfill) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = random_flows(net, 7, 77);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  Rng rng(123);
  MiddleAssignment middles(flows.size());
  for (int trial = 0; trial < 20; ++trial) {
    for (int& m : middles) m = 1 + static_cast<int>(rng.next_below(3));
    const auto reference = max_min_fair<Rational>(net, flows, middles);
    EXPECT_EQ(workspace.max_min_rates(middles), reference.rates()) << "trial " << trial;
  }
}

TEST(SearchEngine, WorkspaceReusesBuffersWithoutAllocating) {
  const ClosNetwork net = ClosNetwork::paper(4);
  const FlowSet flows = random_flows(net, 8, 88);
  WaterfillWorkspace workspace;
  workspace.bind(net, flows);
  MiddleAssignment middles(flows.size(), 1);
  const Rational* stable = workspace.max_min_rates(middles).data();  // warm-up

  const std::uint64_t before = g_allocations.load();
  for (int trial = 0; trial < 100; ++trial) {
    // Odometer step: vary the assignment without allocating.
    for (std::size_t f = 0; f < middles.size(); ++f) {
      if (middles[f] < 4) {
        ++middles[f];
        break;
      }
      middles[f] = 1;
    }
    const std::vector<Rational>& rates = workspace.max_min_rates(middles);
    if (rates.data() != stable) {
      ADD_FAILURE() << "result buffer moved on trial " << trial;
      break;
    }
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "water-fill inner loop allocated on the heap";
}

TEST(SearchEngine, SteadyStateAllocsGaugeReadsZero) {
  // The engine sums every worker's workspace buffer-growth audit into the
  // waterfill.steady_state_allocs gauge; a parallel search must leave it 0.
  const ClosNetwork net = ClosNetwork::paper(4);
  const FlowSet flows = random_flows(net, 8, 99);
  ExhaustiveOptions options;
  options.num_threads = 4;
  (void)lex_max_min_exhaustive(net, flows, options);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::Registry::instance().gauge("waterfill.steady_state_allocs").value(),
              0);
  }
}

}  // namespace
}  // namespace closfair
