#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Bounds, Example23RoutingAAllHold) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const BoundReport report = check_paper_bounds(net, ms, ex.instance.flows, ex.routing_a);
  EXPECT_TRUE(report.all_hold());
  EXPECT_EQ(report.checks.size(), 6u);
}

TEST(Bounds, AdversarialInstancesAllHold) {
  // The constructions are designed to make the bounds tight, not to break
  // them — they must all still hold.
  {
    const int n = 3;
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const BoundReport report = check_paper_bounds(net, ms, inst.flows, *inst.witness);
    EXPECT_TRUE(report.all_hold()) << render_bound_report(report);
  }
  {
    const int n = 7;
    const AdversarialInstance inst = theorem_5_4_instance(n, 4);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const BoundReport report =
        check_paper_bounds(net, ms, inst.flows, doom_switch(net, flows).middles);
    EXPECT_TRUE(report.all_hold()) << render_bound_report(report);
  }
}

TEST(Bounds, RenderMentionsEveryCheck) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const BoundReport report = check_paper_bounds(net, ms, ex.instance.flows, ex.routing_a);
  const std::string out = render_bound_report(report);
  for (const char* tag : {"B1", "B2", "B3", "B4", "B5", "B6"}) {
    EXPECT_NE(out.find(tag), std::string::npos) << tag;
  }
  EXPECT_EQ(out.find("VIOLATED"), std::string::npos);
}

class BoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundsProperty, HoldOnRandomInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 811 + 7);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{2 * n, n};
  FlowCollection specs;
  switch (rng.next_below(3)) {
    case 0: specs = uniform_random(fabric, 1 + rng.next_below(25), rng); break;
    case 1: specs = random_permutation(fabric, rng); break;
    default: specs = incast(fabric, 1 + rng.next_below(12), 1, 1, rng); break;
  }
  const FlowSet flows = instantiate(net, specs);
  const MiddleAssignment middles = ecmp_routing(net, flows, rng);
  const BoundReport report = check_paper_bounds(net, ms, specs, middles);
  EXPECT_TRUE(report.all_hold()) << render_bound_report(report);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BoundsProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace closfair
