#include "matching/flow_graphs.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

TEST(ServerFlowGraph, EdgeIndexEqualsFlowIndex) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowCollection specs = {FlowSpec{1, 1, 3, 2}, FlowSpec{2, 2, 4, 1},
                                FlowSpec{1, 1, 3, 2}};
  const FlowSet flows = instantiate(ms, specs);
  const BipartiteMultigraph g = server_flow_graph(ms, flows);

  ASSERT_EQ(g.num_edges(), flows.size());
  // Vertex layout: (tor-1)*servers_per_tor + (server-1).
  EXPECT_EQ(g.edge(0).left, 0u * 2 + 0);   // s_1^1
  EXPECT_EQ(g.edge(0).right, 2u * 2 + 1);  // t_3^2
  EXPECT_EQ(g.edge(1).left, 1u * 2 + 1);   // s_2^2
  EXPECT_EQ(g.edge(1).right, 3u * 2 + 0);  // t_4^1
  // Parallel flows become parallel edges.
  EXPECT_EQ(g.edge(2).left, g.edge(0).left);
  EXPECT_EQ(g.edge(2).right, g.edge(0).right);
}

TEST(ServerFlowGraph, FromCoordinatesDirectly) {
  const FlowCollection specs = {FlowSpec{1, 1, 2, 1}, FlowSpec{2, 1, 1, 1}};
  const BipartiteMultigraph g = server_flow_graph(2, 1, specs);
  EXPECT_EQ(g.num_left(), 2u);
  EXPECT_EQ(g.num_right(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0).left, 0u);
  EXPECT_EQ(g.edge(0).right, 1u);
}

TEST(ServerFlowGraph, ClosAndMacroAgree) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowCollection specs = {FlowSpec{1, 2, 4, 1}, FlowSpec{3, 1, 2, 2},
                                FlowSpec{1, 2, 4, 1}};
  const BipartiteMultigraph from_clos = server_flow_graph(net, instantiate(net, specs));
  const BipartiteMultigraph from_ms = server_flow_graph(ms, instantiate(ms, specs));
  ASSERT_EQ(from_clos.num_edges(), from_ms.num_edges());
  for (std::size_t e = 0; e < from_clos.num_edges(); ++e) {
    EXPECT_EQ(from_clos.edge(e).left, from_ms.edge(e).left);
    EXPECT_EQ(from_clos.edge(e).right, from_ms.edge(e).right);
  }
}

TEST(SwitchFlowGraph, CollapsesToTorPairs) {
  const ClosNetwork net = ClosNetwork::paper(2);
  // Two flows between different servers of the same ToR pair become
  // parallel edges of G^C.
  const FlowCollection specs = {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2},
                                FlowSpec{2, 1, 4, 2}};
  const BipartiteMultigraph g = switch_flow_graph(net, instantiate(net, specs));
  EXPECT_EQ(g.num_left(), 4u);
  EXPECT_EQ(g.num_right(), 4u);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(0).left, 0u);
  EXPECT_EQ(g.edge(0).right, 2u);
  EXPECT_EQ(g.edge(1).left, 0u);
  EXPECT_EQ(g.edge(1).right, 2u);
  EXPECT_EQ(g.edge(2).left, 1u);
  EXPECT_EQ(g.edge(2).right, 3u);
}

TEST(SwitchFlowGraph, MaxDegreeBoundsClosRoutability) {
  // With servers_per_tor = n, at most n matched flows leave any ToR, so G^C
  // of a matching has max degree <= n — the König precondition of Lemma 5.2.
  const ClosNetwork net = ClosNetwork::paper(3);
  FlowCollection specs;
  for (int j = 1; j <= 3; ++j) specs.push_back(FlowSpec{1, j, 4, j});
  const BipartiteMultigraph g = switch_flow_graph(net, instantiate(net, specs));
  EXPECT_EQ(g.max_degree(), 3u);
}

}  // namespace
}  // namespace closfair
