// Tests for closfair::obs — counter aggregation across threads, registry
// reset semantics, span nesting in the JSONL trace output, the determinism
// of algorithmic counters across worker-thread counts, histogram quantile
// estimation against known distributions, and the obs::rt request-tracing
// building blocks (stage accounting, flight-recorder rings, Chrome JSONL).
//
// With CLOSFAIR_OBS=OFF the same binary compiles against the inline stubs
// and the tests instead prove the layer is inert: snapshots stay empty,
// tracing cannot be activated, the request-trace structs are empty types,
// and the wire admin verbs answer with a well-formed "disabled" error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/rt.hpp"
#include "obs/trace.hpp"
#include "routing/exhaustive.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "wire/client.hpp"
#include "wire/connection.hpp"
#include "wire/framing.hpp"
#include "wire/server.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

[[maybe_unused]] std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                                             const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

FlowSet sample_flows(const ClosNetwork& net, std::size_t num_flows,
                     std::uint64_t seed) {
  Rng rng(seed);
  return instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, num_flows, rng));
}

}  // namespace

#if CLOSFAIR_OBS_ENABLED

TEST(Obs, CounterAggregatesAcrossEightThreads) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.eight_threads");

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : pool) t.join();

  // All worker threads have exited: totals must have been folded into the
  // retired slots, not lost with the thread-local slabs.
  EXPECT_EQ(counter.total(), kThreads * kAddsPerThread);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.eight_threads"),
            kThreads * kAddsPerThread);
}

TEST(Obs, CounterReferenceIsStableAndFindOrCreate) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& a = registry.counter("test.stable");
  obs::Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.total(), 7u);
}

TEST(Obs, GaugeLastWriteWins) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Gauge& gauge = registry.gauge("test.gauge");
  gauge.set(42);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.add(10);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(Obs, HistogramTracksCountMinMax) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.hist");
  hist.record_ns(100);
  hist.record_ns(7);
  hist.record_ns(5000);
  EXPECT_EQ(hist.count(), 3u);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  bool found = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "test.hist") continue;
    found = true;
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.total_ns, 5107u);
    EXPECT_EQ(h.min_ns, 7u);
    EXPECT_EQ(h.max_ns, 5000u);
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t b : h.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, 3u);
  }
  EXPECT_TRUE(found);
}

TEST(Obs, ResetZeroesEverythingButKeepsReferencesValid) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.reset");
  obs::Gauge& gauge = registry.gauge("test.reset_gauge");
  obs::Histogram& hist = registry.histogram("test.reset_hist");
  counter.add(9);
  gauge.set(5);
  hist.record_ns(123);

  registry.reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.reset"), 0u);

  // A reset must not invalidate previously returned references.
  counter.add(2);
  EXPECT_EQ(counter.total(), 2u);
}

TEST(Obs, ResetAlsoClearsRetiredCounts) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.retired_reset");
  std::thread([&counter] { counter.add(1000); }).join();
  EXPECT_EQ(counter.total(), 1000u);
  registry.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(Obs, SnapshotIsNameSorted) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.counter("test.zzz").add(1);
  registry.counter("test.aaa").add(1);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

namespace {

// Extract the numeric value following `"key":` in a JSON line. The trace
// writer emits flat one-line objects, so plain string scanning suffices.
double json_number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing " << key << " in: " << line;
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

void spin_for_ns(std::uint64_t ns) {
  const std::uint64_t start = obs::now_ns();
  while (obs::now_ns() - start < ns) {
  }
}

}  // namespace

TEST(ObsTrace, NestedSpansEmitOrderedJsonlEvents) {
  obs::Registry::instance().reset();
  const std::string path = "test_obs_trace.jsonl";
  ASSERT_TRUE(obs::start_trace(path));
  EXPECT_TRUE(obs::trace_active());
  // A second session cannot start while one is active.
  EXPECT_FALSE(obs::start_trace("test_obs_trace_second.jsonl"));

  {
    OBS_SPAN("test.outer");
    spin_for_ns(200000);
    {
      OBS_SPAN("test.inner");
      spin_for_ns(200000);
    }
    spin_for_ns(200000);
  }
  obs::stop_trace();
  EXPECT_FALSE(obs::trace_active());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string inner_line;
  std::string outer_line;
  std::size_t inner_index = 0;
  std::size_t outer_index = 0;
  std::size_t index = 0;
  while (std::getline(in, line)) {
    if (line.find("\"test.inner\"") != std::string::npos) {
      inner_line = line;
      inner_index = index;
    }
    if (line.find("\"test.outer\"") != std::string::npos) {
      outer_line = line;
      outer_index = index;
    }
    ++index;
  }
  ASSERT_FALSE(inner_line.empty());
  ASSERT_FALSE(outer_line.empty());

  // Spans complete inner-first, and a thread's ring preserves completion
  // order, so the inner event must precede the outer one in the file.
  EXPECT_LT(inner_index, outer_index);

  // Chrome-trace complete events with microsecond timestamps.
  EXPECT_NE(inner_line.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(outer_line.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(inner_line.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(inner_line.find("\"tid\":"), std::string::npos);

  const double inner_ts = json_number_field(inner_line, "ts");
  const double inner_dur = json_number_field(inner_line, "dur");
  const double outer_ts = json_number_field(outer_line, "ts");
  const double outer_dur = json_number_field(outer_line, "dur");
  // Nesting: the inner span lies strictly inside the outer interval.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  EXPECT_GE(inner_dur, 200000.0 / 1000.0);  // at least the 200 us spin
  EXPECT_GE(outer_dur, 3 * 200000.0 / 1000.0);

  // The span histograms recorded regardless of the sink.
  EXPECT_GE(obs::Registry::instance().histogram("test.inner").count(), 1u);
  EXPECT_GE(obs::Registry::instance().histogram("test.outer").count(), 1u);

  std::remove(path.c_str());
}

TEST(ObsTrace, SpansRecordHistogramsWithoutActiveSession) {
  obs::Registry::instance().reset();
  ASSERT_FALSE(obs::trace_active());
  {
    OBS_SPAN("test.no_sink");
    spin_for_ns(1000);
  }
  EXPECT_EQ(obs::Registry::instance().histogram("test.no_sink").count(), 1u);
}

// The acceptance bar of this layer: algorithmic counters must not depend on
// how many worker threads ran the search. Every thread count evaluates the
// same canonical candidate set (no early stop is configured), so per-call
// water-fill work aggregates to identical totals.
TEST(ObsDeterminism, AlgorithmicCountersInvariantAcrossThreadCounts) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 6, 77);

  const char* const kAlgorithmic[] = {
      "waterfill.calls",          "waterfill.rounds",
      "waterfill.saturated_links", "waterfill.links_touched",
      "search.candidates",        "search.routings_covered",
  };

  std::map<std::string, std::uint64_t> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    obs::Registry::instance().reset();
    ExhaustiveOptions options;
    options.num_threads = threads;
    const auto result = lex_max_min_exhaustive(net, flows, options);
    ASSERT_GT(result.waterfill_invocations, 0u);

    const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
    for (const char* name : kAlgorithmic) {
      const std::uint64_t value = counter_value(snapshot, name);
      if (threads == 1) {
        reference[name] = value;
        EXPECT_GT(value, 0u) << name;
      } else {
        EXPECT_EQ(value, reference[name]) << name << " at " << threads << " threads";
      }
    }
    // Sanity: the counter mirrors the engine's own statistic.
    EXPECT_EQ(counter_value(snapshot, "search.candidates"),
              result.waterfill_invocations);
  }
}

TEST(ObsDeterminism, SearchCountersMatchEngineStats) {
  obs::Registry::instance().reset();
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 5, 11);
  const auto result = lex_max_min_exhaustive(net, flows);

  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_value(snapshot, "search.candidates"), result.waterfill_invocations);
  EXPECT_EQ(counter_value(snapshot, "search.routings_covered"),
            result.routings_evaluated);
  EXPECT_EQ(counter_value(snapshot, "search.runs"), 1u);
  EXPECT_EQ(counter_value(snapshot, "waterfill.calls"), result.waterfill_invocations);
}

// ----------------------------------------------------------------- quantiles

namespace {

const obs::MetricsSnapshot::HistogramValue* find_hist(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

TEST(ObsQuantiles, EmptyHistogramEstimatesZero) {
  obs::MetricsSnapshot::HistogramValue empty;
  EXPECT_EQ(obs::estimate_quantile_ns(empty, 0.5), 0.0);
}

TEST(ObsQuantiles, SingleValuedDistributionIsExact) {
  // Every sample is 1000 ns: the min/max clamp collapses the log-linear
  // bucket estimate onto the one observed value, for every quantile.
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.quant_single");
  for (int i = 0; i < 100; ++i) hist.record_ns(1000);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* h = find_hist(snapshot, "test.quant_single");
  ASSERT_NE(h, nullptr);
  for (const double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::estimate_quantile_ns(*h, q), 1000.0) << "q=" << q;
  }
}

TEST(ObsQuantiles, ZeroDurationsEstimateZero) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.quant_zero");
  for (int i = 0; i < 10; ++i) hist.record_ns(0);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* h = find_hist(snapshot, "test.quant_zero");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(obs::estimate_quantile_ns(*h, 0.5), 0.0);
}

TEST(ObsQuantiles, UniformDistributionWithinBucketResolution) {
  // 1..1000 ns uniformly: the true p50 is 500 and sits in the [256, 512)
  // bucket; log-linear interpolation lands near 497. The relative error of
  // the estimator is bounded by one bucket (a factor of 2) before clamping.
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.quant_uniform");
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record_ns(v);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* h = find_hist(snapshot, "test.quant_uniform");
  ASSERT_NE(h, nullptr);
  const double p50 = obs::estimate_quantile_ns(*h, 0.50);
  const double p99 = obs::estimate_quantile_ns(*h, 0.99);
  const double p999 = obs::estimate_quantile_ns(*h, 0.999);
  EXPECT_GE(p50, 300.0);
  EXPECT_LE(p50, 700.0);
  EXPECT_GE(p99, 800.0);   // true p99 = 990
  EXPECT_LE(p99, 1000.0);  // never past the observed max
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, 1000.0);
}

TEST(ObsQuantiles, BimodalTailIsSeparated) {
  // 90% fast (100 ns) / 10% slow (100 us): p50 must report the fast mode,
  // p99 the slow one — the failure mode a mean would hide.
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.quant_bimodal");
  for (int i = 0; i < 90; ++i) hist.record_ns(100);
  for (int i = 0; i < 10; ++i) hist.record_ns(100000);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* h = find_hist(snapshot, "test.quant_bimodal");
  ASSERT_NE(h, nullptr);
  const double p50 = obs::estimate_quantile_ns(*h, 0.50);
  const double p99 = obs::estimate_quantile_ns(*h, 0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 200.0);
  EXPECT_GE(p99, 50000.0);
  EXPECT_LE(p99, 100000.0);
}

TEST(ObsQuantiles, MetricsJsonCarriesQuantileEstimates) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.histogram("test.quant_json").record_ns(1000);
  const Json exported = metrics_to_json(registry.snapshot());
  const Json* hists = exported.find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* h = hists->find("test.quant_json");
  ASSERT_NE(h, nullptr);
  for (const char* key : {"p50_ns", "p99_ns", "p999_ns"}) {
    const Json* quantile = h->find(key);
    ASSERT_NE(quantile, nullptr) << key;
    EXPECT_DOUBLE_EQ(quantile->as_double(), 1000.0) << key;
  }
}

// ---------------------------------------------------------- request tracing

namespace {

obs::rt::RequestTrace finished_trace(std::uint64_t conn, std::uint64_t seq,
                                     std::uint64_t wall_ns,
                                     obs::rt::Outcome outcome) {
  obs::rt::RequestTrace trace;
  trace.begin(conn, seq, /*recv_ns=*/1000);
  trace.mark_at(obs::rt::Stage::kEvaluate, 1000 + wall_ns);
  trace.set_outcome(outcome);
  trace.finish();
  return trace;
}

}  // namespace

TEST(ObsRt, StageMarksPartitionWallTimeExactly) {
  using obs::rt::Stage;
  obs::rt::RequestTrace trace;
  trace.begin(7, 3, /*recv_ns=*/1000);
  trace.mark_at(Stage::kRead, 1500);
  trace.mark_at(Stage::kParse, 1500);      // zero-length stage
  trace.mark_at(Stage::kAdmit, 1400);      // backwards tick: clamped to 0
  trace.mark_at(Stage::kQueueWait, 2100);  // measured from the clamp point
  trace.mark_at(Stage::kEvaluate, 2600);
  trace.mark_at(Stage::kReorderWait, 2600);
  trace.mark_at(Stage::kWrite, 3000);
  trace.finish();

  EXPECT_EQ(trace.conn_id, 7u);
  EXPECT_EQ(trace.seq, 3u);
  EXPECT_EQ(trace.wall_ns(), 2000u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kRead)], 500u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kParse)], 0u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kAdmit)], 0u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kQueueWait)], 600u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kEvaluate)], 500u);
  EXPECT_EQ(trace.stage_ns[static_cast<std::size_t>(Stage::kWrite)], 400u);
  std::uint64_t sum = 0;
  for (const std::uint64_t ns : trace.stage_ns) sum += ns;
  EXPECT_EQ(sum, trace.wall_ns());  // exact: the invariant of mark_at()

  // Marks after finish() are inert.
  trace.mark_at(Stage::kWrite, 9000);
  EXPECT_EQ(trace.wall_ns(), 2000u);
}

TEST(ObsRt, FlightRecorderRoutesToRecentAndShame) {
  auto& recorder = obs::rt::FlightRecorder::instance();
  recorder.reset();
  obs::Registry::instance().reset();
  recorder.set_slow_threshold_ns(1'000'000);

  recorder.record(finished_trace(1, 0, 500'000, obs::rt::Outcome::kEvaluated));
  recorder.record(finished_trace(1, 1, 1'000, obs::rt::Outcome::kParseError));
  recorder.record(finished_trace(1, 2, 2'000'000, obs::rt::Outcome::kEvaluated));
  recorder.record(finished_trace(1, 3, 100, obs::rt::Outcome::kAdmin));

  const auto recent = recorder.recent();
  ASSERT_EQ(recent.size(), 4u);  // everything, oldest first
  EXPECT_EQ(recent[0].seq, 0u);
  EXPECT_EQ(recent[3].seq, 3u);

  const auto shame = recorder.shame();  // errored + slow only
  ASSERT_EQ(shame.size(), 2u);
  EXPECT_EQ(shame[0].seq, 1u);
  EXPECT_EQ(shame[1].seq, 2u);

  // Non-admin traces feed the wire.request histogram; the admin one did not.
  EXPECT_EQ(obs::Registry::instance().histogram("wire.request").count(), 3u);

  recorder.reset();
  EXPECT_TRUE(recorder.recent().empty());
  EXPECT_TRUE(recorder.shame().empty());
  EXPECT_EQ(recorder.slow_threshold_ns(),
            obs::rt::FlightRecorder::kDefaultSlowThresholdNs);
}

TEST(ObsRt, FlightRecorderKeepsTheLastCapacityTraces) {
  auto& recorder = obs::rt::FlightRecorder::instance();
  recorder.reset();
  obs::Registry::instance().reset();
  constexpr std::size_t kTotal = obs::rt::FlightRecorder::kRecentCapacity + 44;
  for (std::size_t seq = 0; seq < kTotal; ++seq) {
    recorder.record(finished_trace(1, seq, 1'000, obs::rt::Outcome::kEvaluated));
  }
  const auto recent = recorder.recent();
  ASSERT_EQ(recent.size(), obs::rt::FlightRecorder::kRecentCapacity);
  EXPECT_EQ(recent.front().seq, 44u);  // the oldest surviving trace
  EXPECT_EQ(recent.back().seq, kTotal - 1);
  recorder.reset();
}

TEST(ObsRt, TraceJsonAndChromeJsonlShapes) {
  obs::rt::RequestTrace trace;
  trace.begin(5, 2, /*recv_ns=*/1000);
  trace.mark_at(obs::rt::Stage::kRead, 2000);
  trace.mark_at(obs::rt::Stage::kEvaluate, 4000);
  trace.finish();

  const Json j = obs::rt::trace_to_json(trace);
  EXPECT_EQ(j.find("conn")->as_int(), 5);
  EXPECT_EQ(j.find("seq")->as_int(), 2);
  EXPECT_EQ(j.find("wall_ns")->as_int(), 3000);
  EXPECT_EQ(j.find("outcome")->as_string(), "evaluated");
  EXPECT_EQ(j.find("stages_ns")->find("read")->as_int(), 1000);
  EXPECT_EQ(j.find("stages_ns")->find("evaluate")->as_int(), 2000);
  EXPECT_EQ(j.find("stages_ns")->find("write")->as_int(), 0);

  const std::string jsonl = obs::rt::dump_chrome_jsonl({trace});
  // One request event plus one per nonzero stage (read, evaluate).
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("\"name\":\"wire.request/evaluated\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"wire.stage.read\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"wire.stage.evaluate\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"name\":\"wire.stage.write\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tid\":5"), std::string::npos);
}

#else  // !CLOSFAIR_OBS_ENABLED

// OBS=OFF: instrumented code must leave no trace. The stubs return empty
// snapshots and tracing cannot activate.
TEST(ObsDisabled, SnapshotStaysEmptyAfterInstrumentedRun) {
  EXPECT_FALSE(obs::kEnabled);
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 5, 11);
  const auto result = lex_max_min_exhaustive(net, flows);
  EXPECT_GT(result.waterfill_invocations, 0u);
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

// The scenario service is instrumented throughout (svc.requests,
// svc.cache_hits, svc.queue_depth, spans); under OBS=OFF all of it must
// compile to the inert stubs — a full batch leaves the registry empty.
TEST(ObsDisabled, ServiceBatchLeavesNoMetrics) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 3;
  svc::Service service(svc::ServiceOptions{2, 8});
  const std::vector<svc::BatchEntry> entries =
      service.evaluate_batch({spec, spec});  // second entry: dedup path
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].ok());
  EXPECT_TRUE(entries[1].cached);
  EXPECT_TRUE(service.evaluate(spec).cached);  // cache-hit path
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

// The wire layer bumps wire.* counters/gauges on every code path — framing
// rejection, pipeline admission, server accept/drain. Under OBS=OFF a full
// socket round trip (plus the poisoned-decoder path) must leave the registry
// empty.
TEST(ObsDisabled, WireServerRoundTripLeavesNoMetrics) {
  // wire.oversized_frames path.
  wire::FrameDecoder decoder(/*max_frame_bytes=*/8);
  const char bad_header[4] = {0x7f, 0, 0, 0};
  EXPECT_THROW(decoder.feed(bad_header, 4), wire::WireError);

  // wire.requests / wire.dedup_hits / wire.overload_sheds / wire.responses
  // plus the server-side conns/queue gauges, over a real socket.
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 3;
  svc::Service service(svc::ServiceOptions{2, 8});
  wire::Server server(service, wire::ServerOptions{});
  server.start();
  wire::Client client;
  client.connect("127.0.0.1", server.port());
  const std::string line = spec.to_json().dump();
  EXPECT_NE(client.call(line).find("\"cached\":false"), std::string::npos);
  EXPECT_NE(client.call(line).find("\"cached\":true"), std::string::npos);
  client.close();
  server.drain();
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

TEST(ObsDisabled, TraceCannotActivate) {
  EXPECT_FALSE(obs::start_trace("unused.jsonl"));
  EXPECT_FALSE(obs::trace_active());
  obs::stop_trace();
  std::ifstream in("unused.jsonl");
  EXPECT_FALSE(in.good());
}

TEST(ObsDisabled, MacrosAreInert) {
  std::uint64_t tally = 0;
  OBS_COUNTER_ADD("test.off", ++tally);  // unevaluated operand: no side effect
  EXPECT_EQ(tally, 0u);
  OBS_COUNTER_INC("test.off");
  OBS_GAUGE_SET("test.off_gauge", 3);
  OBS_SPAN("test.off_span");
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

// The per-request overhead of tracing must be *structurally* zero under
// OBS=OFF: the trace and worker-stamp structs are empty types (so the
// [[no_unique_address]] member in the pipeline slot occupies no space), and
// the flight recorder swallows everything.
TEST(ObsDisabled, RequestTraceStructuresAreEmpty) {
  EXPECT_TRUE(std::is_empty_v<obs::rt::RequestTrace>);
  EXPECT_TRUE(std::is_empty_v<obs::rt::WorkerStamps>);

  obs::rt::RequestTrace trace;
  trace.begin(1, 2, 3);
  trace.mark(obs::rt::Stage::kRead);
  trace.set_outcome(obs::rt::Outcome::kParseError);
  trace.finish();
  EXPECT_EQ(trace.wall_ns(), 0u);

  auto& recorder = obs::rt::FlightRecorder::instance();
  recorder.record(trace);
  EXPECT_TRUE(recorder.recent().empty());
  EXPECT_TRUE(recorder.shame().empty());
  EXPECT_TRUE(obs::rt::trace_to_json(trace).is_null());
  EXPECT_TRUE(obs::rt::dump_chrome_jsonl({trace}).empty());
}

// The admin plane stays reachable with observability compiled out: every
// verb answers a well-formed self-describing error, the data plane is
// untouched, and the registry stays empty through it all.
TEST(ObsDisabled, AdminVerbsAnswerDisabledOverTheWire) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 3;
  svc::Service service(svc::ServiceOptions{1, 8});
  wire::Server server(service, wire::ServerOptions{});
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  for (const std::string verb : {"metricsz", "statusz", "tracez"}) {
    EXPECT_EQ(client.call(verb),
              "{\"admin\":\"" + verb +
                  "\",\"error\":\"observability disabled (CLOSFAIR_OBS=OFF)\"}");
  }
  // Data requests still work, interleaved after the scrapes.
  EXPECT_NE(client.call(spec.to_json().dump()).find("\"cached\":false"),
            std::string::npos);
  client.close();
  server.drain();
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

#endif  // CLOSFAIR_OBS_ENABLED
