// Tests for closfair::obs — counter aggregation across threads, registry
// reset semantics, span nesting in the JSONL trace output, and the
// determinism of algorithmic counters across worker-thread counts.
//
// With CLOSFAIR_OBS=OFF the same binary compiles against the inline stubs
// and the tests instead prove the layer is inert: snapshots stay empty and
// tracing cannot be activated.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/exhaustive.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "wire/client.hpp"
#include "wire/connection.hpp"
#include "wire/framing.hpp"
#include "wire/server.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

[[maybe_unused]] std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                                             const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

FlowSet sample_flows(const ClosNetwork& net, std::size_t num_flows,
                     std::uint64_t seed) {
  Rng rng(seed);
  return instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, num_flows, rng));
}

}  // namespace

#if CLOSFAIR_OBS_ENABLED

TEST(Obs, CounterAggregatesAcrossEightThreads) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.eight_threads");

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (std::thread& t : pool) t.join();

  // All worker threads have exited: totals must have been folded into the
  // retired slots, not lost with the thread-local slabs.
  EXPECT_EQ(counter.total(), kThreads * kAddsPerThread);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.eight_threads"),
            kThreads * kAddsPerThread);
}

TEST(Obs, CounterReferenceIsStableAndFindOrCreate) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& a = registry.counter("test.stable");
  obs::Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.total(), 7u);
}

TEST(Obs, GaugeLastWriteWins) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Gauge& gauge = registry.gauge("test.gauge");
  gauge.set(42);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.add(10);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(Obs, HistogramTracksCountMinMax) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Histogram& hist = registry.histogram("test.hist");
  hist.record_ns(100);
  hist.record_ns(7);
  hist.record_ns(5000);
  EXPECT_EQ(hist.count(), 3u);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  bool found = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name != "test.hist") continue;
    found = true;
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.total_ns, 5107u);
    EXPECT_EQ(h.min_ns, 7u);
    EXPECT_EQ(h.max_ns, 5000u);
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t b : h.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, 3u);
  }
  EXPECT_TRUE(found);
}

TEST(Obs, ResetZeroesEverythingButKeepsReferencesValid) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.reset");
  obs::Gauge& gauge = registry.gauge("test.reset_gauge");
  obs::Histogram& hist = registry.histogram("test.reset_hist");
  counter.add(9);
  gauge.set(5);
  hist.record_ns(123);

  registry.reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(counter_value(registry.snapshot(), "test.reset"), 0u);

  // A reset must not invalidate previously returned references.
  counter.add(2);
  EXPECT_EQ(counter.total(), 2u);
}

TEST(Obs, ResetAlsoClearsRetiredCounts) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("test.retired_reset");
  std::thread([&counter] { counter.add(1000); }).join();
  EXPECT_EQ(counter.total(), 1000u);
  registry.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(Obs, SnapshotIsNameSorted) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.counter("test.zzz").add(1);
  registry.counter("test.aaa").add(1);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

namespace {

// Extract the numeric value following `"key":` in a JSON line. The trace
// writer emits flat one-line objects, so plain string scanning suffices.
double json_number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing " << key << " in: " << line;
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

void spin_for_ns(std::uint64_t ns) {
  const std::uint64_t start = obs::now_ns();
  while (obs::now_ns() - start < ns) {
  }
}

}  // namespace

TEST(ObsTrace, NestedSpansEmitOrderedJsonlEvents) {
  obs::Registry::instance().reset();
  const std::string path = "test_obs_trace.jsonl";
  ASSERT_TRUE(obs::start_trace(path));
  EXPECT_TRUE(obs::trace_active());
  // A second session cannot start while one is active.
  EXPECT_FALSE(obs::start_trace("test_obs_trace_second.jsonl"));

  {
    OBS_SPAN("test.outer");
    spin_for_ns(200000);
    {
      OBS_SPAN("test.inner");
      spin_for_ns(200000);
    }
    spin_for_ns(200000);
  }
  obs::stop_trace();
  EXPECT_FALSE(obs::trace_active());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string inner_line;
  std::string outer_line;
  std::size_t inner_index = 0;
  std::size_t outer_index = 0;
  std::size_t index = 0;
  while (std::getline(in, line)) {
    if (line.find("\"test.inner\"") != std::string::npos) {
      inner_line = line;
      inner_index = index;
    }
    if (line.find("\"test.outer\"") != std::string::npos) {
      outer_line = line;
      outer_index = index;
    }
    ++index;
  }
  ASSERT_FALSE(inner_line.empty());
  ASSERT_FALSE(outer_line.empty());

  // Spans complete inner-first, and a thread's ring preserves completion
  // order, so the inner event must precede the outer one in the file.
  EXPECT_LT(inner_index, outer_index);

  // Chrome-trace complete events with microsecond timestamps.
  EXPECT_NE(inner_line.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(outer_line.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(inner_line.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(inner_line.find("\"tid\":"), std::string::npos);

  const double inner_ts = json_number_field(inner_line, "ts");
  const double inner_dur = json_number_field(inner_line, "dur");
  const double outer_ts = json_number_field(outer_line, "ts");
  const double outer_dur = json_number_field(outer_line, "dur");
  // Nesting: the inner span lies strictly inside the outer interval.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  EXPECT_GE(inner_dur, 200000.0 / 1000.0);  // at least the 200 us spin
  EXPECT_GE(outer_dur, 3 * 200000.0 / 1000.0);

  // The span histograms recorded regardless of the sink.
  EXPECT_GE(obs::Registry::instance().histogram("test.inner").count(), 1u);
  EXPECT_GE(obs::Registry::instance().histogram("test.outer").count(), 1u);

  std::remove(path.c_str());
}

TEST(ObsTrace, SpansRecordHistogramsWithoutActiveSession) {
  obs::Registry::instance().reset();
  ASSERT_FALSE(obs::trace_active());
  {
    OBS_SPAN("test.no_sink");
    spin_for_ns(1000);
  }
  EXPECT_EQ(obs::Registry::instance().histogram("test.no_sink").count(), 1u);
}

// The acceptance bar of this layer: algorithmic counters must not depend on
// how many worker threads ran the search. Every thread count evaluates the
// same canonical candidate set (no early stop is configured), so per-call
// water-fill work aggregates to identical totals.
TEST(ObsDeterminism, AlgorithmicCountersInvariantAcrossThreadCounts) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 6, 77);

  const char* const kAlgorithmic[] = {
      "waterfill.calls",          "waterfill.rounds",
      "waterfill.saturated_links", "waterfill.links_touched",
      "search.candidates",        "search.routings_covered",
  };

  std::map<std::string, std::uint64_t> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    obs::Registry::instance().reset();
    ExhaustiveOptions options;
    options.num_threads = threads;
    const auto result = lex_max_min_exhaustive(net, flows, options);
    ASSERT_GT(result.waterfill_invocations, 0u);

    const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
    for (const char* name : kAlgorithmic) {
      const std::uint64_t value = counter_value(snapshot, name);
      if (threads == 1) {
        reference[name] = value;
        EXPECT_GT(value, 0u) << name;
      } else {
        EXPECT_EQ(value, reference[name]) << name << " at " << threads << " threads";
      }
    }
    // Sanity: the counter mirrors the engine's own statistic.
    EXPECT_EQ(counter_value(snapshot, "search.candidates"),
              result.waterfill_invocations);
  }
}

TEST(ObsDeterminism, SearchCountersMatchEngineStats) {
  obs::Registry::instance().reset();
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 5, 11);
  const auto result = lex_max_min_exhaustive(net, flows);

  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_value(snapshot, "search.candidates"), result.waterfill_invocations);
  EXPECT_EQ(counter_value(snapshot, "search.routings_covered"),
            result.routings_evaluated);
  EXPECT_EQ(counter_value(snapshot, "search.runs"), 1u);
  EXPECT_EQ(counter_value(snapshot, "waterfill.calls"), result.waterfill_invocations);
}

#else  // !CLOSFAIR_OBS_ENABLED

// OBS=OFF: instrumented code must leave no trace. The stubs return empty
// snapshots and tracing cannot activate.
TEST(ObsDisabled, SnapshotStaysEmptyAfterInstrumentedRun) {
  EXPECT_FALSE(obs::kEnabled);
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = sample_flows(net, 5, 11);
  const auto result = lex_max_min_exhaustive(net, flows);
  EXPECT_GT(result.waterfill_invocations, 0u);
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

// The scenario service is instrumented throughout (svc.requests,
// svc.cache_hits, svc.queue_depth, spans); under OBS=OFF all of it must
// compile to the inert stubs — a full batch leaves the registry empty.
TEST(ObsDisabled, ServiceBatchLeavesNoMetrics) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 3;
  svc::Service service(svc::ServiceOptions{2, 8});
  const std::vector<svc::BatchEntry> entries =
      service.evaluate_batch({spec, spec});  // second entry: dedup path
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].ok());
  EXPECT_TRUE(entries[1].cached);
  EXPECT_TRUE(service.evaluate(spec).cached);  // cache-hit path
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

// The wire layer bumps wire.* counters/gauges on every code path — framing
// rejection, pipeline admission, server accept/drain. Under OBS=OFF a full
// socket round trip (plus the poisoned-decoder path) must leave the registry
// empty.
TEST(ObsDisabled, WireServerRoundTripLeavesNoMetrics) {
  // wire.oversized_frames path.
  wire::FrameDecoder decoder(/*max_frame_bytes=*/8);
  const char bad_header[4] = {0x7f, 0, 0, 0};
  EXPECT_THROW(decoder.feed(bad_header, 4), wire::WireError);

  // wire.requests / wire.dedup_hits / wire.overload_sheds / wire.responses
  // plus the server-side conns/queue gauges, over a real socket.
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 3;
  svc::Service service(svc::ServiceOptions{2, 8});
  wire::Server server(service, wire::ServerOptions{});
  server.start();
  wire::Client client;
  client.connect("127.0.0.1", server.port());
  const std::string line = spec.to_json().dump();
  EXPECT_NE(client.call(line).find("\"cached\":false"), std::string::npos);
  EXPECT_NE(client.call(line).find("\"cached\":true"), std::string::npos);
  client.close();
  server.drain();
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

TEST(ObsDisabled, TraceCannotActivate) {
  EXPECT_FALSE(obs::start_trace("unused.jsonl"));
  EXPECT_FALSE(obs::trace_active());
  obs::stop_trace();
  std::ifstream in("unused.jsonl");
  EXPECT_FALSE(in.good());
}

TEST(ObsDisabled, MacrosAreInert) {
  std::uint64_t tally = 0;
  OBS_COUNTER_ADD("test.off", ++tally);  // unevaluated operand: no side effect
  EXPECT_EQ(tally, 0u);
  OBS_COUNTER_INC("test.off");
  OBS_GAUGE_SET("test.off_gauge", 3);
  OBS_SPAN("test.off_span");
  EXPECT_TRUE(obs::Registry::instance().snapshot().empty());
}

#endif  // CLOSFAIR_OBS_ENABLED
