#include "sim/rate_control.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Rcp, SingleBottleneckEqualShares) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2}, FlowSpec{1, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result = rcp_rate_control(ms.topology(), flows, routing);
  EXPECT_TRUE(result.converged);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(result.rates.rate(f), 1.0 / 3, 1e-6);
  }
}

TEST(Rcp, ConvergesToExample23MacroAllocation) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
           FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result = rcp_rate_control(ms.topology(), flows, routing);
  EXPECT_TRUE(result.converged);
  const double expected[] = {1.0 / 3, 1.0 / 3, 1.0 / 3, 2.0 / 3, 2.0 / 3, 1.0};
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(result.rates.rate(f), expected[f], 1e-6) << "flow " << f;
  }
}

TEST(Rcp, ConvergenceIsFast) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{2, 1, 2, 1}});
  const auto result = rcp_rate_control(ms.topology(), flows, macro_routing(ms, flows));
  EXPECT_TRUE(result.converged);
  // Levels-of-bottleneck many rounds plus slack, not hundreds.
  EXPECT_LE(result.iterations, 20u);
}

TEST(Rcp, ThrowsWithoutBoundedLink) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_unbounded_link(a, b);
  const FlowSet flows = {Flow{a, b}};
  const Routing routing{std::vector<Path>{{0}}};
  EXPECT_THROW(rcp_rate_control(topo, flows, routing), ContractViolation);
}

// The premise of the paper's model, validated dynamically: distributed
// per-link fair-share control converges to the water-filling allocation on
// random Clos instances and routings.
class RcpMatchesWaterfill : public ::testing::TestWithParam<int> {};

TEST_P(RcpMatchesWaterfill, Converges) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 3);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const std::size_t count = 1 + rng.next_below(20);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));

  const auto rcp = rcp_rate_control(net.topology(), flows, routing);
  ASSERT_TRUE(rcp.converged);
  const auto oracle = max_min_fair<double>(net.topology(), flows, routing);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(rcp.rates.rate(f), oracle.rate(f), 1e-6) << "flow " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RcpMatchesWaterfill, ::testing::Range(0, 30));

// The advertised-share estimate must make converged RCP rates land on the
// exact water-fill levels, not above them: a historical fallback term that
// re-added a "largest flow" candidate over-advertised on ties.
TEST(Rcp, AdvertisedShareConvergesToExactWaterfillLevels) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  // Three equal flows through one capacity-1 link: the only fixed point of a
  // correct advertised share is exactly c/3 each — an over-advertising share
  // would admit a fixed point above it.
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2}, FlowSpec{1, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto rcp = rcp_rate_control(ms.topology(), flows, routing);
  ASSERT_TRUE(rcp.converged);
  const auto oracle = max_min_fair<Rational>(ms.topology(), flows, routing);
  double sum = 0.0;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(rcp.rates.rate(f), oracle.rate(f).to_double(), 1e-9);
    sum += rcp.rates.rate(f);
  }
  // Never over capacity: the tied-largest over-advertising bug showed up as
  // a converged sum above the bottleneck capacity.
  EXPECT_LE(sum, 1.0 + 1e-9);
}

// Regression for the workload self-flow bug: a flow whose source and
// destination are the same server enters the network as an empty/unbounded
// path and trips the "no bounded link" contract — rate control cannot
// converge for it. The generators must therefore never emit one.
TEST(Rcp, SelfFlowsWouldCrashAndGeneratorsAvoidThem) {
  // (a) A self-flow modeled faithfully (host-local, no bounded link) crashes.
  Topology topo;
  const NodeId host = topo.add_node("host");
  const NodeId sw = topo.add_node("sw");
  topo.add_unbounded_link(host, sw);
  const FlowSet loopback = {Flow{host, host}};
  const Routing empty_path{std::vector<Path>{{}}};
  EXPECT_THROW(rcp_rate_control(topo, loopback, empty_path), ContractViolation);

  // (b) The fixed generators feed RCP workloads that complete. Seed 0 on
  // this fabric produced self-flows before the fix.
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(0);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 16, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  const auto rcp = rcp_rate_control(net.topology(), flows, routing);
  EXPECT_TRUE(rcp.converged);
}

TEST(Rcp, TransientFailureReconvergesToDegradedWaterfill) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2}, FlowSpec{2, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);

  // Halve the source link of flows 0 and 1 mid-run.
  const LinkId src_link = routing.path(0).front();
  RcpParams params;
  params.failures.push_back(LinkFailureEvent{25, src_link, 0.5});
  const auto rcp = rcp_rate_control(ms.topology(), flows, routing, params);
  ASSERT_TRUE(rcp.converged);
  EXPECT_GT(rcp.recovery_rounds, 0u);
  EXPECT_GT(rcp.iterations, 25u);  // convergence never declared before the event
  EXPECT_NEAR(rcp.rates.rate(0), 0.25, 1e-6);
  EXPECT_NEAR(rcp.rates.rate(1), 0.25, 1e-6);
  EXPECT_NEAR(rcp.rates.rate(2), 1.0, 1e-6);
}

TEST(Rcp, LinkDeathCollapsesItsFlowsToZero) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{2, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  RcpParams params;
  params.failures.push_back(LinkFailureEvent{10, routing.path(0).front(), 0.0});
  const auto rcp = rcp_rate_control(ms.topology(), flows, routing, params);
  ASSERT_TRUE(rcp.converged);
  EXPECT_NEAR(rcp.rates.rate(0), 0.0, 1e-9);  // dead link, not a crash
  EXPECT_NEAR(rcp.rates.rate(1), 1.0, 1e-6);
}

TEST(Rcp, MultipleFailureEventsComposeMultiplicatively) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}});
  const Routing routing = macro_routing(ms, flows);
  RcpParams params;
  const LinkId link = routing.path(0).front();
  params.failures.push_back(LinkFailureEvent{10, link, 0.5});
  params.failures.push_back(LinkFailureEvent{30, link, 0.5});
  const auto rcp = rcp_rate_control(ms.topology(), flows, routing, params);
  ASSERT_TRUE(rcp.converged);
  EXPECT_NEAR(rcp.rates.rate(0), 0.25, 1e-6);  // 1 * 0.5 * 0.5
}

TEST(Rcp, FailureEventValidation) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}});
  const Routing routing = macro_routing(ms, flows);
  const LinkId link = routing.path(0).front();

  RcpParams late;
  late.failures.push_back(LinkFailureEvent{10'000, link, 0.5});
  EXPECT_THROW(rcp_rate_control(ms.topology(), flows, routing, late), ContractViolation);

  RcpParams reviving;
  reviving.failures.push_back(LinkFailureEvent{5, link, 1.5});
  EXPECT_THROW(rcp_rate_control(ms.topology(), flows, routing, reviving),
               ContractViolation);

  RcpParams bogus_link;
  bogus_link.failures.push_back(LinkFailureEvent{5, LinkId{9999}, 0.5});
  EXPECT_THROW(rcp_rate_control(ms.topology(), flows, routing, bogus_link),
               ContractViolation);
}

TEST(Aimd, SingleFlowOscillatesNearCapacity) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result = aimd_rate_control(ms.topology(), flows, routing);
  // Sawtooth between ~0.5 and 1.0: the time average sits around 0.75.
  EXPECT_GT(result.rates.rate(0), 0.6);
  EXPECT_LT(result.rates.rate(0), 1.0);
}

TEST(Aimd, EqualSharesOnSharedBottleneck) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result = aimd_rate_control(ms.topology(), flows, routing);
  // Synchronized AIMD keeps equal flows equal.
  EXPECT_NEAR(result.rates.rate(0), result.rates.rate(1), 1e-9);
  EXPECT_GT(result.rates.rate(0), 0.3);
  EXPECT_LT(result.rates.rate(0), 0.5 + 0.01);
}

TEST(Aimd, TracksMaxMinOrdering) {
  // AIMD doesn't hit max-min exactly, but the relative order of rates
  // (which flow is more constrained) must match the fair allocation.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2}, FlowSpec{1, 1, 4, 1},
           FlowSpec{2, 1, 3, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto aimd = aimd_rate_control(ms.topology(), flows, routing);
  // Flow 3 shares only a destination with flow 0: it should end up faster
  // than the three source-limited flows (max-min gives it 2/3 vs 1/3).
  EXPECT_GT(aimd.rates.rate(3), aimd.rates.rate(0));
  EXPECT_GT(aimd.rates.rate(3), aimd.rates.rate(1));
  EXPECT_GT(aimd.rates.rate(3), aimd.rates.rate(2));
}

TEST(Aimd, ParameterValidation) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = macro_routing(ms, flows);
  AimdParams params;
  params.average_window = 0;
  EXPECT_THROW(aimd_rate_control(ms.topology(), flows, routing, params),
               ContractViolation);
  params.average_window = 10;
  params.rounds = 5;
  EXPECT_THROW(aimd_rate_control(ms.topology(), flows, routing, params),
               ContractViolation);
}

}  // namespace
}  // namespace closfair
