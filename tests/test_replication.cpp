#include "routing/replication.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "flow/allocation.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Replication, SingleFlowAlwaysFeasible) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  const auto result = find_feasible_routing(net, flows, {Rational{1}});
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.routing.has_value());
}

TEST(Replication, WitnessRoutingIsActuallyFeasible) {
  const ClosNetwork net = ClosNetwork::paper(2);
  // Seed chosen so the (self-flow-free) workload is feasible at rate 1/4.
  Rng rng(4);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 10, rng));
  const std::vector<Rational> rates(flows.size(), Rational{1, 4});
  const auto result = find_feasible_routing(net, flows, rates);
  ASSERT_TRUE(result.feasible);
  const Routing routing = expand_routing(net, flows, *result.routing);
  EXPECT_TRUE(is_feasible(net.topology(), routing, Allocation<Rational>(rates)));
}

TEST(Replication, EdgeOversubscriptionFailsFast) {
  // Two rate-1 flows from the same source violate the source link before
  // any routing search.
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  const auto result = find_feasible_routing(net, flows, {Rational{1}, Rational{1}});
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.nodes_explored, 0u);
}

TEST(Replication, InsideCapacityForcesFailure) {
  // n+1 rate-1 flows from the same ToR to distinct servers of another ToR:
  // the n uplinks cannot carry n+1 units.
  const int n = 2;
  const ClosNetwork net = ClosNetwork::paper(n);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2},
                                          FlowSpec{2, 1, 3, 1}});
  // Third flow shares t_3^1 — make rates small enough for edge links but too
  // chunky for uplinks: 1, 1, 1/2 with t_3^1 receiving 1 + 1/2 -> edge fails.
  {
    const auto r =
        find_feasible_routing(net, flows, {Rational{1}, Rational{1}, Rational{1, 2}});
    EXPECT_FALSE(r.feasible);
  }
}

TEST(Replication, Example41MacroRatesInfeasibleInC3) {
  // Theorem 4.2's heart, by exhaustive search: the macro-switch max-min
  // rates of the adversarial collection admit NO feasible routing in C_3.
  const AdversarialInstance inst = theorem_4_2_instance(3);
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = instantiate(net, inst.flows);

  // First: the claimed macro rates are indeed the macro max-min allocation.
  const MacroSwitch ms = MacroSwitch::paper(3);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
  EXPECT_EQ(macro.rates(), inst.macro_rates);

  const auto result = find_feasible_routing(net, flows, inst.macro_rates);
  EXPECT_FALSE(result.feasible);
}

TEST(Replication, Example41MinusType3IsFeasible) {
  // Dropping the type 3 flow, the remaining macro rates route fine (the
  // construction of Claim 4.5 exhibits one way).
  const AdversarialInstance inst = theorem_4_2_instance(3);
  const ClosNetwork net = ClosNetwork::paper(3);
  FlowCollection specs = inst.flows;
  std::vector<Rational> rates = inst.macro_rates;
  specs.pop_back();  // remove type 3 (last by construction)
  rates.pop_back();
  const FlowSet flows = instantiate(net, specs);
  const auto result = find_feasible_routing(net, flows, rates);
  EXPECT_TRUE(result.feasible);
}

TEST(Replication, Theorem42InfeasibleForLargerN) {
  // n = 5 is out of reach for exhaustive infeasibility proofs (the type 1
  // placement space alone is ~120^5); n = 4 completes in seconds.
  for (int n : {4}) {
    const AdversarialInstance inst = theorem_4_2_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto result = find_feasible_routing(net, flows, inst.macro_rates);
    EXPECT_FALSE(result.feasible) << "n=" << n;
  }
}

TEST(Replication, ZeroRatesRouteAnywhere) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 1}});
  const auto result = find_feasible_routing(net, flows, {Rational{1}, Rational{0}});
  EXPECT_TRUE(result.feasible);
}

TEST(Replication, NegativeRateThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  EXPECT_THROW(find_feasible_routing(net, flows, {Rational{-1}}), ContractViolation);
  EXPECT_THROW(find_feasible_routing(net, flows, {}), ContractViolation);
}

TEST(Replication, SymmetryBreakingPreservesAnswer) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 8, rng));
    std::vector<Rational> rates;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      rates.emplace_back(1, rng.next_int(1, 3));
    }
    ReplicationOptions with_sym;
    ReplicationOptions without_sym;
    without_sym.break_symmetry = false;
    const auto a = find_feasible_routing(net, flows, rates, with_sym);
    const auto b = find_feasible_routing(net, flows, rates, without_sym);
    EXPECT_EQ(a.feasible, b.feasible);
  }
}

// Water-fill rates for a routing are replicable by construction (that very
// routing); the searcher must agree.
class ReplicationRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationRoundTrip, WaterfillRatesAreFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 241 + 11);
  const ClosNetwork net = ClosNetwork::paper(2);
  const std::size_t count = 1 + rng.next_below(8);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
  MiddleAssignment middles(flows.size());
  for (auto& m : middles) m = static_cast<int>(rng.next_below(2)) + 1;
  const auto alloc = max_min_fair<Rational>(net, flows, middles);
  const auto result = find_feasible_routing(net, flows, alloc.rates());
  EXPECT_TRUE(result.feasible);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ReplicationRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace closfair
