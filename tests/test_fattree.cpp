#include "net/fattree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fairness/waterfill.hpp"
#include "flow/routing.hpp"

namespace closfair {
namespace {

TEST(FatTree, K4Dimensions) {
  const FatTree ft(4);
  EXPECT_EQ(ft.num_pods(), 4);
  EXPECT_EQ(ft.edges_per_pod(), 2);
  EXPECT_EQ(ft.servers_per_edge(), 2);
  EXPECT_EQ(ft.num_cores(), 4);
  EXPECT_EQ(ft.num_servers(), 16);
  EXPECT_EQ(ft.num_edge_switches(), 8);
  // Nodes: 8 edge + 8 agg + 4 core + 2*16 servers.
  EXPECT_EQ(ft.topology().num_nodes(), 8u + 8u + 4u + 32u);
  // Links: 2*16 server links + 2*(4 pods * 2 * 2) pod links + 2*(4*2*2) core.
  EXPECT_EQ(ft.topology().num_links(), 32u + 32u + 32u);
}

TEST(FatTree, RejectsOddOrTinyK) {
  EXPECT_THROW(FatTree(3), ContractViolation);
  EXPECT_THROW(FatTree(0), ContractViolation);
  EXPECT_NO_THROW(FatTree(2));
}

TEST(FatTree, CoordRoundTrip) {
  const FatTree ft(4);
  for (int p = 1; p <= 4; ++p) {
    for (int e = 1; e <= 2; ++e) {
      for (int j = 1; j <= 2; ++j) {
        const auto s = ft.source_coord(ft.source(p, e, j));
        EXPECT_EQ(s.pod, p);
        EXPECT_EQ(s.edge, e);
        EXPECT_EQ(s.server, j);
        const auto t = ft.dest_coord(ft.destination(p, e, j));
        EXPECT_EQ(t.pod, p);
        EXPECT_EQ(t.edge, e);
        EXPECT_EQ(t.server, j);
      }
    }
  }
  EXPECT_THROW(ft.source(5, 1, 1), ContractViolation);
  EXPECT_THROW(ft.source(1, 3, 1), ContractViolation);
  EXPECT_THROW(ft.source_coord(ft.destination(1, 1, 1)), ContractViolation);
}

TEST(FatTree, EdgeIndexIsPodMajor) {
  const FatTree ft(4);
  EXPECT_EQ(ft.edge_index(1, 1), 1);
  EXPECT_EQ(ft.edge_index(1, 2), 2);
  EXPECT_EQ(ft.edge_index(2, 1), 3);
  EXPECT_EQ(ft.edge_index(4, 2), 8);
}

TEST(FatTree, PathCountsByLocality) {
  const FatTree ft(4);
  // Same edge switch: 1 path of 2 links.
  {
    const auto paths = ft.paths(ft.source(1, 1, 1), ft.destination(1, 1, 2));
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].size(), 2u);
  }
  // Same pod, different edge: k/2 = 2 paths of 4 links.
  {
    const auto paths = ft.paths(ft.source(1, 1, 1), ft.destination(1, 2, 1));
    ASSERT_EQ(paths.size(), 2u);
    for (const auto& p : paths) EXPECT_EQ(p.size(), 4u);
  }
  // Cross-pod: (k/2)^2 = 4 paths of 6 links.
  {
    const auto paths = ft.paths(ft.source(1, 1, 1), ft.destination(3, 2, 2));
    ASSERT_EQ(paths.size(), 4u);
    for (const auto& p : paths) EXPECT_EQ(p.size(), 6u);
  }
}

TEST(FatTree, AllPathsAreValidWalks) {
  const FatTree ft(4);
  const NodeId src = ft.source(2, 1, 2);
  for (const NodeId dst : {ft.destination(2, 1, 1), ft.destination(2, 2, 1),
                           ft.destination(4, 1, 1)}) {
    for (const Path& p : ft.paths(src, dst)) {
      EXPECT_TRUE(ft.topology().is_path(p, src, dst))
          << ft.topology().describe_path(p);
    }
  }
}

TEST(FatTree, CrossPodPathsAreCoreDisjoint) {
  const FatTree ft(4);
  const auto paths = ft.paths(ft.source(1, 1, 1), ft.destination(2, 1, 1));
  // The 4 cross-pod paths traverse 4 distinct core switches.
  std::set<LinkId> core_hops;
  for (const Path& p : paths) core_hops.insert(p[2]);  // agg -> core link
  EXPECT_EQ(core_hops.size(), paths.size());
}

TEST(FatTree, WaterfillWorksOnFatTreePaths) {
  // Two flows sharing a source edge-switch uplink to different pods: the
  // shared server link halves them; distinct paths keep the rest clean.
  const FatTree ft(4);
  const NodeId s1 = ft.source(1, 1, 1);
  const NodeId s2 = ft.source(1, 1, 2);
  const FlowSet flows = {Flow{s1, ft.destination(3, 1, 1)},
                         Flow{s2, ft.destination(4, 1, 1)}};
  const auto p1 = ft.paths(flows[0].src, flows[0].dst);
  const auto p2 = ft.paths(flows[1].src, flows[1].dst);
  // Same agg position but different cores: only the edge->agg uplink is
  // shared, capacity 1 across two flows.
  const Routing routing{std::vector<Path>{p1[0], p2[1]}};
  routing.validate(ft.topology(), flows);
  const auto alloc = max_min_fair<Rational>(ft.topology(), flows, routing);
  EXPECT_EQ(alloc.rate(0), Rational(1, 2));
  EXPECT_EQ(alloc.rate(1), Rational(1, 2));

  // Disjoint agg positions: full rate for both.
  const Routing disjoint{std::vector<Path>{p1[0], p2[3]}};
  const auto alloc2 = max_min_fair<Rational>(ft.topology(), flows, disjoint);
  EXPECT_EQ(alloc2.rate(0), Rational(1));
  EXPECT_EQ(alloc2.rate(1), Rational(1));
}

TEST(FatTree, FractionalCapacity) {
  const FatTree ft(2, Rational{1, 2});
  const auto paths = ft.paths(ft.source(1, 1, 1), ft.destination(2, 1, 1));
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(ft.topology().link(paths[0][0]).capacity, Rational(1, 2));
}

}  // namespace
}  // namespace closfair
