#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <unordered_set>

namespace closfair {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
}

TEST(Rational, IntegerConstruction) {
  Rational r{7};
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, ReducesToLowestTerms) {
  Rational r{6, 8};
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignToDenominator) {
  Rational r{3, -4};
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  EXPECT_TRUE(r.is_negative());

  Rational s{-3, -4};
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, ZeroNumeratorNormalizes) {
  Rational r{0, 17};
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) + Rational(1, 2), Rational(1));
  EXPECT_EQ(Rational(-1, 2) + Rational(1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1) - Rational(1, 3), Rational(2, 3));
  EXPECT_EQ(Rational(1, 3) - Rational(1, 2), Rational(-1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 3) * Rational(3, 2), Rational(-1));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(Rational(1, 2) / Rational(-2), Rational(-1, 4));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, DivisionBySignedValueKeepsDenPositive) {
  const Rational r = Rational(1, 3) / Rational(-2, 5);
  EXPECT_GT(r.den(), 0);
  EXPECT_EQ(r, Rational(-5, 6));
}

TEST(Rational, UnaryMinus) {
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(-Rational(0), Rational(0));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_EQ(Rational(2, 4) <=> Rational(1, 2), std::strong_ordering::equal);
  EXPECT_GT(Rational(5, 3), Rational(3, 2));
}

TEST(Rational, OrderingNearInt64Extremes) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_LT(Rational(big - 1), Rational(big));
  EXPECT_LT(Rational(big, 3), Rational(big, 2));
}

TEST(Rational, MinMaxAbs) {
  EXPECT_EQ(min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
  EXPECT_EQ(abs(Rational(-3, 7)), Rational(3, 7));
  EXPECT_EQ(abs(Rational(3, 7)), Rational(3, 7));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).to_double(), -0.25);
}

TEST(Rational, Streaming) {
  std::ostringstream os;
  os << Rational(3, 7) << ' ' << Rational(5) << ' ' << Rational(-1, 2);
  EXPECT_EQ(os.str(), "3/7 5 -1/2");
  EXPECT_EQ(Rational(2, 6).to_string(), "1/3");
}

TEST(Rational, AdditionOverflowThrows) {
  const Rational huge{std::numeric_limits<std::int64_t>::max()};
  EXPECT_THROW(huge + huge, RationalOverflow);
}

TEST(Rational, MultiplicationOverflowThrows) {
  const Rational big{std::int64_t{1} << 40};
  EXPECT_THROW(big * big, RationalOverflow);
}

TEST(Rational, MultiplicationReducesBeforeNarrowing) {
  // (2^40 / 3) * (3 / 2^40) = 1 — exact despite huge cross products.
  const Rational a{std::int64_t{1} << 40, 3};
  const Rational b{3, std::int64_t{1} << 40};
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, NegationOfInt64MinThrows) {
  // -INT64_MIN is unrepresentable; normalization must detect it.
  EXPECT_THROW(Rational(std::numeric_limits<std::int64_t>::min(), -1), RationalOverflow);
}

TEST(Rational, HashConsistentWithEquality) {
  std::hash<Rational> h;
  EXPECT_EQ(h(Rational(2, 4)), h(Rational(1, 2)));
  std::unordered_set<Rational> set;
  set.insert(Rational(1, 3));
  set.insert(Rational(2, 6));
  EXPECT_EQ(set.size(), 1u);
}

TEST(Rational, CompoundAssignmentChains) {
  Rational r{1, 2};
  r += Rational{1, 3};
  r -= Rational{1, 6};
  r *= Rational{3};
  r /= Rational{2};
  EXPECT_EQ(r, Rational(1));
}

// Fuzz: every operation agrees with a reference implementation over
// __int128 fractions (never normalized, compared by cross-multiplication).
TEST(Rational, ArithmeticAgreesWithInt128Oracle) {
  struct Frac {
    __int128 num;
    __int128 den;  // > 0
  };
  auto equal = [](Frac a, const Rational& b) {
    return a.num * b.den() == static_cast<__int128>(b.num()) * a.den;
  };
  std::uint64_t seed = 99;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((seed >> 33) % 41) - 20;  // [-20, 20]
  };
  for (int trial = 0; trial < 3000; ++trial) {
    const std::int64_t an = next();
    const std::int64_t bn = next();
    std::int64_t ad = next();
    std::int64_t bd = next();
    if (ad == 0) ad = 7;
    if (bd == 0) bd = 3;
    const Rational a{an, ad};
    const Rational b{bn, bd};
    Frac fa{an, ad};
    Frac fb{bn, bd};
    if (fa.den < 0) {
      fa.num = -fa.num;
      fa.den = -fa.den;
    }
    if (fb.den < 0) {
      fb.num = -fb.num;
      fb.den = -fb.den;
    }
    ASSERT_TRUE(equal(Frac{fa.num * fb.den + fb.num * fa.den, fa.den * fb.den}, a + b));
    ASSERT_TRUE(equal(Frac{fa.num * fb.den - fb.num * fa.den, fa.den * fb.den}, a - b));
    ASSERT_TRUE(equal(Frac{fa.num * fb.num, fa.den * fb.den}, a * b));
    if (bn != 0) {
      Frac q{fa.num * fb.den, fa.den * fb.num};
      if (q.den < 0) {
        q.num = -q.num;
        q.den = -q.den;
      }
      ASSERT_TRUE(equal(q, a / b));
    }
    // Ordering agrees with cross-multiplication.
    ASSERT_EQ(a < b, fa.num * fb.den < fb.num * fa.den);
  }
}

// Water-filling produces sums of unit fractions; spot-check a telescoping
// identity exercised heavily by the allocation code.
TEST(Rational, HarmonicTelescoping) {
  Rational sum{0};
  for (int i = 1; i <= 50; ++i) {
    sum += Rational{1, static_cast<std::int64_t>(i) * (i + 1)};
  }
  EXPECT_EQ(sum, Rational(50, 51));
}

}  // namespace
}  // namespace closfair
