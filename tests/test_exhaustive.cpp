#include "routing/exhaustive.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "fault/fault.hpp"
#include "routing/local_search.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Exhaustive, SingleFlowTrivial) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  const auto result = lex_max_min_exhaustive(net, flows);
  EXPECT_EQ(result.alloc.rate(0), Rational(1));
  EXPECT_EQ(result.routings_evaluated, 1u);  // first flow pinned to M_1
}

TEST(Exhaustive, Example23LexOptimum) {
  // The paper's routing A is lex-max-min for Example 2.3: sorted vector
  // [1/3, 1/3, 1/3, 2/3, 2/3, 2/3]; verified here by full enumeration.
  const ClosNetwork net = ClosNetwork::paper(2);
  const Example23 ex = example_2_3();
  const FlowSet flows = instantiate(net, ex.instance.flows);
  const auto result = lex_max_min_exhaustive(net, flows);
  EXPECT_EQ(result.alloc.sorted(),
            (std::vector<Rational>{Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                   Rational{2, 3}, Rational{2, 3}, Rational{2, 3}}));
  // And the macro-switch sorted vector strictly dominates it (Theorem 4.2
  // flavor in miniature).
  const MacroSwitch ms = MacroSwitch::paper(2);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, ex.instance.flows));
  EXPECT_EQ(lex_compare(macro.sorted(), result.alloc.sorted()),
            std::strong_ordering::greater);
}

TEST(Exhaustive, Example23ThroughputOptimum) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const Example23 ex = example_2_3();
  const FlowSet flows = instantiate(net, ex.instance.flows);
  const auto result = throughput_max_min_exhaustive(net, flows);
  // Routing A already achieves throughput 3 = 3*(1/3) + 3*(2/3); exhaustive
  // search can do no better than 10/3 here.
  EXPECT_GE(result.alloc.throughput(), Rational(3));
  // Upper bound from §5: T^T-MmF <= T^MT; the maximum matching has size 4
  // (sources s_1^2, s_2^1, s_2^2, s_1^1 to distinct destinations).
  EXPECT_LE(result.alloc.throughput(), Rational(4));
}

TEST(Exhaustive, StopAtSortedShortCircuits) {
  // When the macro-switch vector is achievable, early exit triggers.
  const ClosNetwork net = ClosNetwork::paper(2);
  // A single permutation: all flows replicable at rate 1.
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2},
                                          FlowSpec{2, 1, 4, 1}, FlowSpec{2, 2, 4, 2}});
  ExhaustiveOptions options;
  options.stop_at_sorted = std::vector<Rational>(4, Rational{1});
  const auto result = lex_max_min_exhaustive(net, flows, options);
  EXPECT_EQ(result.alloc.sorted(), *options.stop_at_sorted);
  EXPECT_LT(result.routings_evaluated, 8u);  // stopped before the full 2^3
}

TEST(Exhaustive, MaxRoutingsGuardThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(1);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 30, rng));
  ExhaustiveOptions options;
  options.max_routings = 1000;
  EXPECT_THROW(lex_max_min_exhaustive(net, flows, options), ContractViolation);
}

TEST(Exhaustive, SymmetryPinMatchesUnpinned) {
  // Pinning flow 0 to M_1 must not change the optimal sorted vector.
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(17);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 7, rng));
  ExhaustiveOptions pinned;
  ExhaustiveOptions unpinned;
  unpinned.fix_first_flow = false;
  const auto a = lex_max_min_exhaustive(net, flows, pinned);
  const auto b = lex_max_min_exhaustive(net, flows, unpinned);
  EXPECT_EQ(a.alloc.sorted(), b.alloc.sorted());
  EXPECT_EQ(b.routings_evaluated, 2 * a.routings_evaluated);
}

TEST(Exhaustive, DeadUplinkDisablesFirstFlowPin) {
  // One dead uplink leaves both middles alive but capacity-asymmetric, so
  // neither the canonical quotient nor the fix_first_flow pin is sound: a
  // pinned odometer would lock flow 0 onto M_1's dead uplink and report a
  // starved sorted vector as the "exact" optimum. The engine must drop the
  // pin and enumerate flow 0 over the whole surviving pool.
  ClosNetwork net = ClosNetwork::paper(2);
  fault::FailureScenario nick;
  nick.derated_links.push_back(
      fault::LinkDeration{fault::LinkStage::kUplink, 1, 1, Rational{0}});
  fault::apply(net, nick);
  ASSERT_TRUE(fault::middle_alive(net, 1));
  ASSERT_FALSE(fault::surviving_middles_symmetric(net));

  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{2, 1, 4, 1}});
  ExhaustiveOptions pinned;  // fix_first_flow = true (default) must be ignored
  ExhaustiveOptions unpinned;
  unpinned.fix_first_flow = false;
  const auto a = lex_max_min_exhaustive(net, flows, pinned);
  const auto b = lex_max_min_exhaustive(net, flows, unpinned);
  // Flow 0 must route around the dead uplink via M_2: everyone at full rate.
  EXPECT_EQ(a.alloc.sorted(), (std::vector<Rational>{Rational{1}, Rational{1}}));
  EXPECT_EQ(a.alloc.sorted(), b.alloc.sorted());
  EXPECT_EQ(a.middles, b.middles);
  // With the pin dropped both runs cover the identical full 2^2 space (a
  // honored pin would have reported 2).
  EXPECT_EQ(a.routings_evaluated, 4u);
  EXPECT_EQ(b.routings_evaluated, 4u);

  // Throughput search over the same degraded fabric agrees.
  const auto t = throughput_max_min_exhaustive(net, flows, pinned);
  EXPECT_EQ(t.alloc.throughput(), Rational{2});
}

TEST(Exhaustive, ParallelMatchesSerial) {
  // The threaded search must return exactly the serial sorted vector (the
  // witness routing may differ across equal-vector optima).
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(404);
  for (int trial = 0; trial < 5; ++trial) {
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()},
                            2 + rng.next_below(7), rng));
    ExhaustiveOptions serial;
    ExhaustiveOptions parallel;
    parallel.num_threads = 4;
    const auto a = lex_max_min_exhaustive(net, flows, serial);
    const auto b = lex_max_min_exhaustive(net, flows, parallel);
    EXPECT_EQ(a.alloc.sorted(), b.alloc.sorted()) << "trial " << trial;
    // The parallel witness is itself a routing achieving that vector.
    EXPECT_EQ(max_min_fair<Rational>(net, flows, b.middles).sorted(), b.alloc.sorted());
  }
}

TEST(Exhaustive, ParallelEarlyExitStillOptimal) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2},
                                          FlowSpec{2, 1, 4, 1}, FlowSpec{2, 2, 4, 2}});
  ExhaustiveOptions options;
  options.num_threads = 2;
  options.stop_at_sorted = std::vector<Rational>(4, Rational{1});
  const auto result = lex_max_min_exhaustive(net, flows, options);
  EXPECT_EQ(result.alloc.sorted(), *options.stop_at_sorted);
}

TEST(Frontier, SingleFlowHasOnePoint) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  const auto frontier = throughput_fairness_frontier(net, flows);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].throughput, Rational(1));
  EXPECT_EQ(frontier[0].min_rate, Rational(1));
}

TEST(Frontier, EndpointsMatchTheTwoOptima) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const Example23 ex = example_2_3();
  const FlowSet flows = instantiate(net, ex.instance.flows);
  const auto frontier = throughput_fairness_frontier(net, flows);
  ASSERT_FALSE(frontier.empty());

  // Low-throughput end carries the best min rate = lex-max-min's min rate;
  // high-throughput end carries the throughput optimum.
  const auto lex = lex_max_min_exhaustive(net, flows);
  const auto tput = throughput_max_min_exhaustive(net, flows);
  EXPECT_EQ(frontier.front().min_rate, lex.alloc.sorted().front());
  EXPECT_EQ(frontier.back().throughput, tput.alloc.throughput());

  // Pareto structure: throughput strictly increases, min rate strictly
  // decreases along the frontier.
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i - 1].throughput, frontier[i].throughput);
    EXPECT_GT(frontier[i - 1].min_rate, frontier[i].min_rate);
  }
  // Witness middles actually achieve their points.
  for (const ParetoPoint& p : frontier) {
    const auto alloc = max_min_fair<Rational>(net, flows, p.middles);
    EXPECT_EQ(alloc.throughput(), p.throughput);
    EXPECT_EQ(alloc.sorted().front(), p.min_rate);
  }
}

TEST(Frontier, SingleGadgetHasNoTradeOff) {
  // One Example 3.3 gadget cannot be crushed (every routing yields the same
  // uniform allocation): the frontier collapses to a single point.
  const ClosNetwork net = ClosNetwork::paper(3);
  const AdversarialInstance inst = theorem_5_4_instance(3, 2);
  const auto frontier =
      throughput_fairness_frontier(net, instantiate(net, inst.flows));
  EXPECT_EQ(frontier.size(), 1u);
}

TEST(Frontier, StackedGadgetsStretchTheFrontier) {
  // Two stacked gadgets (n=5, k=2): the lex end keeps everyone at 1/3
  // (throughput 8/3) while sacrificing routings push throughput to >= 3 —
  // a genuine multi-point trade-off curve.
  const ClosNetwork net = ClosNetwork::paper(5);
  const AdversarialInstance inst = theorem_5_4_instance(5, 2);
  const auto frontier =
      throughput_fairness_frontier(net, instantiate(net, inst.flows));
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_EQ(frontier.front().min_rate, Rational(1, 3));
  EXPECT_GE(frontier.back().throughput, Rational(3));
  EXPECT_LT(frontier.back().min_rate, Rational(1, 3));
}

// Property: the local-search heuristic never beats the exhaustive optimum,
// and the exhaustive optimum never beats the macro-switch vector (§2.3).
class ExhaustiveSandwich : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveSandwich, HeuristicLeOptimumLeMacro) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 29);
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const std::size_t count = 2 + rng.next_below(7);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng);
  const FlowSet flows = instantiate(net, specs);

  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
  const auto exact = lex_max_min_exhaustive(net, flows);
  Rng rng2(GetParam());
  const auto heuristic = lex_max_min_multistart(net, flows, rng2, 3);

  EXPECT_NE(lex_compare(exact.alloc.sorted(), heuristic.alloc.sorted()),
            std::strong_ordering::less);
  EXPECT_NE(lex_compare(macro.sorted(), exact.alloc.sorted()),
            std::strong_ordering::less);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExhaustiveSandwich, ::testing::Range(0, 15));

// Property: throughput-max-min >= lex-max-min in throughput, and the
// throughput optimum is bounded by twice the macro max-min (Theorem 5.4).
class ThroughputSandwich : public ::testing::TestWithParam<int> {};

TEST_P(ThroughputSandwich, BoundsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 137 + 31);
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const std::size_t count = 2 + rng.next_below(7);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng);
  const FlowSet flows = instantiate(net, specs);

  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
  const auto lex = lex_max_min_exhaustive(net, flows);
  const auto tput = throughput_max_min_exhaustive(net, flows);

  EXPECT_GE(tput.alloc.throughput(), lex.alloc.throughput());
  // Theorem 5.4 upper bound: T^T-MmF <= 2 T^MmF.
  EXPECT_LE(tput.alloc.throughput(), Rational{2} * macro.throughput());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ThroughputSandwich, ::testing::Range(0, 15));

}  // namespace
}  // namespace closfair
