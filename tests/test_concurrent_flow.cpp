#include "lp/concurrent_flow.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "lp/splittable.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(ConcurrentFlow, SingleUnitFlowGetsLambdaOne) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  const auto r = max_concurrent_flow(net, flows, {Rational{1}});
  EXPECT_EQ(r.lambda, Rational(1));
}

TEST(ConcurrentFlow, PermutationDemandsFitExactly) {
  // Unit demands on a permutation saturate the edge links: lambda = 1.
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(3);
  const FlowCollection specs =
      random_permutation(Fabric{net.num_tors(), net.servers_per_tor()}, rng);
  const FlowSet flows = instantiate(net, specs);
  const std::vector<Rational> demands(flows.size(), Rational{1});
  const auto r = max_concurrent_flow(net, flows, demands);
  EXPECT_EQ(r.lambda, Rational(1));
}

TEST(ConcurrentFlow, IncastScalesInversely) {
  // k unit-demand flows into one server: the destination edge link forces
  // lambda = 1/k.
  const ClosNetwork net = ClosNetwork::paper(2);
  for (int k : {2, 3, 4}) {
    // Distinct sources (so source links never bind), one shared destination.
    FlowCollection specs;
    for (int c = 0; c < k; ++c) {
      specs.push_back(FlowSpec{1 + c % 2, 1 + c / 2, 3, 1});
    }
    const FlowSet flows = instantiate(net, specs);
    const auto r = max_concurrent_flow(net, flows, std::vector<Rational>(flows.size(),
                                                                         Rational{1}));
    EXPECT_EQ(r.lambda, Rational(1, k)) << "k=" << k;
  }
}

TEST(ConcurrentFlow, MacroMaxMinRatesHaveLambdaAtLeastOne) {
  // Demand satisfaction (§1): macro max-min rates are splittably routable,
  // so lambda >= 1 — on the very instance where unsplittable routing fails.
  const AdversarialInstance inst = theorem_4_2_instance(3);
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = instantiate(net, inst.flows);
  const auto r = max_concurrent_flow(net, flows, inst.macro_rates);
  EXPECT_GE(r.lambda, Rational(1));
}

TEST(ConcurrentFlow, WitnessSharesRouteLambdaTimesDemands) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(7);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 8, rng);
  const FlowSet flows = instantiate(net, specs);
  std::vector<Rational> demands;
  for (std::size_t f = 0; f < flows.size(); ++f) demands.emplace_back(1, rng.next_int(1, 3));

  const auto r = max_concurrent_flow(net, flows, demands);
  // Shares sum to lambda * demand per flow, and the fractional routing is
  // feasible (checked by the splittable module's independent verifier).
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    Rational total{0};
    for (const Rational& s : r.shares[f]) total += s;
    EXPECT_EQ(total, r.lambda * demands[f]);
  }
  EXPECT_TRUE(fractional_routing_feasible(net, flows, r.shares));
}

TEST(ConcurrentFlow, LambdaScalesWithCapacity) {
  // Halving every link halves lambda.
  const ClosNetwork full = ClosNetwork::paper(2);
  const ClosNetwork half(ClosNetwork::Params{2, 4, 2, Rational{1, 2}});
  const FlowCollection specs = {FlowSpec{1, 1, 3, 1}, FlowSpec{2, 2, 4, 2}};
  const std::vector<Rational> demands = {Rational{1}, Rational{1}};
  const auto r_full = max_concurrent_flow(full, instantiate(full, specs), demands);
  const auto r_half = max_concurrent_flow(half, instantiate(half, specs), demands);
  EXPECT_EQ(r_half.lambda * Rational{2}, r_full.lambda);
}

TEST(ConcurrentFlow, RejectsBadDemands) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  EXPECT_THROW(max_concurrent_flow(net, flows, {}), ContractViolation);
  EXPECT_THROW(max_concurrent_flow(net, flows, {Rational{-1}}), ContractViolation);
  EXPECT_THROW(max_concurrent_flow(net, flows, {Rational{0}}), ContractViolation);
}

}  // namespace
}  // namespace closfair
