#include "util/json.hpp"

#include <gtest/gtest.h>
#include <cmath>
#include <limits>

#include "core/adversarial.hpp"
#include "core/analysis.hpp"
#include "io/json_export.hpp"

namespace closfair {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json::number(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json::number(0.5).dump(), "0.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumberThrows) {
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()), ContractViolation);
  EXPECT_THROW(Json::number(std::nan("")), ContractViolation);
}

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string{"ctrl\x01"}), "ctrl\\u0001");
  EXPECT_EQ(Json::string("x\ny").dump(), "\"x\\ny\"");
}

TEST(Json, ArraysAndObjects) {
  Json arr = Json::array();
  arr.push_back(Json::number(std::int64_t{1}));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  EXPECT_EQ(arr.size(), 2u);

  Json obj = Json::object();
  obj.set("a", Json::number(std::int64_t{1}));
  obj.set("b", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[1,\"two\"]}");
  // Overwrite keeps position.
  obj.set("a", Json::number(std::int64_t{9}));
  EXPECT_EQ(obj.dump(), "{\"a\":9,\"b\":[1,\"two\"]}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json::null()), ContractViolation);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(Json::null()), ContractViolation);
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("x", Json::number(std::int64_t{1}));
  EXPECT_EQ(obj.dump(2), "{\n  \"x\": 1\n}");
}

// ------------------------------------------------------------------- parser

TEST(JsonParse, ScalarsAndNesting) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-1").as_double(), 0.25);
  const Json doc = Json::parse(R"({"a":[1,{"b":"x"}],"c":null})");
  EXPECT_EQ(doc.at("a").at(1).at("b").as_string(), "x");
  EXPECT_TRUE(doc.at("c").is_null());
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  try {
    Json::parse("{\"a\":1,}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos) << e.what();
  }
  EXPECT_THROW(Json::parse("[1,2] trailing"), JsonParseError);
  EXPECT_THROW(Json::parse(""), JsonParseError);
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  // U+1D11E (musical G clef) as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("𝄞")").as_string(), "\xF0\x9D\x84\x9E");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");
}

// json_escape must treat bytes >= 0x80 as opaque UTF-8 payload. A signed
// `char` promotes 0xC3 to a negative int, so a naive `c < 0x20` test would
// mangle every multi-byte sequence into \uFFxx escapes.
TEST(JsonParse, MultiByteUtf8PassesThroughUnescaped) {
  const std::string s = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9D\x84\x9E";  // é € 𝄞
  EXPECT_EQ(json_escape(s), s);
  EXPECT_EQ(Json::parse(Json::string(s).dump()).as_string(), s);
}

TEST(JsonParse, AllControlBytesRoundTrip) {
  std::string s;
  for (char c = 1; c < 0x20; ++c) s.push_back(c);
  s.push_back('\0');
  s.push_back('A');
  const std::string dumped = Json::string(s).dump();
  // Every byte below 0x20 must appear escaped, never raw.
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(dumped.find(std::string(1, c)), std::string::npos) << int(c);
  }
  EXPECT_EQ(Json::parse(dumped).as_string(), s);
  // Short escapes decode alongside \u00XX forms.
  EXPECT_EQ(Json::parse("\"\\b\\t\\n\\f\\r\"").as_string(),
            std::string("\b\t\n\f\r"));
}

TEST(JsonParse, DumpParseDumpIsAFixedPoint) {
  const std::string doc =
      R"({"s":"a bc","u":")" "\xC3\xA9" R"(","n":[1,-2.5,0],"o":{"k":true}})";
  const std::string once = Json::parse(doc).dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(JsonExport, AllocationRoundTripFields) {
  const Allocation<Rational> alloc({Rational{1, 3}, Rational{1}});
  const std::string out = to_json(alloc).dump();
  EXPECT_NE(out.find("\"rates\":[\"1/3\",\"1\"]"), std::string::npos);
  EXPECT_NE(out.find("\"throughput\":\"4/3\""), std::string::npos);
}

TEST(JsonExport, ComparisonContainsHeadlineNumbers) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const Comparison c = compare(net, ms, ex.instance.flows, ex.routing_a);
  const std::string out = to_json(c).dump();
  EXPECT_NE(out.find("\"t_maxmin\":\"10/3\""), std::string::npos);
  EXPECT_NE(out.find("\"lex_vs_macro\":\"less\""), std::string::npos);
  EXPECT_NE(out.find("\"min_rate_ratio\":"), std::string::npos);
}

}  // namespace
}  // namespace closfair
