#include "routing/lp_rounding.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(LpRounding, DeterministicWhenSharesAreIntegral) {
  // A permutation workload splits nothing: rounding must reproduce the
  // integral optimum exactly, every draw.
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(3);
  const FlowCollection specs =
      random_permutation(Fabric{net.num_tors(), net.servers_per_tor()}, rng);
  const auto splittable = splittable_max_min(net, ms, specs);
  const FlowSet flows = instantiate(net, specs);

  // Integral shares: each flow fully on one middle.
  for (const auto& shares : splittable.shares) {
    int used = 0;
    for (const Rational& s : shares) {
      if (!s.is_zero()) ++used;
    }
    EXPECT_LE(used, 1);
  }
  const MiddleAssignment middles = round_splittable(splittable, rng);
  const auto alloc = max_min_fair<Rational>(net, flows, middles);
  for (FlowIndex f = 0; f < flows.size(); ++f) EXPECT_EQ(alloc.rate(f), Rational(1));
}

TEST(LpRounding, MiddlesInRange) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const MacroSwitch ms = MacroSwitch::paper(3);
  Rng rng(5);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 20, rng);
  const auto splittable = splittable_max_min(net, ms, specs);
  for (int trial = 0; trial < 5; ++trial) {
    const MiddleAssignment middles = round_splittable(splittable, rng);
    ASSERT_EQ(middles.size(), specs.size());
    for (int m : middles) {
      EXPECT_GE(m, 1);
      EXPECT_LE(m, 3);
    }
  }
}

TEST(LpRounding, OnlySamplesMiddlesWithPositiveShare) {
  // Handcrafted shares: flow confined to middle 2.
  SplittableMaxMin splittable;
  splittable.rates = Allocation<Rational>({Rational{1, 2}});
  splittable.shares = {{Rational{0}, Rational{1, 2}, Rational{0}}};
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_EQ(round_splittable(splittable, rng)[0], 2);
  }
}

TEST(LpRounding, ZeroRateFlowsDefaultToMiddleOne) {
  SplittableMaxMin splittable;
  splittable.rates = Allocation<Rational>({Rational{0}});
  splittable.shares = {{Rational{0}, Rational{0}}};
  Rng rng(9);
  EXPECT_EQ(round_splittable(splittable, rng)[0], 1);
}

TEST(LpRounding, BestOfImprovesOrTies) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const auto splittable = splittable_max_min(net, ms, ex.instance.flows);
  const FlowSet flows = instantiate(net, ex.instance.flows);

  Rng rng1(11);
  const auto one = round_splittable_best_of(net, flows, splittable, rng1, 1);
  Rng rng2(11);
  const auto many = round_splittable_best_of(net, flows, splittable, rng2, 16);
  EXPECT_NE(lex_compare_sorted(many.alloc, one.alloc), std::strong_ordering::less);
  EXPECT_EQ(many.draws, 16u);
  // No unsplittable routing beats the macro vector.
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, ex.instance.flows));
  EXPECT_NE(lex_compare_sorted(many.alloc, macro), std::strong_ordering::greater);
}

TEST(LpRounding, RejectsBadArguments) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  SplittableMaxMin splittable;  // empty: size mismatch
  Rng rng(13);
  EXPECT_THROW(round_splittable_best_of(net, flows, splittable, rng), ContractViolation);
  SplittableMaxMin ok;
  ok.rates = Allocation<Rational>({Rational{1}});
  ok.shares = {{Rational{1}, Rational{0}}};
  EXPECT_THROW(round_splittable_best_of(net, flows, ok, rng, 0), ContractViolation);
}

}  // namespace
}  // namespace closfair
