// Tests for closfair::svc — scenario-spec parsing and canonicalization, the
// FNV content address, the LRU result cache with JSONL spill/reload, and the
// sharded batch service's determinism + equivalence-with-the-library
// contracts (docs/SERVICE.md).
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "io/text_format.hpp"
#include "obs/obs.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "svc/cache.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

svc::ScenarioSpec parse_spec(const std::string& text) {
  return svc::ScenarioSpec::from_json(Json::parse(text));
}

// ---------------------------------------------------------------- spec layer

TEST(SvcSpec, DefaultsAndPaperAliasShareOneCanonicalForm) {
  // Minimal spelling: defaults omitted everywhere.
  const svc::ScenarioSpec a = parse_spec(
      R"({"topology":{"kind":"clos","n":3},"workload":{"generator":"permutation"}})");
  // Fully spelled-out equivalent: explicit params matching C_3, explicit
  // defaults for routing/objective/seed.
  const svc::ScenarioSpec b = parse_spec(
      R"({"topology":{"kind":"clos","middles":3,"tors":6,"servers":3,"capacity":1},
          "workload":{"generator":"permutation","seed":1},
          "routing":{"policy":"greedy"},
          "objective":"maxmin"})");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.canonical(),
            R"({"topology":{"kind":"clos","n":3},"workload":{"generator":"permutation"}})");
}

TEST(SvcSpec, CanonicalIsAFixedPoint) {
  const svc::ScenarioSpec spec = parse_spec(
      R"({"topology":{"kind":"clos","middles":2,"tors":3,"servers":2,"capacity":"1/2"},
          "workload":{"generator":"zipf","count":12,"skew":1.3,"seed":9},
          "routing":{"policy":"lex_climb","max_moves":200},
          "objective":"maxmin_lp",
          "fault":{"worst_case_outage":1}})");
  const svc::ScenarioSpec reparsed = svc::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed.canonical(), spec.canonical());
  EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
}

TEST(SvcSpec, InlineInstanceNormalizesThroughTextFormat) {
  // Two identical flows spelled out coalesce to the x2 form, so both
  // spellings content-address identically.
  const svc::ScenarioSpec a = parse_spec(
      R"({"workload":{"instance":"clos n=2\nflow 1 1 -> 2 1\nflow 1 1 -> 2 1\n"},
          "routing":{"policy":"doom"}})");
  const svc::ScenarioSpec b = parse_spec(
      R"({"workload":{"instance":"clos n=2\nflow 1 1 -> 2 1 x2\n"},
          "routing":{"policy":"doom"}})");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.topology.params.num_middles, 2);
  EXPECT_EQ(a.topology.params.num_tors, 4);
}

TEST(SvcSpec, StrictParsingRejectsBadSpecs) {
  // Unknown key, anywhere.
  EXPECT_THROW(parse_spec(R"({"bogus":1})"), svc::SpecError);
  EXPECT_THROW(parse_spec(
                   R"({"workload":{"generator":"permutation","stride":2}})"),
               svc::SpecError);
  // Inline instance defines the topology; a topology group conflicts.
  EXPECT_THROW(parse_spec(
                   R"({"topology":{"kind":"clos","n":2},
                       "workload":{"instance":"clos n=2\nflow 1 1 -> 2 1\n"}})"),
               svc::SpecError);
  // Seed on an unseeded generator.
  EXPECT_THROW(parse_spec(
                   R"({"topology":{"kind":"clos","n":2},
                       "workload":{"generator":"all_to_all","seed":3}})"),
               svc::SpecError);
  // Unknown routing policy.
  EXPECT_THROW(parse_spec(
                   R"({"topology":{"kind":"clos","n":2},
                       "workload":{"generator":"permutation"},
                       "routing":{"policy":"magic"}})"),
               svc::SpecError);
  // reroute_dead without a start-based policy.
  EXPECT_THROW(parse_spec(
                   R"({"topology":{"kind":"clos","n":2},
                       "workload":{"generator":"permutation"},
                       "routing":{"policy":"ecmp","reroute_dead":true}})"),
               svc::SpecError);
  // Faults only make sense on a Clos fabric.
  EXPECT_THROW(parse_spec(
                   R"({"topology":{"kind":"macro","tors":4,"servers":2},
                       "workload":{"generator":"permutation"},
                       "fault":{"worst_case_outage":1}})"),
               svc::SpecError);
  // Malformed embedded instance text surfaces the text-format error.
  EXPECT_THROW(parse_spec(R"({"workload":{"instance":"clos n=2\nflow oops\n"}})"),
               svc::SpecError);
}

TEST(SvcSpec, Fnv1a64KnownVectors) {
  EXPECT_EQ(svc::fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(svc::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(svc::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(SvcSpec, ResultJsonRoundTrips) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 5;
  spec.routing.policy = "lex_climb";
  spec.routing.max_moves = 100;
  const svc::ScenarioResult result = svc::evaluate_scenario(spec);
  EXPECT_TRUE(result.routed);
  EXPECT_EQ(svc::ScenarioResult::from_json(result.to_json()), result);
}

// --------------------------------------------------------------- result cache

svc::ScenarioResult tiny_result(std::size_t num_flows) {
  svc::ScenarioResult r;
  r.num_flows = num_flows;
  r.macro_rates.assign(num_flows, Rational{1, 2});
  r.macro_throughput = Rational{static_cast<std::int64_t>(num_flows), 2};
  return r;
}

std::string seeded_spec_canonical(std::uint64_t seed) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  spec.workload.generator = "uniform";
  spec.workload.count = 4;
  spec.workload.seed = seed;
  return spec.canonical();
}

TEST(SvcCache, LruEvictsLeastRecentlyUsed) {
  svc::ResultCache cache(2);
  const std::string a = seeded_spec_canonical(1);
  const std::string b = seeded_spec_canonical(2);
  const std::string c = seeded_spec_canonical(3);
  cache.insert(a, tiny_result(1));
  cache.insert(b, tiny_result(2));
  EXPECT_TRUE(cache.lookup(a).has_value());  // refresh: b is now LRU
  cache.insert(c, tiny_result(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(b).has_value());
  ASSERT_TRUE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.lookup(a)->num_flows, 1u);
  EXPECT_TRUE(cache.lookup(c).has_value());
}

TEST(SvcCache, SpillAndReloadPreserveContentsAndRecency) {
  svc::ResultCache cache(4);
  cache.insert(seeded_spec_canonical(1), tiny_result(1));
  cache.insert(seeded_spec_canonical(2), tiny_result(2));
  cache.insert(seeded_spec_canonical(3), tiny_result(3));
  std::stringstream spill;
  cache.save(spill);

  svc::ResultCache reloaded(2);  // smaller: only the 2 most recent survive
  reloaded.load(spill);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_FALSE(reloaded.lookup(seeded_spec_canonical(1)).has_value());
  ASSERT_TRUE(reloaded.lookup(seeded_spec_canonical(2)).has_value());
  EXPECT_EQ(reloaded.lookup(seeded_spec_canonical(3))->num_flows, 3u);
}

TEST(SvcCache, LoadErrorsCarryLineNumbers) {
  // A malformed line *followed by more content* is real corruption — only a
  // torn final record is forgiven — and the error names the bad line.
  svc::ResultCache cache(4);
  std::stringstream one;
  cache.insert(seeded_spec_canonical(1), tiny_result(1));
  cache.save(one);
  std::stringstream two;
  svc::ResultCache other(4);
  other.insert(seeded_spec_canonical(2), tiny_result(2));
  other.save(two);
  std::stringstream bad(one.str() + "{not json\n" + two.str());
  svc::ResultCache target(4);
  try {
    target.load(bad);
    FAIL() << "expected a load error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("cache line 2"), std::string::npos) << e.what();
  }
}

TEST(SvcCache, TornTrailingRecordIsSkippedNotFatal) {
  // A crash mid-save() tears the last JSONL record. Reload must keep every
  // complete entry, skip the torn tail with a warning (and a
  // svc.cache_spill_skipped count), and not abort.
  svc::ResultCache cache(4);
  cache.insert(seeded_spec_canonical(1), tiny_result(1));
  cache.insert(seeded_spec_canonical(2), tiny_result(2));
  std::stringstream spill;
  cache.save(spill);
  const std::string full = spill.str();
  // Tear the final record in half (drop the last 20 bytes plus the newline).
  const std::string torn = full.substr(0, full.size() - 21) + "\n";

  if (obs::kEnabled) obs::Registry::instance().reset();
  std::stringstream in(torn);
  svc::ResultCache reloaded(4);
  std::size_t loaded = 0;
  EXPECT_NO_THROW(loaded = reloaded.load(in));
  EXPECT_EQ(loaded, 1u);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.lookup(seeded_spec_canonical(1)).has_value());
  EXPECT_FALSE(reloaded.lookup(seeded_spec_canonical(2)).has_value());
  if (obs::kEnabled) {
    std::uint64_t skipped = 0;
    for (const auto& c : obs::Registry::instance().snapshot().counters) {
      if (c.name == "svc.cache_spill_skipped") skipped = c.value;
    }
    EXPECT_EQ(skipped, 1u);
  }

  // A torn record with no trailing newline is the same torn-append shape.
  std::stringstream in2(full.substr(0, full.size() - 21));
  svc::ResultCache reloaded2(4);
  EXPECT_EQ(reloaded2.load(in2), 1u);
}

// ------------------------------------------------------------------- service

TEST(SvcService, GreedyMatchesDirectLibraryComputation) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
  spec.workload.generator = "permutation";
  spec.workload.seed = 5;
  const svc::ScenarioResult via_svc = svc::evaluate_scenario(spec);

  const ClosNetwork net = ClosNetwork::paper(3);
  const MacroSwitch ms = MacroSwitch::paper(3);
  Rng rng(5);
  const FlowCollection flows_spec = random_permutation(Fabric{6, 3}, rng);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, flows_spec));
  const FlowSet flows = instantiate(net, flows_spec);
  std::vector<double> demands;
  for (FlowIndex f = 0; f < flows.size(); ++f) demands.push_back(macro.rate(f).to_double());
  const MiddleAssignment middles = greedy_routing(net, flows, demands);
  const auto alloc = max_min_fair<Rational>(net, flows, middles);

  EXPECT_EQ(via_svc.macro_rates, macro.rates());
  EXPECT_EQ(via_svc.middles, middles);
  EXPECT_EQ(via_svc.rates, alloc.rates());
  EXPECT_EQ(via_svc.throughput, alloc.throughput());
}

TEST(SvcService, SeedlessEcmpContinuesTheWorkloadStream) {
  // The sweep-bench convention: without routing.seed, ECMP draws from the
  // same Rng stream the workload generator advanced.
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
  spec.workload.generator = "uniform";
  spec.workload.count = 10;
  spec.workload.seed = 42;
  spec.routing.policy = "ecmp";
  const svc::ScenarioResult via_svc = svc::evaluate_scenario(spec);

  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(42);
  const FlowCollection flows_spec = uniform_random(Fabric{6, 3}, 10, rng);
  const FlowSet flows = instantiate(net, flows_spec);
  EXPECT_EQ(via_svc.middles, ecmp_routing(net, flows, rng));
}

std::vector<svc::ScenarioSpec> small_batch() {
  std::vector<svc::ScenarioSpec> specs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* policy : {"ecmp", "greedy", "lex_climb"}) {
      svc::ScenarioSpec spec;
      spec.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
      spec.workload.generator = "uniform";
      spec.workload.count = 6;
      spec.workload.seed = seed;
      spec.routing.policy = policy;
      specs.push_back(spec);
    }
  }
  specs.push_back(specs[0]);  // in-batch duplicate
  return specs;
}

TEST(SvcService, BatchIsDeterministicAcrossWorkerCounts) {
  const std::vector<svc::ScenarioSpec> specs = small_batch();
  svc::Service one(svc::ServiceOptions{1, 64});
  const std::vector<svc::BatchEntry> ref = one.evaluate_batch(specs);
  ASSERT_EQ(ref.size(), specs.size());
  for (const unsigned workers : {2u, 8u}) {
    svc::Service service(svc::ServiceOptions{workers, 64});
    const std::vector<svc::BatchEntry> entries = service.evaluate_batch(specs);
    ASSERT_EQ(entries.size(), ref.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].hash, ref[i].hash) << i;
      EXPECT_EQ(entries[i].cached, ref[i].cached) << i;
      EXPECT_EQ(entries[i].error, ref[i].error) << i;
      EXPECT_EQ(entries[i].result, ref[i].result) << i;
    }
  }
}

TEST(SvcService, DuplicatesAndResubmissionsHitTheCache) {
  const std::vector<svc::ScenarioSpec> specs = small_batch();
  svc::Service service(svc::ServiceOptions{2, 64});
  const std::vector<svc::BatchEntry> cold = service.evaluate_batch(specs);
  EXPECT_FALSE(cold.front().cached);
  EXPECT_TRUE(cold.back().cached);  // in-batch duplicate of specs[0]
  EXPECT_EQ(cold.back().result, cold.front().result);
  const std::vector<svc::BatchEntry> warm = service.evaluate_batch(specs);
  for (const svc::BatchEntry& entry : warm) EXPECT_TRUE(entry.cached);
}

TEST(SvcService, RuntimeErrorsBecomePerEntryErrors) {
  std::vector<svc::ScenarioSpec> specs = small_batch();
  svc::ScenarioSpec bad;
  bad.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  bad.workload.generator = "permutation";
  bad.routing.policy = "static";
  bad.routing.start = {1};  // wrong length for the permutation's flow count
  specs.insert(specs.begin() + 1, bad);

  svc::Service service(svc::ServiceOptions{2, 64});
  const std::vector<svc::BatchEntry> entries = service.evaluate_batch(specs);
  EXPECT_FALSE(entries[1].ok());
  EXPECT_FALSE(entries[1].error.empty());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 1) {
      EXPECT_TRUE(entries[i].ok()) << entries[i].error;
    }
  }
  // A failed evaluation must not be cached.
  const svc::BatchEntry retry = service.evaluate(bad);
  EXPECT_FALSE(retry.cached);
  EXPECT_FALSE(retry.ok());
}

// ------------------------------------------------------------ cache pinning

TEST(SvcCache, InsertReportsWhetherTheEntryIsNew) {
  svc::ResultCache cache(4);
  EXPECT_TRUE(cache.insert(seeded_spec_canonical(1), tiny_result(1)));
  EXPECT_FALSE(cache.insert(seeded_spec_canonical(1), tiny_result(1)));
  EXPECT_TRUE(cache.insert(seeded_spec_canonical(2), tiny_result(2)));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SvcCache, PinnedBasesAreExemptFromEviction) {
  svc::ResultCache cache(2);
  const std::string a = seeded_spec_canonical(1);
  cache.insert(a, tiny_result(1));
  auto pin = cache.pin_base(svc::fnv1a64(a));
  ASSERT_TRUE(pin.has_value());
  EXPECT_EQ(pin->canonical(), a);
  EXPECT_EQ(pin->result().num_flows, 1u);

  // Two more inserts would evict `a` under plain LRU; the pin protects it.
  cache.insert(seeded_spec_canonical(2), tiny_result(2));
  cache.insert(seeded_spec_canonical(3), tiny_result(3));
  EXPECT_TRUE(cache.lookup(a).has_value());

  // clear() also respects the pin, then the unpinned entry goes on the next
  // eviction pressure after release.
  cache.clear();
  EXPECT_TRUE(cache.lookup(a).has_value());
  pin.reset();
  cache.insert(seeded_spec_canonical(4), tiny_result(4));
  cache.insert(seeded_spec_canonical(5), tiny_result(5));
  EXPECT_FALSE(cache.lookup(a).has_value());
}

TEST(SvcCache, PinBaseMissesUnknownHashes) {
  svc::ResultCache cache(2);
  cache.insert(seeded_spec_canonical(1), tiny_result(1));
  EXPECT_FALSE(cache.pin_base(0xdeadbeefULL).has_value());
}

TEST(SvcCache, LoadCountsDistinctEntriesAndRefreshesTheGauge) {
  // Duplicate canonical lines in a spill (e.g. two services spilling the
  // same hot entry) must not inflate the loaded count.
  svc::ResultCache one(4);
  one.insert(seeded_spec_canonical(1), tiny_result(1));
  std::stringstream single;
  one.save(single);
  const std::string record = single.str();

  if (obs::kEnabled) obs::Registry::instance().reset();
  std::stringstream in(record + record + record);
  svc::ResultCache reloaded(4);
  EXPECT_EQ(reloaded.load(in), 1u);
  EXPECT_EQ(reloaded.size(), 1u);

  if (obs::kEnabled) {
    std::int64_t gauge = -1;
    for (const auto& g : obs::Registry::instance().snapshot().gauges) {
      if (g.name == "svc.cache_size") gauge = g.value;
    }
    EXPECT_EQ(gauge, 1);
  }
}

TEST(SvcCache, GaugeIsHonestWhenTheFinalRecordIsTorn) {
  svc::ResultCache cache(4);
  cache.insert(seeded_spec_canonical(1), tiny_result(1));
  cache.insert(seeded_spec_canonical(2), tiny_result(2));
  std::stringstream spill;
  cache.save(spill);
  const std::string full = spill.str();

  if (obs::kEnabled) obs::Registry::instance().reset();
  std::stringstream in(full.substr(0, full.size() - 21) + "\n");
  svc::ResultCache reloaded(4);
  EXPECT_EQ(reloaded.load(in), 1u);
  if (obs::kEnabled) {
    std::int64_t gauge = -1;
    for (const auto& g : obs::Registry::instance().snapshot().gauges) {
      if (g.name == "svc.cache_size") gauge = g.value;
    }
    // The gauge must reflect what actually loaded, not count the torn tail.
    EXPECT_EQ(gauge, 1);
  }
}

// ------------------------------------------------------------------- deltas

svc::SpecPatch parse_patch(const std::string& text) {
  return svc::SpecPatch::from_json(Json::parse(text));
}

std::string hash_hex16(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return std::string{buf};
}

TEST(SvcDelta, PatchParsingIsStrict) {
  EXPECT_TRUE(parse_patch("{}").empty());
  EXPECT_THROW(parse_patch(R"({"bogus":1})"), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"objective":"fastest"})"), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"remove_flows":[0,0]})"), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"remove_flows":[-1]})"), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"fail_middles":[0]})"), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"add_flows":[{"src_tor":0}]})"), svc::SpecError);
  EXPECT_THROW(
      parse_patch(R"({"derate_links":[{"stage":"up","tor":1,"middle":1,"factor":"1/2"}]})"),
      svc::SpecError);
  EXPECT_THROW(
      parse_patch(R"({"derate_links":[{"stage":"uplink","tor":1,"middle":1,"factor":"3/2"}]})"),
      svc::SpecError);
}

TEST(SvcDelta, DeltaRequestParsesContentAddresses) {
  const svc::DeltaRequest delta = svc::DeltaRequest::from_json(
      Json::parse(R"({"base":"00000000deadbeef","patch":{"fail_middles":[2]}})"));
  EXPECT_EQ(delta.base, 0xdeadbeefULL);
  EXPECT_EQ(delta.patch.fail_middles, std::vector<int>{2});
  // Wrong length, uppercase, and non-hex addresses are all rejected.
  EXPECT_THROW(svc::DeltaRequest::from_json(Json::parse(R"({"base":"abc"})")),
               svc::SpecError);
  EXPECT_THROW(svc::DeltaRequest::from_json(Json::parse(R"({"base":"00000000DEADBEEF"})")),
               svc::SpecError);
  EXPECT_THROW(svc::DeltaRequest::from_json(Json::parse(R"({"base":"00000000deadbeeg"})")),
               svc::SpecError);
  EXPECT_THROW(svc::DeltaRequest::from_json(Json::parse(R"({"patch":{}})")),
               svc::SpecError);
}

svc::ScenarioSpec instance_base() {
  return parse_spec(
      R"({"workload":{"instance":"clos n=2\nflow 1 1 -> 3 1\nflow 2 1 -> 4 1\n"},
          "routing":{"policy":"greedy"}})");
}

TEST(SvcDelta, FlowEditsRewriteTheInlineInstance) {
  const svc::ScenarioSpec base = instance_base();
  const svc::ScenarioSpec added =
      parse_patch(R"({"add_flows":[{"src_tor":1,"src_server":2,"dst_tor":2,"dst_server":1}]})")
          .apply(base);
  EXPECT_NE(added.canonical(), base.canonical());
  EXPECT_NE(added.workload.instance.find("1 2 -> 2 1"), std::string::npos);

  const svc::ScenarioSpec removed = parse_patch(R"({"remove_flows":[0]})").apply(base);
  EXPECT_EQ(removed.workload.instance.find("1 1 -> 3 1"), std::string::npos);
  EXPECT_NE(removed.workload.instance.find("2 1 -> 4 1"), std::string::npos);

  // Out-of-range removal, removing every flow, and flow edits against a
  // generator workload all fail with a patch error.
  EXPECT_THROW(parse_patch(R"({"remove_flows":[7]})").apply(base), svc::SpecError);
  EXPECT_THROW(parse_patch(R"({"remove_flows":[0,1]})").apply(base), svc::SpecError);
  svc::ScenarioSpec generated;
  generated.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  generated.workload.generator = "permutation";
  EXPECT_THROW(parse_patch(R"({"remove_flows":[0]})").apply(generated), svc::SpecError);
}

TEST(SvcDelta, FaultAndObjectivePatchesComposeWithExistingGroups) {
  svc::ScenarioSpec base = instance_base();
  base.fault.scenario.failed_middles = {2};
  const svc::ScenarioSpec patched =
      parse_patch(R"({"fail_middles":[1,2],"objective":"maxmin_lp"})").apply(base);
  EXPECT_EQ(patched.fault.scenario.failed_middles, (std::vector<int>{1, 2}));
  EXPECT_EQ(patched.objective, "maxmin_lp");
  // The patched spec is canonical: reparsing is a fixed point.
  EXPECT_EQ(svc::ScenarioSpec::from_json(patched.to_json()).canonical(),
            patched.canonical());
}

/// Every delta class: warm evaluation must be byte-identical to the cold
/// evaluation of the patched spec (the tentpole contract).
TEST(SvcDelta, WarmEvaluationMatchesColdBytesForEveryClass) {
  svc::ScenarioSpec clos_base;
  clos_base.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  clos_base.workload.generator = "uniform";
  clos_base.workload.count = 6;
  clos_base.workload.seed = 3;

  const struct {
    const char* name;
    svc::ScenarioSpec base;
    const char* patch;
  } cases[] = {
      {"add_flow", instance_base(),
       R"({"add_flows":[{"src_tor":1,"src_server":2,"dst_tor":2,"dst_server":1}]})"},
      {"remove_flow", instance_base(), R"({"remove_flows":[0]})"},
      {"fail_middle", clos_base, R"({"fail_middles":[1]})"},
      {"derate_link", clos_base,
       R"({"derate_links":[{"stage":"uplink","tor":1,"middle":2,"factor":"1/2"}]})"},
      {"objective_switch", clos_base, R"({"objective":"maxmin_lp"})"},
  };
  for (const auto& tc : cases) {
    const svc::ScenarioSpec patched = parse_patch(tc.patch).apply(tc.base);
    const svc::ScenarioResult base_result = svc::evaluate_scenario(tc.base);
    const svc::ScenarioResult warm =
        svc::evaluate_scenario_warm(patched, tc.base, base_result);
    const svc::ScenarioResult cold = svc::evaluate_scenario(patched);
    EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump()) << tc.name;
  }
}

TEST(SvcDelta, ServiceEvaluateDeltaMatchesColdService) {
  const svc::ScenarioSpec base = instance_base();
  const svc::DeltaRequest delta = svc::DeltaRequest::from_json(Json::parse(
      R"({"base":")" + hash_hex16(base.content_hash()) +
      R"(","patch":{"objective":"maxmin_lp"}})"));

  svc::Service warm_service(svc::ServiceOptions{1, 16});
  ASSERT_TRUE(warm_service.evaluate(base).ok());
  const svc::BatchEntry warm = warm_service.evaluate_delta(delta);
  ASSERT_TRUE(warm.ok()) << warm.error;

  svc::Service cold_service(svc::ServiceOptions{1, 16});
  const svc::BatchEntry cold =
      cold_service.evaluate(delta.patch.apply(base));
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(warm.hash, cold.hash);
  EXPECT_EQ(warm.result.to_json().dump(), cold.result.to_json().dump());

  // Re-submitting the same delta is a cache hit on the patched spec.
  const svc::BatchEntry again = warm_service.evaluate_delta(delta);
  EXPECT_TRUE(again.cached);

  // A base the cache has never seen resolves to an error with hash == 0.
  svc::DeltaRequest unknown = delta;
  unknown.base ^= 1;
  const svc::BatchEntry miss = warm_service.evaluate_delta(unknown);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.hash, 0u);
  EXPECT_NE(miss.error.find("unknown base"), std::string::npos) << miss.error;

  // A patch that does not apply reports the patch error, hash == 0.
  const svc::DeltaRequest bad = svc::DeltaRequest::from_json(Json::parse(
      R"({"base":")" + hash_hex16(base.content_hash()) +
      R"(","patch":{"remove_flows":[9]}})"));
  const svc::BatchEntry broken = warm_service.evaluate_delta(bad);
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(broken.hash, 0u);
}

TEST(SvcDelta, DeltaCountersTrackOutcomesWhenEnabled) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry::instance().reset();
  const svc::ScenarioSpec base = instance_base();
  svc::Service service(svc::ServiceOptions{1, 16});
  ASSERT_TRUE(service.evaluate(base).ok());

  const svc::DeltaRequest objective_delta = svc::DeltaRequest::from_json(Json::parse(
      R"({"base":")" + hash_hex16(base.content_hash()) +
      R"(","patch":{"objective":"maxmin_lp"}})"));
  (void)service.evaluate_delta(objective_delta);  // warm: wholesale result reuse
  (void)service.evaluate_delta(objective_delta);  // cache hit on patched spec
  svc::DeltaRequest unknown = objective_delta;
  unknown.base ^= 1;
  (void)service.evaluate_delta(unknown);  // base miss

  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  std::uint64_t requests = 0, hits = 0, misses = 0, reuses = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "svc.delta_requests") requests = c.value;
    if (c.name == "svc.delta_hits") hits = c.value;
    if (c.name == "svc.delta_base_misses") misses = c.value;
    if (c.name == "svc.delta_result_reuses") reuses = c.value;
  }
  EXPECT_EQ(requests, 3u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(reuses, 1u);
}

TEST(SvcService, ObsCountersTrackRequestsWhenEnabled) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry::instance().reset();
  svc::Service service(svc::ServiceOptions{2, 64});
  const std::vector<svc::ScenarioSpec> specs = small_batch();
  (void)service.evaluate_batch(specs);
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  std::uint64_t requests = 0;
  std::uint64_t dedup = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "svc.requests") requests = c.value;
    if (c.name == "svc.dedup_hits") dedup = c.value;
  }
  EXPECT_EQ(requests, specs.size());
  EXPECT_EQ(dedup, 1u);
}

}  // namespace
}  // namespace closfair
