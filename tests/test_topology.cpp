#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

Topology make_line() {
  // a -> b -> c with capacities 1 and 1/2.
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kSource);
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c", NodeKind::kDestination);
  t.add_link(a, b, Rational{1});
  t.add_link(b, c, Rational{1, 2});
  return t;
}

TEST(Topology, AddNodesAndLinks) {
  Topology t = make_line();
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.node(0).name, "a");
  EXPECT_EQ(t.node(0).kind, NodeKind::kSource);
  EXPECT_EQ(t.node(1).kind, NodeKind::kOther);
  EXPECT_EQ(t.link(1).capacity, Rational(1, 2));
  EXPECT_FALSE(t.link(1).unbounded);
}

TEST(Topology, AdjacencyLists) {
  Topology t = make_line();
  EXPECT_EQ(t.out_links(0).size(), 1u);
  EXPECT_EQ(t.in_links(0).size(), 0u);
  EXPECT_EQ(t.out_links(1).size(), 1u);
  EXPECT_EQ(t.in_links(1).size(), 1u);
  EXPECT_EQ(t.in_links(2).size(), 1u);
}

TEST(Topology, FindLink) {
  Topology t = make_line();
  ASSERT_TRUE(t.find_link(0, 1).has_value());
  EXPECT_EQ(*t.find_link(0, 1), 0);
  EXPECT_FALSE(t.find_link(1, 0).has_value());
  EXPECT_FALSE(t.find_link(0, 2).has_value());
}

TEST(Topology, UnboundedLink) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId l = t.add_unbounded_link(a, b);
  EXPECT_TRUE(t.link(l).unbounded);
  EXPECT_THROW(capacity_as<Rational>(t.link(l)), ContractViolation);
}

TEST(Topology, CapacityAs) {
  Topology t = make_line();
  EXPECT_EQ(capacity_as<Rational>(t.link(1)), Rational(1, 2));
  EXPECT_DOUBLE_EQ(capacity_as<double>(t.link(1)), 0.5);
}

TEST(Topology, NegativeCapacityThrows) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  EXPECT_THROW(t.add_link(a, b, Rational{-1}), ContractViolation);
}

TEST(Topology, OutOfRangeAccessThrows) {
  Topology t = make_line();
  EXPECT_THROW(t.node(-1), ContractViolation);
  EXPECT_THROW(t.node(3), ContractViolation);
  EXPECT_THROW(t.link(2), ContractViolation);
  EXPECT_THROW(t.add_link(0, 99), ContractViolation);
}

TEST(Topology, IsPath) {
  Topology t = make_line();
  EXPECT_TRUE(t.is_path({0, 1}, 0, 2));
  EXPECT_TRUE(t.is_path({0}, 0, 1));
  EXPECT_TRUE(t.is_path({}, 1, 1));  // empty walk at a node
  EXPECT_FALSE(t.is_path({1, 0}, 0, 2));   // wrong order
  EXPECT_FALSE(t.is_path({0, 1}, 0, 1));   // wrong endpoint
  EXPECT_FALSE(t.is_path({0, 7}, 0, 2));   // bogus link id
  EXPECT_FALSE(t.is_path({}, 0, 1));
}

TEST(Topology, DescribePath) {
  Topology t = make_line();
  EXPECT_EQ(t.describe_path({0, 1}), "a -> b -> c");
  EXPECT_EQ(t.describe_path({}), "");
}

TEST(Topology, MultigraphParallelLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId l1 = t.add_link(a, b);
  const LinkId l2 = t.add_link(a, b, Rational{2});
  EXPECT_NE(l1, l2);
  EXPECT_EQ(t.out_links(a).size(), 2u);
  // find_link returns the first.
  EXPECT_EQ(*t.find_link(a, b), l1);
}

TEST(Topology, AdjacencyPartitionsLinksFuzz) {
  // Every link appears exactly once in its endpoints' out/in lists.
  std::uint64_t seed = 7;
  auto next = [&seed](std::uint64_t bound) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return (seed >> 33) % bound;
  };
  for (int trial = 0; trial < 10; ++trial) {
    Topology t;
    const std::size_t nodes = 2 + next(10);
    for (std::size_t v = 0; v < nodes; ++v) t.add_node("v" + std::to_string(v));
    const std::size_t links = next(30);
    for (std::size_t e = 0; e < links; ++e) {
      t.add_link(static_cast<NodeId>(next(nodes)), static_cast<NodeId>(next(nodes)),
                 Rational{1, static_cast<std::int64_t>(1 + next(4))});
    }
    std::size_t out_total = 0;
    std::size_t in_total = 0;
    for (std::size_t v = 0; v < nodes; ++v) {
      for (LinkId l : t.out_links(static_cast<NodeId>(v))) {
        EXPECT_EQ(t.link(l).from, static_cast<NodeId>(v));
        ++out_total;
      }
      for (LinkId l : t.in_links(static_cast<NodeId>(v))) {
        EXPECT_EQ(t.link(l).to, static_cast<NodeId>(v));
        ++in_total;
      }
    }
    EXPECT_EQ(out_total, t.num_links());
    EXPECT_EQ(in_total, t.num_links());
  }
}

TEST(NodeKind, ToString) {
  EXPECT_STREQ(to_string(NodeKind::kSource), "source");
  EXPECT_STREQ(to_string(NodeKind::kMiddleSwitch), "middle-switch");
  EXPECT_STREQ(to_string(NodeKind::kOther), "other");
}

}  // namespace
}  // namespace closfair
