#include "routing/games.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Games, SingleFlowIsTriviallyNash) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  EXPECT_TRUE(is_nash_routing(net, flows, {1}));
  EXPECT_TRUE(is_nash_routing(net, flows, {2}));
}

TEST(Games, CollidingFlowsSeparate) {
  // Two ToR-pair flows jammed on one middle: each strictly gains by moving
  // off; dynamics must reach the disjoint (full-rate) Nash.
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2}});
  EXPECT_FALSE(is_nash_routing(net, flows, {1, 1}));
  const auto result = best_response_dynamics(net, flows, {1, 1});
  EXPECT_TRUE(result.reached_nash);
  EXPECT_NE(result.middles[0], result.middles[1]);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_EQ(result.alloc.rate(f), Rational(1));
  }
}

TEST(Games, DynamicsTerminateAtDetectedNash) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(7);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 10, rng));
  const auto result = best_response_dynamics(net, flows, MiddleAssignment(10, 1));
  if (result.reached_nash) {
    EXPECT_TRUE(is_nash_routing(net, flows, result.middles));
  }
}

TEST(Games, EdgeBottleneckedFlowsAreIndifferent) {
  // Flows sharing only their source link get 1/2 on every middle: any
  // routing is Nash for them.
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  EXPECT_TRUE(is_nash_routing(net, flows, {1, 1}));
  EXPECT_TRUE(is_nash_routing(net, flows, {1, 2}));
  const auto result = best_response_dynamics(net, flows, {1, 1});
  EXPECT_TRUE(result.reached_nash);
  EXPECT_EQ(result.moves, 0u);
}

// Selfish routing does not protect the Theorem 4.3 victim either: at Nash,
// the type 3 flow still sits at 1/n (it is indifferent — every middle gives
// it 1/n — so selfishness cannot express its plight).
TEST(Games, StarvationPersistsAtNash) {
  const int n = 3;
  const AdversarialInstance inst = theorem_4_3_instance(n);
  const ClosNetwork net = ClosNetwork::paper(n);
  const FlowSet flows = instantiate(net, inst.flows);
  const auto result = best_response_dynamics(net, flows, *inst.witness,
                                             BestResponseOptions{20});
  // The witness routing is already a Nash equilibrium: every type 1/2 flow
  // holds its macro rate (cannot improve), and the type 3 flow gets 1/n on
  // every middle by Claim 4.5's forced structure.
  EXPECT_TRUE(result.reached_nash);
  EXPECT_EQ(result.moves, 0u);
  EXPECT_EQ(result.alloc.rate(flows.size() - 1), Rational(1, n));
}

// Property: on random instances the dynamics either reach a state the
// independent checker certifies as Nash, or exhaust the pass budget (cycles
// are possible in general games).
class GamesProperty : public ::testing::TestWithParam<int> {};

TEST_P(GamesProperty, NashDetectionConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 929 + 1);
  const ClosNetwork net = ClosNetwork::paper(2);
  const std::size_t count = 2 + rng.next_below(8);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, count, rng));
  const MiddleAssignment start = ecmp_routing(net, flows, rng);
  const auto result = best_response_dynamics(net, flows, start);
  if (result.reached_nash) {
    EXPECT_TRUE(is_nash_routing(net, flows, result.middles));
  }
  // Payoffs never degrade the joint allocation below the all-jammed floor:
  // sanity that the dynamics produce a valid allocation.
  EXPECT_EQ(result.alloc.size(), flows.size());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GamesProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace closfair
