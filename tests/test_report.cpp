#include "core/report.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

TEST(Report, SummaryKeepsFirstAppearanceOrder) {
  const Allocation<Rational> alloc({Rational{1}, Rational{2}, Rational{3}});
  const std::vector<std::string> labels = {"z", "a", "z"};
  const auto summary = summarize_by_label(labels, alloc);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].label, "z");  // first seen stays first
  EXPECT_EQ(summary[1].label, "a");
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_EQ(summary[0].min_rate, Rational(1));
  EXPECT_EQ(summary[0].max_rate, Rational(3));
}

TEST(Report, SummaryEmptyAllocation) {
  const auto summary = summarize_by_label({}, Allocation<Rational>(0));
  EXPECT_TRUE(summary.empty());
}

TEST(Report, SingleColumnTable) {
  const Allocation<Rational> alloc({Rational{1, 2}});
  const std::string out = render_label_table({"only"}, alloc, "rates");
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_NE(out.find("rates rate"), std::string::npos);
  EXPECT_NE(out.find("1/2"), std::string::npos);
  // No second column header.
  EXPECT_EQ(out.find(".. "), std::string::npos);
}

TEST(Report, RangeRenderingWhenRatesDiffer) {
  const Allocation<Rational> alloc({Rational{1, 3}, Rational{1}});
  const std::string out = render_label_table({"t", "t"}, alloc, "x");
  EXPECT_NE(out.find("1/3 .. 1"), std::string::npos);
}

TEST(Report, TwoColumnAlignment) {
  const Allocation<Rational> left({Rational{1}});
  const Allocation<Rational> right({Rational{1, 7}});
  const std::string out = render_label_table({"f0"}, left, "macro", &right, "clos");
  // Both columns present on the same data row. ("f0" avoids colliding with
  // the "flow type" header.)
  const auto row_pos = out.find("f0");
  ASSERT_NE(row_pos, std::string::npos);
  const std::string row = out.substr(row_pos, out.find('\n', row_pos) - row_pos);
  EXPECT_NE(row.find('1'), std::string::npos);
  EXPECT_NE(row.find("1/7"), std::string::npos);
}

}  // namespace
}  // namespace closfair
