#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fairness/waterfill.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

double max_congestion(const ClosNetwork& net, const FlowSet& flows,
                      const MiddleAssignment& middles, const std::vector<double>& demands) {
  std::vector<double> load(net.topology().num_links(), 0.0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (LinkId l : net.path(flows[f].src, flows[f].dst, middles[f])) {
      load[static_cast<std::size_t>(l)] += demands[f];
    }
  }
  double worst = 0.0;
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = net.topology().link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    worst = std::max(worst, load[l] / link.capacity.to_double());
  }
  return worst;
}

TEST(Ecmp, AssignmentsInRange) {
  const ClosNetwork net = ClosNetwork::paper(4);
  Rng rng(1);
  const FlowSet flows =
      instantiate(net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 50, rng));
  const MiddleAssignment m = ecmp_routing(net, flows, rng);
  ASSERT_EQ(m.size(), flows.size());
  for (int middle : m) {
    EXPECT_GE(middle, 1);
    EXPECT_LE(middle, 4);
  }
}

TEST(Ecmp, UsesAllMiddlesEventually) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(2);
  const FlowSet flows =
      instantiate(net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 60, rng));
  const MiddleAssignment m = ecmp_routing(net, flows, rng);
  std::vector<int> seen(4, 0);
  for (int middle : m) ++seen[static_cast<std::size_t>(middle)];
  for (int middle = 1; middle <= 3; ++middle) EXPECT_GT(seen[static_cast<std::size_t>(middle)], 0);
}

TEST(Greedy, SpreadsEqualFlowsAcrossMiddles) {
  // n parallel unit-demand flows between the same ToR pair must go to n
  // different middles.
  const int n = 4;
  const ClosNetwork net = ClosNetwork::paper(n);
  FlowCollection specs;
  for (int j = 1; j <= n; ++j) specs.push_back(FlowSpec{1, j, 2, j});
  const FlowSet flows = instantiate(net, specs);
  const MiddleAssignment m = greedy_routing_unit(net, flows);
  std::vector<int> sorted = m;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (MiddleAssignment{1, 2, 3, 4}));
}

TEST(Greedy, DemandAwarePlacesElephantsApart) {
  const ClosNetwork net = ClosNetwork::paper(2);
  // Two elephants (demand 1) and two mice (demand 0.1), all I_1 -> O_3.
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 2},
                                          FlowSpec{1, 1, 3, 2}, FlowSpec{1, 2, 3, 1}});
  const std::vector<double> demands = {1.0, 1.0, 0.1, 0.1};
  const MiddleAssignment m = greedy_routing(net, flows, demands);
  EXPECT_NE(m[0], m[1]);  // elephants on different middles
}

TEST(Greedy, DemandSizeMismatchThrows) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  EXPECT_THROW(greedy_routing(net, flows, {1.0, 2.0}), ContractViolation);
}

TEST(LocalSearch, ImprovesCongestionOverWorstStart) {
  const int n = 3;
  const ClosNetwork net = ClosNetwork::paper(n);
  FlowCollection specs;
  for (int j = 1; j <= n; ++j) specs.push_back(FlowSpec{1, j, 2, j});
  const FlowSet flows = instantiate(net, specs);
  const std::vector<double> demands(flows.size(), 1.0);

  const MiddleAssignment all_one(flows.size(), 1);
  EXPECT_DOUBLE_EQ(max_congestion(net, flows, all_one, demands), 3.0);
  const MiddleAssignment improved = congestion_local_search(net, flows, demands, all_one);
  EXPECT_DOUBLE_EQ(max_congestion(net, flows, improved, demands), 1.0);
}

TEST(LocalSearch, LexHillClimbImprovesButMayStall) {
  // Single-flow moves are not complete for lex-max-min: from the all-ones
  // start the climb improves on its start but stalls in a local optimum
  // below the paper's routing A (found by exhaustive search) — evidence that
  // lex-max-min routing needs more than greedy rerouting.
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
            FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  const auto start_alloc = max_min_fair<Rational>(net, flows, MiddleAssignment(6, 1));
  const auto result = lex_max_min_local_search(net, flows, MiddleAssignment(6, 1));

  EXPECT_NE(lex_compare_sorted(result.alloc, start_alloc), std::strong_ordering::less);
  const auto routing_a = max_min_fair<Rational>(net, flows, {2, 1, 2, 1, 2, 1});
  EXPECT_NE(lex_compare_sorted(result.alloc, routing_a), std::strong_ordering::greater);
}

TEST(LocalSearch, MultistartNotWorseThanSinglestart) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(7);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 10, rng));
  const auto single = lex_max_min_local_search(net, flows, MiddleAssignment(10, 1));
  Rng rng2(7);
  const auto multi = lex_max_min_multistart(net, flows, rng2, 4);
  EXPECT_NE(lex_compare_sorted(multi.alloc, single.alloc), std::strong_ordering::less);
}

TEST(LocalSearch, ThroughputClimbEscapesCongestedStart) {
  // One Example 3.3 gadget in C_3, all flows initially jammed onto M_1
  // (throughput 1). A single gadget cannot *beat* the macro-switch max-min
  // throughput 3/2 (the type 2 flow always shares an edge link with each
  // type 1 flow), but the climb must reach exactly 3/2.
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 1, 1}, FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 1, 1}});
  const MiddleAssignment start(3, 1);
  const auto base = max_min_fair<Rational>(net, flows, start);
  EXPECT_EQ(base.throughput(), Rational(1));
  const auto result = throughput_max_min_local_search(net, flows, start);
  EXPECT_EQ(result.alloc.throughput(), Rational(3, 2));
}

TEST(LocalSearch, RespectsMoveBudget) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(11);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 12, rng));
  LocalSearchOptions options;
  options.max_moves = 1;
  const auto result = lex_max_min_local_search(net, flows, MiddleAssignment(12, 1), options);
  EXPECT_LE(result.moves, 1u);
}

}  // namespace
}  // namespace closfair
