#include "flow/allocation.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

TEST(Allocation, ZeroInitialized) {
  Allocation<Rational> a(3);
  EXPECT_EQ(a.size(), 3u);
  for (FlowIndex f = 0; f < 3; ++f) EXPECT_EQ(a.rate(f), Rational(0));
}

TEST(Allocation, SetAndGet) {
  Allocation<Rational> a(2);
  a.set_rate(0, Rational{1, 3});
  a.set_rate(1, Rational{2, 3});
  EXPECT_EQ(a.rate(0), Rational(1, 3));
  EXPECT_EQ(a.rate(1), Rational(2, 3));
  EXPECT_THROW(a.rate(2), ContractViolation);
  EXPECT_THROW(a.set_rate(2, Rational{1}), ContractViolation);
}

TEST(Allocation, Throughput) {
  Allocation<Rational> a({Rational{1, 3}, Rational{1, 3}, Rational{2, 3}, Rational{1}});
  EXPECT_EQ(a.throughput(), Rational(7, 3));
  EXPECT_EQ(Allocation<Rational>(0).throughput(), Rational(0));
}

TEST(Allocation, SortedAscending) {
  Allocation<Rational> a({Rational{1}, Rational{1, 3}, Rational{2, 3}});
  const auto s = a.sorted();
  EXPECT_EQ(s, (std::vector<Rational>{Rational{1, 3}, Rational{2, 3}, Rational{1}}));
}

TEST(LexCompare, OrdersByFirstDifference) {
  const std::vector<Rational> a = {Rational{1, 3}, Rational{1, 2}};
  const std::vector<Rational> b = {Rational{1, 3}, Rational{2, 3}};
  EXPECT_EQ(lex_compare(a, b), std::strong_ordering::less);
  EXPECT_EQ(lex_compare(b, a), std::strong_ordering::greater);
  EXPECT_EQ(lex_compare(a, a), std::strong_ordering::equal);
}

TEST(LexCompare, LengthMismatchThrows) {
  const std::vector<Rational> a = {Rational{1}};
  const std::vector<Rational> b = {Rational{1}, Rational{2}};
  EXPECT_THROW(lex_compare(a, b), ContractViolation);
}

TEST(LexCompareSorted, UsesSortedVectors) {
  // Same multiset in different orders compares equal.
  Allocation<Rational> a({Rational{1}, Rational{1, 2}});
  Allocation<Rational> b({Rational{1, 2}, Rational{1}});
  EXPECT_EQ(lex_compare_sorted(a, b), std::strong_ordering::equal);

  // The paper's Example 2.3 comparison: [1/3 x3, 2/3 x3] > [1/3 x4, 2/3, 1].
  Allocation<Rational> routing_a({Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                  Rational{2, 3}, Rational{2, 3}, Rational{2, 3}});
  Allocation<Rational> routing_b({Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                  Rational{1, 3}, Rational{2, 3}, Rational{1}});
  EXPECT_EQ(lex_compare_sorted(routing_a, routing_b), std::strong_ordering::greater);
}

TEST(LinkLoads, SumsRatesPerLink) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows =
      instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 1}});
  const Routing r = expand_routing(net, flows, {1, 1});
  Allocation<Rational> alloc({Rational{1, 2}, Rational{1, 4}});
  const auto loads = link_loads(net.topology(), r, alloc);
  EXPECT_EQ(loads[static_cast<std::size_t>(net.uplink(1, 1))], Rational(3, 4));
  EXPECT_EQ(loads[static_cast<std::size_t>(net.downlink(1, 3))], Rational(3, 4));
  EXPECT_EQ(loads[static_cast<std::size_t>(net.source_link(1, 1))], Rational(1, 2));
  // Both flows enter the same destination server.
  EXPECT_EQ(loads[static_cast<std::size_t>(net.dest_link(3, 1))], Rational(3, 4));
}

TEST(IsFeasible, DetectsViolations) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows =
      instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 2, 3, 1}});
  const Routing r = expand_routing(net, flows, {1, 1});

  EXPECT_TRUE(is_feasible(net.topology(), r,
                          Allocation<Rational>({Rational{1, 2}, Rational{1, 2}})));
  // dest_link(3,1) carries both flows: 1/2 + 3/4 > 1.
  EXPECT_FALSE(is_feasible(net.topology(), r,
                           Allocation<Rational>({Rational{1, 2}, Rational{3, 4}})));
  // Negative rates are infeasible regardless of loads.
  EXPECT_FALSE(is_feasible(net.topology(), r,
                           Allocation<Rational>({Rational{-1, 4}, Rational{1, 4}})));
}

TEST(IsFeasible, UnboundedLinksNeverConstrain) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  // Two ToR pairs; send everything through one inner link.
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing r = macro_routing(ms, flows);
  EXPECT_TRUE(is_feasible(ms.topology(), r, Allocation<Rational>({Rational{1}})));
  EXPECT_FALSE(is_feasible(ms.topology(), r, Allocation<Rational>({Rational{2}})));
}

TEST(IsFeasible, DoubleToleranceAbsorbsRoundoff) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing r = macro_routing(ms, flows);
  Allocation<double> slightly_over(std::vector<double>{1.0 + 1e-12});
  EXPECT_FALSE(is_feasible(ms.topology(), r, slightly_over));
  EXPECT_TRUE(is_feasible(ms.topology(), r, slightly_over, 1e-9));
}

TEST(Format, SortedAndRateStrings) {
  Allocation<Rational> a({Rational{1}, Rational{1, 3}});
  EXPECT_EQ(format_sorted(a), "[1/3, 1]");
  EXPECT_EQ(format_rates(a), "[1, 1/3]");
}

}  // namespace
}  // namespace closfair
