#include "io/text_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace closfair {
namespace {

TEST(TextFormat, ParsesPaperForm) {
  const InstanceSpec spec = parse_instance("clos n=3\nflow 1 2 -> 4 1\n");
  EXPECT_EQ(spec.params.num_middles, 3);
  EXPECT_EQ(spec.params.num_tors, 6);
  EXPECT_EQ(spec.params.servers_per_tor, 3);
  ASSERT_EQ(spec.flows.size(), 1u);
  EXPECT_EQ(spec.flows[0], (FlowSpec{1, 2, 4, 1}));
}

TEST(TextFormat, ParsesExplicitForm) {
  const InstanceSpec spec =
      parse_instance("clos middles=4 tors=3 servers=2 capacity=1/2\nflow 3 2 -> 1 1\n");
  EXPECT_EQ(spec.params.num_middles, 4);
  EXPECT_EQ(spec.params.num_tors, 3);
  EXPECT_EQ(spec.params.servers_per_tor, 2);
  EXPECT_EQ(spec.params.link_capacity, Rational(1, 2));
}

TEST(TextFormat, MultiplicityExpands) {
  const InstanceSpec spec = parse_instance("clos n=1\nflow 2 1 -> 1 1 x3\n");
  ASSERT_EQ(spec.flows.size(), 3u);
  for (const auto& f : spec.flows) EXPECT_EQ(f, (FlowSpec{2, 1, 1, 1}));
}

TEST(TextFormat, CommentsAndBlanksIgnored) {
  const InstanceSpec spec = parse_instance(
      "# Example 3.3\n\nclos n=1  # the paper's C_1\n"
      "flow 1 1 -> 1 1\n# middle comment\nflow 2 1 -> 2 1\n");
  EXPECT_EQ(spec.flows.size(), 2u);
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  try {
    parse_instance("clos n=1\nflaw 1 1 -> 1 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(TextFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_instance(""), ParseError);                              // no clos
  EXPECT_THROW(parse_instance("flow 1 1 -> 1 1\n"), ParseError);             // flow first
  EXPECT_THROW(parse_instance("clos n=1\nclos n=2\n"), ParseError);          // duplicate
  EXPECT_THROW(parse_instance("clos n=0\n"), ParseError);                    // bad n
  EXPECT_THROW(parse_instance("clos n=1 middles=2\n"), ParseError);          // mixed forms
  EXPECT_THROW(parse_instance("clos middles=2 tors=2\n"), ParseError);       // incomplete
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1\n"), ParseError);     // short flow
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 => 1 1\n"), ParseError);   // bad arrow
  EXPECT_THROW(parse_instance("clos n=1\nflow a 1 -> 1 1\n"), ParseError);   // non-int
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 x0\n"), ParseError);
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 y2\n"), ParseError);
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 x2 junk\n"), ParseError);
  EXPECT_THROW(parse_instance("clos capacity=1/0 middles=1 tors=2 servers=1\n"),
               ParseError);
  // Out-of-range coordinates are a contract violation (dimensions declared).
  EXPECT_THROW(parse_instance("clos n=1\nflow 3 1 -> 1 1\n"), ContractViolation);
}

TEST(TextFormat, RateAnnotations) {
  const InstanceSpec spec = parse_instance(
      "clos n=2\nflow 1 1 -> 3 1 @2/3\nflow 1 2 -> 3 2\nflow 2 1 -> 4 1 x2 @1/2\n");
  ASSERT_EQ(spec.flows.size(), 4u);
  ASSERT_EQ(spec.rates.size(), 4u);
  ASSERT_TRUE(spec.rates[0].has_value());
  EXPECT_EQ(*spec.rates[0], Rational(2, 3));
  EXPECT_FALSE(spec.rates[1].has_value());
  ASSERT_TRUE(spec.rates[2].has_value());
  EXPECT_EQ(*spec.rates[2], Rational(1, 2));
  EXPECT_EQ(spec.rates[2], spec.rates[3]);
  EXPECT_TRUE(spec.has_rates());
}

TEST(TextFormat, RateBeforeMultiplicityAlsoAccepted) {
  const InstanceSpec spec = parse_instance("clos n=1\nflow 2 1 -> 1 1 @1/3 x2\n");
  ASSERT_EQ(spec.flows.size(), 2u);
  EXPECT_EQ(*spec.rates[0], Rational(1, 3));
}

TEST(TextFormat, RateErrors) {
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 @-1/2\n"), ParseError);
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 @a\n"), ParseError);
  EXPECT_THROW(parse_instance("clos n=1\nflow 1 1 -> 1 1 @1/0\n"), ParseError);
}

TEST(TextFormat, RoundTripWithRates) {
  const std::string text = "clos n=2\nflow 1 1 -> 3 1 x2 @1/3\nflow 2 1 -> 4 1\n";
  const InstanceSpec spec = parse_instance(text);
  EXPECT_EQ(format_instance(spec), text);
  EXPECT_FALSE(parse_instance("clos n=1\nflow 1 1 -> 1 1\n").has_rates());
}

TEST(TextFormat, RoundTripPaperForm) {
  const std::string text = "clos n=2\nflow 1 2 -> 2 1 x3\nflow 2 1 -> 1 1\n";
  const InstanceSpec spec = parse_instance(text);
  EXPECT_EQ(format_instance(spec), text);
}

TEST(TextFormat, RoundTripExplicitForm) {
  const std::string text = "clos middles=4 tors=3 servers=2 capacity=2/3\nflow 1 1 -> 3 2\n";
  const InstanceSpec spec = parse_instance(text);
  EXPECT_EQ(format_instance(spec), text);
  // And the re-parse matches.
  const InstanceSpec again = parse_instance(format_instance(spec));
  EXPECT_EQ(again.flows, spec.flows);
  EXPECT_EQ(again.params.link_capacity, spec.params.link_capacity);
}

// Every error path must name the offending line: comments and blank lines
// count toward the number the user sees in their editor.
TEST(TextFormat, ErrorLineNumbersSkipCommentsAndBlanks) {
  const struct {
    const char* text;
    const char* line;
  } cases[] = {
      {"# header\n\nclos n=1\n# note\nflow 1 1 -> 1 1 @bad\n", "line 5"},
      {"clos n=1\nflow 1 1 -> 1 1\n\nflow 1 1 -> 1 1 x0\n", "line 4"},
      {"clos n=1\n\nclos n=2\n", "line 3"},
      {"# only a comment\nflow 1 1 -> 1 1\n", "line 2"},
  };
  for (const auto& c : cases) {
    try {
      parse_instance(c.text);
      FAIL() << "expected ParseError for: " << c.text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string{e.what()}.find(c.line), std::string::npos)
          << e.what() << " should mention " << c.line;
    }
  }
}

// serialize -> parse -> serialize is a fixed point even on input that is far
// from canonical: scattered duplicates coalesce, rate/multiplicity order
// normalizes, and a second round trip changes nothing.
TEST(TextFormat, SerializeParseSerializeIsAFixedPoint) {
  const std::string messy =
      "# adversarial spacing and ordering\n"
      "clos   middles=3   tors=6  servers=3  capacity=1\n"
      "flow 1 1 -> 4 1 @1/3 x2\n"
      "flow 1 1 -> 4 1 @1/3\n"  // coalesces with the preceding pair
      "flow 2 1 -> 5 1\n"
      "flow 2 2 -> 5 2 x1\n";
  const std::string once = format_instance(parse_instance(messy));
  const std::string twice = format_instance(parse_instance(once));
  EXPECT_EQ(twice, once);
  // The canonical form coalesced the split run of identical rated flows.
  EXPECT_NE(once.find("x3 @1/3"), std::string::npos) << once;
  // Semantics survive: same expanded flows and rates either way.
  const InstanceSpec a = parse_instance(messy);
  const InstanceSpec b = parse_instance(once);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.rates, b.rates);
  EXPECT_EQ(a.params.num_middles, b.params.num_middles);
}

TEST(TextFormat, BuildClosMatchesParams) {
  const InstanceSpec spec = parse_instance("clos n=2\nflow 1 1 -> 3 1\n");
  const ClosNetwork net = spec.build_clos();
  EXPECT_EQ(net.num_middles(), 2);
  EXPECT_EQ(net.num_tors(), 4);
  // Flows instantiate cleanly.
  const FlowSet flows = instantiate(net, spec.flows);
  EXPECT_EQ(flows.size(), 1u);
}

TEST(TextFormat, CsvOutput) {
  const FlowCollection flows = {FlowSpec{1, 1, 2, 1}, FlowSpec{2, 1, 1, 1}};
  const std::vector<std::string> labels = {"a", "b"};
  const Allocation<Rational> macro({Rational{1}, Rational{1, 3}});
  const Allocation<Rational> clos({Rational{1, 2}, Rational{1, 3}});
  std::ostringstream os;
  write_rates_csv(os, flows, labels,
                  {NamedAllocation{"macro", &macro}, NamedAllocation{"clos", &clos}});
  const std::string out = os.str();
  EXPECT_NE(out.find("flow,src_tor,src_server,dst_tor,dst_server,label,macro,macro_approx,"
                     "clos,clos_approx"),
            std::string::npos);
  EXPECT_NE(out.find("0,1,1,2,1,a,1,1,1/2,0.5"), std::string::npos);
  EXPECT_NE(out.find("1,2,1,1,1,b,1/3,"), std::string::npos);
}

TEST(TextFormat, CsvRejectsMismatch) {
  const FlowCollection flows = {FlowSpec{1, 1, 2, 1}};
  const Allocation<Rational> wrong({Rational{1}, Rational{2}});
  std::ostringstream os;
  EXPECT_THROW(
      write_rates_csv(os, flows, {}, {NamedAllocation{"x", &wrong}}),
      ContractViolation);
}

}  // namespace
}  // namespace closfair
