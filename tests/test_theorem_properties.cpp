// Property tests: the paper's bounds, re-read as runtime invariants, checked
// over randomized workloads and topology sizes.
//
//  * Theorem 3.4 lower bound: T^MmF >= 1/2 T^MT in every macro-switch.
//  * §2.3: the macro-switch sorted vector dominates every Clos routing's
//    max-min sorted vector lexicographically.
//  * Theorem 5.4 upper bound: t(a_r^MmF) <= 2 T^MmF for every routing r.
//  * Lemma 5.2: T^T-MT == T^MT on every instance.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "fairness/waterfill.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

FlowCollection random_workload(const Fabric& fabric, Rng& rng) {
  switch (rng.next_below(5)) {
    case 0:
      return uniform_random(fabric, 1 + rng.next_below(30), rng);
    case 1:
      return random_permutation(fabric, rng);
    case 2:
      return zipf_destinations(fabric, 1 + rng.next_below(30), 1.1, rng);
    case 3:
      return incast(fabric, 1 + rng.next_below(20), 1, 1, rng);
    default:
      return hotspot(fabric, 1 + rng.next_below(30), 1, 0.5, rng);
  }
}

class PaperBounds : public ::testing::TestWithParam<int> {};

TEST_P(PaperBounds, Theorem34LowerBoundOnMacroSwitch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 1);
  const int n = 1 + static_cast<int>(rng.next_below(4));
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowCollection specs = random_workload(Fabric{2 * n, n}, rng);
  const auto a = analyze_macro(ms, instantiate(ms, specs));
  // T^MmF >= 1/2 T^MT (Theorem 3.4) and of course T^MmF <= T^MT.
  EXPECT_GE(a.t_maxmin * Rational{2}, a.t_max_throughput);
  EXPECT_LE(a.t_maxmin, a.t_max_throughput);
}

TEST_P(PaperBounds, MacroVectorDominatesEveryRouting) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 2);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowCollection specs = random_workload(Fabric{2 * n, n}, rng);
  const FlowSet flows = instantiate(net, specs);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  for (int trial = 0; trial < 5; ++trial) {
    const MiddleAssignment middles = ecmp_routing(net, flows, rng);
    const auto clos = max_min_fair<Rational>(net, flows, middles);
    EXPECT_NE(lex_compare_sorted(clos, macro), std::strong_ordering::greater);
    // Theorem 5.4 upper bound applies to *every* routing's throughput.
    EXPECT_LE(clos.throughput(), Rational{2} * macro.throughput());
  }
}

TEST_P(PaperBounds, Lemma52MaxThroughputReplicable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1019 + 3);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowCollection specs = random_workload(Fabric{2 * n, n}, rng);

  const auto macro = analyze_macro(ms, instantiate(ms, specs));
  const auto routing = max_throughput_routing(net, instantiate(net, specs));
  EXPECT_EQ(routing.throughput, macro.t_max_throughput);
}

TEST_P(PaperBounds, DoomSwitchRespectsUpperBound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1021 + 4);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowCollection specs = random_workload(Fabric{2 * n, n}, rng);
  const FlowSet flows = instantiate(net, specs);

  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
  const auto doom = doom_switch(net, flows);
  const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
  EXPECT_LE(alloc.throughput(), Rational{2} * macro.throughput());
}

TEST_P(PaperBounds, GreedyRoutingStaysDominatedByMacro) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1031 + 5);
  const int n = 2 + static_cast<int>(rng.next_below(3));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowCollection specs = random_workload(Fabric{2 * n, n}, rng);
  const FlowSet flows = instantiate(net, specs);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  std::vector<double> demands;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    demands.push_back(macro.rate(f).to_double());
  }
  const MiddleAssignment middles = greedy_routing(net, flows, demands);
  const auto clos = max_min_fair<Rational>(net, flows, middles);
  EXPECT_NE(lex_compare_sorted(clos, macro), std::strong_ordering::greater);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, PaperBounds, ::testing::Range(0, 25));

// Scale check: the exact machinery holds up on the paper-sized C_8 (128
// servers per side) without rational overflow on realistic workloads.
TEST(PaperBoundsScale, C8PermutationAndUniform) {
  const int n = 8;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  Rng rng(424242);

  const FlowCollection perm = random_permutation(Fabric{2 * n, n}, rng);
  const auto macro_perm = max_min_fair<Rational>(ms, instantiate(ms, perm));
  EXPECT_EQ(macro_perm.throughput(), Rational(2 * n * n));  // all rate 1

  const FlowCollection uni = uniform_random(Fabric{2 * n, n}, 300, rng);
  const FlowSet flows = instantiate(net, uni);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, uni));
  const MiddleAssignment middles = ecmp_routing(net, flows, rng);
  const auto clos = max_min_fair<Rational>(net, flows, middles);
  EXPECT_NE(lex_compare_sorted(clos, macro), std::strong_ordering::greater);
  EXPECT_LE(clos.throughput(), Rational{2} * macro.throughput());
}

}  // namespace
}  // namespace closfair
