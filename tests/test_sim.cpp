#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

Trace single_flow_trace(double size) {
  return Trace{FlowArrival{0.0, FlowSpec{1, 1, 3, 1}, size}};
}

TEST(Sim, SingleFlowFinishesAtSize) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(1);
  const SimStats stats = simulate_clos(net, single_flow_trace(2.5), SimPolicy::kEcmp, rng);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(stats.fcts[0], 2.5);  // full rate 1
  EXPECT_DOUBLE_EQ(stats.mean_slowdown, 1.0);
}

TEST(Sim, TwoFlowsSharingSourceLink) {
  // Both flows start at t=0 from the same source, size 1 each. They share
  // the source link at rate 1/2 until one finishes... they finish together
  // at t=2.
  const MacroSwitch ms = MacroSwitch::paper(2);
  Trace trace = {FlowArrival{0.0, FlowSpec{1, 1, 3, 1}, 1.0},
                 FlowArrival{0.0, FlowSpec{1, 1, 4, 1}, 1.0}};
  const SimStats stats = simulate_macro(ms, trace);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_NEAR(stats.fcts[0], 2.0, 1e-9);
  EXPECT_NEAR(stats.fcts[1], 2.0, 1e-9);
}

TEST(Sim, SecondFlowSpeedsUpAfterFirstCompletes) {
  // Flow 1: size 1. Flow 2: size 2, same source. Share at 1/2 until t=2
  // (both have 0 and 1 remaining), then flow 2 runs at rate 1, done at t=3.
  const MacroSwitch ms = MacroSwitch::paper(2);
  Trace trace = {FlowArrival{0.0, FlowSpec{1, 1, 3, 1}, 1.0},
                 FlowArrival{0.0, FlowSpec{1, 1, 4, 1}, 2.0}};
  const SimStats stats = simulate_macro(ms, trace);
  EXPECT_NEAR(stats.fcts[0], 2.0, 1e-9);
  EXPECT_NEAR(stats.fcts[1], 3.0, 1e-9);
  EXPECT_NEAR(stats.finish_time, 3.0, 1e-9);
}

TEST(Sim, LateArrivalWaitsForItsStart) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  Trace trace = {FlowArrival{5.0, FlowSpec{1, 1, 3, 1}, 1.0}};
  const SimStats stats = simulate_macro(ms, trace);
  // FCT is measured from arrival, not simulation start.
  EXPECT_NEAR(stats.fcts[0], 1.0, 1e-9);
  EXPECT_NEAR(stats.finish_time, 6.0, 1e-9);
}

TEST(Sim, MacroNeverSlowerThanClosOnCongestedCore) {
  // Deterministic incast-ish load through one middle: the macro-switch is
  // the ideal reference, so mean FCT under ECMP on C_1 (single middle) is
  // at least the macro's (C_1's middle is a real bottleneck).
  const ClosNetwork net = ClosNetwork::paper(1);
  const MacroSwitch ms = MacroSwitch::paper(1);
  Trace trace;
  for (int i = 0; i < 4; ++i) {
    // Cross traffic: ToR 1 and ToR 2 both send through the single middle.
    trace.push_back(FlowArrival{0.0, FlowSpec{1, 1, 2, 1}, 1.0});
    trace.push_back(FlowArrival{0.0, FlowSpec{2, 1, 1, 1}, 1.0});
  }
  Rng rng(2);
  const SimStats clos = simulate_clos(net, trace, SimPolicy::kEcmp, rng);
  const SimStats macro = simulate_macro(ms, trace);
  EXPECT_GE(clos.mean_fct, macro.mean_fct - 1e-9);
}

TEST(Sim, LeastLoadedBeatsUnluckyEcmpOnParallelFlows) {
  // n parallel ToR-pair flows: least-loaded spreads them across middles and
  // every flow finishes at its size; ECMP sometimes collides.
  const int n = 4;
  const ClosNetwork net = ClosNetwork::paper(n);
  Trace trace;
  for (int j = 1; j <= n; ++j) {
    trace.push_back(FlowArrival{0.0, FlowSpec{1, j, 2, j}, 1.0});
  }
  Rng rng(3);
  const SimStats ll = simulate_clos(net, trace, SimPolicy::kLeastLoaded, rng);
  for (double fct : ll.fcts) EXPECT_NEAR(fct, 1.0, 1e-9);
}

TEST(Sim, StatsPercentilesOrdered) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  TraceParams params;
  params.fabric = Fabric{4, 2};
  params.num_flows = 60;
  params.arrival_rate = 3.0;
  Rng rng(4);
  const SimStats stats = simulate_macro(ms, poisson_trace(params, rng));
  EXPECT_EQ(stats.completed, 60u);
  EXPECT_LE(stats.p50_fct, stats.p99_fct);
  EXPECT_LE(stats.p99_fct, stats.max_fct + 1e-12);
  EXPECT_GE(stats.mean_slowdown, 1.0 - 1e-9);
}

TEST(SimScheduled, MatchedFlowsRunAtFullRate) {
  // The Theorem 3.4 gadget arriving at t=0: scheduling finishes both type 1
  // flows at t=1 and the type 2 flow at t=2 (vs all at t=2 under max-min).
  const MacroSwitch ms = MacroSwitch::paper(1);
  Trace trace = {FlowArrival{0.0, FlowSpec{1, 1, 1, 1}, 1.0},
                 FlowArrival{0.0, FlowSpec{2, 1, 2, 1}, 1.0},
                 FlowArrival{0.0, FlowSpec{2, 1, 1, 1}, 1.0}};
  const SimStats sched = simulate_macro_scheduled(ms, trace);
  EXPECT_NEAR(sched.fcts[0], 1.0, 1e-9);
  EXPECT_NEAR(sched.fcts[1], 1.0, 1e-9);
  EXPECT_NEAR(sched.fcts[2], 2.0, 1e-9);

  const SimStats shared = simulate_macro(ms, trace);
  EXPECT_LT(sched.mean_fct, shared.mean_fct);
  EXPECT_NEAR(sched.finish_time, shared.finish_time, 1e-9);
}

TEST(SimScheduled, LateArrivalPreemptsViaRematch) {
  // A long flow runs alone; a short flow on disjoint endpoints arrives later
  // and must start immediately (the re-matched schedule includes both).
  const MacroSwitch ms = MacroSwitch::paper(2);
  Trace trace = {FlowArrival{0.0, FlowSpec{1, 1, 3, 1}, 5.0},
                 FlowArrival{1.0, FlowSpec{2, 1, 4, 1}, 1.0}};
  const SimStats sched = simulate_macro_scheduled(ms, trace);
  EXPECT_NEAR(sched.fcts[0], 5.0, 1e-9);
  EXPECT_NEAR(sched.fcts[1], 1.0, 1e-9);
}

TEST(SimScheduled, AllFlowsEventuallyComplete) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  TraceParams params;
  params.fabric = Fabric{4, 2};
  params.num_flows = 80;
  params.arrival_rate = 4.0;
  params.endpoints = EndpointPattern::kIncast;  // heavy contention
  Rng rng(21);
  const SimStats sched = simulate_macro_scheduled(ms, poisson_trace(params, rng));
  EXPECT_EQ(sched.completed, 80u);
  for (double fct : sched.fcts) EXPECT_GT(fct, 0.0);
}

// Property: FCT invariants on random traces — every flow's FCT is at least
// its size (rates never exceed 1), finish time covers the last completion,
// and the ideal macro-switch is never slower on mean FCT than any Clos
// routing of the same trace.
class SimInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SimInvariants, FctBoundsAndMacroDominance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1303 + 17);
  const int n = 1 + static_cast<int>(rng.next_below(2));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  TraceParams params;
  params.fabric = Fabric{2 * n, n};
  params.num_flows = 30 + rng.next_below(40);
  params.arrival_rate = 2.0 + rng.next_double() * 4.0;
  params.sizes = rng.next_bool() ? SizeDistribution::kExponential
                                 : SizeDistribution::kBimodal;
  const Trace trace = poisson_trace(params, rng);

  Rng rng2(GetParam());
  const SimStats clos = simulate_clos(net, trace, SimPolicy::kEcmp, rng2);
  const SimStats macro = simulate_macro(ms, trace);
  ASSERT_EQ(clos.completed, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(clos.fcts[i], trace[i].size - 1e-9);
    EXPECT_GE(macro.fcts[i], trace[i].size - 1e-9);
  }
  EXPECT_GE(clos.mean_fct, macro.mean_fct - 1e-6);
  double max_end = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    max_end = std::max(max_end, trace[i].time + macro.fcts[i]);
  }
  EXPECT_NEAR(macro.finish_time, max_end, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SimInvariants, ::testing::Range(0, 12));

TEST(Sim, SummarizeEmpty) {
  const SimStats stats = summarize_fcts({}, {}, 0.0);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.mean_fct, 0.0);
}

TEST(Sim, SummarizeMismatchThrows) {
  EXPECT_THROW(summarize_fcts({1.0}, {}, 1.0), ContractViolation);
}

}  // namespace
}  // namespace closfair
