#include "net/dot.hpp"

#include <gtest/gtest.h>

namespace closfair {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Dot, TopologyExportContainsAllNodesAndLinks) {
  const ClosNetwork net = ClosNetwork::paper(1);
  const std::string dot = to_dot(net.topology());
  EXPECT_NE(dot.find("digraph closfair {"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  // Every node name appears.
  for (const char* name : {"s1^1", "t2^1", "I1", "I2", "M1", "O1", "O2"}) {
    EXPECT_NE(dot.find(std::string{"\""} + name + "\""), std::string::npos) << name;
  }
  // One gray edge per link.
  EXPECT_EQ(count_occurrences(dot, "color=gray"), net.topology().num_links());
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, CapacityLabelsToggle) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  DotOptions with;
  const std::string labeled = to_dot(ms.topology(), with);
  EXPECT_NE(labeled.find("label=\"inf\""), std::string::npos);  // unbounded inner links
  EXPECT_NE(labeled.find("label=\"1\""), std::string::npos);    // unit edge links

  DotOptions without;
  without.show_capacities = false;
  const std::string plain = to_dot(ms.topology(), without);
  EXPECT_EQ(plain.find("label=\"inf\""), std::string::npos);
}

TEST(Dot, RoutingOverlayDrawsEachFlow) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}, FlowSpec{2, 2, 4, 1}});
  const Routing routing = expand_routing(net, flows, {1, 2});
  const std::string dot = to_dot(net.topology(), flows, routing);
  // Each flow path contributes 4 colored segments; flow labels appear once.
  EXPECT_NE(dot.find("label=\"f0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"f1\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "penwidth=1.6"), 8u);
}

TEST(Dot, OverlaySizeMismatchThrows) {
  const ClosNetwork net = ClosNetwork::paper(1);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}});
  EXPECT_THROW(to_dot(net.topology(), flows, Routing{}), ContractViolation);
}

}  // namespace
}  // namespace closfair
