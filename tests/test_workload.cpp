#include "workload/stochastic.hpp"
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>

namespace closfair {
namespace {

bool in_bounds(const FlowSpec& sp, const Fabric& fabric) {
  return sp.src_tor >= 1 && sp.src_tor <= fabric.num_tors && sp.src_server >= 1 &&
         sp.src_server <= fabric.servers_per_tor && sp.dst_tor >= 1 &&
         sp.dst_tor <= fabric.num_tors && sp.dst_server >= 1 &&
         sp.dst_server <= fabric.servers_per_tor;
}

TEST(Workload, UniformRandomBounds) {
  const Fabric fabric{6, 3};
  Rng rng(1);
  const FlowCollection flows = uniform_random(fabric, 200, rng);
  ASSERT_EQ(flows.size(), 200u);
  for (const auto& sp : flows) EXPECT_TRUE(in_bounds(sp, fabric));
}

TEST(Workload, PermutationIsBijective) {
  const Fabric fabric{4, 2};
  Rng rng(2);
  const FlowCollection flows = random_permutation(fabric, rng);
  ASSERT_EQ(flows.size(), 8u);
  std::set<std::pair<int, int>> sources;
  std::set<std::pair<int, int>> dests;
  for (const auto& sp : flows) {
    EXPECT_TRUE(in_bounds(sp, fabric));
    sources.insert({sp.src_tor, sp.src_server});
    dests.insert({sp.dst_tor, sp.dst_server});
  }
  EXPECT_EQ(sources.size(), 8u);
  EXPECT_EQ(dests.size(), 8u);
}

TEST(Workload, ZipfSkewsDestinations) {
  const Fabric fabric{8, 4};
  Rng rng(3);
  const FlowCollection flows = zipf_destinations(fabric, 4000, 1.3, rng);
  std::size_t to_first = 0;
  for (const auto& sp : flows) {
    EXPECT_TRUE(in_bounds(sp, fabric));
    if (sp.dst_tor == 1 && sp.dst_server == 1) ++to_first;
  }
  // Rank-1 destination receives far more than the uniform share (4000/32).
  EXPECT_GT(to_first, 600u);
}

TEST(Workload, IncastTargetsOneDestination) {
  const Fabric fabric{4, 2};
  Rng rng(4);
  const FlowCollection flows = incast(fabric, 30, 3, 2, rng);
  ASSERT_EQ(flows.size(), 30u);
  for (const auto& sp : flows) {
    EXPECT_EQ(sp.dst_tor, 3);
    EXPECT_EQ(sp.dst_server, 2);
  }
  EXPECT_THROW(incast(fabric, 5, 9, 1, rng), ContractViolation);
}

TEST(Workload, HotspotFractionRespected) {
  const Fabric fabric{10, 2};
  Rng rng(5);
  const FlowCollection flows = hotspot(fabric, 4000, 7, 0.6, rng);
  std::size_t hot = 0;
  for (const auto& sp : flows) {
    if (sp.dst_tor == 7) ++hot;
  }
  // 60% forced plus ~4% uniform spill.
  EXPECT_NEAR(static_cast<double>(hot) / 4000.0, 0.64, 0.05);
  EXPECT_THROW(hotspot(fabric, 5, 1, 1.5, rng), ContractViolation);
}

TEST(Workload, StrideWrapsAround) {
  const Fabric fabric{2, 2};  // 4 servers
  const FlowCollection flows = stride(fabric, 1);
  ASSERT_EQ(flows.size(), 4u);
  // Server (1,1) -> (1,2); (1,2) -> (2,1); (2,2) wraps to (1,1).
  EXPECT_EQ(flows[0].dst_tor, 1);
  EXPECT_EQ(flows[0].dst_server, 2);
  EXPECT_EQ(flows[1].dst_tor, 2);
  EXPECT_EQ(flows[1].dst_server, 1);
  EXPECT_EQ(flows[3].dst_tor, 1);
  EXPECT_EQ(flows[3].dst_server, 1);
  // Negative strides also wrap.
  const FlowCollection back = stride(fabric, -1);
  EXPECT_EQ(back[0].dst_tor, 2);
  EXPECT_EQ(back[0].dst_server, 2);
}

TEST(Workload, TorAllToAllShape) {
  const Fabric fabric{3, 2};
  const FlowCollection flows = tor_all_to_all(fabric);
  EXPECT_EQ(flows.size(), 6u);  // 3 ToRs x 2 peers
  for (const auto& sp : flows) {
    EXPECT_NE(sp.src_tor, sp.dst_tor);
    EXPECT_TRUE(in_bounds(sp, fabric));
  }
}

TEST(Trace, PoissonSortedAndSized) {
  TraceParams params;
  params.fabric = Fabric{4, 2};
  params.arrival_rate = 5.0;
  params.num_flows = 500;
  params.mean_size = 2.0;
  Rng rng(6);
  const Trace trace = poisson_trace(params, rng);
  ASSERT_EQ(trace.size(), 500u);
  double prev = 0.0;
  double total_size = 0.0;
  for (const auto& a : trace) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GT(a.size, 0.0);
    total_size += a.size;
    EXPECT_TRUE(in_bounds(a.spec, params.fabric));
  }
  // Mean inter-arrival 1/5 over 500 flows -> last arrival near 100.
  EXPECT_NEAR(trace.back().time, 100.0, 20.0);
  EXPECT_NEAR(total_size / 500.0, 2.0, 0.5);
}

TEST(Trace, FixedSizes) {
  TraceParams params;
  params.num_flows = 50;
  params.sizes = SizeDistribution::kFixed;
  params.mean_size = 3.0;
  Rng rng(7);
  for (const auto& a : poisson_trace(params, rng)) EXPECT_DOUBLE_EQ(a.size, 3.0);
}

TEST(Trace, BimodalPreservesMean) {
  TraceParams params;
  params.num_flows = 20000;
  params.sizes = SizeDistribution::kBimodal;
  params.mean_size = 1.0;
  Rng rng(8);
  double total = 0.0;
  for (const auto& a : poisson_trace(params, rng)) total += a.size;
  EXPECT_NEAR(total / 20000.0, 1.0, 0.05);
}

TEST(Trace, IncastEndpoints) {
  TraceParams params;
  params.num_flows = 40;
  params.endpoints = EndpointPattern::kIncast;
  Rng rng(9);
  for (const auto& a : poisson_trace(params, rng)) {
    EXPECT_EQ(a.spec.dst_tor, 1);
    EXPECT_EQ(a.spec.dst_server, 1);
  }
}

}  // namespace
}  // namespace closfair
