#include "workload/stochastic.hpp"
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>

namespace closfair {
namespace {

bool in_bounds(const FlowSpec& sp, const Fabric& fabric) {
  return sp.src_tor >= 1 && sp.src_tor <= fabric.num_tors && sp.src_server >= 1 &&
         sp.src_server <= fabric.servers_per_tor && sp.dst_tor >= 1 &&
         sp.dst_tor <= fabric.num_tors && sp.dst_server >= 1 &&
         sp.dst_server <= fabric.servers_per_tor;
}

TEST(Workload, UniformRandomBounds) {
  const Fabric fabric{6, 3};
  Rng rng(1);
  const FlowCollection flows = uniform_random(fabric, 200, rng);
  ASSERT_EQ(flows.size(), 200u);
  for (const auto& sp : flows) EXPECT_TRUE(in_bounds(sp, fabric));
}

TEST(Workload, PermutationIsBijective) {
  const Fabric fabric{4, 2};
  Rng rng(2);
  const FlowCollection flows = random_permutation(fabric, rng);
  ASSERT_EQ(flows.size(), 8u);
  std::set<std::pair<int, int>> sources;
  std::set<std::pair<int, int>> dests;
  for (const auto& sp : flows) {
    EXPECT_TRUE(in_bounds(sp, fabric));
    sources.insert({sp.src_tor, sp.src_server});
    dests.insert({sp.dst_tor, sp.dst_server});
  }
  EXPECT_EQ(sources.size(), 8u);
  EXPECT_EQ(dests.size(), 8u);
}

TEST(Workload, ZipfSkewsDestinations) {
  const Fabric fabric{8, 4};
  Rng rng(3);
  const FlowCollection flows = zipf_destinations(fabric, 4000, 1.3, rng);
  std::size_t to_first = 0;
  for (const auto& sp : flows) {
    EXPECT_TRUE(in_bounds(sp, fabric));
    if (sp.dst_tor == 1 && sp.dst_server == 1) ++to_first;
  }
  // Rank-1 destination receives far more than the uniform share (4000/32).
  EXPECT_GT(to_first, 600u);
}

TEST(Workload, IncastTargetsOneDestination) {
  const Fabric fabric{4, 2};
  Rng rng(4);
  const FlowCollection flows = incast(fabric, 30, 3, 2, rng);
  ASSERT_EQ(flows.size(), 30u);
  for (const auto& sp : flows) {
    EXPECT_EQ(sp.dst_tor, 3);
    EXPECT_EQ(sp.dst_server, 2);
  }
  EXPECT_THROW(incast(fabric, 5, 9, 1, rng), ContractViolation);
}

TEST(Workload, HotspotFractionRespected) {
  const Fabric fabric{10, 2};
  Rng rng(5);
  const FlowCollection flows = hotspot(fabric, 4000, 7, 0.6, rng);
  std::size_t hot = 0;
  for (const auto& sp : flows) {
    if (sp.dst_tor == 7) ++hot;
  }
  // 60% forced plus ~4% uniform spill.
  EXPECT_NEAR(static_cast<double>(hot) / 4000.0, 0.64, 0.05);
  EXPECT_THROW(hotspot(fabric, 5, 1, 1.5, rng), ContractViolation);
}

TEST(Workload, StrideWrapsAround) {
  const Fabric fabric{2, 2};  // 4 servers
  const FlowCollection flows = stride(fabric, 1);
  ASSERT_EQ(flows.size(), 4u);
  // Server (1,1) -> (1,2); (1,2) -> (2,1); (2,2) wraps to (1,1).
  EXPECT_EQ(flows[0].dst_tor, 1);
  EXPECT_EQ(flows[0].dst_server, 2);
  EXPECT_EQ(flows[1].dst_tor, 2);
  EXPECT_EQ(flows[1].dst_server, 1);
  EXPECT_EQ(flows[3].dst_tor, 1);
  EXPECT_EQ(flows[3].dst_server, 1);
  // Negative strides also wrap.
  const FlowCollection back = stride(fabric, -1);
  EXPECT_EQ(back[0].dst_tor, 2);
  EXPECT_EQ(back[0].dst_server, 2);
}

TEST(Workload, TorAllToAllShape) {
  const Fabric fabric{3, 2};
  const FlowCollection flows = tor_all_to_all(fabric);
  EXPECT_EQ(flows.size(), 6u);  // 3 ToRs x 2 peers
  for (const auto& sp : flows) {
    EXPECT_NE(sp.src_tor, sp.dst_tor);
    EXPECT_TRUE(in_bounds(sp, fabric));
  }
}

TEST(Trace, PoissonSortedAndSized) {
  TraceParams params;
  params.fabric = Fabric{4, 2};
  params.arrival_rate = 5.0;
  params.num_flows = 500;
  params.mean_size = 2.0;
  Rng rng(6);
  const Trace trace = poisson_trace(params, rng);
  ASSERT_EQ(trace.size(), 500u);
  double prev = 0.0;
  double total_size = 0.0;
  for (const auto& a : trace) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GT(a.size, 0.0);
    total_size += a.size;
    EXPECT_TRUE(in_bounds(a.spec, params.fabric));
  }
  // Mean inter-arrival 1/5 over 500 flows -> last arrival near 100.
  EXPECT_NEAR(trace.back().time, 100.0, 20.0);
  EXPECT_NEAR(total_size / 500.0, 2.0, 0.5);
}

TEST(Trace, FixedSizes) {
  TraceParams params;
  params.num_flows = 50;
  params.sizes = SizeDistribution::kFixed;
  params.mean_size = 3.0;
  Rng rng(7);
  for (const auto& a : poisson_trace(params, rng)) EXPECT_DOUBLE_EQ(a.size, 3.0);
}

TEST(Trace, BimodalPreservesMean) {
  TraceParams params;
  params.num_flows = 20000;
  params.sizes = SizeDistribution::kBimodal;
  params.mean_size = 1.0;
  Rng rng(8);
  double total = 0.0;
  for (const auto& a : poisson_trace(params, rng)) total += a.size;
  EXPECT_NEAR(total / 20000.0, 1.0, 0.05);
}

TEST(Trace, IncastEndpoints) {
  TraceParams params;
  params.num_flows = 40;
  params.endpoints = EndpointPattern::kIncast;
  Rng rng(9);
  for (const auto& a : poisson_trace(params, rng)) {
    EXPECT_EQ(a.spec.dst_tor, 1);
    EXPECT_EQ(a.spec.dst_server, 1);
  }
}

// ---------------------------------------------------------------------------
// Property suite: every random generator, across many seeds — bounds hold,
// no generator ever emits a self-flow, and equal seeds give equal output.
// ---------------------------------------------------------------------------

bool is_self_flow(const FlowSpec& sp) {
  return sp.src_tor == sp.dst_tor && sp.src_server == sp.dst_server;
}

TEST(WorkloadProperty, NoGeneratorEmitsSelfFlows) {
  const Fabric fabrics[] = {{2, 1}, {4, 2}, {6, 3}};
  for (const Fabric& fabric : fabrics) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(seed);
      for (const auto& sp : uniform_random(fabric, 50, rng)) {
        EXPECT_FALSE(is_self_flow(sp)) << "uniform_random seed " << seed;
        EXPECT_TRUE(in_bounds(sp, fabric));
      }
      for (const auto& sp : random_permutation(fabric, rng)) {
        EXPECT_FALSE(is_self_flow(sp)) << "random_permutation seed " << seed;
        EXPECT_TRUE(in_bounds(sp, fabric));
      }
      for (const auto& sp : zipf_destinations(fabric, 50, 1.2, rng)) {
        EXPECT_FALSE(is_self_flow(sp)) << "zipf_destinations seed " << seed;
        EXPECT_TRUE(in_bounds(sp, fabric));
      }
      for (const auto& sp : incast(fabric, 25, 1, 1, rng)) {
        EXPECT_FALSE(is_self_flow(sp)) << "incast seed " << seed;
        EXPECT_TRUE(in_bounds(sp, fabric));
      }
      for (const auto& sp : hotspot(fabric, 50, fabric.num_tors, 0.7, rng)) {
        EXPECT_FALSE(is_self_flow(sp)) << "hotspot seed " << seed;
        EXPECT_TRUE(in_bounds(sp, fabric));
      }
    }
  }
}

TEST(WorkloadProperty, PermutationIsDerangementOnRegressionSeeds) {
  // Before the derangement fix these seeds produced permutations with fixed
  // points on an 8-server fabric — i.e. self-flows under admission control.
  const Fabric fabric{4, 2};
  for (std::uint64_t seed : {4u, 5u, 6u, 7u, 9u, 10u, 12u, 14u}) {
    Rng rng(seed);
    const FlowCollection flows = random_permutation(fabric, rng);
    ASSERT_EQ(flows.size(), 8u);
    std::set<std::pair<int, int>> dests;
    for (const auto& sp : flows) {
      EXPECT_FALSE(is_self_flow(sp)) << "fixed point at seed " << seed;
      dests.insert({sp.dst_tor, sp.dst_server});
    }
    EXPECT_EQ(dests.size(), 8u) << "not a permutation at seed " << seed;
  }
}

TEST(WorkloadProperty, GeneratorsAreDeterministicPerSeed) {
  const Fabric fabric{4, 2};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng a(seed);
    Rng b(seed);
    EXPECT_EQ(uniform_random(fabric, 40, a), uniform_random(fabric, 40, b));
    EXPECT_EQ(random_permutation(fabric, a), random_permutation(fabric, b));
    EXPECT_EQ(zipf_destinations(fabric, 40, 1.1, a), zipf_destinations(fabric, 40, 1.1, b));
    EXPECT_EQ(incast(fabric, 20, 2, 1, a), incast(fabric, 20, 2, 1, b));
    EXPECT_EQ(hotspot(fabric, 40, 3, 0.5, a), hotspot(fabric, 40, 3, 0.5, b));
  }
}

TEST(WorkloadProperty, IncastExcludesDestinationFromSenderPool) {
  const Fabric fabric{4, 2};
  Rng rng(17);
  std::set<std::pair<int, int>> sources;
  const FlowCollection flows = incast(fabric, 2000, 3, 2, rng);
  ASSERT_EQ(flows.size(), 2000u);  // exactly `senders` real fabric flows
  for (const auto& sp : flows) {
    EXPECT_FALSE(sp.src_tor == 3 && sp.src_server == 2);
    sources.insert({sp.src_tor, sp.src_server});
  }
  // Every one of the other 7 servers shows up as a sender.
  EXPECT_EQ(sources.size(), 7u);
}

TEST(WorkloadProperty, HotspotForcedFractionTerminates) {
  // hot_fraction = 1 with a single hot server: the only self-flow escape is
  // resampling the source, which must terminate and yield real flows.
  const Fabric fabric{2, 1};
  Rng rng(3);
  const FlowCollection flows = hotspot(fabric, 50, 1, 1.0, rng);
  ASSERT_EQ(flows.size(), 50u);
  for (const auto& sp : flows) {
    EXPECT_EQ(sp.src_tor, 2);  // only non-hot server can send
    EXPECT_EQ(sp.dst_tor, 1);
  }
}

TEST(WorkloadProperty, StrideIsBijectiveForEveryStride) {
  const Fabric fabric{3, 2};  // 6 servers
  for (int s : {-7, -1, 0, 1, 2, 5, 6, 13}) {
    const FlowCollection flows = stride(fabric, s);
    ASSERT_EQ(flows.size(), 6u);
    std::set<std::pair<int, int>> sources;
    std::set<std::pair<int, int>> dests;
    for (const auto& sp : flows) {
      EXPECT_TRUE(in_bounds(sp, fabric));
      sources.insert({sp.src_tor, sp.src_server});
      dests.insert({sp.dst_tor, sp.dst_server});
    }
    EXPECT_EQ(sources.size(), 6u) << "stride " << s;
    EXPECT_EQ(dests.size(), 6u) << "stride " << s;
  }
}

TEST(WorkloadProperty, SingleServerFabricThrows) {
  const Fabric tiny{1, 1};
  Rng rng(1);
  EXPECT_THROW(uniform_random(tiny, 5, rng), ContractViolation);
  EXPECT_THROW(random_permutation(tiny, rng), ContractViolation);
  EXPECT_THROW(zipf_destinations(tiny, 5, 1.0, rng), ContractViolation);
  EXPECT_THROW(incast(tiny, 5, 1, 1, rng), ContractViolation);
  EXPECT_THROW(hotspot(tiny, 5, 1, 0.5, rng), ContractViolation);
}

TEST(TraceProperty, NoEndpointPatternEmitsSelfFlows) {
  for (EndpointPattern pattern :
       {EndpointPattern::kUniform, EndpointPattern::kZipfDst, EndpointPattern::kIncast}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      TraceParams params;
      params.fabric = Fabric{4, 2};
      params.num_flows = 100;
      params.endpoints = pattern;
      Rng rng(seed);
      for (const auto& a : poisson_trace(params, rng)) {
        EXPECT_FALSE(is_self_flow(a.spec));
        EXPECT_TRUE(in_bounds(a.spec, params.fabric));
      }
    }
  }
}

}  // namespace
}  // namespace closfair
