#include "routing/rearrange.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"
#include "flow/allocation.hpp"
#include "net/macroswitch.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

// A Clos with plenty of middles for rearrangement studies: m middles over
// `tors` ToRs with `servers` servers each.
ClosNetwork wide_clos(int middles, int tors, int servers) {
  return ClosNetwork(ClosNetwork::Params{middles, tors, servers, Rational{1}});
}

TEST(Rearrange, SingleFlowUsesOneMiddle) {
  const ClosNetwork net = wide_clos(4, 2, 1);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}});
  const auto result = first_fit_rearrange(net, flows, {Rational{1}});
  EXPECT_EQ(result.middles_used, 1);
  EXPECT_EQ(result.assignment, (MiddleAssignment{1}));
}

TEST(Rearrange, ParallelUnitFlowsNeedDistinctMiddles) {
  // Three unit-rate flows between the same ToR pair need three middles.
  const ClosNetwork net = wide_clos(5, 2, 3);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 2, 2, 2}, FlowSpec{1, 3, 2, 3}});
  const std::vector<Rational> rates(3, Rational{1});
  const auto result = first_fit_rearrange(net, flows, rates);
  EXPECT_EQ(result.middles_used, 3);

  const auto exact = min_middles_exact(net, flows, rates);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(*exact, 3);
}

TEST(Rearrange, FractionalRatesPack) {
  // Four flows at 1/2 between one ToR pair fit into two middles.
  const ClosNetwork net = wide_clos(6, 2, 4);
  FlowCollection specs;
  for (int j = 1; j <= 4; ++j) specs.push_back(FlowSpec{1, j, 2, j});
  const FlowSet flows = instantiate(net, specs);
  const std::vector<Rational> rates(4, Rational{1, 2});
  const auto result = first_fit_rearrange(net, flows, rates);
  EXPECT_EQ(result.middles_used, 2);
  const auto exact = min_middles_exact(net, flows, rates);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(*exact, 2);
}

TEST(Rearrange, FirstFitCanBeSuboptimal) {
  // The classic bin-packing trap: rates 1/2, 1/2, 1/3, 1/3, 1/3 between one
  // pair. Optimal packs {1/2, 1/3} x2 ... no: 1/2+1/2 = 1 and 1/3*3 = 1 fit
  // in two middles. First-fit *decreasing* also finds two. Use non-sorted
  // order via a direct capacity argument instead: verify FFD matches exact
  // here (documenting that FFD is good on this family).
  const ClosNetwork net = wide_clos(6, 2, 5);
  FlowCollection specs;
  for (int j = 1; j <= 5; ++j) specs.push_back(FlowSpec{1, j, 2, j});
  const FlowSet flows = instantiate(net, specs);
  const std::vector<Rational> rates = {Rational{1, 2}, Rational{1, 2}, Rational{1, 3},
                                       Rational{1, 3}, Rational{1, 3}};
  const auto ffd = first_fit_rearrange(net, flows, rates);
  const auto exact = min_middles_exact(net, flows, rates);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(*exact, 2);
  EXPECT_GE(ffd.middles_used, *exact);
  EXPECT_LE(ffd.middles_used, 3);
}

// Edge-feasible rates for a random workload: the macro-switch max-min
// allocation is feasible on the edge links by construction (§2.1), which is
// the rearrangeability setting's precondition.
std::vector<Rational> macro_rates_for(const FlowCollection& specs, int tors, int servers) {
  const MacroSwitch ms(MacroSwitch::Params{tors, servers, Rational{1}});
  return max_min_fair<Rational>(ms, instantiate(ms, specs)).rates();
}

TEST(Rearrange, ResultIsFeasibleRouting) {
  const ClosNetwork net = wide_clos(8, 4, 3);
  Rng rng(9);
  const FlowCollection specs = uniform_random(Fabric{4, 3}, 15, rng);
  const FlowSet flows = instantiate(net, specs);
  const std::vector<Rational> rates = macro_rates_for(specs, 4, 3);
  const auto result = first_fit_rearrange(net, flows, rates);
  const Routing routing = expand_routing(net, flows, result.assignment);
  EXPECT_TRUE(is_feasible(net.topology(), routing, Allocation<Rational>(rates)));
}

TEST(Rearrange, LowerBoundIsSound) {
  const ClosNetwork net = wide_clos(8, 4, 3);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const FlowCollection specs = uniform_random(Fabric{4, 3}, 10, rng);
    const FlowSet flows = instantiate(net, specs);
    const std::vector<Rational> rates = macro_rates_for(specs, 4, 3);
    const int lb = middle_count_lower_bound(net, flows, rates);
    const auto exact = min_middles_exact(net, flows, rates);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(lb, *exact);
    const auto ffd = first_fit_rearrange(net, flows, rates);
    EXPECT_GE(ffd.middles_used, *exact);
  }
}

TEST(Rearrange, MacroMaxMinRatesNeedAtMostTwoNminusOneEmpirically) {
  // Probe the 2n-1 conjecture (§6): route the macro-switch max-min rates of
  // random workloads and check first-fit never needs more than 2n-1 middles
  // (n = servers per ToR).
  const int servers = 3;
  const int tors = 4;
  const ClosNetwork net = wide_clos(3 * servers, tors, servers);
  const MacroSwitch ms(MacroSwitch::Params{tors, servers, Rational{1}});
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const FlowCollection specs = uniform_random(Fabric{tors, servers}, 14, rng);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
    const FlowSet flows = instantiate(net, specs);
    const auto ffd = first_fit_rearrange(net, flows, macro.rates());
    EXPECT_LE(ffd.middles_used, 2 * servers - 1) << "trial " << trial;
  }
}

TEST(Rearrange, ThrowsWhenOutOfMiddles) {
  const ClosNetwork net = wide_clos(1, 2, 2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 2, 2, 2}});
  EXPECT_THROW(first_fit_rearrange(net, flows, {Rational{1}, Rational{1}}),
               ContractViolation);
}

TEST(Rearrange, MinMiddlesInfeasibleReturnsNullopt) {
  // Edge-infeasible rates: no middle count helps.
  const ClosNetwork net = wide_clos(4, 2, 1);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 1, 2, 1}});
  const auto exact = min_middles_exact(net, flows, {Rational{1}, Rational{1}});
  EXPECT_FALSE(exact.has_value());
}

TEST(Rearrange, RejectsBadInput) {
  const ClosNetwork net = wide_clos(2, 2, 1);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}});
  EXPECT_THROW(first_fit_rearrange(net, flows, {}), ContractViolation);
  EXPECT_THROW(first_fit_rearrange(net, flows, {Rational{-1}}), ContractViolation);
}

}  // namespace
}  // namespace closfair
