#include "net/macroswitch.hpp"

#include <gtest/gtest.h>

#include "net/clos.hpp"

namespace closfair {
namespace {

TEST(MacroSwitch, PaperDimensions) {
  for (int n : {1, 2, 3}) {
    const MacroSwitch ms = MacroSwitch::paper(n);
    EXPECT_EQ(ms.num_tors(), 2 * n);
    EXPECT_EQ(ms.servers_per_tor(), n);
    EXPECT_EQ(ms.num_sources(), 2 * n * n);
    // Nodes: 2n inputs + 2n outputs + 2*(2n^2) servers.
    EXPECT_EQ(ms.topology().num_nodes(), static_cast<std::size_t>(4 * n + 4 * n * n));
    // Links: 2*(2n^2) edge + (2n)^2 inner.
    EXPECT_EQ(ms.topology().num_links(), static_cast<std::size_t>(4 * n * n + 4 * n * n));
  }
}

TEST(MacroSwitch, InnerLinksUnbounded) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  for (int i = 1; i <= 4; ++i) {
    for (int k = 1; k <= 4; ++k) {
      const Link& l = ms.topology().link(ms.inner_link(i, k));
      EXPECT_TRUE(l.unbounded);
      EXPECT_EQ(l.from, ms.input_switch(i));
      EXPECT_EQ(l.to, ms.output_switch(k));
    }
  }
}

TEST(MacroSwitch, EdgeLinksUnitCapacity) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Link& s = ms.topology().link(ms.source_link(1, 2));
  EXPECT_FALSE(s.unbounded);
  EXPECT_EQ(s.capacity, Rational(1));
  const Link& t = ms.topology().link(ms.dest_link(4, 1));
  EXPECT_FALSE(t.unbounded);
  EXPECT_EQ(t.capacity, Rational(1));
}

TEST(MacroSwitch, UniquePathIsValid) {
  const MacroSwitch ms = MacroSwitch::paper(3);
  const NodeId src = ms.source(2, 3);
  const NodeId dst = ms.destination(5, 1);
  const Path p = ms.path(src, dst);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_TRUE(ms.topology().is_path(p, src, dst));
  EXPECT_EQ(p[0], ms.source_link(2, 3));
  EXPECT_EQ(p[1], ms.inner_link(2, 5));
  EXPECT_EQ(p[2], ms.dest_link(5, 1));
}

TEST(MacroSwitch, CoordRoundTrip) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  for (int i = 1; i <= ms.num_tors(); ++i) {
    for (int j = 1; j <= ms.servers_per_tor(); ++j) {
      const auto s = ms.source_coord(ms.source(i, j));
      EXPECT_EQ(s.tor, i);
      EXPECT_EQ(s.server, j);
      const auto t = ms.dest_coord(ms.destination(i, j));
      EXPECT_EQ(t.tor, i);
      EXPECT_EQ(t.server, j);
    }
  }
}

TEST(MacroSwitch, MatchesClosDimensions) {
  // MS_n must accept exactly the flow coordinates of C_n.
  const int n = 3;
  const MacroSwitch ms = MacroSwitch::paper(n);
  const ClosNetwork net = ClosNetwork::paper(n);
  EXPECT_EQ(ms.num_tors(), net.num_tors());
  EXPECT_EQ(ms.servers_per_tor(), net.servers_per_tor());
}

TEST(MacroSwitch, BoundsChecked) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  EXPECT_THROW(ms.source(3, 1), ContractViolation);
  EXPECT_THROW(ms.inner_link(0, 1), ContractViolation);
  EXPECT_THROW(ms.inner_link(1, 3), ContractViolation);
  EXPECT_THROW(MacroSwitch::paper(0), ContractViolation);
}

}  // namespace
}  // namespace closfair
