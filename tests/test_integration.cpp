// End-to-end integration tests: each one walks a full paper result through
// the public API — construction, macro analysis, routing search, Clos
// analysis, comparison — the way the bench harnesses and a downstream user
// would.
#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "core/analysis.hpp"
#include "core/theorems.hpp"
#include "fairness/waterfill.hpp"
#include "routing/doom_switch.hpp"
#include "routing/exhaustive.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "routing/replication.hpp"
#include "sim/event_sim.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

// R1 end-to-end: price of fairness on the adversarial family approaches 1/2.
TEST(Integration, R1PriceOfFairnessConvergesToHalf) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  Rational prev{1};
  for (int k : {1, 4, 16, 64, 256}) {
    const AdversarialInstance inst = theorem_3_4_instance(1, k);
    const auto a = analyze_macro(ms, instantiate(ms, inst.flows));
    EXPECT_EQ(a.price_of_fairness, predict_theorem_3_4(k).fairness_ratio);
    EXPECT_LT(a.price_of_fairness, prev);  // monotone toward 1/2
    EXPECT_GT(a.price_of_fairness, Rational(1, 2));
    prev = a.price_of_fairness;
  }
  // At k=256 we are within 1% of the bound.
  EXPECT_LT(prev, Rational(1, 2) + Rational(1, 100));
}

// R2 end-to-end at n=3: replication infeasible; the paper's witness routing
// is lex-dominated by the macro vector; heuristic search can't fix the type
// 3 flow either.
TEST(Integration, R2StarvationStory) {
  const int n = 3;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const AdversarialInstance inst = theorem_4_3_instance(n);
  const FlowSet flows = instantiate(net, inst.flows);

  // Macro rates are as Lemma 4.4 says.
  const auto macro = analyze_macro(ms, instantiate(ms, inst.flows));
  EXPECT_EQ(macro.maxmin.rates(), inst.macro_rates);

  // These rates cannot be replicated by any routing.
  const auto replication = find_feasible_routing(net, flows, inst.macro_rates);
  EXPECT_FALSE(replication.feasible);

  // The witness routing achieves the Lemma 4.6 allocation...
  const Comparison c = compare(net, ms, inst.flows, *inst.witness);
  EXPECT_EQ(c.lex_vs_macro, std::strong_ordering::less);
  // ...whose worst per-flow degradation is exactly the 1/n factor.
  EXPECT_EQ(c.min_rate_ratio, predict_theorem_4_3(n).starvation_factor);

  // Hill climbing from the witness cannot improve it lexicographically
  // (local optimality of the paper's construction).
  const auto climbed = lex_max_min_local_search(net, flows, *inst.witness);
  EXPECT_EQ(climbed.alloc.sorted(), c.clos.maxmin.sorted());
}

// R3 end-to-end: Doom-Switch throughput gain reaches 2(1-eps) while zeroing
// in on the type 2 flows.
TEST(Integration, R3DoomSwitchStory) {
  for (int n : {5, 7, 9}) {
    const int k = 3;
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const AdversarialInstance inst = theorem_5_4_instance(n, k);
    const FlowSet flows = instantiate(net, inst.flows);

    const auto doom = doom_switch(net, flows);
    const Comparison c = compare(net, ms, inst.flows, doom.middles);
    const Theorem54Prediction pred = predict_theorem_5_4(n, k);

    EXPECT_EQ(c.clos.throughput, pred.doom_throughput);
    EXPECT_EQ(c.throughput_ratio, pred.gain);
    EXPECT_LE(c.throughput_ratio, Rational(2));
    // Gain strictly above 2(1 - eps') for any eps' > eps: check the exact eps.
    EXPECT_EQ(Rational{1} - c.throughput_ratio / Rational{2}, pred.epsilon);
    // The type 2 flows pay: their rate ratio vs macro collapses.
    EXPECT_EQ(c.min_rate_ratio, pred.type2_rate / Rational(1, k + 1));
  }
}

// Lex-max-min and throughput-max-min genuinely diverge: on the stacked
// Theorem 5.4 instance (n=5, k=2), the macro rates (all 1/3) are replicable,
// so the lex optimum is the uniform vector with throughput 8/3 — while
// sacrificing the type 2 flows buys throughput 3 = n-2. Both optima verified
// by full enumeration.
TEST(Integration, ObjectivesDisagreeOnStackedGadgets) {
  const int n = 5;
  const int k = 2;
  const ClosNetwork net = ClosNetwork::paper(n);
  const AdversarialInstance inst = theorem_5_4_instance(n, k);
  const FlowSet flows = instantiate(net, inst.flows);

  ExhaustiveOptions lex_options;
  lex_options.stop_at_sorted = std::vector<Rational>(flows.size(), Rational{1, k + 1});
  const auto lex = lex_max_min_exhaustive(net, flows, lex_options);
  EXPECT_EQ(lex.alloc.sorted(), (*lex_options.stop_at_sorted));
  EXPECT_EQ(lex.alloc.throughput(), Rational(8, 3));

  const auto tput = throughput_max_min_exhaustive(net, flows);
  // Doom-Switch is a lower bound on the true optimum (Theorem 5.4 only
  // bounds it from above by 2 T^MmF).
  EXPECT_GE(tput.alloc.throughput(), predict_theorem_5_4(n, k).doom_throughput);
  EXPECT_LE(tput.alloc.throughput(), Rational{2} * Rational(8, 3));
  EXPECT_GT(tput.alloc.throughput(), lex.alloc.throughput());
  EXPECT_EQ(lex_compare_sorted(lex.alloc, tput.alloc), std::strong_ordering::greater);
}

// Stochastic sanity: on permutation traffic every objective agrees — the
// network is equivalent to its macro-switch (admission-control regime).
TEST(Integration, PermutationTrafficIsIdeal) {
  const int n = 3;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  Rng rng(17);
  const FlowCollection specs = random_permutation(Fabric{2 * n, n}, rng);
  const FlowSet flows = instantiate(net, specs);

  const auto doom = doom_switch(net, flows);
  const Comparison c = compare(net, ms, specs, doom.middles);
  EXPECT_EQ(c.throughput_ratio, Rational(1));
  EXPECT_EQ(c.min_rate_ratio, Rational(1));
  EXPECT_EQ(c.lex_vs_macro, std::strong_ordering::equal);
}

// Greedy routing with macro demands approximates the macro rates well on
// stochastic input (§6's observation), far better than the worst case 1/n.
TEST(Integration, GreedyApproximatesMacroOnStochasticInput) {
  const int n = 4;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  Rng rng(23);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    const FlowCollection specs = uniform_random(Fabric{2 * n, n}, 40, rng);
    const FlowSet flows = instantiate(net, specs);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
    std::vector<double> demands;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      demands.push_back(macro.rate(f).to_double());
    }
    const Comparison c = compare(net, ms, specs, greedy_routing(net, flows, demands));
    worst_ratio = std::min(worst_ratio, c.min_rate_ratio.to_double());
  }
  // Not a theorem — an empirical observation the paper reports: stochastic
  // inputs stay well above the adversarial 1/n = 0.25 floor.
  EXPECT_GT(worst_ratio, 0.4);
}

// Full pipeline including the simulator: run a trace through ECMP on C_2 and
// through MS_2, and confirm the macro reference is no slower on average.
TEST(Integration, SimulatorMacroReference) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  TraceParams params;
  params.fabric = Fabric{4, 2};
  params.num_flows = 120;
  params.arrival_rate = 4.0;
  Rng rng(29);
  const Trace trace = poisson_trace(params, rng);

  Rng rng2(31);
  const SimStats clos = simulate_clos(net, trace, SimPolicy::kEcmp, rng2);
  const SimStats macro = simulate_macro(ms, trace);
  EXPECT_EQ(clos.completed, macro.completed);
  EXPECT_GE(clos.mean_fct, macro.mean_fct - 1e-6);
}

}  // namespace
}  // namespace closfair
