#include "routing/relative_maxmin.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(RelativeMaxMin, PerfectReplicationGivesRatioOne) {
  // A permutation workload replicates macro rates exactly: worst ratio 1.
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(5);
  const FlowCollection specs =
      random_permutation(Fabric{net.num_tors(), net.servers_per_tor()}, rng);
  const FlowSet flows = instantiate(net, specs);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  const auto result = relative_max_min_exhaustive(net, flows, macro.rates());
  EXPECT_EQ(result.worst_ratio, Rational(1));
}

TEST(RelativeMaxMin, SearchMatchesExhaustiveOnExample23) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const FlowSet flows = instantiate(net, ex.instance.flows);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, ex.instance.flows));

  const auto exact = relative_max_min_exhaustive(net, flows, macro.rates());
  Rng rng(7);
  const auto heuristic = relative_max_min_search(net, flows, macro.rates(), rng, 6);
  // The heuristic cannot beat the exhaustive optimum lexicographically.
  EXPECT_NE(lex_compare(heuristic.ratios, exact.ratios), std::strong_ordering::greater);
  // For Example 2.3, the best worst-ratio is 3/4 — strictly better than the
  // 2/3 the lex-max-min routing A guarantees. A small data point on the
  // paper's §7 open question: relative max-min fairness and lex-max-min
  // fairness pick different routings.
  EXPECT_EQ(exact.worst_ratio, Rational(3, 4));
}

TEST(RelativeMaxMin, RatiosSortedAscending) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(11);
  const FlowCollection specs =
      uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 6, rng);
  const FlowSet flows = instantiate(net, specs);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  const auto result = relative_max_min_search(net, flows, macro.rates(), rng, 2);
  for (std::size_t i = 1; i < result.ratios.size(); ++i) {
    EXPECT_LE(result.ratios[i - 1], result.ratios[i]);
  }
  EXPECT_EQ(result.worst_ratio, result.ratios.front());
}

TEST(RelativeMaxMin, RejectsZeroMacroRates) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  Rng rng(1);
  EXPECT_THROW(relative_max_min_search(net, flows, {Rational{0}}, rng),
               ContractViolation);
  EXPECT_THROW(relative_max_min_exhaustive(net, flows, {}), ContractViolation);
}

TEST(RelativeMaxMin, StarvationInstanceRatioOneOverN) {
  // On the Theorem 4.3 instance, even optimizing for relative max-min cannot
  // save the type 3 flow: the best achievable worst-ratio stays 1/n-ish
  // because the macro rates themselves are not replicable. Heuristic run.
  const int n = 3;
  const ClosNetwork net = ClosNetwork::paper(n);
  const AdversarialInstance inst = theorem_4_3_instance(n);
  const FlowSet flows = instantiate(net, inst.flows);
  Rng rng(13);
  const auto result = relative_max_min_search(net, flows, inst.macro_rates, rng, 2, 2000);
  // No routing replicates everything (Theorem 4.2 reasoning), so the worst
  // ratio is strictly below 1; and it can't be worse than 1/(n+1) here
  // because the trivial all-one routing achieves at least that.
  EXPECT_LT(result.worst_ratio, Rational(1));
  EXPECT_GT(result.worst_ratio, Rational(0));
}

}  // namespace
}  // namespace closfair
