// Edge cases and cross-module interactions that don't belong to any single
// module's suite: generalized (non-paper) dimensions, parallel links,
// degenerate instances, fuzzed format round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include "fairness/waterfill.hpp"
#include "io/text_format.hpp"
#include "net/dot.hpp"
#include "net/fattree.hpp"
#include "routing/exhaustive.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(EdgeCases, GeneralizedMacroSwitchDimensions) {
  // 3 ToRs x 2 servers with capacity 2/3 — nothing paper-shaped about it.
  const MacroSwitch ms(MacroSwitch::Params{3, 2, Rational{2, 3}});
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 2}, FlowSpec{1, 1, 2, 1}});
  const auto alloc = max_min_fair<Rational>(ms, flows);
  // Both flows share the 2/3-capacity source link.
  EXPECT_EQ(alloc.rate(0), Rational(1, 3));
  EXPECT_EQ(alloc.rate(1), Rational(1, 3));
}

TEST(EdgeCases, OversubscribedClos) {
  // servers_per_tor > num_middles: a deliberately oversubscribed fabric.
  // 4 servers per ToR, 2 middles: ToR-to-ToR traffic caps at 2 units.
  const ClosNetwork net(ClosNetwork::Params{2, 2, 4, Rational{1}});
  FlowCollection specs;
  for (int j = 1; j <= 4; ++j) specs.push_back(FlowSpec{1, j, 2, j});
  const FlowSet flows = instantiate(net, specs);
  // All flows forced across the 2 uplinks: max-min gives 1/2 each.
  const auto alloc = max_min_fair<Rational>(net, flows, MiddleAssignment{1, 1, 2, 2});
  for (FlowIndex f = 0; f < flows.size(); ++f) EXPECT_EQ(alloc.rate(f), Rational(1, 2));
}

TEST(EdgeCases, WaterfillOnParallelLinks) {
  // A hand-built multigraph: two parallel links between a and b with
  // different capacities; two flows, one pinned to each link.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kSource);
  const NodeId b = topo.add_node("b", NodeKind::kDestination);
  const LinkId fat = topo.add_link(a, b, Rational{1});
  const LinkId thin = topo.add_link(a, b, Rational{1, 4});
  const FlowSet flows = {Flow{a, b}, Flow{a, b}};
  const Routing routing{std::vector<Path>{{fat}, {thin}}};
  const auto alloc = max_min_fair<Rational>(topo, flows, routing);
  EXPECT_EQ(alloc.rate(0), Rational(1));
  EXPECT_EQ(alloc.rate(1), Rational(1, 4));
}

TEST(EdgeCases, ExhaustiveOnSingleMiddleClos) {
  // C_1 has exactly one routing; both optimizers must agree instantly.
  const ClosNetwork net = ClosNetwork::paper(1);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}, FlowSpec{2, 1, 1, 1}});
  const auto lex = lex_max_min_exhaustive(net, flows);
  const auto tput = throughput_max_min_exhaustive(net, flows);
  EXPECT_EQ(lex.routings_evaluated, 1u);
  EXPECT_EQ(lex.alloc.rates(), tput.alloc.rates());
}

TEST(EdgeCases, DotExportOfFatTreeIsWellFormed) {
  const FatTree ft(4);
  const std::string dot = to_dot(ft.topology());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // Spot-check a core switch and a server by name.
  EXPECT_NE(dot.find("\"C2.1\""), std::string::npos);
  EXPECT_NE(dot.find("\"s4.2.1\""), std::string::npos);
  // Balanced braces (single digraph block).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

TEST(EdgeCases, SelfPairFlowsWithinOneTor) {
  // A flow from a ToR's source to the *same* ToR's destination still crosses
  // the middle stage in this model (directed three-stage Clos).
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 1, 1}});
  const Routing routing = expand_routing(net, flows, {2});
  routing.validate(net.topology(), flows);
  EXPECT_EQ(routing.path(0).size(), 4u);
  const auto alloc = max_min_fair<Rational>(net.topology(), flows, routing);
  EXPECT_EQ(alloc.rate(0), Rational(1));
}

// Fuzz: random instances survive format -> parse round-trips bit-exactly.
class FormatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzz, RoundTripIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1723 + 13);
  InstanceSpec spec;
  const int n = 1 + static_cast<int>(rng.next_below(4));
  spec.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
  const std::size_t count = 1 + rng.next_below(12);
  const FlowCollection flows = uniform_random(Fabric{2 * n, n}, count, rng);
  for (const FlowSpec& f : flows) {
    spec.flows.push_back(f);
    spec.rates.push_back(rng.next_bool(0.5)
                             ? std::optional<Rational>{Rational{1, rng.next_int(1, 5)}}
                             : std::nullopt);
  }
  const std::string text = format_instance(spec);
  const InstanceSpec reparsed = parse_instance(text);
  EXPECT_EQ(reparsed.flows, spec.flows);
  EXPECT_EQ(reparsed.rates, spec.rates);
  EXPECT_EQ(format_instance(reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FormatFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace closfair
