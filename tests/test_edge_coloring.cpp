#include "matching/edge_coloring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace closfair {
namespace {

TEST(EdgeColoring, EmptyGraph) {
  BipartiteMultigraph g(2, 2);
  EXPECT_TRUE(edge_coloring(g).empty());
}

TEST(EdgeColoring, SingleEdgeOneColor) {
  BipartiteMultigraph g(1, 1);
  g.add_edge(0, 0);
  const auto colors = edge_coloring(g);
  ASSERT_EQ(colors.size(), 1u);
  EXPECT_EQ(colors[0], 0);
  EXPECT_TRUE(is_proper_coloring(g, colors, 1));
}

TEST(EdgeColoring, ParallelEdgesNeedDistinctColors) {
  BipartiteMultigraph g(1, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  const auto colors = edge_coloring(g);
  EXPECT_TRUE(is_proper_coloring(g, colors, 3));
}

TEST(EdgeColoring, CompleteBipartiteK33) {
  // K_{3,3} is 3-regular: exactly 3 colors, each color a perfect matching.
  BipartiteMultigraph g(3, 3);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t r = 0; r < 3; ++r) g.add_edge(l, r);
  }
  const auto colors = edge_coloring(g);
  EXPECT_TRUE(is_proper_coloring(g, colors, 3));
  // Each color class has exactly 3 edges (a perfect matching of K_{3,3}).
  std::vector<int> count(3, 0);
  for (int c : colors) ++count[static_cast<std::size_t>(c)];
  for (int k : count) EXPECT_EQ(k, 3);
}

TEST(EdgeColoring, ForcesAlternatingChainFlip) {
  // Path u0-v0-u1-v1 colored greedily forces a Kempe-chain swap when the
  // closing edge arrives.
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  g.add_edge(0, 1);  // closes the 4-cycle
  const auto colors = edge_coloring(g);
  EXPECT_TRUE(is_proper_coloring(g, colors, 2));
}

TEST(EdgeColoring, ExtraColorsAllowed) {
  BipartiteMultigraph g(1, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  const auto colors = edge_coloring(g, 5);
  EXPECT_TRUE(is_proper_coloring(g, colors, 5));
}

TEST(EdgeColoring, TooFewColorsThrows) {
  BipartiteMultigraph g(1, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  EXPECT_THROW(edge_coloring(g, 1), ContractViolation);
}

TEST(IsProperColoring, RejectsBadColorings) {
  BipartiteMultigraph g(1, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_proper_coloring(g, {0, 0}, 2));   // clash at left 0
  EXPECT_FALSE(is_proper_coloring(g, {0, 2}, 2));   // color out of range
  EXPECT_FALSE(is_proper_coloring(g, {0}, 2));      // wrong size
  EXPECT_FALSE(is_proper_coloring(g, {-1, 0}, 2));  // negative color
  EXPECT_TRUE(is_proper_coloring(g, {1, 0}, 2));
}

// König's theorem, constructively: every bipartite multigraph gets a proper
// Δ-coloring, over a randomized family.
class KonigProperty : public ::testing::TestWithParam<int> {};

TEST_P(KonigProperty, DeltaColorsSuffice) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 3);
  const std::size_t nl = 1 + rng.next_below(8);
  const std::size_t nr = 1 + rng.next_below(8);
  const std::size_t m = rng.next_below(40);
  BipartiteMultigraph g(nl, nr);
  for (std::size_t e = 0; e < m; ++e) {
    g.add_edge(rng.next_below(nl), rng.next_below(nr));
  }
  const int delta = static_cast<int>(g.max_degree());
  const auto colors = edge_coloring(g);
  ASSERT_EQ(colors.size(), g.num_edges());
  EXPECT_TRUE(is_proper_coloring(g, colors, std::max(delta, 1)));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, KonigProperty, ::testing::Range(0, 60));

// The paper's footnote 5: in C_n, an n-coloring of G^C == a link-disjoint
// routing. Regular instance: each left/right vertex with degree exactly n.
TEST(EdgeColoring, RegularMultigraphUsesExactlyDelta) {
  Rng rng(1234);
  const std::size_t sides = 4;
  const int n = 3;
  // Build an n-regular bipartite multigraph as a union of n random perfect
  // matchings.
  BipartiteMultigraph g(sides, sides);
  for (int round = 0; round < n; ++round) {
    const auto perm = rng.permutation(sides);
    for (std::size_t l = 0; l < sides; ++l) g.add_edge(l, perm[l]);
  }
  EXPECT_EQ(g.max_degree(), static_cast<std::size_t>(n));
  const auto colors = edge_coloring(g);
  EXPECT_TRUE(is_proper_coloring(g, colors, n));
}

}  // namespace
}  // namespace closfair
