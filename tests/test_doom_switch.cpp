#include "routing/doom_switch.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "core/theorems.hpp"
#include "fairness/waterfill.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(DoomSwitch, MatchedFlowsAreLinkDisjoint) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(3);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 20, rng));
  const DoomSwitchResult result = doom_switch(net, flows);

  // Matched flows must not share any uplink or downlink: per (ToR, middle)
  // pair at most one matched flow in each direction.
  std::vector<int> up(net.topology().num_links(), 0);
  for (FlowIndex f : result.matched) {
    const auto s = net.source_coord(flows[f].src);
    const auto t = net.dest_coord(flows[f].dst);
    const int m = result.middles[f];
    ++up[static_cast<std::size_t>(net.uplink(s.tor, m))];
    ++up[static_cast<std::size_t>(net.downlink(m, t.tor))];
  }
  for (int count : up) EXPECT_LE(count, 1);
}

TEST(DoomSwitch, MatchingIsMaximum) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(5);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 15, rng));
  const DoomSwitchResult result = doom_switch(net, flows);
  const auto reference = maximum_matching(server_flow_graph(net, flows));
  EXPECT_EQ(result.matched.size(), reference.size());
}

TEST(DoomSwitch, UnmatchedFlowsShareDoomedMiddle) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(7);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 25, rng));
  const DoomSwitchResult result = doom_switch(net, flows);

  std::vector<bool> matched(flows.size(), false);
  for (FlowIndex f : result.matched) matched[f] = true;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    if (!matched[f]) {
      EXPECT_EQ(result.middles[f], result.doomed_middle);
    }
  }
  EXPECT_GE(result.doomed_middle, 1);
  EXPECT_LE(result.doomed_middle, net.num_middles());
}

TEST(DoomSwitch, DoomedMiddleCarriesFewestMatchedFlows) {
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(9);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 18, rng));
  const DoomSwitchResult result = doom_switch(net, flows);

  std::vector<std::size_t> per_middle(static_cast<std::size_t>(net.num_middles()) + 1, 0);
  for (FlowIndex f : result.matched) {
    ++per_middle[static_cast<std::size_t>(result.middles[f])];
  }
  for (int m = 1; m <= net.num_middles(); ++m) {
    EXPECT_LE(per_middle[static_cast<std::size_t>(result.doomed_middle)],
              per_middle[static_cast<std::size_t>(m)]);
  }
}

TEST(DoomSwitch, PaperExample53) {
  // Figure 4: in C_7 with one type 2 flow per gadget, the Doom-Switch routing
  // lifts throughput from 9/2 (macro max-min) to 5.
  const ClosNetwork net = ClosNetwork::paper(7);
  const AdversarialInstance inst = theorem_5_4_instance(7, 1);
  const FlowSet flows = instantiate(net, inst.flows);
  const DoomSwitchResult doom = doom_switch(net, flows);
  const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
  EXPECT_EQ(alloc.throughput(), Rational(5));

  // All six type 1 flows are matched and rise to 2/3; type 2 flows fall to
  // 1/3 on the doomed middle.
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    if (inst.labels[f] == "type1") {
      EXPECT_EQ(alloc.rate(f), Rational(2, 3));
    } else {
      EXPECT_EQ(alloc.rate(f), Rational(1, 3));
    }
  }
}

TEST(DoomSwitch, Theorem54RatesForLargerK) {
  // The general prediction: type 1 at 1 - 2/(n-1), type 2 at 2/(k(n-1)).
  for (int n : {5, 7}) {
    for (int k : {2, 4}) {
      const ClosNetwork net = ClosNetwork::paper(n);
      const AdversarialInstance inst = theorem_5_4_instance(n, k);
      const FlowSet flows = instantiate(net, inst.flows);
      const DoomSwitchResult doom = doom_switch(net, flows);
      const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
      const Theorem54Prediction pred = predict_theorem_5_4(n, k);
      EXPECT_EQ(alloc.throughput(), pred.doom_throughput) << "n=" << n << " k=" << k;
      for (FlowIndex f = 0; f < flows.size(); ++f) {
        if (inst.labels[f] == "type1") {
          EXPECT_EQ(alloc.rate(f), pred.type1_rate);
        } else {
          EXPECT_EQ(alloc.rate(f), pred.type2_rate);
        }
      }
    }
  }
}

TEST(DoomSwitch, EmptyFlowSet) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const DoomSwitchResult result = doom_switch(net, FlowSet{});
  EXPECT_TRUE(result.middles.empty());
  EXPECT_TRUE(result.matched.empty());
}

TEST(DoomSwitch, AllFlowsMatchedWhenPermutation) {
  // Permutation traffic: everything matched, nothing doomed.
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(13);
  const FlowSet flows = instantiate(
      net, random_permutation(Fabric{net.num_tors(), net.servers_per_tor()}, rng));
  const DoomSwitchResult result = doom_switch(net, flows);
  EXPECT_EQ(result.matched.size(), flows.size());
  // And the max-min allocation for this routing gives every flow rate 1.
  const auto alloc = max_min_fair<Rational>(net, flows, result.middles);
  for (FlowIndex f = 0; f < flows.size(); ++f) EXPECT_EQ(alloc.rate(f), Rational(1));
}

}  // namespace
}  // namespace closfair
