#include "lp/splittable.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/exhaustive.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Splittable, SingleFlowUsesOnePathWorth) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowCollection specs = {FlowSpec{1, 1, 3, 1}};
  const auto result = splittable_max_min(net, ms, specs);
  EXPECT_EQ(result.rates.rate(0), Rational(1));
  Rational total{0};
  for (const Rational& share : result.shares[0]) total += share;
  EXPECT_EQ(total, Rational(1));
}

TEST(Splittable, EmptyCollection) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const auto result = splittable_max_min(net, ms, {});
  EXPECT_EQ(result.rates.size(), 0u);
  EXPECT_TRUE(result.shares.empty());
}

TEST(Splittable, SplittingIsRequiredSomewhere) {
  // Theorem 4.2's instance: unsplittable routing cannot carry the macro
  // rates (proven by search elsewhere), but a fractional routing can —
  // the paper's core dichotomy, witnessed end to end.
  const int n = 3;
  const AdversarialInstance inst = theorem_4_2_instance(n);
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);

  const auto result = splittable_max_min(net, ms, inst.flows);
  EXPECT_EQ(result.rates.rates(), inst.macro_rates);
  const FlowSet flows = instantiate(net, inst.flows);
  EXPECT_TRUE(fractional_routing_feasible(net, flows, result.shares));

  // At least one flow genuinely splits (otherwise the integral routing
  // would exist, contradicting Theorem 4.2).
  bool some_flow_splits = false;
  for (const auto& shares : result.shares) {
    int used = 0;
    for (const Rational& s : shares) {
      if (!s.is_zero()) ++used;
    }
    if (used >= 2) some_flow_splits = true;
  }
  EXPECT_TRUE(some_flow_splits);
}

TEST(Splittable, SharesSumToRatesAndRespectCapacities) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const FlowCollection specs =
        uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 1 + rng.next_below(10),
                       rng);
    const auto result = splittable_max_min(net, ms, specs);
    const FlowSet flows = instantiate(net, specs);
    ASSERT_EQ(result.shares.size(), flows.size());
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      Rational total{0};
      for (const Rational& share : result.shares[f]) {
        EXPECT_FALSE(share.is_negative());
        total += share;
      }
      EXPECT_EQ(total, result.rates.rate(f));
    }
    EXPECT_TRUE(fractional_routing_feasible(net, flows, result.shares));
  }
}

TEST(Splittable, DominatesEveryUnsplittableRouting) {
  // The quantified gap: splittable == macro >= lex-max-min (exhaustive).
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const Example23 ex = example_2_3();
  const auto splittable = splittable_max_min(net, ms, ex.instance.flows);
  const auto lex = lex_max_min_exhaustive(net, instantiate(net, ex.instance.flows));
  EXPECT_EQ(lex_compare(splittable.rates.sorted(), lex.alloc.sorted()),
            std::strong_ordering::greater);
}

TEST(Splittable, FractionalCheckerRejectsBadShares) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 3, 1}});
  // Negative share.
  EXPECT_FALSE(fractional_routing_feasible(
      net, flows, {{Rational{-1, 2}, Rational{3, 2}}}));
  // Over capacity on the edge link (total 2 through a unit source link).
  EXPECT_FALSE(fractional_routing_feasible(net, flows, {{Rational{1}, Rational{1}}}));
  // Wrong arity.
  EXPECT_THROW(static_cast<void>(fractional_routing_feasible(net, flows, {{Rational{1}}})),
               ContractViolation);
}

TEST(Splittable, MismatchedDimensionsThrow) {
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(3);
  EXPECT_THROW(splittable_max_min(net, ms, {}), ContractViolation);
}

}  // namespace
}  // namespace closfair
