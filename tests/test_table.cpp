#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace closfair {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      23456"), std::string::npos);
}

TEST(TextTable, HeaderUnderline) {
  TextTable t({"ab", "cd"});
  const std::string out = t.render();
  // Underline spans both columns plus the gutter.
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), ContractViolation);
}

TEST(TextTable, NumRowsTracksAdds) {
  TextTable t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, StreamOperatorMatchesRender) {
  TextTable t({"k", "v"});
  t.add_row({"a", "b"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

TEST(FmtDouble, FixedPrecision) {
  EXPECT_EQ(fmt_double(0.5), "0.5000");
  EXPECT_EQ(fmt_double(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace closfair
