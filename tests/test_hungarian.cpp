#include "matching/hungarian.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace closfair {
namespace {

// Exponential oracle: best assignment by trying every row->column mapping.
double brute_force_best(const std::vector<std::vector<double>>& weight) {
  const std::size_t rows = weight.size();
  if (rows == 0) return 0.0;
  const std::size_t cols = weight[0].size();
  double best = 0.0;
  // Iterate over all mappings row -> column-or-skip via mixed radix.
  std::vector<std::size_t> choice(rows, 0);  // cols == skip
  while (true) {
    std::vector<bool> used(cols, false);
    double total = 0.0;
    bool valid = true;
    for (std::size_t r = 0; r < rows && valid; ++r) {
      if (choice[r] == cols) continue;
      if (used[choice[r]] || weight[r][choice[r]] <= 0.0) {
        valid = false;
      } else {
        used[choice[r]] = true;
        total += weight[r][choice[r]];
      }
    }
    if (valid) best = std::max(best, total);
    std::size_t pos = 0;
    while (pos < rows) {
      if (choice[pos] < cols) {
        ++choice[pos];
        break;
      }
      choice[pos] = 0;
      ++pos;
    }
    if (pos == rows) break;
  }
  return best;
}

TEST(Hungarian, EmptyAndTrivial) {
  EXPECT_TRUE(max_weight_matching({}).empty());
  const auto single = max_weight_matching({{5.0}});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 0u);
}

TEST(Hungarian, ZeroWeightMeansNoEdge) {
  const auto a = max_weight_matching({{0.0}});
  EXPECT_EQ(a[0], kUnassigned);
}

TEST(Hungarian, PrefersHeavyDiagonal) {
  const std::vector<std::vector<double>> w = {{10.0, 1.0}, {1.0, 10.0}};
  const auto a = max_weight_matching(w);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_DOUBLE_EQ(matching_weight(w, a), 20.0);
}

TEST(Hungarian, TakesCrossWhenBetter) {
  const std::vector<std::vector<double>> w = {{1.0, 10.0}, {10.0, 1.0}};
  const auto a = max_weight_matching(w);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
}

TEST(Hungarian, SacrificesLocalOptimum) {
  // Greedy would take (0,0)=9 and strand row 1; optimal is 8 + 7.
  const std::vector<std::vector<double>> w = {{9.0, 8.0}, {9.0, 0.0}};
  const auto a = max_weight_matching(w);
  EXPECT_DOUBLE_EQ(matching_weight(w, a), 17.0);
}

TEST(Hungarian, RectangularMatrices) {
  // More rows than columns.
  const std::vector<std::vector<double>> tall = {{3.0}, {5.0}, {4.0}};
  const auto a = max_weight_matching(tall);
  EXPECT_DOUBLE_EQ(matching_weight(tall, a), 5.0);
  // More columns than rows.
  const std::vector<std::vector<double>> wide = {{3.0, 5.0, 4.0}};
  const auto b = max_weight_matching(wide);
  EXPECT_EQ(b[0], 1u);
}

TEST(Hungarian, CardinalityBeyondWeightWhenPositive) {
  // Matching both rows (1+1) beats the single heavy edge only if weights
  // say so: here 5 > 1+1 and row 0's alternatives are 0 (no edge), so the
  // optimum is the single heavy edge.
  const std::vector<std::vector<double>> w = {{5.0, 0.0}, {5.0, 0.0}};
  const auto a = max_weight_matching(w);
  EXPECT_DOUBLE_EQ(matching_weight(w, a), 5.0);
}

TEST(Hungarian, RejectsBadInput) {
  EXPECT_THROW(max_weight_matching({{1.0}, {1.0, 2.0}}), ContractViolation);
  EXPECT_THROW(max_weight_matching({{-1.0}}), ContractViolation);
  EXPECT_THROW(matching_weight({{1.0}}, {0, 0}), ContractViolation);
}

class HungarianOracle : public ::testing::TestWithParam<int> {};

TEST_P(HungarianOracle, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 419 + 3);
  const std::size_t rows = 1 + rng.next_below(5);
  const std::size_t cols = 1 + rng.next_below(5);
  std::vector<std::vector<double>> w(rows, std::vector<double>(cols, 0.0));
  for (auto& row : w) {
    for (double& cell : row) {
      // ~40% no-edge, else integer weight 1..9 (exact doubles).
      cell = rng.next_bool(0.4) ? 0.0 : static_cast<double>(rng.next_int(1, 9));
    }
  }
  const auto a = max_weight_matching(w);
  EXPECT_DOUBLE_EQ(matching_weight(w, a), brute_force_best(w));
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, HungarianOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace closfair
