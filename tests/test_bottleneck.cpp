#include "fairness/bottleneck.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"

namespace closfair {
namespace {

// Fixture: the Example 2.3 macro-switch instance whose max-min allocation we
// know exactly.
struct Example23Fixture {
  MacroSwitch ms = MacroSwitch::paper(2);
  FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
           FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  Routing routing = macro_routing(ms, flows);
};

TEST(Bottleneck, CertifiesTrueMaxMinAllocation) {
  Example23Fixture fx;
  const Allocation<Rational> alloc({Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                    Rational{2, 3}, Rational{2, 3}, Rational{1}});
  EXPECT_TRUE(is_max_min_fair(fx.ms.topology(), fx.routing, alloc));
}

TEST(Bottleneck, RejectsFeasibleButUnfairAllocation) {
  Example23Fixture fx;
  // Halving the type 3 flow keeps feasibility but destroys its bottleneck.
  const Allocation<Rational> alloc({Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                    Rational{2, 3}, Rational{2, 3}, Rational{1, 2}});
  EXPECT_TRUE(is_feasible(fx.ms.topology(), fx.routing, alloc));
  EXPECT_FALSE(is_max_min_fair(fx.ms.topology(), fx.routing, alloc));
}

TEST(Bottleneck, RejectsInfeasibleAllocation) {
  Example23Fixture fx;
  const Allocation<Rational> alloc({Rational{1, 2}, Rational{1, 2}, Rational{1, 2},
                                    Rational{2, 3}, Rational{2, 3}, Rational{1}});
  EXPECT_FALSE(is_feasible(fx.ms.topology(), fx.routing, alloc));
  EXPECT_FALSE(is_max_min_fair(fx.ms.topology(), fx.routing, alloc));
}

TEST(Bottleneck, RejectsUniformlyScaledDownAllocation) {
  Example23Fixture fx;
  const Allocation<Rational> alloc({Rational{1, 6}, Rational{1, 6}, Rational{1, 6},
                                    Rational{1, 3}, Rational{1, 3}, Rational{1, 2}});
  EXPECT_FALSE(is_max_min_fair(fx.ms.topology(), fx.routing, alloc));
}

TEST(Bottleneck, LinksIdentifyPaperBottlenecks) {
  Example23Fixture fx;
  const Allocation<Rational> alloc({Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                    Rational{2, 3}, Rational{2, 3}, Rational{1}});
  const auto bn = bottleneck_links(fx.ms.topology(), fx.routing, alloc);
  ASSERT_EQ(bn.size(), 6u);
  // Type 1 flows bottleneck on their shared source link s_1^2 I_1.
  for (FlowIndex f : {FlowIndex{0}, FlowIndex{1}, FlowIndex{2}}) {
    ASSERT_TRUE(bn[f].has_value());
    EXPECT_EQ(*bn[f], fx.ms.source_link(1, 2));
  }
  // Type 2 flows bottleneck on their destination links.
  ASSERT_TRUE(bn[3].has_value());
  EXPECT_EQ(*bn[3], fx.ms.dest_link(2, 1));
  ASSERT_TRUE(bn[4].has_value());
  EXPECT_EQ(*bn[4], fx.ms.dest_link(2, 2));
  // Type 3 flow bottlenecks on an edge link (source checked first).
  ASSERT_TRUE(bn[5].has_value());
  EXPECT_EQ(*bn[5], fx.ms.source_link(1, 1));
}

TEST(Bottleneck, UnboundedLinksAreNeverBottlenecks) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = macro_routing(ms, flows);
  const Allocation<Rational> alloc({Rational{1}});
  const auto bn = bottleneck_links(ms.topology(), routing, alloc);
  ASSERT_TRUE(bn[0].has_value());
  EXPECT_FALSE(ms.topology().link(*bn[0]).unbounded);
}

TEST(Bottleneck, ZeroRatesOnSaturatedZeroLink) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_link(a, b, Rational{0});
  const FlowSet flows = {Flow{a, b}};
  const Routing r{std::vector<Path>{{0}}};
  const Allocation<Rational> alloc({Rational{0}});
  // A zero-capacity link is saturated by a zero rate: valid bottleneck.
  EXPECT_TRUE(is_max_min_fair(topo, r, alloc));
}

TEST(Bottleneck, DoubleToleranceVariant) {
  Example23Fixture fx;
  Allocation<double> alloc({1.0 / 3, 1.0 / 3, 1.0 / 3, 2.0 / 3, 2.0 / 3, 1.0});
  EXPECT_TRUE(is_max_min_fair(fx.ms.topology(), fx.routing, alloc, 1e-9));
}

TEST(Bottleneck, AgreesWithWaterfillOnClosRoutings) {
  const ClosNetwork net = ClosNetwork::paper(3);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 1, 4, 1}, FlowSpec{1, 2, 4, 1}, FlowSpec{2, 1, 4, 2},
            FlowSpec{3, 3, 5, 1}, FlowSpec{1, 1, 6, 2}});
  for (const MiddleAssignment& middles :
       {MiddleAssignment{1, 1, 1, 1, 1}, MiddleAssignment{1, 2, 3, 1, 2},
        MiddleAssignment{3, 3, 2, 1, 1}}) {
    const Routing routing = expand_routing(net, flows, middles);
    const auto alloc = max_min_fair<Rational>(net.topology(), flows, routing);
    EXPECT_TRUE(is_max_min_fair(net.topology(), routing, alloc));
  }
}

}  // namespace
}  // namespace closfair
