#include "core/proofs.hpp"

#include <gtest/gtest.h>

#include "core/adversarial.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(ProofReplay, Theorem34OnExample33) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const AdversarialInstance inst = theorem_3_4_instance(1, 1);
  const auto replay = replay_theorem_3_4(ms, instantiate(ms, inst.flows));

  ASSERT_EQ(replay.matching.size(), 2u);
  // All rates are 1/2: each matched flow's source carries total 1 or 1/2.
  EXPECT_TRUE(replay.bottleneck_step_holds);
  EXPECT_TRUE(replay.max_step_holds);
  EXPECT_TRUE(replay.half_step_holds);
  EXPECT_TRUE(replay.conclusion_holds);
  EXPECT_EQ(replay.t_maxmin, Rational(3, 2));
  // τ totals: the two sources carry 1/2 (s_1^1) and 1 (s_2^1, two flows).
  EXPECT_EQ(replay.sum_tau_source, Rational(3, 2));
  EXPECT_EQ(replay.sum_tau_dest, Rational(3, 2));
}

TEST(ProofReplay, Theorem34TauPerFlowBottleneck) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const AdversarialInstance inst = theorem_3_4_instance(1, 4);
  const auto replay = replay_theorem_3_4(ms, instantiate(ms, inst.flows));
  ASSERT_EQ(replay.tau_source.size(), replay.matching.size());
  for (std::size_t i = 0; i < replay.matching.size(); ++i) {
    EXPECT_GE(replay.tau_source[i] + replay.tau_dest[i], Rational(1));
  }
}

TEST(ProofReplay, EmptyCollection) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const auto replay = replay_theorem_3_4(ms, FlowSet{});
  EXPECT_TRUE(replay.matching.empty());
  EXPECT_TRUE(replay.bottleneck_step_holds);
  EXPECT_TRUE(replay.conclusion_holds);
}

// The proof's steps must hold on arbitrary instances — this is exactly what
// "for every collection of flows" means, sampled.
class Theorem34Steps : public ::testing::TestWithParam<int> {};

TEST_P(Theorem34Steps, AllStepsHoldOnRandomInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 19);
  const int n = 1 + static_cast<int>(rng.next_below(3));
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{2 * n, n};
  FlowCollection specs;
  switch (rng.next_below(3)) {
    case 0: specs = uniform_random(fabric, 1 + rng.next_below(30), rng); break;
    case 1: specs = incast(fabric, 1 + rng.next_below(15), 1, 1, rng); break;
    default: specs = zipf_destinations(fabric, 1 + rng.next_below(30), 1.0, rng); break;
  }
  const auto replay = replay_theorem_3_4(ms, instantiate(ms, specs));
  EXPECT_TRUE(replay.bottleneck_step_holds);
  EXPECT_TRUE(replay.max_step_holds);
  EXPECT_TRUE(replay.half_step_holds);
  EXPECT_TRUE(replay.conclusion_holds);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem34Steps, ::testing::Range(0, 30));

TEST(ProofReplay, Claim45ExactlyTwoSolutions) {
  for (int n : {1, 2, 3, 4, 5, 8, 13, 50}) {
    const auto solutions = replay_claim_4_5(n);
    ASSERT_EQ(solutions.size(), 2u) << "n=" << n;
    EXPECT_EQ(solutions[0].x, 0);
    EXPECT_EQ(solutions[0].y, n);
    EXPECT_EQ(solutions[1].x, n + 1);
    EXPECT_EQ(solutions[1].y, 0);
  }
}

TEST(ProofReplay, Claim45RejectsBadN) {
  EXPECT_THROW(replay_claim_4_5(0), ContractViolation);
}

}  // namespace
}  // namespace closfair
