#include "core/adversarial.hpp"

#include <gtest/gtest.h>

#include "core/theorems.hpp"
#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"

namespace closfair {
namespace {

TEST(Example23, MacroRatesMatchPaper) {
  const Example23 ex = example_2_3();
  const MacroSwitch ms = MacroSwitch::paper(2);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, ex.instance.flows));
  EXPECT_EQ(macro.rates(), ex.instance.macro_rates);
}

TEST(Example23, BothRoutingsMatchPaperRates) {
  const Example23 ex = example_2_3();
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(net, ex.instance.flows);
  EXPECT_EQ(max_min_fair<Rational>(net, flows, ex.routing_a).rates(), ex.rates_a);
  EXPECT_EQ(max_min_fair<Rational>(net, flows, ex.routing_b).rates(), ex.rates_b);
}

TEST(Example23, RoutingALexBeatsRoutingB) {
  const Example23 ex = example_2_3();
  EXPECT_EQ(lex_compare_sorted(Allocation<Rational>{ex.rates_a},
                               Allocation<Rational>{ex.rates_b}),
            std::strong_ordering::greater);
}

// Theorem 3.4 family: measured T^MmF and T^MT match the closed forms, and
// the ratio approaches 1/2 from above as k grows.
class Theorem34Family : public ::testing::TestWithParam<int> {};

TEST_P(Theorem34Family, MeasuredMatchesPrediction) {
  const int k = GetParam();
  const AdversarialInstance inst = theorem_3_4_instance(1, k);
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, inst.flows);

  const auto maxmin = max_min_fair<Rational>(ms, flows);
  EXPECT_EQ(maxmin.rates(), inst.macro_rates);

  const Theorem34Prediction pred = predict_theorem_3_4(k);
  EXPECT_EQ(maxmin.throughput(), pred.t_maxmin);

  const auto matching = maximum_matching(server_flow_graph(ms, flows));
  EXPECT_EQ(Rational(static_cast<std::int64_t>(matching.size())), pred.t_max_throughput);

  // The R1 bound: T^MmF >= 1/2 T^MT, tight as k grows.
  EXPECT_GE(maxmin.throughput() * Rational{2}, pred.t_max_throughput);
  EXPECT_EQ(maxmin.throughput(), (Rational{1} + pred.epsilon) / Rational{2} *
                                     pred.t_max_throughput);
}

INSTANTIATE_TEST_SUITE_P(KSweep, Theorem34Family, ::testing::Values(1, 2, 3, 7, 100));

TEST(Theorem34, InstanceWorksOnWiderMacroSwitch) {
  // The family only uses two ToRs; embedding in MS_3 changes nothing.
  const AdversarialInstance inst = theorem_3_4_instance(3, 4);
  const MacroSwitch ms = MacroSwitch::paper(3);
  const auto maxmin = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
  EXPECT_EQ(maxmin.rates(), inst.macro_rates);
}

// Theorem 4.2 / 4.3 instance shapes.
TEST(Theorem42, InstanceShape) {
  const int n = 3;
  const AdversarialInstance inst = theorem_4_2_instance(n);
  // n(n-1) type 1 + n type 2a + n(n-1) type 2b + 1 type 3.
  EXPECT_EQ(inst.flows.size(), static_cast<std::size_t>(n * (n - 1) + n + n * (n - 1) + 1));
  EXPECT_EQ(inst.labels.size(), inst.flows.size());
  EXPECT_EQ(inst.macro_rates.size(), inst.flows.size());
  EXPECT_FALSE(inst.witness.has_value());
  EXPECT_THROW(theorem_4_2_instance(2), ContractViolation);
}

TEST(Theorem42, MacroRatesAreMaxMin) {
  for (int n : {3, 4, 5}) {
    const AdversarialInstance inst = theorem_4_2_instance(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
    EXPECT_EQ(macro.rates(), inst.macro_rates) << "n=" << n;
  }
}

TEST(Theorem43, MacroRatesMatchLemma44) {
  for (int n : {3, 4, 5}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
    EXPECT_EQ(macro.rates(), inst.macro_rates) << "n=" << n;

    const Theorem43Prediction pred = predict_theorem_4_3(n);
    for (FlowIndex f = 0; f < inst.flows.size(); ++f) {
      if (inst.labels[f] == "type1") {
        EXPECT_EQ(inst.macro_rates[f], pred.type1_rate);
      } else if (inst.labels[f] == "type3") {
        EXPECT_EQ(inst.macro_rates[f], pred.type3_macro_rate);
      } else {
        EXPECT_EQ(inst.macro_rates[f], pred.type2_rate);
      }
    }
  }
}

TEST(Theorem43, WitnessRoutingMatchesLemma46) {
  // Step 1 of Lemma 4.6: the posited routing's max-min allocation assigns
  // 1/(n+1) to type 1, 1/n to type 2, and 1/n to the type 3 flow.
  for (int n : {3, 4, 5, 6}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    ASSERT_TRUE(inst.witness.has_value());
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto alloc = max_min_fair<Rational>(net, flows, *inst.witness);
    EXPECT_EQ(alloc.rates(), *inst.witness_rates) << "n=" << n;

    // The allocation is max-min fair for that routing (bottleneck property).
    const Routing routing = expand_routing(net, flows, *inst.witness);
    EXPECT_TRUE(is_max_min_fair(net.topology(), routing, alloc));
  }
}

TEST(Theorem43, StarvationFactorIsOneOverN) {
  for (int n : {3, 5, 8}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto alloc = max_min_fair<Rational>(net, flows, *inst.witness);
    const FlowIndex type3 = flows.size() - 1;
    EXPECT_EQ(inst.labels[type3], "type3");
    EXPECT_EQ(alloc.rate(type3) / inst.macro_rates[type3],
              predict_theorem_4_3(n).starvation_factor);
  }
}

TEST(Theorem54, InstanceShape) {
  const AdversarialInstance inst = theorem_5_4_instance(7, 1);
  // n-1 type 1 flows + (n-1)/2 * k type 2 flows.
  EXPECT_EQ(inst.flows.size(), static_cast<std::size_t>(6 + 3));
  EXPECT_THROW(theorem_5_4_instance(4, 1), ContractViolation);  // even n
  EXPECT_THROW(theorem_5_4_instance(7, 0), ContractViolation);
}

TEST(Theorem54, MacroRatesMatchPrediction) {
  for (int n : {3, 5, 7}) {
    for (int k : {1, 3}) {
      const AdversarialInstance inst = theorem_5_4_instance(n, k);
      const MacroSwitch ms = MacroSwitch::paper(n);
      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
      EXPECT_EQ(macro.rates(), inst.macro_rates) << "n=" << n << " k=" << k;
      EXPECT_EQ(macro.throughput(), predict_theorem_5_4(n, k).t_maxmin_macro);
    }
  }
}

TEST(Predictions, Theorem34ClosedForms) {
  const auto p1 = predict_theorem_3_4(1);
  EXPECT_EQ(p1.t_maxmin, Rational(3, 2));
  EXPECT_EQ(p1.t_max_throughput, Rational(2));
  EXPECT_EQ(p1.fairness_ratio, Rational(3, 4));  // Example 3.3's 3/4 factor

  const auto p100 = predict_theorem_3_4(100);
  EXPECT_LT(p100.fairness_ratio, Rational(51, 100));
  EXPECT_GT(p100.fairness_ratio, Rational(1, 2));
}

TEST(Predictions, Theorem54EpsilonMatchesPaperFormula) {
  // eps = (k+n) / ((n-1)(k+2)).
  for (int n : {3, 5, 9}) {
    for (int k : {1, 2, 10}) {
      const auto p = predict_theorem_5_4(n, k);
      const Rational paper_eps{k + n, static_cast<std::int64_t>(n - 1) * (k + 2)};
      EXPECT_EQ(p.epsilon, paper_eps) << "n=" << n << " k=" << k;
      EXPECT_EQ(p.gain, Rational{2} * (Rational{1} - paper_eps));
      // Doom throughput achieves exactly the n-2 bound for this family.
      EXPECT_EQ(p.doom_throughput, p.t_doom_lower_bound);
    }
  }
}

}  // namespace
}  // namespace closfair
