#include "sim/packet_sim.hpp"

#include <gtest/gtest.h>

#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

PacketSimParams fast_params() {
  PacketSimParams p;
  p.packet_size = 0.05;
  p.window = 8;
  p.warmup = 10.0;
  p.measure = 40.0;
  return p;
}

TEST(PacketSim, SingleFlowSaturatesItsPath) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const auto result = packet_fair_queueing(ms.topology(), flows,
                                           macro_routing(ms, flows), fast_params());
  EXPECT_NEAR(result.rates.rate(0), 1.0, 0.05);
  EXPECT_GT(result.events, 100u);
}

TEST(PacketSim, TwoFlowsShareOneLinkEqually) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 4, 1}});
  const auto result = packet_fair_queueing(ms.topology(), flows,
                                           macro_routing(ms, flows), fast_params());
  EXPECT_NEAR(result.rates.rate(0), 0.5, 0.05);
  EXPECT_NEAR(result.rates.rate(1), 0.5, 0.05);
}

TEST(PacketSim, EmergesTwoLevelMaxMin) {
  // The two-level instance from test_waterfill: three flows out of one
  // source (1/3 each) plus one flow limited only at a shared destination
  // (2/3). Fair queueing must discover both levels.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2},
                                         FlowSpec{1, 1, 4, 1}, FlowSpec{2, 1, 3, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result =
      packet_fair_queueing(ms.topology(), flows, routing, fast_params());
  const auto oracle = max_min_fair<double>(ms.topology(), flows, routing);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(result.rates.rate(f), oracle.rate(f), 0.07) << "flow " << f;
  }
}

TEST(PacketSim, Example23MacroRatesEmerge) {
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
           FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  const Routing routing = macro_routing(ms, flows);
  const auto result =
      packet_fair_queueing(ms.topology(), flows, routing, fast_params());
  const double expected[] = {1.0 / 3, 1.0 / 3, 1.0 / 3, 2.0 / 3, 2.0 / 3, 1.0};
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    EXPECT_NEAR(result.rates.rate(f), expected[f], 0.08) << "flow " << f;
  }
}

TEST(PacketSim, UtilizationNeverExceedsCapacity) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(5);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 10, rng));
  const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  const auto result = packet_fair_queueing(net.topology(), flows, routing, fast_params());
  for (double u : result.link_utilization) {
    EXPECT_LE(u, 1.0 + 0.02);  // quantization slack of ~1 packet
  }
}

TEST(PacketSim, TracksWaterfillOnClosRoutings) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 8, rng));
    const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
    const auto result =
        packet_fair_queueing(net.topology(), flows, routing, fast_params());
    const auto oracle = max_min_fair<double>(net.topology(), flows, routing);
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      EXPECT_NEAR(result.rates.rate(f), oracle.rate(f), 0.12)
          << "trial " << trial << " flow " << f;
    }
  }
}

TEST(PacketSim, FractionalCapacities) {
  // A 1/2-capacity fabric: the single flow's throughput halves.
  ClosNetwork net(ClosNetwork::Params{2, 2, 1, Rational{1, 2}});
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = expand_routing(net, flows, {1});
  const auto result = packet_fair_queueing(net.topology(), flows, routing, fast_params());
  EXPECT_NEAR(result.rates.rate(0), 0.5, 0.05);
}

TEST(PacketSim, RejectsBadParameters) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const Routing routing = macro_routing(ms, flows);
  PacketSimParams bad;
  bad.packet_size = 0.0;
  EXPECT_THROW(packet_fair_queueing(ms.topology(), flows, routing, bad),
               ContractViolation);
  bad = PacketSimParams{};
  bad.window = 0;
  EXPECT_THROW(packet_fair_queueing(ms.topology(), flows, routing, bad),
               ContractViolation);
  bad = PacketSimParams{};
  bad.measure = 0.0;
  EXPECT_THROW(packet_fair_queueing(ms.topology(), flows, routing, bad),
               ContractViolation);
}

TEST(PacketSim, ThrowsWithoutBoundedLink) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_unbounded_link(a, b);
  const FlowSet flows = {Flow{a, b}};
  const Routing routing{std::vector<Path>{{0}}};
  EXPECT_THROW(packet_fair_queueing(topo, flows, routing), ContractViolation);
}

}  // namespace
}  // namespace closfair
