#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace closfair {
namespace {

using RVec = std::vector<Rational>;
using RMat = std::vector<RVec>;

TEST(Simplex, TrivialSingleVariable) {
  // max x s.t. x <= 3.
  const auto r = solve_lp<Rational>(RMat{{Rational{1}}}, RVec{Rational{3}}, RVec{Rational{1}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(3));
  EXPECT_EQ(r.x[0], Rational(3));
}

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (optimum 36 at (2,6)).
  const RMat A = {{Rational{1}, Rational{0}},
                  {Rational{0}, Rational{2}},
                  {Rational{3}, Rational{2}}};
  const RVec b = {Rational{4}, Rational{12}, Rational{18}};
  const RVec c = {Rational{3}, Rational{5}};
  const auto r = solve_lp<Rational>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(36));
  EXPECT_EQ(r.x[0], Rational(2));
  EXPECT_EQ(r.x[1], Rational(6));
}

TEST(Simplex, FractionalOptimum) {
  // max x + y s.t. 2x + y <= 1, x + 2y <= 1 -> optimum 2/3 at (1/3, 1/3).
  const RMat A = {{Rational{2}, Rational{1}}, {Rational{1}, Rational{2}}};
  const RVec b = {Rational{1}, Rational{1}};
  const RVec c = {Rational{1}, Rational{1}};
  const auto r = solve_lp<Rational>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2, 3));
  EXPECT_EQ(r.x[0], Rational(1, 3));
  EXPECT_EQ(r.x[1], Rational(1, 3));
}

TEST(Simplex, UnboundedDetected) {
  // max x + y s.t. x - y <= 1: grows along y.
  const RMat A = {{Rational{1}, Rational{-1}}};
  const RVec b = {Rational{1}};
  const RVec c = {Rational{1}, Rational{1}};
  const auto r = solve_lp<Rational>(A, b, c);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, ZeroObjective) {
  const RMat A = {{Rational{1}}};
  const RVec b = {Rational{5}};
  const RVec c = {Rational{0}};
  const auto r = solve_lp<Rational>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
}

TEST(Simplex, NegativeObjectiveCoefficientsStayAtZero) {
  // max -x s.t. x <= 3: optimum 0 at x = 0.
  const auto r =
      solve_lp<Rational>(RMat{{Rational{1}}}, RVec{Rational{3}}, RVec{Rational{-1}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
  EXPECT_EQ(r.x[0], Rational(0));
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Degenerate: redundant constraints meeting at the optimum. Bland's rule
  // must not cycle.
  const RMat A = {{Rational{1}, Rational{1}},
                  {Rational{1}, Rational{1}},
                  {Rational{2}, Rational{2}}};
  const RVec b = {Rational{1}, Rational{1}, Rational{2}};
  const RVec c = {Rational{1}, Rational{1}};
  const auto r = solve_lp<Rational>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(1));
}

TEST(Simplex, ZeroRhsRow) {
  // max x s.t. x - y <= 0, y <= 2 -> x = y = 2.
  const RMat A = {{Rational{1}, Rational{-1}}, {Rational{0}, Rational{1}}};
  const RVec b = {Rational{0}, Rational{2}};
  const RVec c = {Rational{1}, Rational{0}};
  const auto r = solve_lp<Rational>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
}

TEST(Simplex, RejectsNegativeRhs) {
  EXPECT_THROW(
      solve_lp<Rational>(RMat{{Rational{1}}}, RVec{Rational{-1}}, RVec{Rational{1}}),
      ContractViolation);
}

TEST(Simplex, RejectsShapeMismatch) {
  EXPECT_THROW(solve_lp<Rational>(RMat{{Rational{1}, Rational{2}}}, RVec{Rational{1}},
                                  RVec{Rational{1}}),
               ContractViolation);
  EXPECT_THROW(solve_lp<Rational>(RMat{{Rational{1}}}, RVec{Rational{1}, Rational{2}},
                                  RVec{Rational{1}}),
               ContractViolation);
}

TEST(Simplex, DoubleInstantiationAgrees) {
  const std::vector<std::vector<double>> A = {{2, 1}, {1, 2}};
  const std::vector<double> b = {1, 1};
  const std::vector<double> c = {1, 1};
  const auto r = solve_lp<double>(A, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0 / 3, 1e-12);
}

// Property: on random LPs with b >= 0, the returned point is feasible and
// no coordinate-wise greedy improvement is possible (weak optimality probe:
// the objective matches a fine grid search upper bound on 2-variable LPs).
class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, FeasibleAndDominatesGridSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.next_below(4);
  RMat A(m, RVec(2));
  RVec b(m);
  for (std::size_t i = 0; i < m; ++i) {
    A[i][0] = Rational{rng.next_int(0, 4)};
    A[i][1] = Rational{rng.next_int(0, 4)};
    b[i] = Rational{rng.next_int(0, 6)};
  }
  const RVec c = {Rational{rng.next_int(1, 3)}, Rational{rng.next_int(1, 3)}};

  // Rows of all-zero coefficients make x unbounded in that direction only if
  // some c_j > 0 has no constraining row; detect and skip unbounded cases.
  const auto r = solve_lp<Rational>(A, b, c);
  if (r.status == LpStatus::kUnbounded) {
    for (std::size_t j = 0; j < 2; ++j) {
      // Unboundedness needs a direction d >= 0 with Ad <= 0 and c.d > 0; for
      // our non-negative A that means a column of zeros with c_j > 0.
      // (Not exhaustive — just sanity.)
    }
    return;
  }
  // Feasibility of the returned point.
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_LE(A[i][0] * r.x[0] + A[i][1] * r.x[1], b[i]);
  }
  EXPECT_GE(r.x[0], Rational(0));
  EXPECT_GE(r.x[1], Rational(0));
  // Grid search over a coarse lattice can't beat the LP optimum.
  for (int gx = 0; gx <= 12; ++gx) {
    for (int gy = 0; gy <= 12; ++gy) {
      const Rational x{gx, 2};
      const Rational y{gy, 2};
      bool feasible = true;
      for (std::size_t i = 0; i < m && feasible; ++i) {
        feasible = !(b[i] < A[i][0] * x + A[i][1] * y);
      }
      if (feasible) {
        EXPECT_LE(c[0] * x + c[1] * y, r.objective);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandom, ::testing::Range(0, 30));

TEST(GeneralLpForm, EqualityConstraint) {
  // max x + y s.t. x + y = 1, x <= 3/4 -> optimum 1 with x <= 3/4.
  GeneralLp<Rational> lp;
  lp.c = {Rational{1}, Rational{1}};
  lp.A_eq = {{Rational{1}, Rational{1}}};
  lp.b_eq = {Rational{1}};
  lp.A_ub = {{Rational{1}, Rational{0}}};
  lp.b_ub = {Rational{3, 4}};
  const auto r = solve_lp_general(lp);
  ASSERT_EQ(r.status, GeneralLpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(1));
  EXPECT_EQ(r.x[0] + r.x[1], Rational(1));
  EXPECT_LE(r.x[0], Rational(3, 4));
}

TEST(GeneralLpForm, NegativeRhsInequality) {
  // max -x s.t. -x <= -2 (i.e., x >= 2): optimum -2 at x = 2.
  GeneralLp<Rational> lp;
  lp.c = {Rational{-1}};
  lp.A_ub = {{Rational{-1}}};
  lp.b_ub = {Rational{-2}};
  const auto r = solve_lp_general(lp);
  ASSERT_EQ(r.status, GeneralLpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(-2));
  EXPECT_EQ(r.x[0], Rational(2));
}

TEST(GeneralLpForm, DetectsInfeasibility) {
  // x >= 2 and x <= 1 simultaneously.
  GeneralLp<Rational> lp;
  lp.c = {Rational{0}};
  lp.A_ub = {{Rational{-1}}, {Rational{1}}};
  lp.b_ub = {Rational{-2}, Rational{1}};
  EXPECT_EQ(solve_lp_general(lp).status, GeneralLpStatus::kInfeasible);
  // Equality version: x = 2 and x = 1.
  GeneralLp<Rational> eq;
  eq.c = {Rational{0}};
  eq.A_eq = {{Rational{1}}, {Rational{1}}};
  eq.b_eq = {Rational{2}, Rational{1}};
  EXPECT_EQ(solve_lp_general(eq).status, GeneralLpStatus::kInfeasible);
}

TEST(GeneralLpForm, DetectsUnboundedness) {
  // max x s.t. x >= 1: unbounded above.
  GeneralLp<Rational> lp;
  lp.c = {Rational{1}};
  lp.A_ub = {{Rational{-1}}};
  lp.b_ub = {Rational{-1}};
  EXPECT_EQ(solve_lp_general(lp).status, GeneralLpStatus::kUnbounded);
}

TEST(GeneralLpForm, RedundantEqualityRows) {
  // x + y = 1 stated twice (phase 1 leaves an inert artificial row).
  GeneralLp<Rational> lp;
  lp.c = {Rational{2}, Rational{1}};
  lp.A_eq = {{Rational{1}, Rational{1}}, {Rational{1}, Rational{1}}};
  lp.b_eq = {Rational{1}, Rational{1}};
  const auto r = solve_lp_general(lp);
  ASSERT_EQ(r.status, GeneralLpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
  EXPECT_EQ(r.x[0], Rational(1));
}

TEST(GeneralLpForm, AgreesWithSimpleFormOnItsDomain) {
  // A b >= 0 inequality-only LP must give the same optimum via both solvers.
  const RMat A = {{Rational{2}, Rational{1}}, {Rational{1}, Rational{2}}};
  const RVec b = {Rational{1}, Rational{1}};
  const RVec c = {Rational{1}, Rational{1}};
  const auto simple = solve_lp<Rational>(A, b, c);
  GeneralLp<Rational> lp;
  lp.A_ub = A;
  lp.b_ub = b;
  lp.c = c;
  const auto general = solve_lp_general(lp);
  ASSERT_EQ(general.status, GeneralLpStatus::kOptimal);
  EXPECT_EQ(general.objective, simple.objective);
}

TEST(GeneralLpForm, MixedSystem) {
  // max 3x + 2y + z s.t. x + y + z = 2, x - y <= 0, z >= 1/2.
  GeneralLp<Rational> lp;
  lp.c = {Rational{3}, Rational{2}, Rational{1}};
  lp.A_eq = {{Rational{1}, Rational{1}, Rational{1}}};
  lp.b_eq = {Rational{2}};
  lp.A_ub = {{Rational{1}, Rational{-1}, Rational{0}},
             {Rational{0}, Rational{0}, Rational{-1}}};
  lp.b_ub = {Rational{0}, Rational{-1, 2}};
  const auto r = solve_lp_general(lp);
  ASSERT_EQ(r.status, GeneralLpStatus::kOptimal);
  // Best: z = 1/2, x = y = 3/4 -> 3(3/4) + 2(3/4) + 1/2 = 17/4.
  EXPECT_EQ(r.objective, Rational(17, 4));
}

}  // namespace
}  // namespace closfair
