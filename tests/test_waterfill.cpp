#include "fairness/waterfill.hpp"

#include <gtest/gtest.h>

#include "fairness/bottleneck.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

TEST(Waterfill, SingleFlowGetsFullCapacity) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 2, 1}});
  const auto alloc = max_min_fair<Rational>(ms, flows);
  EXPECT_EQ(alloc.rate(0), Rational(1));
}

TEST(Waterfill, EqualShareOnSharedLink) {
  // k flows from the same source share its edge link equally.
  const MacroSwitch ms = MacroSwitch::paper(2);
  for (int k : {2, 3, 5}) {
    FlowCollection specs;
    for (int c = 0; c < k; ++c) specs.push_back(FlowSpec{1, 1, 3, 1});
    const FlowSet flows = instantiate(ms, specs);
    const auto alloc = max_min_fair<Rational>(ms, flows);
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      EXPECT_EQ(alloc.rate(f), Rational(1, k));
    }
  }
}

TEST(Waterfill, TwoLevelFill) {
  // Three flows out of s_1^1 to distinct destinations; one of those
  // destinations also receives a flow from s_2^1. The s_1^1 flows get 1/3;
  // the s_2^1 flow is then limited only by its shared destination: 2/3.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(ms, {FlowSpec{1, 1, 3, 1}, FlowSpec{1, 1, 3, 2},
                                         FlowSpec{1, 1, 4, 1}, FlowSpec{2, 1, 3, 1}});
  const auto alloc = max_min_fair<Rational>(ms, flows);
  EXPECT_EQ(alloc.rate(0), Rational(1, 3));
  EXPECT_EQ(alloc.rate(1), Rational(1, 3));
  EXPECT_EQ(alloc.rate(2), Rational(1, 3));
  EXPECT_EQ(alloc.rate(3), Rational(2, 3));
}

TEST(Waterfill, PaperExample23MacroSwitch) {
  // Figure 1b: type 1 flows 1/3, type 2 flows 2/3, type 3 flow 1.
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet flows = instantiate(
      ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
           FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
  const auto alloc = max_min_fair<Rational>(ms, flows);
  EXPECT_EQ(alloc.rate(0), Rational(1, 3));
  EXPECT_EQ(alloc.rate(1), Rational(1, 3));
  EXPECT_EQ(alloc.rate(2), Rational(1, 3));
  EXPECT_EQ(alloc.rate(3), Rational(2, 3));
  EXPECT_EQ(alloc.rate(4), Rational(2, 3));
  EXPECT_EQ(alloc.rate(5), Rational(1));
}

TEST(Waterfill, PaperExample23ClosRoutings) {
  // Figure 1a: the two routings discussed in Example 2.3.
  const ClosNetwork net = ClosNetwork::paper(2);
  const FlowSet flows = instantiate(
      net, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
            FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});

  // Routing A: contested type 1 flow via M_1; type 3 drops to 2/3.
  const auto alloc_a = max_min_fair<Rational>(net, flows, {2, 1, 2, 1, 2, 1});
  EXPECT_EQ(alloc_a.sorted(),
            (std::vector<Rational>{Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                   Rational{2, 3}, Rational{2, 3}, Rational{2, 3}}));

  // Routing B: contested flow via M_2; type 2 flow (s_2^2,t_2^2) drops to 1/3.
  const auto alloc_b = max_min_fair<Rational>(net, flows, {2, 2, 2, 1, 2, 1});
  EXPECT_EQ(alloc_b.sorted(),
            (std::vector<Rational>{Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                                   Rational{1, 3}, Rational{2, 3}, Rational{1}}));

  // Routing A beats routing B lexicographically (paper's conclusion).
  EXPECT_EQ(lex_compare_sorted(alloc_a, alloc_b), std::strong_ordering::greater);
}

TEST(Waterfill, FractionalCapacities) {
  // Non-unit capacities: two flows through a 1/2-capacity source link.
  ClosNetwork net(ClosNetwork::Params{2, 2, 1, Rational{1, 2}});
  const FlowSet flows = instantiate(net, {FlowSpec{1, 1, 2, 1}, FlowSpec{1, 1, 2, 1}});
  const auto alloc = max_min_fair<Rational>(net, flows, {1, 2});
  EXPECT_EQ(alloc.rate(0), Rational(1, 4));
  EXPECT_EQ(alloc.rate(1), Rational(1, 4));
}

TEST(Waterfill, ZeroCapacityLinkZeroesFlows) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kSource);
  const NodeId b = topo.add_node("b", NodeKind::kDestination);
  topo.add_link(a, b, Rational{0});
  const FlowSet flows = {Flow{a, b}};
  const Routing r{std::vector<Path>{{0}}};
  const auto alloc = max_min_fair<Rational>(topo, flows, r);
  EXPECT_EQ(alloc.rate(0), Rational(0));
}

TEST(Waterfill, ThrowsWhenFlowHasNoBoundedLink) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_unbounded_link(a, b);
  const FlowSet flows = {Flow{a, b}};
  const Routing r{std::vector<Path>{{0}}};
  EXPECT_THROW(max_min_fair<Rational>(topo, flows, r), ContractViolation);
}

TEST(Waterfill, EmptyFlowSet) {
  const MacroSwitch ms = MacroSwitch::paper(1);
  const auto alloc = max_min_fair<Rational>(ms, FlowSet{});
  EXPECT_EQ(alloc.size(), 0u);
}

TEST(Waterfill, DoubleMatchesRationalOnSmallInstances) {
  const ClosNetwork net = ClosNetwork::paper(2);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const FlowCollection specs = uniform_random(Fabric{4, 2}, 8, rng);
    const FlowSet flows = instantiate(net, specs);
    const MiddleAssignment middles = ecmp_routing(net, flows, rng);
    const auto exact = max_min_fair<Rational>(net, flows, middles);
    const auto approx = max_min_fair<double>(
        net.topology(), flows, expand_routing(net, flows, middles));
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      EXPECT_NEAR(approx.rate(f), exact.rate(f).to_double(), 1e-9);
    }
  }
}

TEST(Waterfill, RatesInvariantUnderFlowReordering) {
  // The max-min fair allocation is a unique rate *function* of the routing;
  // permuting the flow indices must permute rates identically.
  const ClosNetwork net = ClosNetwork::paper(3);
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const FlowCollection specs =
        uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 12, rng);
    const FlowSet flows = instantiate(net, specs);
    const MiddleAssignment middles = ecmp_routing(net, flows, rng);
    const auto base = max_min_fair<Rational>(net, flows, middles);

    const auto perm = rng.permutation(flows.size());
    FlowSet shuffled(flows.size());
    MiddleAssignment shuffled_middles(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      shuffled[i] = flows[perm[i]];
      shuffled_middles[i] = middles[perm[i]];
    }
    const auto permuted = max_min_fair<Rational>(net, shuffled, shuffled_middles);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      EXPECT_EQ(permuted.rate(i), base.rate(perm[i]));
    }
  }
}

// Property sweep: on random instances, the water-fill result is feasible and
// satisfies the bottleneck property (Lemma 2.2) — i.e., *is* max-min fair.
class WaterfillProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaterfillProperty, FeasibleAndBottlenecked) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int n = 2 + static_cast<int>(rng.next_below(3));  // C_2 .. C_4
  const ClosNetwork net = ClosNetwork::paper(n);
  const Fabric fabric{net.num_tors(), net.servers_per_tor()};
  const std::size_t count = 1 + rng.next_below(24);
  const FlowCollection specs = uniform_random(fabric, count, rng);
  const FlowSet flows = instantiate(net, specs);
  const MiddleAssignment middles = ecmp_routing(net, flows, rng);
  const Routing routing = expand_routing(net, flows, middles);

  const auto alloc = max_min_fair<Rational>(net.topology(), flows, routing);
  EXPECT_TRUE(is_feasible(net.topology(), routing, alloc));
  EXPECT_TRUE(is_max_min_fair(net.topology(), routing, alloc));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WaterfillProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace closfair
