// Checked numeric argument parsing shared by the example binaries.
//
// std::atoi silently reads junk as 0 and a bare std::stoi aborts the process
// with an uncaught std::invalid_argument; both are the wrong answer for
// tools people drive by hand. These helpers parse the full token or die
// with the offending token, the expected range, and the binary's usage line
// on stderr, exiting 2 (the conventional usage-error status).
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace closfair::examples {

[[noreturn]] inline void bad_arg(std::string_view what, std::string_view token,
                                 std::string_view expected, std::string_view usage) {
  std::cerr << "error: bad value '" << token << "' for " << what << " (expected "
            << expected << ")\n";
  if (!usage.empty()) std::cerr << "usage: " << usage << '\n';
  std::exit(2);
}

/// Whole-token signed integer in [min, max].
inline std::int64_t checked_i64(std::string_view token, std::string_view what,
                                std::int64_t min, std::int64_t max,
                                std::string_view usage) {
  std::int64_t value = 0;
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size() || value < min ||
      value > max) {
    bad_arg(what, token, "an integer in [" + std::to_string(min) + ", " +
                             std::to_string(max) + "]",
            usage);
  }
  return value;
}

inline int checked_int(std::string_view token, std::string_view what, int min, int max,
                       std::string_view usage) {
  return static_cast<int>(checked_i64(token, what, min, max, usage));
}

inline std::size_t checked_size(std::string_view token, std::string_view what,
                                std::size_t max, std::string_view usage) {
  return static_cast<std::size_t>(
      checked_i64(token, what, 0, static_cast<std::int64_t>(max), usage));
}

inline std::uint64_t checked_u64(std::string_view token, std::string_view what,
                                 std::string_view usage) {
  std::uint64_t value = 0;
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    bad_arg(what, token, "a non-negative integer", usage);
  }
  return value;
}

/// Whole-token finite double in [min, max].
inline double checked_double(std::string_view token, std::string_view what, double min,
                             double max, std::string_view usage) {
  double value = 0.0;
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size() || !(value >= min) ||
      !(value <= max)) {
    bad_arg(what, token, "a number in [" + std::to_string(min) + ", " +
                             std::to_string(max) + "]",
            usage);
  }
  return value;
}

}  // namespace closfair::examples
