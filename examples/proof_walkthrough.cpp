// Proof walkthrough: watch Theorem 3.4's argument run on a live instance.
//
//   $ ./proof_walkthrough [INSTANCE.txt]
//
// Without a file, uses the adversarial family at k = 3. With one, reads a
// text-format instance (see src/io/text_format.hpp) and replays the proof's
// inequality chain — maximum matching, per-endpoint totals τ, the bottleneck
// inequality, and the final halving bound — printing every intermediate
// value. Also enumerates Claim 4.5's Equation 1 solutions for small n.
#include <fstream>
#include <iostream>

#include "core/adversarial.hpp"
#include "core/proofs.hpp"
#include "fairness/waterfill.hpp"
#include "io/text_format.hpp"
#include "util/table.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  FlowCollection specs;
  int tors = 2;
  int servers = 1;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    try {
      const InstanceSpec spec = parse_instance_stream(in);
      specs = spec.flows;
      tors = spec.params.num_tors;
      servers = spec.params.servers_per_tor;
    } catch (const ParseError& e) {
      std::cerr << "parse error: " << e.what() << '\n';
      return 1;
    }
  } else {
    const AdversarialInstance inst = theorem_3_4_instance(1, 3);
    specs = inst.flows;
    std::cout << "(no instance given: using the Theorem 3.4 family with k = 3)\n\n";
  }

  const MacroSwitch ms(MacroSwitch::Params{tors, servers, Rational{1}});
  const FlowSet flows = instantiate(ms, specs);
  const Theorem34Replay replay = replay_theorem_3_4(ms, flows);

  std::cout << "Theorem 3.4, step by step on " << flows.size() << " flows:\n\n";
  std::cout << "1. A maximum matching F' of G^MS has " << replay.matching.size()
            << " flows, so T^MT = " << replay.matching.size() << " (Lemma 3.2).\n\n";

  std::cout << "2. Per matched flow, the max-min totals at its endpoints satisfy\n"
               "   the bottleneck inequality (Lemma 2.2 => some edge link is full):\n";
  TextTable table({"matched flow", "tau(source)", "tau(dest)", "sum >= 1"});
  for (std::size_t i = 0; i < replay.matching.size(); ++i) {
    const Flow& f = flows[replay.matching[i]];
    table.add_row({ms.topology().node(f.src).name + " -> " + ms.topology().node(f.dst).name,
                   replay.tau_source[i].to_string(), replay.tau_dest[i].to_string(),
                   (replay.tau_source[i] + replay.tau_dest[i] >= Rational{1}) ? "yes"
                                                                              : "NO"});
  }
  std::cout << table << '\n';

  std::cout << "3. Summing: sum tau_s = " << replay.sum_tau_source
            << ", sum tau_t = " << replay.sum_tau_dest << "; their sum >= |F'| = "
            << replay.matching.size() << ".\n";
  std::cout << "4. T^MmF = " << replay.t_maxmin
            << " >= max(sums) >= (sum of both)/2 >= |F'|/2.\n\n";
  std::cout << "conclusion: T^MmF >= T^MT / 2 — "
            << (replay.conclusion_holds ? "HOLDS" : "VIOLATED (library bug!)") << '\n';

  std::cout << "\nClaim 4.5, Equation 1 (x/(n+1) + y/n = 1) integer solutions:\n";
  TextTable eq({"n", "solutions (x, y)"});
  for (int n : {3, 4, 5, 6}) {
    std::string cell;
    for (const Claim45Solution& s : replay_claim_4_5(n)) {
      if (!cell.empty()) cell += ", ";
      cell += "(" + std::to_string(s.x) + ", " + std::to_string(s.y) + ")";
    }
    eq.add_row({std::to_string(n), cell});
  }
  std::cout << eq << '\n';
  std::cout << "Exactly {(0, n), (n+1, 0)} every time: type 1 and type 2 flows can\n"
               "never share an uplink at their macro rates — the pigeonhole at the\n"
               "heart of Theorems 4.2 and 4.3.\n";
  return 0;
}
