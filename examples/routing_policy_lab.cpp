// Routing-policy lab: pit ECMP, greedy, congestion local search, lex-max-min
// hill climbing, and Doom-Switch against each other on a workload of your
// choosing, scoring each routing on the axes the paper separates —
// throughput vs fairness vs macro-switch fidelity.
//
//   $ ./routing_policy_lab [n] [workload: uniform|perm|zipf|incast] [flows] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "arg_parse.hpp"
#include "core/analysis.hpp"
#include "fairness/waterfill.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage =
      "routing_policy_lab [n] [workload: uniform|perm|zipf|incast] [flows] [seed]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "n", 1, 64, kUsage) : 4;
  const std::string workload = argc > 2 ? argv[2] : "uniform";
  const std::size_t num_flows =
      argc > 3 ? checked_size(argv[3], "flows", 1'000'000, kUsage) : 48;
  const std::uint64_t seed = argc > 4 ? checked_u64(argv[4], "seed", kUsage) : 7;

  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{2 * n, n};
  Rng rng(seed);

  FlowCollection specs;
  if (workload == "perm") {
    specs = random_permutation(fabric, rng);
  } else if (workload == "zipf") {
    specs = zipf_destinations(fabric, num_flows, 1.2, rng);
  } else if (workload == "incast") {
    specs = incast(fabric, num_flows, 1, 1, rng);
  } else {
    specs = uniform_random(fabric, num_flows, rng);
  }
  const FlowSet flows = instantiate(net, specs);
  std::cout << "C_" << n << ", workload '" << workload << "', " << flows.size()
            << " flows, seed " << seed << "\n\n";

  const auto macro = analyze_macro(ms, instantiate(ms, specs));
  std::cout << "macro reference: T^MmF = " << macro.t_maxmin
            << ", T^MT = " << macro.t_max_throughput << "\n\n";

  std::vector<double> demands;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    demands.push_back(macro.maxmin.rate(f).to_double());
  }

  TextTable table({"policy", "throughput", "tput ratio", "min rate ratio",
                   "worst-off flow rate", "lex vs macro"});
  auto score = [&](const std::string& name, const MiddleAssignment& middles) {
    const Comparison c = compare(net, ms, specs, middles);
    const auto sorted = c.clos.maxmin.sorted();
    table.add_row({name, c.clos.throughput.to_string(),
                   fmt_double(c.throughput_ratio.to_double(), 3),
                   fmt_double(c.min_rate_ratio.to_double(), 3),
                   sorted.empty() ? "-" : sorted.front().to_string(),
                   c.lex_vs_macro == std::strong_ordering::equal ? "equal" : "below"});
  };

  score("ecmp", ecmp_routing(net, flows, rng));
  const MiddleAssignment greedy = greedy_routing(net, flows, demands);
  score("greedy", greedy);
  score("local-search", congestion_local_search(net, flows, demands, greedy));
  LocalSearchOptions lex_options;
  lex_options.max_moves = 500;
  score("lex-climb", lex_max_min_local_search(net, flows, greedy, lex_options).middles);
  score("doom-switch", doom_switch(net, flows).middles);
  std::cout << table << '\n';

  std::cout << "Doom-Switch maximizes throughput by starving unmatched flows (R3);\n"
               "lex-climb protects the worst-off flow instead (R2). No policy can\n"
               "lex-dominate the macro-switch (§2.3).\n";
  return 0;
}
