// closfair_serve — scenario-evaluation service (src/svc + src/wire).
//
// Batch mode (default):
//
//   $ ./closfair_serve [--workers N] [--cache N] [--cache-file PATH]
//                      [--in FILE] [--out FILE] [--metrics OUT.json]
//
// Reads one request per line (stdin, or --in FILE), evaluates the batch
// through the sharded service, and writes one response per line (stdout, or
// --out FILE), aligned with the requests. A request line is a bare
// ScenarioSpec object (docs/SERVICE.md), a delta request
// {"base":"<hash>","patch":{...}} against an earlier line's result, or an
// envelope {"id": ..., "spec": {...}} / {"id": ..., "delta": {...}} whose id
// (any JSON scalar) is echoed back. Responses:
//
//   {"id":..., "hash":"<fnv1a64 hex>", "cached":false, "result":{...}}
//   {"id":..., "error":"..."}                       (bad line or failed cell)
//
// Responses are byte-identical for every --workers value (the determinism
// contract in docs/SERVICE.md). --cache-file loads a JSONL cache spill
// before the batch and rewrites it afterwards, so repeated invocations warm
// each other.
//
// Server mode:
//
//   $ ./closfair_serve --listen HOST:PORT [--workers N] [--cache N]
//                      [--cache-file PATH] [--port-file PATH] [--inflight N]
//                      [--watermark N] [--max-frame BYTES] [--metrics OUT.json]
//                      [--flight-recorder OUT.jsonl]
//
// Runs the persistent TCP front-end (docs/SERVICE.md "Wire protocol"):
// length-prefixed frames carrying the same request/response lines, pipelined
// over long-lived connections, with per-connection in-order responses,
// admission control (overload responses instead of unbounded buffering), and
// graceful drain on SIGTERM/SIGINT. PORT 0 binds an ephemeral port;
// --port-file writes the bound port for scripts to discover. The cache spill
// and metrics are written after the drain completes.
//
// While the server runs, the admin verbs metricsz / statusz / tracez answer
// on the same port (send the bare verb as a frame; closfair_loadgen --admin
// or --watch wraps this). --flight-recorder dumps the recorder's recent ring
// as Chrome-trace JSONL after the drain (empty under CLOSFAIR_OBS=OFF).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arg_parse.hpp"
#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/rt.hpp"
#include "svc/service.hpp"
#include "wire/protocol.hpp"
#include "wire/server.hpp"

using namespace closfair;

namespace {

constexpr std::string_view kUsage =
    "closfair_serve [--listen HOST:PORT] [--workers N] [--cache N] "
    "[--cache-file PATH] [--in FILE] [--out FILE] [--metrics OUT.json] "
    "[--port-file PATH] [--inflight N] [--watermark N] [--max-frame BYTES] "
    "[--flight-recorder OUT.jsonl]";

int usage() {
  std::cerr << "usage: " << kUsage << '\n';
  return 2;
}

int run_batch(svc::Service& service, const std::string& in_path,
              const std::string& out_path) {
  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path);
    if (!in_file) {
      std::cerr << "cannot open " << in_path << '\n';
      return 1;
    }
  }
  std::istream& in = in_path.empty() ? std::cin : in_file;

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << '\n';
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  // Parse every line up front; parse failures become per-line error
  // responses without consuming an evaluation slot.
  std::vector<wire::Request> requests;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    wire::Request request = wire::parse_request(line);
    if (!request.ok()) OBS_COUNTER_INC("svc.errors");
    requests.push_back(std::move(request));
  }

  // Evaluate in segments: runs of direct specs go through the sharded batch
  // path, each delta resolves sequentially at its line position. Because a
  // segment flushes before any delta evaluates, a delta's base is always
  // already committed to the cache when an earlier line produced it —
  // matching the wire server's arrival-order resolution.
  std::vector<svc::BatchEntry> entries(requests.size());
  std::vector<bool> has_entry(requests.size(), false);
  std::vector<svc::ScenarioSpec> segment;
  std::vector<std::size_t> segment_lines;
  const auto flush_segment = [&] {
    if (segment.empty()) return;
    std::vector<svc::BatchEntry> batch = service.evaluate_batch(segment);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      entries[segment_lines[j]] = std::move(batch[j]);
      has_entry[segment_lines[j]] = true;
    }
    segment.clear();
    segment_lines.clear();
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    wire::Request& request = requests[i];
    if (request.is_delta()) {
      flush_segment();
      entries[i] = service.evaluate_delta(*request.delta);
      has_entry[i] = true;
    } else if (request.spec.has_value()) {
      segment_lines.push_back(i);
      segment.push_back(std::move(*request.spec));
    }
  }
  flush_segment();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const wire::Request& request = requests[i];
    if (!has_entry[i]) {
      out << wire::render_parse_error(request.id, request.error) << '\n';
      continue;
    }
    const svc::BatchEntry& entry = entries[i];
    if (!entry.ok() && entry.hash == 0) {
      // Delta resolution failed before a patched spec existed — no hash to
      // report, same shape the wire server uses.
      out << wire::render_parse_error(request.id, entry.error) << '\n';
    } else {
      out << (entry.ok()
                  ? wire::render_result(request.id, entry.hash, entry.cached,
                                        entry.result)
                  : wire::render_eval_error(request.id, entry.hash, entry.error))
          << '\n';
    }
  }
  out.flush();
  return 0;
}

int run_listen(svc::Service& service, const std::string& listen,
               const wire::ServerOptions& base, const std::string& port_file) {
  wire::ServerOptions options = base;
  const std::size_t colon = listen.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--listen expects HOST:PORT, got '" << listen << "'\n";
    return 2;
  }
  options.host = listen.substr(0, colon);
  options.port = static_cast<std::uint16_t>(examples::checked_int(
      listen.substr(colon + 1), "--listen port", 0, 65535, kUsage));

  wire::Server server(service, options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "cannot start server: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "listening on " << options.host << ":" << server.port() << '\n';
  if (!port_file.empty()) {
    std::ofstream pf(port_file, std::ios::trunc);
    if (!pf) {
      std::cerr << "cannot write " << port_file << '\n';
      return 1;
    }
    pf << server.port() << '\n';
  }
  server.run_until_signal();
  std::cerr << "drained " << server.connections_accepted()
            << " connection(s) worth of traffic; exiting\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned workers = 1;
  std::size_t cache_capacity = 1024;
  std::string cache_file;
  std::string in_path;
  std::string out_path;
  std::string metrics_path;
  std::string listen;
  std::string port_file;
  std::string flight_recorder_path;
  wire::ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      workers = static_cast<unsigned>(
          examples::checked_int(next(), "--workers", 1, 256, kUsage));
    } else if (arg == "--cache") {
      cache_capacity = examples::checked_size(next(), "--cache", 1 << 24, kUsage);
      if (cache_capacity == 0) cache_capacity = 1;
    } else if (arg == "--cache-file") {
      cache_file = next();
    } else if (arg == "--in") {
      in_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--listen") {
      listen = next();
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--flight-recorder") {
      flight_recorder_path = next();
    } else if (arg == "--inflight") {
      server_options.max_inflight_per_conn =
          examples::checked_size(next(), "--inflight", 1 << 20, kUsage);
      if (server_options.max_inflight_per_conn == 0) {
        server_options.max_inflight_per_conn = 1;
      }
    } else if (arg == "--watermark") {
      server_options.queue_high_watermark =
          examples::checked_size(next(), "--watermark", 1 << 24, kUsage);
      if (server_options.queue_high_watermark == 0) {
        server_options.queue_high_watermark = 1;
      }
    } else if (arg == "--max-frame") {
      server_options.max_frame_bytes =
          examples::checked_size(next(), "--max-frame", 1 << 30, kUsage);
      if (server_options.max_frame_bytes < wire::kFrameHeaderBytes) {
        server_options.max_frame_bytes = wire::kDefaultMaxFrameBytes;
      }
    } else {
      return usage();
    }
  }
  if (!listen.empty() && (!in_path.empty() || !out_path.empty())) {
    std::cerr << "--listen is exclusive with --in/--out\n";
    return usage();
  }

  svc::Service service(svc::ServiceOptions{workers, cache_capacity});
  if (!cache_file.empty()) {
    std::ifstream spill(cache_file);
    if (spill) {
      try {
        service.cache().load(spill);
      } catch (const std::exception& e) {
        std::cerr << "cannot load cache spill " << cache_file << ": " << e.what() << '\n';
        return 1;
      }
    }
  }

  int status;
  if (listen.empty()) {
    status = run_batch(service, in_path, out_path);
  } else {
    server_options.workers = workers;
    status = run_listen(service, listen, server_options, port_file);
  }
  if (status != 0) return status;

  if (!cache_file.empty()) {
    std::ofstream spill(cache_file, std::ios::trunc);
    if (!spill) {
      std::cerr << "cannot write cache spill " << cache_file << '\n';
      return 1;
    }
    service.cache().save(spill);
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics(metrics_path);
    metrics << metrics_to_json(obs::Registry::instance().snapshot()).dump(2) << '\n';
  }
  if (!flight_recorder_path.empty()) {
    std::ofstream recorder_out(flight_recorder_path, std::ios::trunc);
    if (!recorder_out) {
      std::cerr << "cannot write " << flight_recorder_path << '\n';
      return 1;
    }
    recorder_out << obs::rt::dump_chrome_jsonl(
        obs::rt::FlightRecorder::instance().recent());
  }
  return 0;
}
