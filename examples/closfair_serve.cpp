// closfair_serve — JSONL batch scenario-evaluation service (src/svc).
//
//   $ ./closfair_serve [--workers N] [--cache N] [--cache-file PATH]
//                      [--in FILE] [--out FILE] [--metrics OUT.json]
//
// Reads one request per line (stdin, or --in FILE), evaluates the batch
// through the sharded service, and writes one response per line (stdout, or
// --out FILE), aligned with the requests. A request line is either a bare
// ScenarioSpec object (docs/SERVICE.md) or an envelope
// {"id": ..., "spec": {...}} whose id (any JSON scalar) is echoed back.
// Responses:
//
//   {"id":..., "hash":"<fnv1a64 hex>", "cached":false, "result":{...}}
//   {"id":..., "error":"..."}                       (bad line or failed cell)
//
// Responses are byte-identical for every --workers value (the determinism
// contract in docs/SERVICE.md). --cache-file loads a JSONL cache spill
// before the batch and rewrites it afterwards, so repeated invocations warm
// each other.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arg_parse.hpp"
#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"

using namespace closfair;

namespace {

constexpr std::string_view kUsage =
    "closfair_serve [--workers N] [--cache N] [--cache-file PATH] [--in FILE] "
    "[--out FILE] [--metrics OUT.json]";

int usage() {
  std::cerr << "usage: " << kUsage << '\n';
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned workers = 1;
  std::size_t cache_capacity = 1024;
  std::string cache_file;
  std::string in_path;
  std::string out_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      workers = static_cast<unsigned>(
          examples::checked_int(next(), "--workers", 1, 256, kUsage));
    } else if (arg == "--cache") {
      cache_capacity = examples::checked_size(next(), "--cache", 1 << 24, kUsage);
      if (cache_capacity == 0) cache_capacity = 1;
    } else if (arg == "--cache-file") {
      cache_file = next();
    } else if (arg == "--in") {
      in_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else {
      return usage();
    }
  }

  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path);
    if (!in_file) {
      std::cerr << "cannot open " << in_path << '\n';
      return 1;
    }
  }
  std::istream& in = in_path.empty() ? std::cin : in_file;

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "cannot open " << out_path << '\n';
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  svc::Service service(svc::ServiceOptions{workers, cache_capacity});
  if (!cache_file.empty()) {
    std::ifstream spill(cache_file);
    if (spill) {
      try {
        service.cache().load(spill);
      } catch (const std::exception& e) {
        std::cerr << "cannot load cache spill " << cache_file << ": " << e.what() << '\n';
        return 1;
      }
    }
  }

  // Parse every line up front; parse failures become per-line error
  // responses without consuming an evaluation slot.
  std::vector<svc::ScenarioSpec> specs;
  std::vector<Json> ids;             // null when the request had no envelope id
  std::vector<std::string> errors;   // per input line; empty = evaluable
  std::vector<std::size_t> spec_of;  // line -> index into specs (or SIZE_MAX)
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ids.push_back(Json::null());
    errors.emplace_back();
    spec_of.push_back(SIZE_MAX);
    try {
      const Json request = Json::parse(line);
      const Json* spec_json = &request;
      if (request.is_object()) {
        if (const Json* inner = request.find("spec"); inner != nullptr) {
          spec_json = inner;
          if (const Json* id = request.find("id"); id != nullptr) ids.back() = *id;
        }
      }
      spec_of.back() = specs.size();
      specs.push_back(svc::ScenarioSpec::from_json(*spec_json));
    } catch (const std::exception& e) {
      spec_of.back() = SIZE_MAX;
      errors.back() = e.what();
      OBS_COUNTER_INC("svc.errors");
    }
  }

  const std::vector<svc::BatchEntry> batch = service.evaluate_batch(specs);

  char hash_hex[17];
  for (std::size_t i = 0; i < spec_of.size(); ++i) {
    Json response = Json::object();
    if (!ids[i].is_null()) response.set("id", ids[i]);
    if (spec_of[i] == SIZE_MAX) {
      response.set("error", Json::string(errors[i]));
    } else {
      const svc::BatchEntry& entry = batch[spec_of[i]];
      std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                    static_cast<unsigned long long>(entry.hash));
      response.set("hash", Json::string(hash_hex));
      if (entry.ok()) {
        response.set("cached", Json::boolean(entry.cached));
        response.set("result", entry.result.to_json());
      } else {
        response.set("error", Json::string(entry.error));
      }
    }
    out << response.dump() << '\n';
  }
  out.flush();

  if (!cache_file.empty()) {
    std::ofstream spill(cache_file, std::ios::trunc);
    if (!spill) {
      std::cerr << "cannot write cache spill " << cache_file << '\n';
      return 1;
    }
    service.cache().save(spill);
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics(metrics_path);
    metrics << metrics_to_json(obs::Registry::instance().snapshot()).dump(2) << '\n';
  }
  return 0;
}
