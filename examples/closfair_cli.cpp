// closfair_cli — analyze a text-format instance file end to end.
//
//   $ ./closfair_cli INSTANCE.txt [--policy ecmp|greedy|doom|lex] [--seed S]
//                    [--csv OUT.csv] [--dot OUT.dot] [--json OUT.json] [--verify]
//                    [--replicate] [--metrics OUT.json] [--trace OUT.jsonl]
//                    [--fail-middles K] [--fail-links P] [--fail-seed S]
//
// --fail-middles K kills K uniformly random middle switches, --fail-links P
// independently zeroes each fabric link with probability P, both drawn from
// the deterministic --fail-seed stream (default 1). The degraded fabric is
// what every policy, bound check, and export below then sees; the macro
// switch reference stays pristine, so the comparison shows what the failures
// cost relative to the ideal fabric.
//
// --metrics dumps the obs registry (counters/gauges/histograms accumulated
// during the analysis) as JSON; --trace streams Chrome-trace JSONL span
// events (see docs/OBSERVABILITY.md). Both are no-ops when the library was
// built with -DCLOSFAIR_OBS=OFF.
//
// --replicate asks the exact backtracking searcher whether the instance's
// target rates (each flow's `@rate`, defaulting to its macro-switch max-min
// rate) admit any feasible routing — the §4.1 question.
//
// Reads a Clos instance (see src/io/text_format.hpp for the format),
// computes the macro-switch reference and the chosen routing's max-min
// allocation, prints a comparison, and optionally writes per-flow rates as
// CSV and the routed topology as Graphviz.
//
// Example instance (Example 3.3 from the paper):
//
//   clos n=1
//   flow 1 1 -> 1 1
//   flow 2 1 -> 2 1
//   flow 2 1 -> 1 1
#include <fstream>
#include <iostream>
#include <string>

#include "arg_parse.hpp"
#include "core/analysis.hpp"
#include "core/bounds.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "io/json_export.hpp"
#include "fairness/waterfill.hpp"
#include "io/text_format.hpp"
#include "net/dot.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "routing/replication.hpp"
#include "util/rng.hpp"

using namespace closfair;

namespace {

constexpr std::string_view kUsage =
    "closfair_cli INSTANCE.txt [--policy ecmp|greedy|doom|lex] [--seed S] ...";

int usage() {
  std::cerr << "usage: closfair_cli INSTANCE.txt [--policy ecmp|greedy|doom|lex]\n"
               "                    [--seed S] [--csv OUT.csv] [--dot OUT.dot]\n"
               "                    [--json OUT.json] [--verify] [--replicate]\n"
               "                    [--metrics OUT.json] [--trace OUT.jsonl]\n"
               "                    [--fail-middles K] [--fail-links P] [--fail-seed S]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string policy = "greedy";
  std::string csv_path;
  std::string dot_path;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  bool verify = false;
  bool replicate = false;
  std::uint64_t seed = 1;
  int fail_middles = 0;
  double fail_links = 0.0;
  std::uint64_t fail_seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      policy = next();
    } else if (arg == "--seed") {
      seed = examples::checked_u64(next(), "--seed", kUsage);
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--fail-middles") {
      fail_middles = examples::checked_int(next(), "--fail-middles", 0, 1024, kUsage);
    } else if (arg == "--fail-links") {
      fail_links = examples::checked_double(next(), "--fail-links", 0.0, 1.0, kUsage);
    } else if (arg == "--fail-seed") {
      fail_seed = examples::checked_u64(next(), "--fail-seed", kUsage);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--replicate") {
      replicate = true;
    } else {
      return usage();
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << '\n';
    return 1;
  }

  if (!trace_path.empty() && !obs::start_trace(trace_path)) {
    std::cerr << "cannot open trace file " << trace_path << '\n';
    return 1;
  }

  try {
    const InstanceSpec spec = parse_instance_stream(in);
    ClosNetwork net = spec.build_clos();
    const MacroSwitch ms(MacroSwitch::Params{spec.params.num_tors,
                                             spec.params.servers_per_tor,
                                             spec.params.link_capacity});
    const FlowSet flows = instantiate(net, spec.flows);
    std::cout << "instance: " << flows.size() << " flows on a "
              << net.num_middles() << "-middle, " << net.num_tors() << "-ToR Clos\n\n";

    if (fail_middles > 0 || fail_links > 0.0) {
      Rng fail_rng(fail_seed);
      fault::FailureScenario scenario = fault::sample_middle_outage(net, fail_middles, fail_rng);
      const fault::FailureScenario links = fault::sample_link_failures(net, fail_links, fail_rng);
      scenario.derated_links.insert(scenario.derated_links.end(),
                                    links.derated_links.begin(), links.derated_links.end());
      const std::size_t changed = fault::apply(net, scenario);
      std::cout << "degraded fabric: " << fault::summary(scenario) << " ("
                << changed << " links changed, "
                << fault::surviving_middles(net).size() << '/' << net.num_middles()
                << " middles survive)\n\n";
    }

    const auto macro = analyze_macro(ms, instantiate(ms, spec.flows));

    if (replicate) {
      std::vector<Rational> targets;
      targets.reserve(flows.size());
      for (FlowIndex f = 0; f < flows.size(); ++f) {
        const bool declared = f < spec.rates.size() && spec.rates[f].has_value();
        targets.push_back(declared ? *spec.rates[f] : macro.maxmin.rate(f));
      }
      const ReplicationResult result = find_feasible_routing(net, flows, targets);
      std::cout << "replication feasibility for target rates ("
                << (spec.has_rates() ? "declared @rates + macro defaults"
                                     : "macro max-min rates")
                << "):\n  "
                << (result.feasible ? "FEASIBLE" : "infeasible — no routing exists")
                << " (" << result.nodes_explored << " search nodes)\n";
      if (result.routing) {
        std::cout << "  witness middles:";
        for (int m : *result.routing) std::cout << ' ' << m;
        std::cout << '\n';
      }
      std::cout << '\n';
    }

    std::vector<double> demands;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      demands.push_back(macro.maxmin.rate(f).to_double());
    }

    Rng rng(seed);
    MiddleAssignment middles;
    if (policy == "ecmp") {
      middles = ecmp_routing(net, flows, rng);
    } else if (policy == "doom") {
      middles = doom_switch(net, flows).middles;
    } else if (policy == "lex") {
      LocalSearchOptions options;
      options.max_moves = 2000;
      middles =
          lex_max_min_local_search(net, flows, greedy_routing(net, flows, demands), options)
              .middles;
    } else if (policy == "greedy") {
      middles = greedy_routing(net, flows, demands);
    } else {
      return usage();
    }

    const Comparison comparison = compare(net, ms, spec.flows, middles);
    std::cout << "policy: " << policy << "\n\n" << render_comparison(comparison) << '\n';

    std::cout << "macro rates:  " << format_rates(comparison.macro.maxmin) << '\n';
    std::cout << "clos rates:   " << format_rates(comparison.clos.maxmin) << '\n';

    if (verify) {
      const BoundReport report = check_paper_bounds(net, ms, spec.flows, middles);
      std::cout << '\n' << render_bound_report(report);
      if (!report.all_hold()) {
        std::cerr << "paper bound VIOLATED — this indicates a library bug\n";
        return 3;
      }
    }

    if (!json_path.empty()) {
      std::ofstream json(json_path);
      json << to_json(comparison).dump(2) << '\n';
      std::cout << "wrote " << json_path << '\n';
    }
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      write_rates_csv(csv, spec.flows, {},
                      {NamedAllocation{"macro", &comparison.macro.maxmin},
                       NamedAllocation{"clos", &comparison.clos.maxmin}});
      std::cout << "wrote " << csv_path << '\n';
    }
    if (!dot_path.empty()) {
      std::ofstream dot(dot_path);
      dot << to_dot(net.topology(), flows, expand_routing(net, flows, middles));
      std::cout << "wrote " << dot_path << '\n';
    }
    obs::stop_trace();
    if (!metrics_path.empty()) {
      std::ofstream metrics(metrics_path);
      metrics << metrics_to_json(obs::Registry::instance().snapshot()).dump(2) << '\n';
      std::cout << "wrote " << metrics_path << '\n';
    }
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
