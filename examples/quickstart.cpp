// Quickstart: build a Clos network and its macro-switch, throw a workload at
// them, and measure how far congestion-controlled routing lands from the
// macro-switch ideal.
//
//   $ ./quickstart [num_middles] [num_flows] [seed]
#include <cstdlib>
#include <iostream>

#include "arg_parse.hpp"
#include "core/analysis.hpp"
#include "core/report.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage = "quickstart [num_middles] [num_flows] [seed]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "num_middles", 1, 64, kUsage) : 3;
  const std::size_t num_flows =
      argc > 2 ? checked_size(argv[2], "num_flows", 1'000'000, kUsage) : 24;
  const std::uint64_t seed = argc > 3 ? checked_u64(argv[3], "seed", kUsage) : 1;

  // 1. The paper's C_n and its macro-switch abstraction MS_n.
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  std::cout << "C_" << n << ": " << net.topology().num_nodes() << " nodes, "
            << net.topology().num_links() << " unit-capacity links, "
            << net.num_sources() << " sources\n\n";

  // 2. A random workload, specified in ToR/server coordinates so the same
  //    collection instantiates on both topologies.
  Rng rng(seed);
  const FlowCollection specs = uniform_random(Fabric{2 * n, n}, num_flows, rng);

  // 3. The macro-switch reference: unique max-min fair allocation, maximum
  //    throughput (maximum matching), price of fairness.
  const auto macro = analyze_macro(ms, instantiate(ms, specs));
  std::cout << "macro-switch: T^MmF = " << macro.t_maxmin
            << ", T^MT = " << macro.t_max_throughput
            << ", price of fairness = " << macro.price_of_fairness.to_double() << "\n\n";

  // 4. Two routings in the Clos network: random (ECMP) and congestion-aware
  //    greedy seeded with the macro rates as demands.
  const FlowSet flows = instantiate(net, specs);
  std::vector<double> demands;
  for (FlowIndex f = 0; f < flows.size(); ++f) demands.push_back(macro.maxmin.rate(f).to_double());

  TextTable table({"routing", "throughput", "throughput ratio", "min rate ratio",
                   "lex vs macro"});
  for (const char* name : {"ecmp", "greedy"}) {
    const MiddleAssignment middles = std::string{name} == "ecmp"
                                         ? ecmp_routing(net, flows, rng)
                                         : greedy_routing(net, flows, demands);
    const Comparison c = compare(net, ms, specs, middles);
    table.add_row({name, c.clos.throughput.to_string(),
                   fmt_double(c.throughput_ratio.to_double(), 3),
                   fmt_double(c.min_rate_ratio.to_double(), 3),
                   c.lex_vs_macro == std::strong_ordering::equal ? "equal" : "below"});
  }
  std::cout << table << '\n';

  std::cout << "The macro-switch vector always lex-dominates (paper §2.3); how close a\n"
               "routing gets is the paper's subject. Try the other examples next.\n";
  return 0;
}
