// A guided tour of the Doom-Switch algorithm (Algorithm 1, R3).
//
// Runs the three steps on the Theorem 5.4 instance — maximum matching, König
// coloring, doomed-middle dump — printing each intermediate object, then the
// resulting max-min allocation next to the macro-switch one.
//
//   $ ./doom_switch_tour [n] [k]
#include <cstdlib>
#include <iostream>

#include "arg_parse.hpp"
#include "core/adversarial.hpp"
#include "core/report.hpp"
#include "core/theorems.hpp"
#include "fairness/waterfill.hpp"
#include "matching/edge_coloring.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "routing/doom_switch.hpp"
#include "util/table.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage = "doom_switch_tour [n] [k]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "n", 1, 63, kUsage) : 7;
  const int k = argc > 2 ? checked_int(argv[2], "k", 1, 1000, kUsage) : 1;
  if (n < 3 || n % 2 == 0 || k < 1) {
    std::cerr << "need odd n >= 3 and k >= 1\n";
    return 1;
  }

  const AdversarialInstance inst = theorem_5_4_instance(n, k);
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const FlowSet flows = instantiate(net, inst.flows);
  std::cout << "Theorem 5.4 instance in C_" << n << " (k = " << k << "): "
            << flows.size() << " flows\n\n";

  // Step 1: maximum matching in G^MS.
  const BipartiteMultigraph g_ms = server_flow_graph(net, flows);
  const auto matching = maximum_matching(g_ms);
  std::cout << "step 1 — maximum matching F' in G^MS: " << matching.size()
            << " flows matched of " << flows.size() << " (T^MT = " << matching.size()
            << ")\n";

  // Step 2: König coloring of G^C restricted to F'.
  BipartiteMultigraph g_c(static_cast<std::size_t>(net.num_tors()),
                          static_cast<std::size_t>(net.num_tors()));
  for (std::size_t e : matching) {
    const auto s = net.source_coord(flows[e].src);
    const auto t = net.dest_coord(flows[e].dst);
    g_c.add_edge(static_cast<std::size_t>(s.tor - 1), static_cast<std::size_t>(t.tor - 1));
  }
  const auto colors = edge_coloring(g_c, n);
  std::cout << "step 2 — König coloring of G^C|F' with Δ = " << g_c.max_degree()
            << " <= n = " << n << " colors: proper = "
            << (is_proper_coloring(g_c, colors, n) ? "yes" : "NO") << '\n';

  // Step 3: the full algorithm.
  const DoomSwitchResult doom = doom_switch(net, flows);
  std::cout << "step 3 — doomed middle: M_" << doom.doomed_middle << " receives "
            << flows.size() - doom.matched.size() << " unmatched flows\n\n";

  // Outcome vs macro-switch and vs the closed-form prediction.
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
  const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
  std::cout << render_label_table(inst.labels, macro, "macro-switch", &alloc,
                                  "doom-switch")
            << '\n';

  const Theorem54Prediction pred = predict_theorem_5_4(n, k);
  TextTable table({"quantity", "measured", "paper"});
  table.add_row({"T^MmF (macro)", macro.throughput().to_string(),
                 pred.t_maxmin_macro.to_string()});
  table.add_row({"T (doom-switch)", alloc.throughput().to_string(),
                 pred.doom_throughput.to_string()});
  table.add_row({"gain", fmt_double((alloc.throughput() / macro.throughput()).to_double(), 4),
                 fmt_double(pred.gain.to_double(), 4)});
  table.add_row({"2(1 - 1/(n-1)) limit", "",
                 fmt_double(2.0 * (1.0 - 1.0 / (n - 1)), 4)});
  std::cout << table << '\n';
  return 0;
}
