// Anatomy of Theorem 4.3's starvation instance (R2).
//
// Walks the adversarial collection for a chosen n: prints the per-type macro
// rates, shows by backtracking search that they cannot be routed, then walks
// the paper's witness routing and shows where each flow's bottleneck moved
// and why the type 3 flow ends at 1/n.
//
//   $ ./starvation_anatomy [n]
#include <cstdlib>
#include <iostream>

#include "arg_parse.hpp"
#include "core/adversarial.hpp"
#include "core/report.hpp"
#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "routing/replication.hpp"
#include "util/table.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage = "starvation_anatomy [n]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "n", 1, 64, kUsage) : 3;
  if (n < 3) {
    std::cerr << "Theorem 4.3 needs n >= 3\n";
    return 1;
  }

  const AdversarialInstance inst = theorem_4_3_instance(n);
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  std::cout << "Theorem 4.3 instance in C_" << n << ": " << inst.flows.size()
            << " flows\n\n";

  // Per-type rates in the macro-switch (Lemma 4.4) vs the witness routing
  // (Lemma 4.6).
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
  const FlowSet flows = instantiate(net, inst.flows);
  const auto clos = max_min_fair<Rational>(net, flows, *inst.witness);
  std::cout << render_label_table(inst.labels, macro, "macro-switch", &clos,
                                  "lex-max-min")
            << '\n';

  // The macro rates cannot be routed (the heart of the impossibility).
  if (n <= 4) {
    const auto replication = find_feasible_routing(net, flows, inst.macro_rates);
    std::cout << "feasible routing for macro rates: "
              << (replication.feasible ? "FOUND (?!)" : "none")
              << " (backtracking explored " << replication.nodes_explored
              << " nodes)\n\n";
  } else {
    std::cout << "(skipping exhaustive infeasibility proof for n > 4)\n\n";
  }

  // Bottleneck anatomy: where each flow type is pinned under the witness.
  const Routing routing = expand_routing(net, flows, *inst.witness);
  const auto bottlenecks = bottleneck_links(net.topology(), routing, clos);
  TextTable table({"flow", "type", "rate", "bottleneck link"});
  // Show one representative per type plus the type 3 flow.
  std::vector<std::string> seen;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    bool first_of_type = true;
    for (const auto& s : seen) {
      if (s == inst.labels[f]) {
        first_of_type = false;
        break;
      }
    }
    if (!first_of_type && f != flows.size() - 1) continue;
    seen.push_back(inst.labels[f]);
    std::string where = "(none!)";
    if (bottlenecks[f].has_value()) {
      const Link& link = net.topology().link(*bottlenecks[f]);
      where = net.topology().node(link.from).name + " -> " +
              net.topology().node(link.to).name;
    }
    table.add_row({net.topology().node(flows[f].src).name + " -> " +
                       net.topology().node(flows[f].dst).name,
                   inst.labels[f], clos.rate(f).to_string(), where});
  }
  std::cout << table << '\n';

  std::cout << "The type 3 flow's bottleneck moved from its edge links (macro) to the\n"
               "inside link M_" << n << "O_" << n + 1 << ", shared with " << n - 1
            << " type 2.b flows: rate 1 -> 1/" << n << ".\n";
  return 0;
}
