// Flow completion times: congestion control vs scheduling (§7, R1) and the
// dynamic Clos-vs-macro gap, on one Poisson trace.
//
//   $ ./fct_scheduling [n] [flows] [arrival_rate] [seed]
#include <cstdlib>
#include <iostream>

#include "arg_parse.hpp"
#include "sim/event_sim.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"
#include "workload/trace.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage = "fct_scheduling [n] [flows] [arrival_rate] [seed]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "n", 1, 64, kUsage) : 3;
  const std::size_t num_flows =
      argc > 2 ? checked_size(argv[2], "flows", 1'000'000, kUsage) : 200;
  const double rate =
      argc > 3 ? checked_double(argv[3], "arrival_rate", 1e-9, 1e9, kUsage) : 6.0;
  const std::uint64_t seed = argc > 4 ? checked_u64(argv[4], "seed", kUsage) : 3;

  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);

  // Part 1: dynamic trace through the simulator.
  TraceParams params;
  params.fabric = Fabric{2 * n, n};
  params.num_flows = num_flows;
  params.arrival_rate = rate;
  params.sizes = SizeDistribution::kExponential;
  Rng rng(seed);
  const Trace trace = poisson_trace(params, rng);
  std::cout << "Poisson trace: " << trace.size() << " flows, arrival rate " << rate
            << ", exp(1) sizes, C_" << n << " vs MS_" << n << "\n\n";

  TextTable sim_table({"system", "mean FCT", "p50", "p99", "mean slowdown"});
  Rng rng_ecmp(seed + 1);
  const SimStats ecmp = simulate_clos(net, trace, SimPolicy::kEcmp, rng_ecmp);
  Rng rng_ll(seed + 2);
  const SimStats least = simulate_clos(net, trace, SimPolicy::kLeastLoaded, rng_ll);
  const SimStats macro = simulate_macro(ms, trace);
  for (const auto& [name, stats] :
       {std::pair<const char*, const SimStats&>{"clos + ecmp", ecmp},
        {"clos + least-loaded", least},
        {"macro-switch (ideal)", macro}}) {
    sim_table.add_row({name, fmt_double(stats.mean_fct, 3), fmt_double(stats.p50_fct, 3),
                       fmt_double(stats.p99_fct, 3), fmt_double(stats.mean_slowdown, 3)});
  }
  std::cout << sim_table << '\n';

  // Part 2: static batch, congestion control vs matching-round scheduling.
  Rng rng_batch(seed + 3);
  const FlowCollection specs = uniform_random(params.fabric, 40, rng_batch);
  const FlowSet flows = instantiate(ms, specs);
  std::vector<double> sizes;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    sizes.push_back(rng_batch.next_exponential(1.0));
  }
  const auto cc =
      batch_congestion_control(ms.topology(), flows, macro_routing(ms, flows), sizes);
  const auto sched = batch_matching_schedule(ms, flows, sizes);

  TextTable batch_table({"policy", "mean FCT", "makespan", "avg goodput"});
  batch_table.add_row({"max-min congestion control", fmt_double(cc.mean_fct, 3),
                       fmt_double(cc.max_fct, 3), fmt_double(cc.throughput_time_avg, 3)});
  batch_table.add_row({"matching-round scheduling", fmt_double(sched.mean_fct, 3),
                       fmt_double(sched.max_fct, 3),
                       fmt_double(sched.throughput_time_avg, 3)});
  std::cout << batch_table << '\n';

  std::cout << "Scheduling trades waiting for full-rate transmission (the paper's R1\n"
               "discussion): mean FCT usually improves, makespan stays comparable.\n";
  return 0;
}
