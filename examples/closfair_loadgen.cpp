// closfair_loadgen — load generator / traffic replayer for the wire server.
//
//   $ ./closfair_loadgen --host HOST --port PORT [traffic] [load] [output]
//
//   traffic (one of):
//     --replay FILE    send the file's request lines in order (1 connection)
//     --requests N     generate N mixed ScenarioSpec requests (default 100)
//   generated-traffic shape:
//     --mix C:W:D      percent cold : warm (re-request an earlier scenario) :
//                      duplicate (back-to-back repeat); default 60:30:10
//     --delta P        percent of requests sent as delta patches
//                      ({"base":"<hash>","patch":{...}}) against an earlier
//                      cold request on the same connection (default 0)
//     --seed S         traffic/schedule seed (default 1)
//     --clos-n N       Clos size of generated cells (default 3)
//   load shape:
//     --rps R          open-loop Poisson arrivals at R req/s, split across
//                      connections (0 = unpaced full-pipeline blast; default)
//     --conns K        parallel long-lived connections (default 1)
//   output:
//     --out FILE       write response payloads one per line (requires 1 conn)
//     --json FILE      machine-readable report (bench/serve_net schema)
//     --quiet          suppress the human-readable summary
//   admin plane (docs/OBSERVABILITY.md; no traffic is generated):
//     --admin VERB     send one metricsz/statusz/tracez frame, print the
//                      JSON response, exit
//     --watch SECS     scrape metricsz every SECS seconds and print a
//                      rate/latency delta line per tick (Ctrl-C to stop)
//     --watch-count N  stop --watch after N ticks (0 = forever; default)
//
// Open loop means arrivals do not wait for responses: when the server falls
// behind, requests pipeline deeper instead of slowing the offered rate, so
// measured latency reflects queueing — and past the admission-control
// watermark the server sheds with explicit overload responses, which are
// counted separately from errors. Per-connection responses arrive in request
// order (docs/SERVICE.md), so latency is matched FIFO without envelope ids.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arg_parse.hpp"
#include "svc/spec.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wire/client.hpp"
#include "wire/protocol.hpp"

using namespace closfair;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::string_view kUsage =
    "closfair_loadgen --host HOST --port PORT [--replay FILE | --requests N] "
    "[--mix C:W:D] [--delta P] [--seed S] [--clos-n N] [--rps R] [--conns K] "
    "[--out FILE] [--json FILE] [--quiet] "
    "[--admin VERB | --watch SECS [--watch-count N]]";

int usage() {
  std::cerr << "usage: " << kUsage << '\n';
  return 2;
}

/// One generated scenario cell: cheap to evaluate (greedy / ecmp on a small
/// Clos), unique per `variant` so cold traffic always misses the cache.
std::string spec_body(int clos_n, std::uint64_t variant) {
  svc::ScenarioSpec spec;
  spec.topology.params =
      ClosNetwork::Params{clos_n, 2 * clos_n, clos_n, Rational{1}};
  spec.workload.generator = "uniform";
  spec.workload.count = static_cast<std::size_t>(4 * clos_n);
  spec.workload.seed = 1000 + variant;
  spec.routing.policy = variant % 2 == 0 ? "greedy" : "ecmp";
  return spec.canonical();
}

struct Mix {
  int cold = 60;
  int warm = 30;
  int dup = 10;
};

Mix parse_mix(const std::string& token) {
  Mix mix;
  const auto first = token.find(':');
  const auto second = token.find(':', first == std::string::npos ? 0 : first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    examples::bad_arg("--mix", token, "C:W:D percentages summing to 100", kUsage);
  }
  mix.cold = examples::checked_int(token.substr(0, first), "--mix cold", 0, 100, kUsage);
  mix.warm = examples::checked_int(token.substr(first + 1, second - first - 1),
                                   "--mix warm", 0, 100, kUsage);
  mix.dup = examples::checked_int(token.substr(second + 1), "--mix dup", 0, 100, kUsage);
  if (mix.cold + mix.warm + mix.dup != 100) {
    examples::bad_arg("--mix", token, "C:W:D percentages summing to 100", kUsage);
  }
  return mix;
}

/// `delta_pct` requests (when an earlier cold body exists on the same
/// connection under a `conns`-way round-robin split) are sent as delta
/// patches against that body's content address. Referencing only
/// same-connection history keeps the base resolvable under the server's
/// arrival-order resolution: the base is either cached or still pending on
/// that very connection. Patches alternate an objective switch with a
/// middle-stage fault so both the result-reuse and re-evaluate warm paths
/// see traffic. With --delta 0 the request stream is bit-for-bit what it
/// was before the flag existed (the extra draw is only consumed on delta).
std::vector<std::string> generate_traffic(std::size_t count, const Mix& mix,
                                          int delta_pct, std::uint64_t seed,
                                          int clos_n, unsigned conns) {
  Rng rng(seed);
  std::vector<std::string> lines;
  std::vector<std::string> history;  // spec bodies issued so far
  std::vector<std::vector<std::string>> conn_cold(conns);  // cold bodies per conn
  lines.reserve(count);
  std::uint64_t cold_issued = 0;
  std::uint64_t deltas_issued = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t draw = rng.next_below(100);
    std::vector<std::string>& cold_here = conn_cold[i % conns];
    if (delta_pct > 0 && draw < static_cast<std::uint64_t>(delta_pct) &&
        !cold_here.empty()) {
      const std::string& base = cold_here[rng.next_below(cold_here.size())];
      const std::string patch =
          deltas_issued++ % 2 == 0
              ? "{\"objective\":\"maxmin_lp\"}"
              : "{\"fail_middles\":[1]}";
      lines.push_back("{\"id\":" + std::to_string(i) + ",\"delta\":{\"base\":\"" +
                      wire::hash_hex(svc::fnv1a64(base)) + "\",\"patch\":" +
                      patch + "}}");
      continue;  // deltas never enter the warm/dup history
    }
    std::string body;
    if (!history.empty() && draw >= static_cast<std::uint64_t>(mix.cold)) {
      body = draw < static_cast<std::uint64_t>(mix.cold + mix.warm)
                 ? history[rng.next_below(history.size())]  // warm re-request
                 : history.back();                          // back-to-back duplicate
    } else {
      body = spec_body(clos_n, cold_issued++);
      cold_here.push_back(body);
    }
    history.push_back(body);
    lines.push_back("{\"id\":" + std::to_string(i) + ",\"spec\":" + body + "}");
  }
  return lines;
}

std::vector<std::string> read_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << '\n';
    std::exit(1);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    lines.push_back(line);
  }
  return lines;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct ConnStats {
  std::vector<double> latencies_us;
  std::vector<std::string> responses;  // kept only when --out is in play
  std::size_t completed = 0;
  std::size_t overloads = 0;
  std::size_t errors = 0;
  std::size_t cached = 0;
  Clock::time_point first_send{};
  Clock::time_point last_recv{};
  std::string failure;
};

void run_connection(const std::string& host, std::uint16_t port,
                    const std::vector<std::string>& lines, double conn_rps,
                    std::uint64_t schedule_seed, bool keep_responses,
                    ConnStats& stats) {
  wire::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    stats.failure = e.what();
    return;
  }

  std::vector<std::atomic<std::int64_t>> send_ns(lines.size());
  std::atomic<bool> send_failed{false};

  std::thread sender([&] {
    Rng rng(schedule_seed);
    const Clock::time_point start = Clock::now();
    double offset_s = 0.0;
    try {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (conn_rps > 0.0) {
          offset_s += rng.next_exponential(conn_rps);
          std::this_thread::sleep_until(start + std::chrono::duration_cast<Clock::duration>(
                                                    std::chrono::duration<double>(offset_s)));
        }
        const Clock::time_point now = Clock::now();
        send_ns[i].store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch())
                .count(),
            std::memory_order_release);
        client.send(lines[i]);
      }
      client.finish_sending();
    } catch (const std::exception&) {
      send_failed.store(true);
    }
  });

  stats.first_send = Clock::now();
  try {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      auto response = client.recv();
      if (!response.has_value()) break;  // server drained under us
      const Clock::time_point now = Clock::now();
      stats.last_recv = now;
      const std::int64_t sent = send_ns[i].load(std::memory_order_acquire);
      const auto now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch())
              .count();
      stats.latencies_us.push_back(static_cast<double>(now_ns - sent) / 1000.0);
      ++stats.completed;
      if (response->find("\"overload\":true") != std::string::npos) {
        ++stats.overloads;
      } else if (response->find("\"error\":") != std::string::npos) {
        ++stats.errors;
      } else if (response->find("\"cached\":true") != std::string::npos) {
        ++stats.cached;
      }
      if (keep_responses) stats.responses.push_back(std::move(*response));
    }
  } catch (const std::exception& e) {
    stats.failure = e.what();
  }
  sender.join();
  if (send_failed.load() && stats.failure.empty()) stats.failure = "send failed";
  client.close();
}

// ------------------------------------------------------------- admin plane

/// One-shot admin scrape: send the verb, print the JSON payload verbatim.
/// Scripts (tier1's metricsz/statusz shape check) build on this.
int run_admin(const std::string& host, std::uint16_t port,
              const std::string& verb) {
  if (!wire::is_admin_verb(verb)) {
    std::cerr << "--admin takes metricsz, statusz, or tracez (got \"" << verb
              << "\")\n";
    return 2;
  }
  wire::Client client;
  try {
    client.connect(host, port);
    std::cout << client.call(verb) << '\n';
  } catch (const std::exception& e) {
    std::cerr << "admin scrape failed: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

/// Periodic metricsz scrape: one line per tick with request/response/
/// evaluation/shed rates (deltas over the interval) and the server's
/// wire.request latency quantiles. Counter deltas are computed client-side;
/// quantiles are the server's own log-linear estimates (cumulative, not
/// per-interval — the histogram has no snapshot reset).
int run_watch(const std::string& host, std::uint16_t port, double interval_s,
              std::size_t ticks) {
  wire::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    std::cerr << "connect failed: " << e.what() << '\n';
    return 1;
  }
  std::printf("%8s %9s %9s %9s %9s %9s %9s %9s\n", "tick", "req/s", "resp/s",
              "eval/s", "shed/s", "p50_ms", "p99_ms", "p999_ms");
  std::uint64_t prev[4] = {0, 0, 0, 0};
  for (std::size_t tick = 0; ticks == 0 || tick < ticks; ++tick) {
    if (tick != 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    Json metrics;
    try {
      const Json response = Json::parse(client.call("metricsz"));
      const Json* m = response.find("metrics");
      if (m == nullptr) {  // OBS=OFF server: a well-formed error object
        const Json* error = response.find("error");
        std::cerr << "server has no metrics: "
                  << (error != nullptr && error->is_string() ? error->as_string()
                                                             : "unknown")
                  << '\n';
        return 1;
      }
      metrics = *m;
    } catch (const std::exception& e) {
      std::cerr << "metricsz scrape failed: " << e.what() << '\n';
      return 1;
    }
    const Json& counters = metrics.at("counters");
    const auto counter = [&](const char* name) -> std::uint64_t {
      const Json* v = counters.find(name);
      return v != nullptr ? static_cast<std::uint64_t>(v->as_int()) : 0;
    };
    const std::uint64_t now[4] = {
        counter("wire.requests"), counter("wire.responses"),
        counter("wire.evaluations"), counter("wire.overload_sheds")};
    double quantiles_ms[3] = {0.0, 0.0, 0.0};
    if (const Json* hist = metrics.at("histograms").find("wire.request")) {
      const char* keys[3] = {"p50_ns", "p99_ns", "p999_ns"};
      for (int i = 0; i < 3; ++i) {
        if (const Json* q = hist->find(keys[i])) {
          quantiles_ms[i] = q->as_double() / 1e6;
        }
      }
    }
    if (tick == 0) {
      // First sample has no delta baseline: print cumulative totals.
      std::printf("%8s %9llu %9llu %9llu %9llu %9.2f %9.2f %9.2f  (totals)\n",
                  "0", static_cast<unsigned long long>(now[0]),
                  static_cast<unsigned long long>(now[1]),
                  static_cast<unsigned long long>(now[2]),
                  static_cast<unsigned long long>(now[3]), quantiles_ms[0],
                  quantiles_ms[1], quantiles_ms[2]);
    } else {
      std::printf("%8zu %9.1f %9.1f %9.1f %9.1f %9.2f %9.2f %9.2f\n", tick,
                  static_cast<double>(now[0] - prev[0]) / interval_s,
                  static_cast<double>(now[1] - prev[1]) / interval_s,
                  static_cast<double>(now[2] - prev[2]) / interval_s,
                  static_cast<double>(now[3] - prev[3]) / interval_s,
                  quantiles_ms[0], quantiles_ms[1], quantiles_ms[2]);
    }
    std::fflush(stdout);
    for (int i = 0; i < 4; ++i) prev[i] = now[i];
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string replay_path;
  std::size_t requests = 100;
  Mix mix;
  int delta_pct = 0;
  std::uint64_t seed = 1;
  int clos_n = 3;
  double rps = 0.0;
  unsigned conns = 1;
  std::string out_path;
  std::string json_path;
  bool quiet = false;
  std::string admin_verb;
  double watch_interval_s = 0.0;
  std::size_t watch_ticks = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = examples::checked_int(next(), "--port", 1, 65535, kUsage);
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--requests") {
      requests = examples::checked_size(next(), "--requests", 1 << 24, kUsage);
    } else if (arg == "--mix") {
      mix = parse_mix(next());
    } else if (arg == "--delta") {
      delta_pct = examples::checked_int(next(), "--delta", 0, 100, kUsage);
    } else if (arg == "--seed") {
      seed = examples::checked_u64(next(), "--seed", kUsage);
    } else if (arg == "--clos-n") {
      clos_n = examples::checked_int(next(), "--clos-n", 2, 16, kUsage);
    } else if (arg == "--rps") {
      rps = examples::checked_double(next(), "--rps", 0.0, 1e9, kUsage);
    } else if (arg == "--conns") {
      conns = static_cast<unsigned>(examples::checked_int(next(), "--conns", 1, 1024, kUsage));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--admin") {
      admin_verb = next();
    } else if (arg == "--watch") {
      watch_interval_s =
          examples::checked_double(next(), "--watch", 0.01, 3600.0, kUsage);
    } else if (arg == "--watch-count") {
      watch_ticks = examples::checked_size(next(), "--watch-count", 1 << 20, kUsage);
    } else {
      return usage();
    }
  }
  if (port == 0) {
    std::cerr << "--port is required\n";
    return usage();
  }
  if (!admin_verb.empty() && watch_interval_s > 0.0) {
    std::cerr << "--admin and --watch are mutually exclusive\n";
    return usage();
  }
  if (!admin_verb.empty()) {
    return run_admin(host, static_cast<std::uint16_t>(port), admin_verb);
  }
  if (watch_interval_s > 0.0) {
    return run_watch(host, static_cast<std::uint16_t>(port), watch_interval_s,
                     watch_ticks);
  }
  if (!replay_path.empty()) conns = 1;  // replay preserves stream order
  if (!out_path.empty() && conns != 1) {
    std::cerr << "--out requires --conns 1 (response order is per-connection)\n";
    return usage();
  }

  const std::vector<std::string> lines =
      replay_path.empty()
          ? generate_traffic(requests, mix, delta_pct, seed, clos_n, conns)
          : read_replay(replay_path);
  if (lines.empty()) {
    std::cerr << "no requests to send\n";
    return 1;
  }

  // Round-robin partition across connections; each connection is an
  // independent open-loop Poisson source at rps/conns, so the aggregate
  // arrival process is Poisson at the full target rate.
  std::vector<std::vector<std::string>> per_conn(conns);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    per_conn[i % conns].push_back(lines[i]);
  }
  std::vector<ConnStats> stats(conns);
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      run_connection(host, static_cast<std::uint16_t>(port), per_conn[c],
                     rps / static_cast<double>(conns), seed + 7919 * (c + 1),
                     !out_path.empty(), stats[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> latencies;
  std::size_t completed = 0, overloads = 0, errors = 0, cached = 0;
  for (const ConnStats& s : stats) {
    if (!s.failure.empty()) {
      std::cerr << "connection failed: " << s.failure << '\n';
      return 1;
    }
    latencies.insert(latencies.end(), s.latencies_us.begin(), s.latencies_us.end());
    completed += s.completed;
    overloads += s.overloads;
    errors += s.errors;
    cached += s.cached;
  }
  std::sort(latencies.begin(), latencies.end());
  const double achieved_rps = wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double p999 = percentile(latencies, 0.999);
  const double max_us = latencies.empty() ? 0.0 : latencies.back();

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << out_path << '\n';
      return 1;
    }
    for (const std::string& response : stats[0].responses) out << response << '\n';
  }

  if (!quiet) {
    TextTable table({"requests", "completed", "cached", "overloads", "errors",
                     "rps", "p50_us", "p99_us", "p999_us"});
    table.add_row({std::to_string(lines.size()), std::to_string(completed),
                   std::to_string(cached), std::to_string(overloads),
                   std::to_string(errors), fmt_double(achieved_rps, 1),
                   fmt_double(p50, 1), fmt_double(p99, 1), fmt_double(p999, 1)});
    std::cout << table;
  }

  if (!json_path.empty()) {
    Json report = Json::object();
    report.set("requests", Json::number(static_cast<std::int64_t>(lines.size())));
    report.set("completed", Json::number(static_cast<std::int64_t>(completed)));
    report.set("cached", Json::number(static_cast<std::int64_t>(cached)));
    report.set("overloads", Json::number(static_cast<std::int64_t>(overloads)));
    report.set("errors", Json::number(static_cast<std::int64_t>(errors)));
    report.set("rps_target", Json::number(rps));
    report.set("rps_achieved", Json::number(achieved_rps));
    report.set("seconds", Json::number(wall_s));
    Json latency = Json::object();
    latency.set("p50_us", Json::number(p50));
    latency.set("p99_us", Json::number(p99));
    latency.set("p999_us", Json::number(p999));
    latency.set("max_us", Json::number(max_us));
    report.set("latency", latency);
    std::ofstream out(json_path, std::ios::trunc);
    out << report.dump(2) << '\n';
  }

  // Incomplete streams (server drained mid-run) are an operational signal,
  // not a crash: report them in the exit status.
  return completed == lines.size() ? 0 : 3;
}
