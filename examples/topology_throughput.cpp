// Topology throughput à la "Measuring and Understanding Throughput of
// Network Topologies" (the paper's citation [20]): the maximum uniform scale
// λ at which a demand matrix fits the fabric fluidly, versus what
// unsplittable max-min routing actually delivers.
//
//   $ ./topology_throughput [n] [seed]
#include <cstdlib>
#include <iostream>

#include "arg_parse.hpp"
#include "fairness/waterfill.hpp"
#include "lp/concurrent_flow.hpp"
#include "net/macroswitch.hpp"
#include "routing/doom_switch.hpp"
#include "routing/greedy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage = "topology_throughput [n] [seed]";
  using namespace closfair::examples;
  const int n = argc > 1 ? checked_int(argv[1], "n", 1, 64, kUsage) : 3;
  const std::uint64_t seed = argc > 2 ? checked_u64(argv[2], "seed", kUsage) : 5;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{2 * n, n};
  Rng rng(seed);

  std::cout << "topology throughput of C_" << n << " (unit demands):\n\n";
  TextTable table({"demand matrix", "flows", "lambda (fluid)",
                   "unsplittable T / fluid T", "notes"});

  struct Wl {
    const char* name;
    FlowCollection specs;
  };
  std::vector<Wl> workloads;
  workloads.push_back({"permutation", random_permutation(fabric, rng)});
  workloads.push_back({"uniform-3n", uniform_random(fabric, static_cast<std::size_t>(3 * n), rng)});
  workloads.push_back({"incast-n", incast(fabric, static_cast<std::size_t>(n), 1, 1, rng)});
  workloads.push_back({"stride-servers", stride(fabric, n)});

  for (const Wl& wl : workloads) {
    const FlowSet flows = instantiate(net, wl.specs);
    const std::vector<Rational> unit(flows.size(), Rational{1});
    const auto fluid = max_concurrent_flow(net, flows, unit);
    // Fluid throughput at scale lambda vs the best unsplittable max-min
    // throughput the greedy/doom policies find.
    const Rational fluid_throughput =
        fluid.lambda * Rational{static_cast<std::int64_t>(flows.size())};
    std::vector<double> demands(flows.size(), 1.0);
    const auto greedy = max_min_fair<Rational>(net, flows, greedy_routing(net, flows, demands));
    const auto doom = max_min_fair<Rational>(net, flows, doom_switch(net, flows).middles);
    const Rational best = max(greedy.throughput(), doom.throughput());
    table.add_row({wl.name, std::to_string(flows.size()), fluid.lambda.to_string(),
                   fluid_throughput.is_zero()
                       ? "-"
                       : fmt_double((best / fluid_throughput).to_double(), 3),
                   best == greedy.throughput() ? "greedy wins" : "doom wins"});
  }
  std::cout << table << '\n';

  std::cout << "lambda = 1 means the demand matrix fits fluidly (full-bisection\n"
               "fabrics fit any permutation). The ratio compares unsplittable max-min\n"
               "throughput against the uniform-scale fluid point lambda*|F|: below 1\n"
               "is the unsplittability tax; above 1 means max-min's *unequal* rates\n"
               "deliver more total than scaling every flow to the worst one (the\n"
               "concurrent-flow objective maximizes the minimum scale, not the sum —\n"
               "the same fairness/throughput tension as R1, in fluid form).\n";
  return 0;
}
