// Fat-tree explorer: the paper's analysis applied to the deployed topology.
//
//   $ ./fattree_explorer [k] [workload: uniform|perm|zipf] [flows] [seed]
//
// Builds FatTree(k), routes a workload three ways (ECMP, greedy,
// local-search over the full equal-cost path sets), and scores each routing
// against the fat-tree's macro-switch on the paper's axes.
#include <cstdlib>
#include <iostream>
#include <string>

#include "arg_parse.hpp"
#include "core/metrics.hpp"
#include "fairness/waterfill.hpp"
#include "net/fattree.hpp"
#include "net/macroswitch.hpp"
#include "routing/generic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main(int argc, char** argv) {
  constexpr std::string_view kUsage =
      "fattree_explorer [k] [workload: uniform|perm|zipf] [flows] [seed]";
  using namespace closfair::examples;
  const int k = argc > 1 ? checked_int(argv[1], "k", 2, 16, kUsage) : 4;
  const std::string workload = argc > 2 ? argv[2] : "uniform";
  const std::size_t num_flows =
      argc > 3 ? checked_size(argv[3], "flows", 1'000'000, kUsage) : 32;
  const std::uint64_t seed = argc > 4 ? checked_u64(argv[4], "seed", kUsage) : 11;
  if (k < 2 || k % 2 != 0) {
    std::cerr << "fat-tree arity k must be even and >= 2\n";
    return 1;
  }

  const FatTree ft(k);
  const MacroSwitch ms(
      MacroSwitch::Params{ft.num_edge_switches(), ft.servers_per_edge(), Rational{1}});
  const Fabric fabric{ft.num_edge_switches(), ft.servers_per_edge()};
  std::cout << "FatTree(k=" << k << "): " << ft.num_servers() << " servers, "
            << ft.topology().num_links() << " links, up to "
            << (k / 2) * (k / 2) << " equal-cost paths per cross-pod pair\n\n";

  Rng rng(seed);
  FlowCollection specs;
  if (workload == "perm") {
    specs = random_permutation(fabric, rng);
  } else if (workload == "zipf") {
    specs = zipf_destinations(fabric, num_flows, 1.2, rng);
  } else {
    specs = uniform_random(fabric, num_flows, rng);
  }
  const FlowSet flows = instantiate(ft, specs);
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
  std::cout << "macro-switch T^MmF = " << macro.throughput() << " over " << flows.size()
            << " flows\n\n";

  PathCandidates candidates;
  for (const Flow& f : flows) candidates.push_back(ft.paths(f.src, f.dst));
  std::vector<double> demands;
  for (FlowIndex f = 0; f < flows.size(); ++f) demands.push_back(macro.rate(f).to_double());

  TextTable table({"policy", "throughput", "tput ratio", "min rate ratio", "jain index"});
  auto score = [&](const std::string& name, const Routing& routing) {
    const auto alloc = max_min_fair<Rational>(ft.topology(), flows, routing);
    Rational worst{1};
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (macro.rate(f).is_zero()) continue;
      worst = min(worst, alloc.rate(f) / macro.rate(f));
    }
    table.add_row({name, alloc.throughput().to_string(),
                   fmt_double((alloc.throughput() / macro.throughput()).to_double(), 3),
                   fmt_double(worst.to_double(), 3), fmt_double(jain_index(alloc), 3)});
  };

  score("ecmp", ecmp_paths(candidates, rng));
  const Routing greedy = greedy_paths(ft.topology(), candidates, demands);
  score("greedy", greedy);
  score("local-search",
        congestion_local_search_paths(ft.topology(), candidates, demands, greedy));
  std::cout << table << '\n';

  std::cout << "The macro-switch lens of §2 applies to any full-bisection fabric; a\n"
               "fat-tree is 'just' a folded Clos, so every impossibility result in the\n"
               "paper constrains it too.\n";
  return 0;
}
