#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the search engine's
# serial-vs-parallel equivalence tests under ThreadSanitizer.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo
echo "== tier 1: SearchEngine tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DCLOSFAIR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_search_engine
(cd build-tsan && ctest --output-on-failure -j "$JOBS" -R 'SearchEngine')

echo
echo "tier 1: OK"
