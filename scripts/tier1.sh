#!/usr/bin/env bash
# Tier-1 verification: a metric-name docs drift check
# (scripts/check_metrics_docs.sh), full build + test suite, a closfair_serve
# smoke run diffed against a committed golden transcript, a wire-server
# smoke (start closfair_serve --listen, replay 20 mixed requests through
# closfair_loadgen, scrape the metricsz/statusz admin verbs and diff the
# stable counter subset against tests/golden/serve_net_admin_counters.json,
# diff the data responses against the batch-mode golden, SIGTERM-drain), a
# delta smoke (replay the golden base+delta request file through batch mode
# AND the wire server, diff both against the one committed response golden —
# warm-started delta evaluation must be byte-identical on every path), a
# Release water-fill perf smoke gated against the committed
# bench/waterfill_floor.json, the search engine's serial-vs-parallel
# equivalence tests plus the water-fill fast-path differential suite under
# ThreadSanitizer, the fault / workload / rate-control / search /
# wire-socket tests under ASan+UBSan, and the CLOSFAIR_OBS=OFF
# configuration (instrumentation compiled out) with its unit tests plus a
# link-level check that the obs TUs are empty.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: metric names vs docs/OBSERVABILITY.md =="
scripts/check_metrics_docs.sh

echo
echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo
echo "== tier 1: closfair_serve smoke vs golden transcript =="
SMOKE_OUT="$(mktemp)"
trap 'rm -f "$SMOKE_OUT"' EXIT
build/examples/closfair_serve --workers 2 \
    --in tests/golden/serve_smoke_requests.jsonl --out "$SMOKE_OUT"
if ! diff -u tests/golden/serve_smoke_responses.jsonl "$SMOKE_OUT"; then
  echo "FAIL: closfair_serve output diverged from the committed golden"
  exit 1
fi
if ! grep -q '"cached":true' "$SMOKE_OUT"; then
  echo "FAIL: the duplicate request did not hit the result cache"
  exit 1
fi
echo "3 requests answered, duplicate served from cache, golden matched"

echo
echo "== tier 1: wire server smoke (closfair_serve --listen + closfair_loadgen) =="
PORT_FILE="$(mktemp)"
WIRE_OUT="$(mktemp)"
trap 'rm -f "$SMOKE_OUT" "$PORT_FILE" "$WIRE_OUT"' EXIT
: > "$PORT_FILE"
build/examples/closfair_serve --listen 127.0.0.1:0 --workers 2 \
    --port-file "$PORT_FILE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "FAIL: closfair_serve never wrote its bound port"
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
build/examples/closfair_loadgen --host 127.0.0.1 --port "$(cat "$PORT_FILE")" \
    --replay tests/golden/serve_net_requests.jsonl --out "$WIRE_OUT" --quiet
METRICSZ="$(build/examples/closfair_loadgen --host 127.0.0.1 \
    --port "$(cat "$PORT_FILE")" --admin metricsz)"
STATUSZ="$(build/examples/closfair_loadgen --host 127.0.0.1 \
    --port "$(cat "$PORT_FILE")" --admin statusz)"
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "FAIL: closfair_serve did not drain cleanly on SIGTERM"
  exit 1
fi
if ! diff -u tests/golden/serve_net_responses.jsonl "$WIRE_OUT"; then
  echo "FAIL: socket responses diverged from the batch-mode golden"
  exit 1
fi
python3 - "$METRICSZ" "$STATUSZ" \
    tests/golden/serve_net_admin_counters.json <<'EOF'
import json
import sys

metricsz = json.loads(sys.argv[1])
statusz = json.loads(sys.argv[2])

# Shape: metricsz is a full registry snapshot, statusz a server status line.
assert metricsz.get("admin") == "metricsz", metricsz
counters = metricsz["metrics"]["counters"]
hists = metricsz["metrics"]["histograms"]
assert "wire.request" in hists, sorted(hists)
for key in ("p50_ns", "p99_ns", "p999_ns"):
    assert hists["wire.request"][key] > 0, hists["wire.request"]
assert statusz.get("admin") == "statusz", statusz
for key in ("uptime_ns", "workers", "draining", "conns_active",
            "conns_accepted", "queue_depth", "queue_high_watermark",
            "max_inflight_per_conn", "overload_sheds", "cache_size",
            "cache_capacity"):
    assert key in statusz, f"statusz missing {key}: {statusz}"
assert statusz["workers"] == 2 and statusz["draining"] is False, statusz

# The replayed request stream and the scrape count are fixed, so this
# counter subset is exactly reproducible (scheduling-dependent splits like
# wire.dedup_hits / svc.cache_hits stay out).
with open(sys.argv[3]) as f:
    golden = json.load(f)
subset = {name: counters.get(name, 0) for name in golden}
if subset != golden:
    print("FAIL: admin-scrape counters diverged from the committed golden")
    for name in sorted(golden):
        marker = "" if subset[name] == golden[name] else "   <-- drift"
        print(f"  {name}: golden {golden[name]}, scraped {subset[name]}{marker}")
    sys.exit(1)
print("admin plane: metricsz/statusz well-formed, "
      f"{len(golden)} stable counters matched the golden")
EOF
echo "20 pipelined requests answered byte-identically over the socket, SIGTERM drained"

echo
echo "== tier 1: delta smoke (base+delta replay, batch and wire vs one golden) =="
DELTA_OUT="$(mktemp)"
trap 'rm -f "$SMOKE_OUT" "$PORT_FILE" "$WIRE_OUT" "$DELTA_OUT"' EXIT
build/examples/closfair_serve --workers 2 \
    --in tests/golden/serve_delta_requests.jsonl --out "$DELTA_OUT"
if ! diff -u tests/golden/serve_delta_responses.jsonl "$DELTA_OUT"; then
  echo "FAIL: batch-mode delta responses diverged from the committed golden"
  exit 1
fi
: > "$PORT_FILE"
build/examples/closfair_serve --listen 127.0.0.1:0 --workers 2 \
    --port-file "$PORT_FILE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "FAIL: closfair_serve never wrote its bound port (delta smoke)"
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
build/examples/closfair_loadgen --host 127.0.0.1 --port "$(cat "$PORT_FILE")" \
    --replay tests/golden/serve_delta_requests.jsonl --out "$DELTA_OUT" --quiet
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "FAIL: closfair_serve did not drain cleanly on SIGTERM (delta smoke)"
  exit 1
fi
if ! diff -u tests/golden/serve_delta_responses.jsonl "$DELTA_OUT"; then
  echo "FAIL: wire delta responses diverged from the committed golden"
  exit 1
fi
echo "5 delta classes + dup/unknown-base/bad-patch answered byte-identically on both paths"

echo
echo "== tier 1: Release water-fill perf smoke vs committed floor =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target perf_micro >/dev/null
PERF_JSON="$(mktemp)"
trap 'rm -f "$SMOKE_OUT" "$PORT_FILE" "$WIRE_OUT" "$PERF_JSON"' EXIT
build-release/bench/perf_micro --benchmark_filter='^BM_WaterfillWorkspaceFast$' \
    --benchmark_min_time=0.5 --benchmark_out="$PERF_JSON" \
    --benchmark_out_format=json >/dev/null
python3 - "$PERF_JSON" bench/waterfill_floor.json <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    run = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

name = floor["benchmark"]
rates = [b["items_per_second"] for b in run["benchmarks"] if b["name"] == name]
if not rates:
    print(f"FAIL: benchmark {name} missing from perf_micro output")
    sys.exit(1)
measured = max(rates)
minimum = 0.8 * floor["floor_items_per_second"]
verdict = "OK" if measured >= minimum else "FAIL"
print(f"{name}: {measured / 1e6:.2f}M calls/s "
      f"(floor {floor['floor_items_per_second'] / 1e6:.2f}M, "
      f"fail below {minimum / 1e6:.2f}M): {verdict}")
if measured < minimum:
    print("FAIL: water-fill fast path regressed >20% below the committed floor")
    sys.exit(1)
EOF

echo
echo "== tier 1: SearchEngine + water-fill fast-path tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DCLOSFAIR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_search_engine test_waterfill_fastpath
(cd build-tsan && ctest --output-on-failure -j "$JOBS" -R 'SearchEngine|WaterfillFastpath')

echo
echo "== tier 1: fault/workload/rate-control/wire tests under ASan+UBSan =="
cmake -B build-asan -S . -DCLOSFAIR_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS" --target \
    test_fault test_workload test_rate_control test_search_engine test_wire \
    test_waterfill_fastpath
(cd build-asan && ctest --output-on-failure -j "$JOBS" \
    -R 'Fault|Workload|Trace|Rcp|Aimd|SearchEngine|Wire|WaterfillFastpath')

echo
echo "== tier 1: CLOSFAIR_OBS=OFF build (instrumentation compiled out) =="
cmake -B build-noobs -S . -DCLOSFAIR_OBS=OFF >/dev/null
cmake --build build-noobs -j "$JOBS" --target \
    test_obs test_search_engine test_waterfill test_waterfill_fastpath \
    test_simplex test_maxmin_lp test_exhaustive
for tu in obs/obs.cpp.o obs/trace.cpp.o obs/rt.cpp.o; do
  defined=$(nm "build-noobs/src/CMakeFiles/closfair.dir/$tu" | grep -c ' T ' || true)
  if [ "$defined" -ne 0 ]; then
    echo "FAIL: $tu defines $defined symbols in an OBS=OFF build"
    exit 1
  fi
done
echo "obs TUs are empty under OBS=OFF (no defined symbols)"
(cd build-noobs && ctest --output-on-failure -j "$JOBS" \
    -R 'Obs|SearchEngine|Waterfill|Simplex|MaxMin|Exhaustive')

echo
echo "tier 1: OK"
