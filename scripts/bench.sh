#!/usr/bin/env bash
# Perf-regression check for the search engine, the degraded-fabric
# evaluation, the scenario service, and the wire server: build Release, run
# bench/perf_report, bench/degraded_fabric, bench/service, and
# bench/serve_net against scratch outputs, and diff the obs counter
# snapshots embedded in them against the committed BENCH_search.json /
# BENCH_degraded.json / BENCH_service.json / BENCH_serve_net.json baselines.
#
# Counters measuring algorithmic work (waterfill.*, lp.*, fault.*,
# rate_control.*, svc.*, search.candidates, search.routings_covered) are
# deterministic for the fixed benchmark instances, so any increase is a
# genuine work regression and fails the script. The wire-server request
# counters (wire.requests/responses/evaluations/parse_errors/overload_sheds/
# conns_accepted/admin_requests) are likewise fixed by serve_net's request
# streams — its snapshot lands before the timing-dependent overload phase
# and the admin scraper sends a fixed number of verbs. The waterfill.fast_calls /
# waterfill.fallback_calls split is held exactly: any drift in either
# direction fails, and the two must always sum to waterfill.calls. The
# svc.delta_hits / svc.delta_warm_starts outcomes of bench/service's scripted
# delta stream are held exactly the same way.
# Wall-clock seconds and span durations are reported but never gating —
# this machine is shared.
#
# Usage: scripts/bench.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target perf_report degraded_fabric service serve_net >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
build-release/bench/perf_report "$TMP/BENCH_search.json"
echo
build-release/bench/degraded_fabric "$TMP/BENCH_degraded.json"
echo
build-release/bench/service "$TMP/BENCH_service.json"
echo
build-release/bench/serve_net "$TMP/BENCH_serve_net.json"
echo

STATUS=0
for BASELINE in BENCH_search.json BENCH_degraded.json BENCH_service.json BENCH_serve_net.json; do
  if [ ! -f "$BASELINE" ]; then
    cp "$TMP/$BASELINE" "$BASELINE"
    echo "no committed $BASELINE found: wrote a first-run baseline."
    echo "Commit it to start tracking the perf trajectory."
    continue
  fi

  echo "== counter diff vs $BASELINE =="
  python3 - "$BASELINE" "$TMP/$BASELINE" <<'EOF' || STATUS=1
import json
import sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

base_counters = base.get("metrics", {}).get("counters", {})
cur_counters = cur.get("metrics", {}).get("counters", {})

# Thread-count- and machine-independent work counters: deterministic for the
# fixed benchmark instances, so an increase is a real regression.
DETERMINISTIC_PREFIXES = ("waterfill.", "lp.", "fault.", "rate_control.", "svc.")
DETERMINISTIC_NAMES = {
    "search.candidates", "search.routings_covered", "search.runs",
    # serve_net: fixed request streams, snapshot taken before the overload
    # phase, fixed admin scrape count -> all exactly reproducible.
    "wire.requests", "wire.responses", "wire.evaluations",
    "wire.parse_errors", "wire.overload_sheds", "wire.conns_accepted",
    "wire.admin_requests",
}

# Exactly-held counters, any drift (either direction) fails:
#  - the waterfill fast/fallback split is decided at bind time from the
#    instance alone, so drift means the int64 engine silently changed which
#    calls it accepts — a determinism break, not an improvement;
#  - the delta outcome counters are fixed by bench/service's delta request
#    stream (every hit and every warm start is scripted), so drift means
#    the delta resolution or warm-start path changed behavior.
EXACT_NAMES = {"waterfill.fast_calls", "waterfill.fallback_calls",
               "svc.delta_hits", "svc.delta_warm_starts"}

def deterministic(name):
    return name in DETERMINISTIC_NAMES or name.startswith(DETERMINISTIC_PREFIXES)

rows = []
regressions = []
for name in sorted(set(base_counters) | set(cur_counters)):
    b = base_counters.get(name)
    c = cur_counters.get(name)
    if b == c:
        status = ""
    elif name in EXACT_NAMES:
        status = "REGRESSION (exactly-held counter drifted)"
        regressions.append(name)
    elif b is None:
        status = "new"
    elif c is None:
        status = "gone"
    elif deterministic(name):
        status = "REGRESSION" if c > b else "improved"
        if c > b:
            regressions.append(name)
    else:
        status = "changed (non-deterministic)"
    rows.append((name, b, c, status))

name_w = max(len(r[0]) for r in rows) if rows else 7
print(f"{'counter':<{name_w}}  {'baseline':>12}  {'current':>12}  status")
print("-" * (name_w + 40))
for name, b, c, status in rows:
    bs = "-" if b is None else str(b)
    cs = "-" if c is None else str(c)
    print(f"{name:<{name_w}}  {bs:>12}  {cs:>12}  {status}")

# Every water-fill call is answered by exactly one engine; a mismatch means
# a call was double-counted or silently dropped by the dispatch path.
wf_calls = cur_counters.get("waterfill.calls")
if wf_calls is not None:
    split = (cur_counters.get("waterfill.fast_calls", 0)
             + cur_counters.get("waterfill.fallback_calls", 0))
    if split != wf_calls:
        print(f"\nFAIL: waterfill.fast_calls + waterfill.fallback_calls = {split} "
              f"but waterfill.calls = {wf_calls}")
        sys.exit(1)

base_secs = {r["config"]: r["seconds"] for r in base.get("lex_runs", [])}
cur_secs = {r["config"]: r["seconds"] for r in cur.get("lex_runs", [])}
if base_secs and cur_secs:
    print("\nwall seconds (informational, not gating):")
    for config in cur_secs:
        b = base_secs.get(config)
        c = cur_secs[config]
        delta = "" if b is None else f"  ({(c - b) / b * 100.0:+.0f}%)"
        print(f"  {config:<22} {c:.4f}s{delta}")

if regressions:
    print(f"\nFAIL: {len(regressions)} deterministic counter(s) regressed: "
          + ", ".join(regressions))
    sys.exit(1)
print("\nno work regressions vs this baseline")
EOF
  echo
done

if [ "$STATUS" -ne 0 ]; then
  echo "bench: FAIL (work regression against a committed baseline)"
  exit 1
fi
echo "bench: OK"
