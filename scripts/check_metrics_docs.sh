#!/usr/bin/env bash
# Metric-name drift check: the inventory tables in docs/OBSERVABILITY.md
# must list exactly the metric names registered in src/.
#
# Source side: string literals passed to the instrumentation macros
# (OBS_COUNTER_INC / OBS_COUNTER_ADD / OBS_GAUGE_SET / OBS_SPAN) or to the
# Registry accessors (.counter( / .gauge( / .histogram(), with comment
# lines skipped so doc examples don't count.
#
# Doc side: every backticked dotted token in the first cell of a
# `| `name` | ... |` table row (a cell may hold several names, e.g.
# `lp.infeasible` / `lp.unbounded`; the dot requirement keeps non-metric
# tables like the stage-semantics one out of scope).
#
# Fails listing the drift in both directions. Run by scripts/tier1.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/OBSERVABILITY.md
CALL_RE='(OBS_COUNTER_INC|OBS_COUNTER_ADD|OBS_GAUGE_SET|OBS_SPAN|\.(counter|gauge|histogram))[[:space:]]*\([[:space:]]*"'

src_names="$(grep -rhE "$CALL_RE" src/ \
  | grep -vE '^[[:space:]]*(//|\*)' \
  | grep -oE "${CALL_RE}[^\"]+\"" \
  | grep -oE '"[^"]+"' | tr -d '"' | sort -u)"

doc_names="$(grep -E '^\| `' "$DOC" \
  | cut -d'|' -f2 \
  | grep -oE '`[^`]+`' | tr -d '\`' | grep -F . | sort -u)"

if [ -z "$src_names" ]; then
  echo "check_metrics_docs: FAIL — extracted no metric names from src/ (pattern rot?)" >&2
  exit 1
fi
if [ -z "$doc_names" ]; then
  echo "check_metrics_docs: FAIL — extracted no metric names from $DOC (table format changed?)" >&2
  exit 1
fi

undocumented="$(comm -23 <(printf '%s\n' "$src_names") <(printf '%s\n' "$doc_names"))"
stale="$(comm -13 <(printf '%s\n' "$src_names") <(printf '%s\n' "$doc_names"))"

STATUS=0
if [ -n "$undocumented" ]; then
  echo "check_metrics_docs: metrics registered in src/ but missing from $DOC:" >&2
  printf '  %s\n' $undocumented >&2
  STATUS=1
fi
if [ -n "$stale" ]; then
  echo "check_metrics_docs: metrics documented in $DOC but not registered in src/:" >&2
  printf '  %s\n' $stale >&2
  STATUS=1
fi

if [ "$STATUS" -ne 0 ]; then
  echo "check_metrics_docs: FAIL (keep the inventory tables in sync with the code)" >&2
  exit 1
fi
echo "check_metrics_docs: OK ($(printf '%s\n' "$src_names" | wc -l) metric names in sync)"
