#include "net/dot.hpp"

#include <array>
#include <sstream>

namespace closfair {
namespace {

const char* shape_for(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource:
    case NodeKind::kDestination:
      return "ellipse";
    case NodeKind::kInputSwitch:
    case NodeKind::kMiddleSwitch:
    case NodeKind::kOutputSwitch:
      return "box";
    case NodeKind::kOther:
      return "plaintext";
  }
  return "plaintext";
}

constexpr std::array<const char*, 8> kPalette = {
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
};

void emit_header(std::ostringstream& os, const DotOptions& options) {
  os << "digraph closfair {\n";
  if (options.rankdir_lr) os << "  rankdir=LR;\n";
  os << "  node [fontsize=10];\n  edge [fontsize=9];\n";
}

void emit_nodes(std::ostringstream& os, const Topology& topo) {
  for (std::size_t v = 0; v < topo.num_nodes(); ++v) {
    const Node& node = topo.node(static_cast<NodeId>(v));
    os << "  n" << v << " [label=\"" << node.name << "\", shape=" << shape_for(node.kind)
       << "];\n";
  }
}

void emit_links(std::ostringstream& os, const Topology& topo, const DotOptions& options) {
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    os << "  n" << link.from << " -> n" << link.to << " [color=gray";
    if (options.show_capacities) {
      os << ", label=\"" << (link.unbounded ? std::string{"inf"} : link.capacity.to_string())
         << "\"";
    }
    os << "];\n";
  }
}

}  // namespace

std::string to_dot(const Topology& topo, const DotOptions& options) {
  std::ostringstream os;
  emit_header(os, options);
  emit_nodes(os, topo);
  emit_links(os, topo, options);
  os << "}\n";
  return os.str();
}

std::string to_dot(const Topology& topo, const FlowSet& flows, const Routing& routing,
                   const DotOptions& options) {
  CF_CHECK(routing.size() == flows.size());
  std::ostringstream os;
  emit_header(os, options);
  emit_nodes(os, topo);
  emit_links(os, topo, options);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    const char* color = kPalette[f % kPalette.size()];
    for (std::size_t i = 0; i < routing.path(f).size(); ++i) {
      const Link& link = topo.link(routing.path(f)[i]);
      os << "  n" << link.from << " -> n" << link.to << " [color=\"" << color
         << "\", penwidth=1.6";
      if (i == 0) os << ", label=\"f" << f << "\"";
      os << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace closfair
