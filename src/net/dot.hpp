// Graphviz (DOT) export of topologies, optionally overlaying a routing so
// each flow's path is drawn in a distinct color. Useful for documentation
// and for eyeballing small adversarial instances.
#pragma once

#include <string>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

struct DotOptions {
  bool rankdir_lr = true;          ///< left-to-right layout
  bool show_capacities = true;     ///< label links with capacities
};

/// Topology only.
[[nodiscard]] std::string to_dot(const Topology& topo, const DotOptions& options = {});

/// Topology plus flow paths: each flow is drawn over its routed links with a
/// per-flow color (cycled from a small palette) and labeled f<i>.
[[nodiscard]] std::string to_dot(const Topology& topo, const FlowSet& flows,
                                 const Routing& routing, const DotOptions& options = {});

}  // namespace closfair
