#include "net/macroswitch.hpp"

#include <string>

namespace closfair {

MacroSwitch MacroSwitch::paper(int n) {
  CF_CHECK_MSG(n >= 1, "MS_n requires n >= 1");
  return MacroSwitch(Params{2 * n, n, Rational{1}});
}

MacroSwitch::MacroSwitch(Params params) : params_(params) {
  CF_CHECK(params_.num_tors >= 1);
  CF_CHECK(params_.servers_per_tor >= 1);

  const int tors = params_.num_tors;
  const int servers = params_.servers_per_tor;

  inputs_.reserve(static_cast<std::size_t>(tors));
  outputs_.reserve(static_cast<std::size_t>(tors));
  for (int i = 1; i <= tors; ++i) {
    inputs_.push_back(topo_.add_node("I" + std::to_string(i), NodeKind::kInputSwitch));
    outputs_.push_back(topo_.add_node("O" + std::to_string(i), NodeKind::kOutputSwitch));
  }

  sources_.resize(static_cast<std::size_t>(tors) * servers);
  dests_.resize(sources_.size());
  source_links_.resize(sources_.size());
  dest_links_.resize(sources_.size());
  for (int i = 1; i <= tors; ++i) {
    for (int j = 1; j <= servers; ++j) {
      const std::string suffix = std::to_string(i) + "^" + std::to_string(j);
      const NodeId s = topo_.add_node("s" + suffix, NodeKind::kSource);
      const NodeId t = topo_.add_node("t" + suffix, NodeKind::kDestination);
      if (first_source_ == kInvalidNode) first_source_ = s;
      if (first_dest_ == kInvalidNode) first_dest_ = t;
      sources_[server_index(i, j)] = s;
      dests_[server_index(i, j)] = t;
      source_links_[server_index(i, j)] =
          topo_.add_link(s, input_switch(i), params_.link_capacity);
      dest_links_[server_index(i, j)] =
          topo_.add_link(output_switch(i), t, params_.link_capacity);
    }
  }

  inner_links_.resize(static_cast<std::size_t>(tors) * tors);
  for (int i = 1; i <= tors; ++i) {
    for (int k = 1; k <= tors; ++k) {
      inner_links_[static_cast<std::size_t>(i - 1) * tors + (k - 1)] =
          topo_.add_unbounded_link(input_switch(i), output_switch(k));
    }
  }
}

std::size_t MacroSwitch::server_index(int i, int j) const {
  CF_CHECK_MSG(i >= 1 && i <= params_.num_tors, "ToR index " << i << " out of [1, "
                                                              << params_.num_tors << "]");
  CF_CHECK_MSG(j >= 1 && j <= params_.servers_per_tor,
               "server index " << j << " out of [1, " << params_.servers_per_tor << "]");
  return static_cast<std::size_t>(i - 1) * params_.servers_per_tor + (j - 1);
}

NodeId MacroSwitch::source(int i, int j) const { return sources_[server_index(i, j)]; }
NodeId MacroSwitch::destination(int i, int j) const { return dests_[server_index(i, j)]; }

NodeId MacroSwitch::input_switch(int i) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  return inputs_[static_cast<std::size_t>(i - 1)];
}

NodeId MacroSwitch::output_switch(int i) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  return outputs_[static_cast<std::size_t>(i - 1)];
}

LinkId MacroSwitch::source_link(int i, int j) const { return source_links_[server_index(i, j)]; }
LinkId MacroSwitch::dest_link(int i, int j) const { return dest_links_[server_index(i, j)]; }

LinkId MacroSwitch::inner_link(int i, int k) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  CF_CHECK(k >= 1 && k <= params_.num_tors);
  return inner_links_[static_cast<std::size_t>(i - 1) * params_.num_tors + (k - 1)];
}

MacroSwitch::ServerCoord MacroSwitch::source_coord(NodeId src) const {
  CF_CHECK_MSG(topo_.node(src).kind == NodeKind::kSource, "node is not a source server");
  const auto offset = static_cast<std::size_t>(src - first_source_) / 2;
  const int servers = params_.servers_per_tor;
  return ServerCoord{static_cast<int>(offset) / servers + 1,
                     static_cast<int>(offset) % servers + 1};
}

MacroSwitch::ServerCoord MacroSwitch::dest_coord(NodeId dst) const {
  CF_CHECK_MSG(topo_.node(dst).kind == NodeKind::kDestination, "node is not a destination server");
  const auto offset = static_cast<std::size_t>(dst - first_dest_) / 2;
  const int servers = params_.servers_per_tor;
  return ServerCoord{static_cast<int>(offset) / servers + 1,
                     static_cast<int>(offset) % servers + 1};
}

Path MacroSwitch::path(NodeId src, NodeId dst) const {
  const ServerCoord s = source_coord(src);
  const ServerCoord t = dest_coord(dst);
  return Path{source_link(s.tor, s.server), inner_link(s.tor, t.tor),
              dest_link(t.tor, t.server)};
}

}  // namespace closfair
