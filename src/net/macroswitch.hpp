// The macro-switch abstraction MS_n of the paper (§2.1).
//
// MS_n replaces a Clos network's middle stage with a complete bipartite graph
// of unbounded-capacity links between input and output ToR switches, so only
// the server <-> ToR links constrain rates. Every source-destination pair has
// a single path, hence a unique routing and a unique max-min fair allocation
// per flow collection.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace closfair {

/// Builder + index map for a macro-switch topology. Indexing is 1-based and
/// mirrors ClosNetwork so flow collections transfer verbatim between the two.
class MacroSwitch {
 public:
  struct Params {
    int num_tors = 2;
    int servers_per_tor = 1;
    Rational link_capacity{1};
  };

  /// The paper's MS_n: 2n ToRs per side, n servers per ToR.
  static MacroSwitch paper(int n);

  /// The macro-switch abstraction of an arbitrary Clos network (same ToR and
  /// server counts, same edge link capacity).
  explicit MacroSwitch(Params params);

  [[nodiscard]] int num_tors() const { return params_.num_tors; }
  [[nodiscard]] int servers_per_tor() const { return params_.servers_per_tor; }
  [[nodiscard]] int num_sources() const { return params_.num_tors * params_.servers_per_tor; }
  [[nodiscard]] int num_destinations() const { return num_sources(); }

  [[nodiscard]] NodeId source(int i, int j) const;
  [[nodiscard]] NodeId destination(int i, int j) const;
  [[nodiscard]] NodeId input_switch(int i) const;
  [[nodiscard]] NodeId output_switch(int i) const;

  /// Link s_i^j -> I_i.
  [[nodiscard]] LinkId source_link(int i, int j) const;
  /// Unbounded inner link I_i -> O_k.
  [[nodiscard]] LinkId inner_link(int i, int k) const;
  /// Link O_i -> t_i^j.
  [[nodiscard]] LinkId dest_link(int i, int j) const;

  struct ServerCoord {
    int tor = 0;
    int server = 0;
  };
  [[nodiscard]] ServerCoord source_coord(NodeId src) const;
  [[nodiscard]] ServerCoord dest_coord(NodeId dst) const;

  /// The unique src-dst path (3 links: edge, inner, edge).
  [[nodiscard]] Path path(NodeId src, NodeId dst) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  Params params_;
  Topology topo_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> dests_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<LinkId> source_links_;
  std::vector<LinkId> dest_links_;
  std::vector<LinkId> inner_links_;  // [in-tor-1][out-tor-1] flattened
  NodeId first_source_ = kInvalidNode;
  NodeId first_dest_ = kInvalidNode;

  [[nodiscard]] std::size_t server_index(int i, int j) const;
};

}  // namespace closfair
