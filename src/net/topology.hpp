// Directed capacitated graph substrate.
//
// A Topology is the ground structure every other module works over: Clos
// networks (net/clos.hpp) and macro-switches (net/macroswitch.hpp) are built
// as Topology instances; routings assign flows to link paths; allocations are
// checked feasible against link capacities.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rational.hpp"

namespace closfair {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

/// Role of a node in a data-center topology; Other for ad-hoc graphs.
enum class NodeKind : std::uint8_t {
  kSource,
  kInputSwitch,
  kMiddleSwitch,
  kOutputSwitch,
  kDestination,
  kOther,
};

[[nodiscard]] const char* to_string(NodeKind kind);

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kOther;
};

/// A directed link. `unbounded` models the infinite-capacity inner links of a
/// macro-switch; for unbounded links `capacity` is ignored.
struct Link {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Rational capacity{1};
  bool unbounded = false;
};

/// A path is a sequence of link ids; consecutive links must share endpoints.
using Path = std::vector<LinkId>;

/// Directed multigraph with named nodes and capacitated links.
class Topology {
 public:
  Topology() = default;

  NodeId add_node(std::string name, NodeKind kind = NodeKind::kOther);

  /// Adds a directed link of the given finite capacity; capacity must be >= 0.
  LinkId add_link(NodeId from, NodeId to, Rational capacity = Rational{1});

  /// Adds a directed link of unbounded capacity (macro-switch inner links).
  LinkId add_unbounded_link(NodeId from, NodeId to);

  /// Changes a bounded link's capacity (must be >= 0). Lets workload studies
  /// and tests build capacity-asymmetric variants of regular topologies;
  /// throws on unbounded links.
  void set_link_capacity(LinkId id, Rational capacity);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const;
  [[nodiscard]] const std::vector<LinkId>& in_links(NodeId id) const;

  /// First link from `from` to `to`, if any (topologies here are simple in
  /// practice, but multigraphs are permitted).
  [[nodiscard]] std::optional<LinkId> find_link(NodeId from, NodeId to) const;

  /// True if `path` is a contiguous directed walk from `src` to `dst`.
  [[nodiscard]] bool is_path(const Path& path, NodeId src, NodeId dst) const;

  /// Human-readable "A -> B -> C" rendering of a path.
  [[nodiscard]] std::string describe_path(const Path& path) const;

 private:
  void check_node(NodeId id) const;
  void check_link(LinkId id) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

/// Capacity of a link in the numeric domain R (Rational: exact; double:
/// nearest). Unbounded links have no representable capacity; callers must
/// branch on `link.unbounded` first.
template <typename R>
[[nodiscard]] R capacity_as(const Link& link) {
  CF_CHECK_MSG(!link.unbounded, "capacity_as on unbounded link");
  if constexpr (std::is_same_v<R, Rational>) {
    return link.capacity;
  } else {
    return static_cast<R>(link.capacity.to_double());
  }
}

}  // namespace closfair
