#include "net/topology.hpp"

#include <sstream>

namespace closfair {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kInputSwitch: return "input-switch";
    case NodeKind::kMiddleSwitch: return "middle-switch";
    case NodeKind::kOutputSwitch: return "output-switch";
    case NodeKind::kDestination: return "destination";
    case NodeKind::kOther: return "other";
  }
  return "?";
}

NodeId Topology::add_node(std::string name, NodeKind kind) {
  nodes_.push_back(Node{std::move(name), kind});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Topology::add_link(NodeId from, NodeId to, Rational capacity) {
  check_node(from);
  check_node(to);
  CF_CHECK_MSG(!capacity.is_negative(), "negative link capacity");
  links_.push_back(Link{from, to, capacity, /*unbounded=*/false});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

LinkId Topology::add_unbounded_link(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  links_.push_back(Link{from, to, Rational{0}, /*unbounded=*/true});
  const auto id = static_cast<LinkId>(links_.size() - 1);
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

void Topology::set_link_capacity(LinkId id, Rational capacity) {
  check_link(id);
  Link& link = links_[static_cast<std::size_t>(id)];
  CF_CHECK_MSG(!link.unbounded, "set_link_capacity on unbounded link");
  CF_CHECK_MSG(!capacity.is_negative(), "negative link capacity");
  link.capacity = capacity;
}

const Node& Topology::node(NodeId id) const {
  check_node(id);
  return nodes_[static_cast<std::size_t>(id)];
}

const Link& Topology::link(LinkId id) const {
  check_link(id);
  return links_[static_cast<std::size_t>(id)];
}

const std::vector<LinkId>& Topology::out_links(NodeId id) const {
  check_node(id);
  return out_[static_cast<std::size_t>(id)];
}

const std::vector<LinkId>& Topology::in_links(NodeId id) const {
  check_node(id);
  return in_[static_cast<std::size_t>(id)];
}

std::optional<LinkId> Topology::find_link(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  for (LinkId id : out_[static_cast<std::size_t>(from)]) {
    if (links_[static_cast<std::size_t>(id)].to == to) return id;
  }
  return std::nullopt;
}

bool Topology::is_path(const Path& path, NodeId src, NodeId dst) const {
  if (path.empty()) return src == dst;
  NodeId at = src;
  for (LinkId id : path) {
    if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) return false;
    const Link& l = links_[static_cast<std::size_t>(id)];
    if (l.from != at) return false;
    at = l.to;
  }
  return at == dst;
}

std::string Topology::describe_path(const Path& path) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Link& l = link(path[i]);
    if (i == 0) os << node(l.from).name;
    os << " -> " << node(l.to).name;
  }
  return os.str();
}

void Topology::check_node(NodeId id) const {
  CF_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
               "node id " << id << " out of range [0, " << nodes_.size() << ")");
}

void Topology::check_link(LinkId id) const {
  CF_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < links_.size(),
               "link id " << id << " out of range [0, " << links_.size() << ")");
}

}  // namespace closfair
