// k-ary fat-tree topology (Al-Fares et al., the paper's reference data-center
// deployment [2]).
//
// A fat-tree is the folded, multi-stage form of a Clos network: k pods, each
// with k/2 edge and k/2 aggregation switches; (k/2)^2 core switches; k/2
// servers per edge switch. Like net/clos.hpp we model the directed
// source->destination fabric: every physical server appears once as a source
// and once as a destination, and links are laid out so that every
// source-destination pair has the full set of equal-length upward/downward
// paths (1 via the shared edge switch, k/2 via pod aggregation, (k/2)^2 via
// core).
//
// The fairness machinery (water-filling, bottleneck certification,
// allocations) is topology-generic, so everything in fairness/ and flow/
// works on fat-trees unchanged; routing/generic.hpp provides path-set based
// ECMP/greedy. The macro-switch abstraction of a fat-tree is MacroSwitch
// with one "ToR" per edge switch.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace closfair {

/// Builder + index map for a k-ary fat-tree. k must be even and >= 2.
/// Servers are addressed (pod, edge, server), all 1-based: pod in [k],
/// edge in [k/2], server in [k/2].
class FatTree {
 public:
  explicit FatTree(int k, Rational link_capacity = Rational{1});

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int num_pods() const { return k_; }
  [[nodiscard]] int edges_per_pod() const { return k_ / 2; }
  [[nodiscard]] int aggs_per_pod() const { return k_ / 2; }
  [[nodiscard]] int servers_per_edge() const { return k_ / 2; }
  [[nodiscard]] int num_cores() const { return (k_ / 2) * (k_ / 2); }
  [[nodiscard]] int num_servers() const {
    return num_pods() * edges_per_pod() * servers_per_edge();
  }
  /// Edge switches fabric-wide (the "ToR" count of the macro abstraction).
  [[nodiscard]] int num_edge_switches() const { return num_pods() * edges_per_pod(); }

  /// Source server s in (pod p, edge e, slot j).
  [[nodiscard]] NodeId source(int pod, int edge, int server) const;
  [[nodiscard]] NodeId destination(int pod, int edge, int server) const;
  [[nodiscard]] NodeId edge_switch(int pod, int edge) const;
  [[nodiscard]] NodeId agg_switch(int pod, int agg) const;
  /// Core switch (a, c): the c'th core attached to aggregation position a.
  [[nodiscard]] NodeId core_switch(int agg_pos, int core) const;

  /// Global 1-based edge-switch index (pod-major) — the macro-switch "ToR"
  /// coordinate for this server.
  [[nodiscard]] int edge_index(int pod, int edge) const;

  struct ServerCoord {
    int pod = 0;
    int edge = 0;
    int server = 0;
  };
  [[nodiscard]] ServerCoord source_coord(NodeId src) const;
  [[nodiscard]] ServerCoord dest_coord(NodeId dst) const;

  /// All equal-cost src->dst paths: one intra-edge path when the pair shares
  /// an edge switch, k/2 intra-pod paths when it shares only a pod, and
  /// (k/2)^2 core paths otherwise.
  [[nodiscard]] std::vector<Path> paths(NodeId src, NodeId dst) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  int k_;
  Topology topo_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> dests_;
  std::vector<NodeId> edges_;
  std::vector<NodeId> aggs_;
  std::vector<NodeId> cores_;
  std::vector<LinkId> src_up_;     // server -> edge
  std::vector<LinkId> dst_down_;   // edge -> server
  std::vector<LinkId> edge_up_;    // edge -> agg (pod-local, per (pod, edge, agg))
  std::vector<LinkId> agg_down_;   // agg -> edge
  std::vector<LinkId> agg_up_;     // agg -> core (per (pod, agg, core))
  std::vector<LinkId> core_down_;  // core -> agg
  NodeId first_source_ = kInvalidNode;
  NodeId first_dest_ = kInvalidNode;

  [[nodiscard]] std::size_t server_index(int pod, int edge, int server) const;
  [[nodiscard]] std::size_t pod_link_index(int pod, int edge, int agg) const;
  [[nodiscard]] std::size_t core_link_index(int pod, int agg, int core) const;
};

}  // namespace closfair
