#include "net/fattree.hpp"

#include <string>

namespace closfair {
namespace {

std::string triple_name(const char* stem, int a, int b, int c) {
  return std::string{stem} + std::to_string(a) + "." + std::to_string(b) + "." +
         std::to_string(c);
}

}  // namespace

FatTree::FatTree(int k, Rational link_capacity) : k_(k) {
  CF_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree arity k must be even and >= 2");
  const int half = k / 2;

  // Switches.
  edges_.reserve(static_cast<std::size_t>(k) * half);
  aggs_.reserve(edges_.capacity());
  for (int p = 1; p <= k; ++p) {
    for (int e = 1; e <= half; ++e) {
      edges_.push_back(topo_.add_node("E" + std::to_string(p) + "." + std::to_string(e),
                                      NodeKind::kInputSwitch));
    }
    for (int a = 1; a <= half; ++a) {
      aggs_.push_back(topo_.add_node("A" + std::to_string(p) + "." + std::to_string(a),
                                     NodeKind::kMiddleSwitch));
    }
  }
  cores_.reserve(static_cast<std::size_t>(half) * half);
  for (int a = 1; a <= half; ++a) {
    for (int c = 1; c <= half; ++c) {
      cores_.push_back(topo_.add_node("C" + std::to_string(a) + "." + std::to_string(c),
                                      NodeKind::kMiddleSwitch));
    }
  }

  // Servers (each physical server = one source node + one destination node).
  const auto num_srv = static_cast<std::size_t>(num_servers());
  sources_.resize(num_srv);
  dests_.resize(num_srv);
  src_up_.resize(num_srv);
  dst_down_.resize(num_srv);
  for (int p = 1; p <= k; ++p) {
    for (int e = 1; e <= half; ++e) {
      for (int j = 1; j <= half; ++j) {
        const NodeId s = topo_.add_node(triple_name("s", p, e, j), NodeKind::kSource);
        const NodeId t = topo_.add_node(triple_name("t", p, e, j), NodeKind::kDestination);
        if (first_source_ == kInvalidNode) first_source_ = s;
        if (first_dest_ == kInvalidNode) first_dest_ = t;
        const std::size_t idx = server_index(p, e, j);
        sources_[idx] = s;
        dests_[idx] = t;
        src_up_[idx] = topo_.add_link(s, edge_switch(p, e), link_capacity);
        dst_down_[idx] = topo_.add_link(edge_switch(p, e), t, link_capacity);
      }
    }
  }

  // Pod fabric: every edge switch to every aggregation switch in its pod.
  edge_up_.resize(static_cast<std::size_t>(k) * half * half);
  agg_down_.resize(edge_up_.size());
  for (int p = 1; p <= k; ++p) {
    for (int e = 1; e <= half; ++e) {
      for (int a = 1; a <= half; ++a) {
        edge_up_[pod_link_index(p, e, a)] =
            topo_.add_link(edge_switch(p, e), agg_switch(p, a), link_capacity);
        agg_down_[pod_link_index(p, e, a)] =
            topo_.add_link(agg_switch(p, a), edge_switch(p, e), link_capacity);
      }
    }
  }

  // Core fabric: aggregation position a of every pod connects to cores
  // (a, 1..k/2).
  agg_up_.resize(static_cast<std::size_t>(k) * half * half);
  core_down_.resize(agg_up_.size());
  for (int p = 1; p <= k; ++p) {
    for (int a = 1; a <= half; ++a) {
      for (int c = 1; c <= half; ++c) {
        agg_up_[core_link_index(p, a, c)] =
            topo_.add_link(agg_switch(p, a), core_switch(a, c), link_capacity);
        core_down_[core_link_index(p, a, c)] =
            topo_.add_link(core_switch(a, c), agg_switch(p, a), link_capacity);
      }
    }
  }
}

std::size_t FatTree::server_index(int pod, int edge, int server) const {
  const int half = k_ / 2;
  CF_CHECK_MSG(pod >= 1 && pod <= k_, "pod " << pod << " out of [1, " << k_ << "]");
  CF_CHECK_MSG(edge >= 1 && edge <= half, "edge " << edge << " out of [1, " << half << "]");
  CF_CHECK_MSG(server >= 1 && server <= half,
               "server " << server << " out of [1, " << half << "]");
  return (static_cast<std::size_t>(pod - 1) * half + (edge - 1)) * half + (server - 1);
}

std::size_t FatTree::pod_link_index(int pod, int edge, int agg) const {
  const int half = k_ / 2;
  return (static_cast<std::size_t>(pod - 1) * half + (edge - 1)) * half + (agg - 1);
}

std::size_t FatTree::core_link_index(int pod, int agg, int core) const {
  const int half = k_ / 2;
  return (static_cast<std::size_t>(pod - 1) * half + (agg - 1)) * half + (core - 1);
}

NodeId FatTree::source(int pod, int edge, int server) const {
  return sources_[server_index(pod, edge, server)];
}

NodeId FatTree::destination(int pod, int edge, int server) const {
  return dests_[server_index(pod, edge, server)];
}

NodeId FatTree::edge_switch(int pod, int edge) const {
  const int half = k_ / 2;
  CF_CHECK(pod >= 1 && pod <= k_ && edge >= 1 && edge <= half);
  return edges_[static_cast<std::size_t>(pod - 1) * half + (edge - 1)];
}

NodeId FatTree::agg_switch(int pod, int agg) const {
  const int half = k_ / 2;
  CF_CHECK(pod >= 1 && pod <= k_ && agg >= 1 && agg <= half);
  return aggs_[static_cast<std::size_t>(pod - 1) * half + (agg - 1)];
}

NodeId FatTree::core_switch(int agg_pos, int core) const {
  const int half = k_ / 2;
  CF_CHECK(agg_pos >= 1 && agg_pos <= half && core >= 1 && core <= half);
  return cores_[static_cast<std::size_t>(agg_pos - 1) * half + (core - 1)];
}

int FatTree::edge_index(int pod, int edge) const {
  CF_CHECK(pod >= 1 && pod <= k_ && edge >= 1 && edge <= k_ / 2);
  return (pod - 1) * (k_ / 2) + edge;
}

FatTree::ServerCoord FatTree::source_coord(NodeId src) const {
  CF_CHECK_MSG(topo_.node(src).kind == NodeKind::kSource, "node is not a source server");
  const auto offset = static_cast<std::size_t>(src - first_source_) / 2;
  const int half = k_ / 2;
  const int server = static_cast<int>(offset) % half + 1;
  const int edge = (static_cast<int>(offset) / half) % half + 1;
  const int pod = static_cast<int>(offset) / (half * half) + 1;
  return ServerCoord{pod, edge, server};
}

FatTree::ServerCoord FatTree::dest_coord(NodeId dst) const {
  CF_CHECK_MSG(topo_.node(dst).kind == NodeKind::kDestination,
               "node is not a destination server");
  const auto offset = static_cast<std::size_t>(dst - first_dest_) / 2;
  const int half = k_ / 2;
  const int server = static_cast<int>(offset) % half + 1;
  const int edge = (static_cast<int>(offset) / half) % half + 1;
  const int pod = static_cast<int>(offset) / (half * half) + 1;
  return ServerCoord{pod, edge, server};
}

std::vector<Path> FatTree::paths(NodeId src, NodeId dst) const {
  const ServerCoord s = source_coord(src);
  const ServerCoord t = dest_coord(dst);
  const int half = k_ / 2;
  const LinkId up0 = src_up_[server_index(s.pod, s.edge, s.server)];
  const LinkId down0 = dst_down_[server_index(t.pod, t.edge, t.server)];

  std::vector<Path> result;
  if (s.pod == t.pod && s.edge == t.edge) {
    // Same edge switch: the one two-hop path.
    result.push_back(Path{up0, down0});
    return result;
  }
  if (s.pod == t.pod) {
    // Same pod: via each aggregation switch.
    result.reserve(static_cast<std::size_t>(half));
    for (int a = 1; a <= half; ++a) {
      result.push_back(Path{up0, edge_up_[pod_link_index(s.pod, s.edge, a)],
                            agg_down_[pod_link_index(t.pod, t.edge, a)], down0});
    }
    return result;
  }
  // Cross-pod: via each (aggregation position, core) pair.
  result.reserve(static_cast<std::size_t>(half) * half);
  for (int a = 1; a <= half; ++a) {
    for (int c = 1; c <= half; ++c) {
      result.push_back(Path{up0, edge_up_[pod_link_index(s.pod, s.edge, a)],
                            agg_up_[core_link_index(s.pod, a, c)],
                            core_down_[core_link_index(t.pod, a, c)],
                            agg_down_[pod_link_index(t.pod, t.edge, a)], down0});
    }
  }
  return result;
}

}  // namespace closfair
