#include "net/clos.hpp"

#include <string>

namespace closfair {
namespace {

std::string coord_name(const char* stem, int i, int j) {
  return std::string{stem} + std::to_string(i) + "^" + std::to_string(j);
}

}  // namespace

ClosNetwork ClosNetwork::paper(int n) {
  CF_CHECK_MSG(n >= 1, "C_n requires n >= 1");
  return ClosNetwork(Params{n, 2 * n, n, Rational{1}});
}

ClosNetwork::ClosNetwork(Params params) : params_(params) {
  CF_CHECK(params_.num_middles >= 1);
  CF_CHECK(params_.num_tors >= 1);
  CF_CHECK(params_.servers_per_tor >= 1);

  const int tors = params_.num_tors;
  const int servers = params_.servers_per_tor;
  const int middles = params_.num_middles;

  inputs_.reserve(static_cast<std::size_t>(tors));
  outputs_.reserve(static_cast<std::size_t>(tors));
  for (int i = 1; i <= tors; ++i) {
    inputs_.push_back(topo_.add_node("I" + std::to_string(i), NodeKind::kInputSwitch));
    outputs_.push_back(topo_.add_node("O" + std::to_string(i), NodeKind::kOutputSwitch));
  }
  middles_.reserve(static_cast<std::size_t>(middles));
  for (int m = 1; m <= middles; ++m) {
    middles_.push_back(topo_.add_node("M" + std::to_string(m), NodeKind::kMiddleSwitch));
  }

  sources_.resize(static_cast<std::size_t>(tors) * servers);
  dests_.resize(sources_.size());
  source_links_.resize(sources_.size());
  dest_links_.resize(sources_.size());
  for (int i = 1; i <= tors; ++i) {
    for (int j = 1; j <= servers; ++j) {
      const NodeId s = topo_.add_node(coord_name("s", i, j), NodeKind::kSource);
      const NodeId t = topo_.add_node(coord_name("t", i, j), NodeKind::kDestination);
      if (first_source_ == kInvalidNode) first_source_ = s;
      if (first_dest_ == kInvalidNode) first_dest_ = t;
      sources_[server_index(i, j)] = s;
      dests_[server_index(i, j)] = t;
      source_links_[server_index(i, j)] =
          topo_.add_link(s, input_switch(i), params_.link_capacity);
      dest_links_[server_index(i, j)] =
          topo_.add_link(output_switch(i), t, params_.link_capacity);
    }
  }

  uplinks_.resize(static_cast<std::size_t>(tors) * middles);
  downlinks_.resize(uplinks_.size());
  for (int i = 1; i <= tors; ++i) {
    for (int m = 1; m <= middles; ++m) {
      uplinks_[static_cast<std::size_t>(i - 1) * middles + (m - 1)] =
          topo_.add_link(input_switch(i), middle(m), params_.link_capacity);
      downlinks_[static_cast<std::size_t>(m - 1) * tors + (i - 1)] =
          topo_.add_link(middle(m), output_switch(i), params_.link_capacity);
    }
  }
}

std::size_t ClosNetwork::server_index(int i, int j) const {
  CF_CHECK_MSG(i >= 1 && i <= params_.num_tors, "ToR index " << i << " out of [1, "
                                                              << params_.num_tors << "]");
  CF_CHECK_MSG(j >= 1 && j <= params_.servers_per_tor,
               "server index " << j << " out of [1, " << params_.servers_per_tor << "]");
  return static_cast<std::size_t>(i - 1) * params_.servers_per_tor + (j - 1);
}

NodeId ClosNetwork::source(int i, int j) const { return sources_[server_index(i, j)]; }
NodeId ClosNetwork::destination(int i, int j) const { return dests_[server_index(i, j)]; }

NodeId ClosNetwork::input_switch(int i) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  return inputs_[static_cast<std::size_t>(i - 1)];
}

NodeId ClosNetwork::middle(int m) const {
  CF_CHECK_MSG(m >= 1 && m <= params_.num_middles,
               "middle index " << m << " out of [1, " << params_.num_middles << "]");
  return middles_[static_cast<std::size_t>(m - 1)];
}

NodeId ClosNetwork::output_switch(int i) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  return outputs_[static_cast<std::size_t>(i - 1)];
}

LinkId ClosNetwork::source_link(int i, int j) const { return source_links_[server_index(i, j)]; }
LinkId ClosNetwork::dest_link(int i, int j) const { return dest_links_[server_index(i, j)]; }

LinkId ClosNetwork::uplink(int i, int m) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  CF_CHECK(m >= 1 && m <= params_.num_middles);
  return uplinks_[static_cast<std::size_t>(i - 1) * params_.num_middles + (m - 1)];
}

LinkId ClosNetwork::downlink(int m, int i) const {
  CF_CHECK(i >= 1 && i <= params_.num_tors);
  CF_CHECK(m >= 1 && m <= params_.num_middles);
  return downlinks_[static_cast<std::size_t>(m - 1) * params_.num_tors + (i - 1)];
}

bool ClosNetwork::middles_symmetric() const {
  const int middles = params_.num_middles;
  for (int i = 1; i <= params_.num_tors; ++i) {
    const Rational up = topo_.link(uplink(i, 1)).capacity;
    const Rational down = topo_.link(downlink(1, i)).capacity;
    for (int m = 2; m <= middles; ++m) {
      if (topo_.link(uplink(i, m)).capacity != up) return false;
      if (topo_.link(downlink(m, i)).capacity != down) return false;
    }
  }
  return true;
}

void ClosNetwork::set_uplink_capacity(int i, int m, Rational capacity) {
  topo_.set_link_capacity(uplink(i, m), capacity);
}

void ClosNetwork::set_downlink_capacity(int m, int i, Rational capacity) {
  topo_.set_link_capacity(downlink(m, i), capacity);
}

ClosNetwork::ServerCoord ClosNetwork::source_coord(NodeId src) const {
  CF_CHECK_MSG(topo_.node(src).kind == NodeKind::kSource, "node is not a source server");
  // Sources and destinations are interleaved in creation order: the k'th
  // created source has id first_source_ + 2k.
  const auto offset = static_cast<std::size_t>(src - first_source_) / 2;
  const int servers = params_.servers_per_tor;
  return ServerCoord{static_cast<int>(offset) / servers + 1,
                     static_cast<int>(offset) % servers + 1};
}

ClosNetwork::ServerCoord ClosNetwork::dest_coord(NodeId dst) const {
  CF_CHECK_MSG(topo_.node(dst).kind == NodeKind::kDestination, "node is not a destination server");
  const auto offset = static_cast<std::size_t>(dst - first_dest_) / 2;
  const int servers = params_.servers_per_tor;
  return ServerCoord{static_cast<int>(offset) / servers + 1,
                     static_cast<int>(offset) % servers + 1};
}

Path ClosNetwork::path(NodeId src, NodeId dst, int m) const {
  const ServerCoord s = source_coord(src);
  const ServerCoord t = dest_coord(dst);
  return Path{source_link(s.tor, s.server), uplink(s.tor, m), downlink(m, t.tor),
              dest_link(t.tor, t.server)};
}

}  // namespace closfair
