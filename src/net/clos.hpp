// The three-stage Clos network C_n of the paper (§2.1).
//
// C_n has n middle switches, 2n input and 2n output ToR switches, and n
// source (destination) servers per input (output) ToR; every link has unit
// capacity, and every source-destination pair is connected by exactly n
// paths, one per middle switch. A generalized constructor (arbitrary middle /
// ToR / server counts) is provided for workload studies; the paper's C_n is
// `ClosNetwork::paper(n)`.
//
// All accessors are 1-based to match the paper's indexing: i ∈ [num_tors],
// j ∈ [servers_per_tor], m ∈ [num_middles].
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace closfair {

/// Builder + index map for a Clos network topology.
class ClosNetwork {
 public:
  struct Params {
    int num_middles = 1;      ///< n middle switches
    int num_tors = 2;         ///< input ToRs (= output ToRs)
    int servers_per_tor = 1;  ///< sources per input ToR (= dests per output ToR)
    Rational link_capacity{1};
  };

  /// The paper's C_n: n middles, 2n ToRs per side, n servers per ToR.
  static ClosNetwork paper(int n);

  explicit ClosNetwork(Params params);

  [[nodiscard]] int num_middles() const { return params_.num_middles; }
  [[nodiscard]] int num_tors() const { return params_.num_tors; }
  [[nodiscard]] int servers_per_tor() const { return params_.servers_per_tor; }
  [[nodiscard]] int num_sources() const { return params_.num_tors * params_.servers_per_tor; }
  [[nodiscard]] int num_destinations() const { return num_sources(); }

  /// Source server s_i^j.
  [[nodiscard]] NodeId source(int i, int j) const;
  /// Destination server t_i^j.
  [[nodiscard]] NodeId destination(int i, int j) const;
  /// Input ToR switch I_i.
  [[nodiscard]] NodeId input_switch(int i) const;
  /// Middle switch M_m.
  [[nodiscard]] NodeId middle(int m) const;
  /// Output ToR switch O_i.
  [[nodiscard]] NodeId output_switch(int i) const;

  /// Link s_i^j -> I_i.
  [[nodiscard]] LinkId source_link(int i, int j) const;
  /// Link I_i -> M_m.
  [[nodiscard]] LinkId uplink(int i, int m) const;
  /// Link M_m -> O_i.
  [[nodiscard]] LinkId downlink(int m, int i) const;
  /// Link O_i -> t_i^j.
  [[nodiscard]] LinkId dest_link(int i, int j) const;

  /// Coordinates (ToR index i, server index j) of a server node, 1-based.
  struct ServerCoord {
    int tor = 0;
    int server = 0;
  };
  [[nodiscard]] ServerCoord source_coord(NodeId src) const;
  [[nodiscard]] ServerCoord dest_coord(NodeId dst) const;

  /// The unique src-dst path through middle switch m (4 links).
  [[nodiscard]] Path path(NodeId src, NodeId dst, int m) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// True when the middle switches are interchangeable: for every input ToR
  /// all n uplink capacities are equal, and for every output ToR all n
  /// downlink capacities are equal. Any permutation of middle labels is then
  /// a capacity-preserving automorphism, which licenses the symmetry-reduced
  /// (canonical) enumeration of middle assignments in routing/search_engine.
  /// Freshly constructed networks are always symmetric; the capacity setters
  /// below can break it.
  [[nodiscard]] bool middles_symmetric() const;

  /// Override the capacity of link I_i -> M_m (breaks middle symmetry when
  /// the new value differs from ToR i's other uplinks).
  void set_uplink_capacity(int i, int m, Rational capacity);
  /// Override the capacity of link M_m -> O_i.
  void set_downlink_capacity(int m, int i, Rational capacity);

 private:
  Params params_;
  Topology topo_;
  std::vector<NodeId> sources_;       // [tor-1][server-1] flattened
  std::vector<NodeId> dests_;
  std::vector<NodeId> inputs_;        // [tor-1]
  std::vector<NodeId> middles_;       // [middle-1]
  std::vector<NodeId> outputs_;
  std::vector<LinkId> source_links_;  // same shape as sources_
  std::vector<LinkId> dest_links_;
  std::vector<LinkId> uplinks_;       // [tor-1][middle-1] flattened
  std::vector<LinkId> downlinks_;     // [middle-1][tor-1] flattened
  NodeId first_source_ = kInvalidNode;
  NodeId first_dest_ = kInvalidNode;

  [[nodiscard]] std::size_t server_index(int i, int j) const;
};

}  // namespace closfair
