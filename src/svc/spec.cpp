#include "svc/spec.hpp"

#include <algorithm>
#include <sstream>

#include "io/text_format.hpp"

namespace closfair::svc {
namespace {

[[noreturn]] void fail(const std::string& message) { throw SpecError(message); }

/// Strictness guard: every object's keys must come from the allowed set, so
/// misspelled options fail loudly instead of silently canonicalizing away.
void check_keys(const Json& obj, std::initializer_list<const char*> allowed,
                const char* where) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) fail(std::string{"unknown key '"} + key + "' in " + where);
  }
}

const Json& require(const Json& obj, const char* key, const char* where) {
  const Json* found = obj.find(key);
  if (found == nullptr) fail(std::string{where} + " requires '" + key + "'");
  return *found;
}

std::int64_t get_int(const Json& value, const char* what) {
  if (!value.is_int()) fail(std::string{"'"} + what + "' must be an integer");
  return value.as_int();
}

std::int64_t get_int_or(const Json& obj, const char* key, std::int64_t fallback) {
  const Json* found = obj.find(key);
  return found == nullptr ? fallback : get_int(*found, key);
}

std::uint64_t get_u64_or(const Json& obj, const char* key, std::uint64_t fallback) {
  const Json* found = obj.find(key);
  if (found == nullptr) return fallback;
  const std::int64_t v = get_int(*found, key);
  if (v < 0) fail(std::string{"'"} + key + "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

double get_double_or(const Json& obj, const char* key, double fallback) {
  const Json* found = obj.find(key);
  if (found == nullptr) return fallback;
  if (!found->is_number()) fail(std::string{"'"} + key + "' must be a number");
  return found->as_double();
}

bool get_bool_or(const Json& obj, const char* key, bool fallback) {
  const Json* found = obj.find(key);
  if (found == nullptr) return fallback;
  if (!found->is_bool()) fail(std::string{"'"} + key + "' must be a boolean");
  return found->as_bool();
}

std::string get_string(const Json& value, const char* what) {
  if (!value.is_string()) fail(std::string{"'"} + what + "' must be a string");
  return value.as_string();
}

/// Rationals travel as "p/q" strings or bare integers — never doubles, which
/// could not round-trip exactly.
Rational get_rational(const Json& value, const char* what) {
  if (value.is_int()) return Rational{value.as_int()};
  if (value.is_string()) {
    try {
      return rational_from_string(value.as_string());
    } catch (const std::invalid_argument& e) {
      fail(std::string{"'"} + what + "': " + e.what());
    }
  }
  fail(std::string{"'"} + what + "' must be an integer or a \"p/q\" string");
}

Json rational_json(const Rational& r) {
  return r.is_integer() ? Json::number(r.num()) : Json::string(r.to_string());
}

MiddleAssignment get_middles(const Json& value, const char* what) {
  if (!value.is_array()) fail(std::string{"'"} + what + "' must be an array");
  MiddleAssignment middles;
  middles.reserve(value.size());
  for (const Json& item : value.items()) {
    const std::int64_t m = get_int(item, what);
    if (m < 1) fail(std::string{"'"} + what + "' entries must be >= 1");
    middles.push_back(static_cast<int>(m));
  }
  return middles;
}

Json middles_json(const MiddleAssignment& middles) {
  Json arr = Json::array();
  for (int m : middles) arr.push_back(Json::number(static_cast<std::int64_t>(m)));
  return arr;
}

std::vector<Rational> get_rates(const Json& value, const char* what) {
  if (!value.is_array()) fail(std::string{"'"} + what + "' must be an array");
  std::vector<Rational> rates;
  rates.reserve(value.size());
  for (const Json& item : value.items()) rates.push_back(get_rational(item, what));
  return rates;
}

Json rates_json(const std::vector<Rational>& rates) {
  Json arr = Json::array();
  for (const Rational& r : rates) arr.push_back(Json::string(r.to_string()));
  return arr;
}

// ------------------------------------------------------------------ topology

TopologySpec parse_topology(const Json& obj) {
  TopologySpec topo;
  const Json* kind = obj.find("kind");
  topo.kind = kind == nullptr ? "clos" : get_string(*kind, "kind");

  if (topo.kind == "clos") {
    check_keys(obj, {"kind", "n", "middles", "tors", "servers", "capacity"}, "topology");
    const Json* n = obj.find("n");
    if (n != nullptr) {
      if (obj.find("middles") != nullptr || obj.find("tors") != nullptr ||
          obj.find("servers") != nullptr || obj.find("capacity") != nullptr) {
        fail("topology: use either n or middles/tors/servers, not both");
      }
      const std::int64_t paper_n = get_int(*n, "n");
      if (paper_n < 1) fail("topology: n must be >= 1");
      const int nn = static_cast<int>(paper_n);
      topo.params = ClosNetwork::Params{nn, 2 * nn, nn, Rational{1}};
    } else {
      topo.params.num_middles = static_cast<int>(get_int(require(obj, "middles", "topology"), "middles"));
      topo.params.num_tors = static_cast<int>(get_int(require(obj, "tors", "topology"), "tors"));
      topo.params.servers_per_tor =
          static_cast<int>(get_int(require(obj, "servers", "topology"), "servers"));
      const Json* cap = obj.find("capacity");
      topo.params.link_capacity = cap == nullptr ? Rational{1} : get_rational(*cap, "capacity");
      if (topo.params.num_middles < 1 || topo.params.num_tors < 1 ||
          topo.params.servers_per_tor < 1) {
        fail("topology: middles/tors/servers must be >= 1");
      }
      if (topo.params.link_capacity.is_negative() || topo.params.link_capacity.is_zero()) {
        fail("topology: capacity must be positive");
      }
    }
  } else if (topo.kind == "macro") {
    check_keys(obj, {"kind", "tors", "servers", "capacity"}, "topology");
    topo.params.num_middles = 1;
    topo.params.num_tors = static_cast<int>(get_int(require(obj, "tors", "topology"), "tors"));
    topo.params.servers_per_tor =
        static_cast<int>(get_int(require(obj, "servers", "topology"), "servers"));
    const Json* cap = obj.find("capacity");
    topo.params.link_capacity = cap == nullptr ? Rational{1} : get_rational(*cap, "capacity");
    if (topo.params.num_tors < 1 || topo.params.servers_per_tor < 1) {
      fail("topology: tors/servers must be >= 1");
    }
  } else if (topo.kind == "fattree") {
    check_keys(obj, {"kind", "k"}, "topology");
    const std::int64_t k = get_int(require(obj, "k", "topology"), "k");
    if (k < 2 || k % 2 != 0) fail("topology: fattree k must be even and >= 2");
    topo.fattree_k = static_cast<int>(k);
  } else {
    fail("topology: unknown kind '" + topo.kind + "'");
  }
  return topo;
}

Json topology_json(const TopologySpec& topo) {
  Json obj = Json::object();
  obj.set("kind", Json::string(topo.kind));
  if (topo.kind == "clos") {
    const auto& p = topo.params;
    if (p.num_tors == 2 * p.num_middles && p.servers_per_tor == p.num_middles &&
        p.link_capacity == Rational{1}) {
      obj.set("n", Json::number(static_cast<std::int64_t>(p.num_middles)));
    } else {
      obj.set("middles", Json::number(static_cast<std::int64_t>(p.num_middles)));
      obj.set("tors", Json::number(static_cast<std::int64_t>(p.num_tors)));
      obj.set("servers", Json::number(static_cast<std::int64_t>(p.servers_per_tor)));
      if (!(p.link_capacity == Rational{1})) {
        obj.set("capacity", rational_json(p.link_capacity));
      }
    }
  } else if (topo.kind == "macro") {
    obj.set("tors", Json::number(static_cast<std::int64_t>(topo.params.num_tors)));
    obj.set("servers", Json::number(static_cast<std::int64_t>(topo.params.servers_per_tor)));
    if (!(topo.params.link_capacity == Rational{1})) {
      obj.set("capacity", rational_json(topo.params.link_capacity));
    }
  } else {
    obj.set("k", Json::number(static_cast<std::int64_t>(topo.fattree_k)));
  }
  return obj;
}

// ------------------------------------------------------------------ workload

WorkloadSpec parse_workload(const Json& obj) {
  WorkloadSpec wl;
  const Json* instance = obj.find("instance");
  const Json* generator = obj.find("generator");
  if ((instance != nullptr) == (generator != nullptr)) {
    fail("workload: exactly one of 'generator' or 'instance' is required");
  }

  if (instance != nullptr) {
    check_keys(obj, {"instance", "seed"}, "workload");
    const std::string text = get_string(*instance, "instance");
    try {
      // Canonicalize immediately: the stored text is format_instance's
      // output, the io-layer serialize→parse→serialize fixed point.
      wl.instance = format_instance(parse_instance(text));
    } catch (const std::exception& e) {
      fail(std::string{"workload.instance: "} + e.what());
    }
    wl.seed = get_u64_or(obj, "seed", 1);
    return wl;
  }

  wl.generator = get_string(*generator, "generator");
  const auto require_count = [&]() {
    const std::int64_t count = get_int(require(obj, "count", "workload"), "count");
    if (count < 1) fail("workload: count must be >= 1");
    wl.count = static_cast<std::size_t>(count);
  };
  if (wl.generator == "uniform") {
    check_keys(obj, {"generator", "count", "seed"}, "workload");
    require_count();
  } else if (wl.generator == "permutation") {
    check_keys(obj, {"generator", "seed"}, "workload");
  } else if (wl.generator == "zipf") {
    check_keys(obj, {"generator", "count", "skew", "seed"}, "workload");
    require_count();
    const Json& skew = require(obj, "skew", "workload");
    if (!skew.is_number()) fail("workload: skew must be a number");
    wl.skew = skew.as_double();
    if (wl.skew < 0.0) fail("workload: skew must be >= 0");
  } else if (wl.generator == "hotspot") {
    check_keys(obj, {"generator", "count", "hot_tor", "hot_fraction", "seed"}, "workload");
    require_count();
    wl.hot_tor = static_cast<int>(get_int(require(obj, "hot_tor", "workload"), "hot_tor"));
    const Json& fraction = require(obj, "hot_fraction", "workload");
    if (!fraction.is_number()) fail("workload: hot_fraction must be a number");
    wl.hot_fraction = fraction.as_double();
    if (wl.hot_fraction < 0.0 || wl.hot_fraction > 1.0) {
      fail("workload: hot_fraction must lie in [0, 1]");
    }
  } else if (wl.generator == "incast") {
    check_keys(obj, {"generator", "count", "dst_tor", "dst_server", "seed"}, "workload");
    require_count();
    wl.dst_tor = static_cast<int>(get_int(require(obj, "dst_tor", "workload"), "dst_tor"));
    wl.dst_server =
        static_cast<int>(get_int(require(obj, "dst_server", "workload"), "dst_server"));
  } else if (wl.generator == "stride") {
    check_keys(obj, {"generator", "stride"}, "workload");
    wl.stride = static_cast<int>(get_int(require(obj, "stride", "workload"), "stride"));
  } else if (wl.generator == "all_to_all") {
    check_keys(obj, {"generator"}, "workload");
  } else {
    fail("workload: unknown generator '" + wl.generator + "'");
  }
  if (wl.generator != "stride" && wl.generator != "all_to_all") {
    wl.seed = get_u64_or(obj, "seed", 1);
  }
  return wl;
}

Json workload_json(const WorkloadSpec& wl) {
  Json obj = Json::object();
  if (!wl.instance.empty()) {
    obj.set("instance", Json::string(wl.instance));
    if (wl.seed != 1) obj.set("seed", Json::number(static_cast<std::int64_t>(wl.seed)));
    return obj;
  }
  obj.set("generator", Json::string(wl.generator));
  if (wl.generator == "uniform" || wl.generator == "zipf" || wl.generator == "hotspot" ||
      wl.generator == "incast") {
    obj.set("count", Json::number(static_cast<std::int64_t>(wl.count)));
  }
  if (wl.generator == "zipf") obj.set("skew", Json::number(wl.skew));
  if (wl.generator == "hotspot") {
    obj.set("hot_tor", Json::number(static_cast<std::int64_t>(wl.hot_tor)));
    obj.set("hot_fraction", Json::number(wl.hot_fraction));
  }
  if (wl.generator == "incast") {
    obj.set("dst_tor", Json::number(static_cast<std::int64_t>(wl.dst_tor)));
    obj.set("dst_server", Json::number(static_cast<std::int64_t>(wl.dst_server)));
  }
  if (wl.generator == "stride") {
    obj.set("stride", Json::number(static_cast<std::int64_t>(wl.stride)));
  }
  if (wl.generator != "stride" && wl.generator != "all_to_all" && wl.seed != 1) {
    obj.set("seed", Json::number(static_cast<std::int64_t>(wl.seed)));
  }
  return obj;
}

// ------------------------------------------------------------------- routing

bool policy_known(const std::string& policy) {
  static const char* kPolicies[] = {"none",      "static",       "ecmp",
                                    "greedy",    "local_search", "lex_climb",
                                    "tput_climb", "doom",        "lp_round",
                                    "exhaustive_lex", "exhaustive_tput", "replicate"};
  return std::find_if(std::begin(kPolicies), std::end(kPolicies),
                      [&](const char* p) { return policy == p; }) != std::end(kPolicies);
}

RoutingSpec parse_routing(const Json& obj) {
  RoutingSpec routing;
  const Json* policy = obj.find("policy");
  routing.policy = policy == nullptr ? "greedy" : get_string(*policy, "policy");
  if (!policy_known(routing.policy)) {
    fail("routing: unknown policy '" + routing.policy + "'");
  }

  const std::string& p = routing.policy;
  if (p == "none" || p == "greedy" || p == "doom") {
    check_keys(obj, {"policy"}, "routing");
  } else if (p == "ecmp") {
    check_keys(obj, {"policy", "seed"}, "routing");
  } else if (p == "static") {
    check_keys(obj, {"policy", "start", "reroute_dead"}, "routing");
    routing.start = get_middles(require(obj, "start", "routing"), "start");
  } else if (p == "local_search" || p == "lex_climb" || p == "tput_climb") {
    check_keys(obj, {"policy", "max_moves", "start", "reroute_dead"}, "routing");
    const Json* start = obj.find("start");
    if (start != nullptr) routing.start = get_middles(*start, "start");
  } else if (p == "lp_round") {
    check_keys(obj, {"policy", "seed", "attempts"}, "routing");
    const std::int64_t attempts = get_int_or(obj, "attempts", 8);
    if (attempts < 1) fail("routing: attempts must be >= 1");
    routing.attempts = static_cast<std::size_t>(attempts);
  } else if (p == "exhaustive_lex") {
    check_keys(obj, {"policy", "threads", "fix_first_flow", "max_routings"}, "routing");
  } else if (p == "exhaustive_tput") {
    check_keys(obj, {"policy", "threads", "prune_throughput_bound", "fix_first_flow",
                     "max_routings"},
               "routing");
  } else if (p == "replicate") {
    check_keys(obj, {"policy"}, "routing");
  }

  if (obj.find("seed") != nullptr) routing.seed = get_u64_or(obj, "seed", 0);
  const std::int64_t max_moves = get_int_or(obj, "max_moves", 10'000);
  if (max_moves < 1) fail("routing: max_moves must be >= 1");
  routing.max_moves = static_cast<std::size_t>(max_moves);
  const std::int64_t threads = get_int_or(obj, "threads", 1);
  if (threads < 1 || threads > 256) fail("routing: threads must lie in [1, 256]");
  routing.threads = static_cast<unsigned>(threads);
  routing.prune_throughput_bound = get_bool_or(obj, "prune_throughput_bound", true);
  routing.fix_first_flow = get_bool_or(obj, "fix_first_flow", true);
  routing.max_routings = get_u64_or(obj, "max_routings", 0);
  routing.reroute_dead = get_bool_or(obj, "reroute_dead", false);
  if (routing.reroute_dead &&
      !(p == "static" || p == "local_search" || p == "lex_climb" || p == "tput_climb")) {
    fail("routing: reroute_dead applies only to start-based policies");
  }
  return routing;
}

Json routing_json(const RoutingSpec& routing) {
  Json obj = Json::object();
  obj.set("policy", Json::string(routing.policy));
  if (routing.seed.has_value()) {
    obj.set("seed", Json::number(static_cast<std::int64_t>(*routing.seed)));
  }
  if (routing.max_moves != 10'000) {
    obj.set("max_moves", Json::number(static_cast<std::int64_t>(routing.max_moves)));
  }
  if (routing.threads != 1) {
    obj.set("threads", Json::number(static_cast<std::int64_t>(routing.threads)));
  }
  if (!routing.prune_throughput_bound) {
    obj.set("prune_throughput_bound", Json::boolean(false));
  }
  if (!routing.fix_first_flow) obj.set("fix_first_flow", Json::boolean(false));
  if (routing.max_routings != 0) {
    obj.set("max_routings", Json::number(static_cast<std::int64_t>(routing.max_routings)));
  }
  if (routing.attempts != 8) {
    obj.set("attempts", Json::number(static_cast<std::int64_t>(routing.attempts)));
  }
  if (!routing.start.empty()) obj.set("start", middles_json(routing.start));
  if (routing.reroute_dead) obj.set("reroute_dead", Json::boolean(true));
  return obj;
}

// --------------------------------------------------------------------- fault

/// One {"stage","tor","middle","factor"} deration entry — shared between the
/// fault group and the delta patch grammar (patch.derate_links).
fault::LinkDeration parse_derated_link(const Json& item, const char* where) {
  if (!item.is_object()) {
    fail(std::string{where} + ": derated link entries must be objects");
  }
  check_keys(item, {"stage", "tor", "middle", "factor"}, "derated link");
  fault::LinkDeration d;
  const std::string stage = get_string(require(item, "stage", "derated link"), "stage");
  if (stage == "uplink") {
    d.stage = fault::LinkStage::kUplink;
  } else if (stage == "downlink") {
    d.stage = fault::LinkStage::kDownlink;
  } else {
    fail(std::string{where} + ": stage must be 'uplink' or 'downlink'");
  }
  d.tor = static_cast<int>(get_int(require(item, "tor", "derated link"), "tor"));
  d.middle = static_cast<int>(get_int(require(item, "middle", "derated link"), "middle"));
  d.factor = get_rational(require(item, "factor", "derated link"), "factor");
  if (d.factor.is_negative() || Rational{1} < d.factor) {
    fail(std::string{where} + ": factor must lie in [0, 1]");
  }
  return d;
}

FaultSpec parse_fault(const Json& obj) {
  check_keys(obj,
             {"failed_middles", "derated_links", "degraded_pods", "sample_middles",
              "link_failure_p", "worst_case_outage", "seed"},
             "fault");
  FaultSpec fs;
  if (const Json* failed = obj.find("failed_middles"); failed != nullptr) {
    if (!failed->is_array()) fail("fault: failed_middles must be an array");
    for (const Json& item : failed->items()) {
      const std::int64_t m = get_int(item, "failed_middles");
      if (m < 1) fail("fault: failed_middles entries must be >= 1");
      fs.scenario.failed_middles.push_back(static_cast<int>(m));
    }
    // Canonical: ascending, duplicates removed (the mask is idempotent).
    std::sort(fs.scenario.failed_middles.begin(), fs.scenario.failed_middles.end());
    fs.scenario.failed_middles.erase(std::unique(fs.scenario.failed_middles.begin(),
                                                 fs.scenario.failed_middles.end()),
                                     fs.scenario.failed_middles.end());
  }
  if (const Json* derated = obj.find("derated_links"); derated != nullptr) {
    if (!derated->is_array()) fail("fault: derated_links must be an array");
    for (const Json& item : derated->items()) {
      fs.scenario.derated_links.push_back(parse_derated_link(item, "fault"));
    }
  }
  if (const Json* pods = obj.find("degraded_pods"); pods != nullptr) {
    if (!pods->is_array()) fail("fault: degraded_pods must be an array");
    for (const Json& item : pods->items()) {
      if (!item.is_object()) fail("fault: degraded_pods entries must be objects");
      check_keys(item, {"tor", "factor"}, "fault.degraded_pods");
      fault::PodDegradation pd;
      pd.tor = static_cast<int>(get_int(require(item, "tor", "degraded_pods"), "tor"));
      pd.factor = get_rational(require(item, "factor", "degraded_pods"), "factor");
      if (pd.factor.is_negative() || Rational{1} < pd.factor) {
        fail("fault: factor must lie in [0, 1]");
      }
      fs.scenario.degraded_pods.push_back(pd);
    }
  }
  const std::int64_t sample_middles = get_int_or(obj, "sample_middles", 0);
  if (sample_middles < 0) fail("fault: sample_middles must be >= 0");
  fs.sample_middles = static_cast<int>(sample_middles);
  fs.link_failure_p = get_double_or(obj, "link_failure_p", 0.0);
  if (fs.link_failure_p < 0.0 || fs.link_failure_p > 1.0) {
    fail("fault: link_failure_p must lie in [0, 1]");
  }
  const std::int64_t worst = get_int_or(obj, "worst_case_outage", 0);
  if (worst < 0) fail("fault: worst_case_outage must be >= 0");
  fs.worst_case_outage = static_cast<int>(worst);
  fs.seed = get_u64_or(obj, "seed", 1);
  if (fs.seed != 1 && fs.sample_middles == 0 && fs.link_failure_p == 0.0) {
    fail("fault: seed without a sampler has no effect");
  }
  return fs;
}

Json fault_json(const FaultSpec& fs) {
  Json obj = Json::object();
  if (!fs.scenario.failed_middles.empty()) {
    Json arr = Json::array();
    for (int m : fs.scenario.failed_middles) {
      arr.push_back(Json::number(static_cast<std::int64_t>(m)));
    }
    obj.set("failed_middles", std::move(arr));
  }
  if (!fs.scenario.derated_links.empty()) {
    Json arr = Json::array();
    for (const fault::LinkDeration& d : fs.scenario.derated_links) {
      Json item = Json::object();
      item.set("stage", Json::string(d.stage == fault::LinkStage::kUplink ? "uplink"
                                                                          : "downlink"));
      item.set("tor", Json::number(static_cast<std::int64_t>(d.tor)));
      item.set("middle", Json::number(static_cast<std::int64_t>(d.middle)));
      item.set("factor", rational_json(d.factor));
      arr.push_back(std::move(item));
    }
    obj.set("derated_links", std::move(arr));
  }
  if (!fs.scenario.degraded_pods.empty()) {
    Json arr = Json::array();
    for (const fault::PodDegradation& pd : fs.scenario.degraded_pods) {
      Json item = Json::object();
      item.set("tor", Json::number(static_cast<std::int64_t>(pd.tor)));
      item.set("factor", rational_json(pd.factor));
      arr.push_back(std::move(item));
    }
    obj.set("degraded_pods", std::move(arr));
  }
  if (fs.sample_middles != 0) {
    obj.set("sample_middles", Json::number(static_cast<std::int64_t>(fs.sample_middles)));
  }
  if (fs.link_failure_p != 0.0) obj.set("link_failure_p", Json::number(fs.link_failure_p));
  if (fs.worst_case_outage != 0) {
    obj.set("worst_case_outage", Json::number(static_cast<std::int64_t>(fs.worst_case_outage)));
  }
  if (fs.seed != 1) obj.set("seed", Json::number(static_cast<std::int64_t>(fs.seed)));
  return obj;
}

}  // namespace

// ---------------------------------------------------------------------------

ScenarioSpec ScenarioSpec::from_json(const Json& json) {
  if (!json.is_object()) fail("scenario spec must be a JSON object");
  check_keys(json, {"topology", "workload", "routing", "objective", "fault"}, "spec");

  ScenarioSpec spec;
  const Json& workload = require(json, "workload", "spec");
  if (!workload.is_object()) fail("'workload' must be an object");
  spec.workload = parse_workload(workload);

  const Json* topology = json.find("topology");
  if (!spec.workload.instance.empty()) {
    if (topology != nullptr) {
      fail("an inline workload.instance defines the topology; drop the 'topology' group");
    }
    spec.topology.kind = "clos";
    spec.topology.params = parse_instance(spec.workload.instance).params;
  } else {
    if (topology == nullptr) fail("spec requires 'topology'");
    if (!topology->is_object()) fail("'topology' must be an object");
    spec.topology = parse_topology(*topology);
  }

  const Json* routing = json.find("routing");
  if (routing != nullptr) {
    if (!routing->is_object()) fail("'routing' must be an object");
    spec.routing = parse_routing(*routing);
  }
  if (spec.topology.kind == "macro") {
    if (routing != nullptr && spec.routing.policy != "none") {
      fail("macro topologies have a unique routing; use policy 'none' or drop 'routing'");
    }
    spec.routing = RoutingSpec{};
    spec.routing.policy = "none";
  }
  if (spec.topology.kind == "fattree") {
    const std::string& p = spec.routing.policy;
    if (p != "none" && p != "ecmp" && p != "greedy" && p != "local_search") {
      fail("fattree topologies support policies none/ecmp/greedy/local_search");
    }
    if (!spec.routing.start.empty()) fail("fattree routing takes no 'start'");
  }
  if (const Json* objective = json.find("objective"); objective != nullptr) {
    spec.objective = get_string(*objective, "objective");
    if (spec.objective != "maxmin" && spec.objective != "maxmin_lp") {
      fail("objective must be 'maxmin' or 'maxmin_lp'");
    }
  }

  if (const Json* fault_obj = json.find("fault"); fault_obj != nullptr) {
    if (!fault_obj->is_object()) fail("'fault' must be an object");
    spec.fault = parse_fault(*fault_obj);
    if (spec.fault.empty()) fail("'fault' present but empty; drop the group instead");
    if (spec.topology.kind != "clos") fail("fault scenarios apply to Clos topologies only");
  }
  return spec;
}

Json ScenarioSpec::to_json() const {
  Json obj = Json::object();
  if (workload.instance.empty()) obj.set("topology", topology_json(topology));
  obj.set("workload", workload_json(workload));
  // Omit the routing group when reparsing without it reproduces the spec:
  // macro topologies force policy "none" regardless, and a group that
  // serializes to just {"policy":"greedy"} is the all-default RoutingSpec.
  const Json routing_obj = routing_json(routing);
  if (topology.kind != "macro" && routing_obj.dump() != R"({"policy":"greedy"})") {
    obj.set("routing", routing_obj);
  }
  if (objective != "maxmin") obj.set("objective", Json::string(objective));
  if (!fault.empty()) obj.set("fault", fault_json(fault));
  return obj;
}

std::string ScenarioSpec::canonical() const { return to_json().dump(); }

std::uint64_t ScenarioSpec::content_hash() const { return fnv1a64(canonical()); }

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ------------------------------------------------------------------- deltas

SpecPatch SpecPatch::from_json(const Json& json) {
  if (!json.is_object()) fail("delta patch must be a JSON object");
  check_keys(json, {"add_flows", "remove_flows", "fail_middles", "derate_links", "objective"},
             "patch");
  SpecPatch patch;
  if (const Json* add = json.find("add_flows"); add != nullptr) {
    if (!add->is_array()) fail("patch: add_flows must be an array");
    for (const Json& item : add->items()) {
      if (!item.is_object()) fail("patch: add_flows entries must be objects");
      check_keys(item, {"src_tor", "src_server", "dst_tor", "dst_server", "rate"},
                 "patch.add_flows");
      FlowPatch fp;
      fp.src_tor = static_cast<int>(get_int(require(item, "src_tor", "add_flows"), "src_tor"));
      fp.src_server =
          static_cast<int>(get_int(require(item, "src_server", "add_flows"), "src_server"));
      fp.dst_tor = static_cast<int>(get_int(require(item, "dst_tor", "add_flows"), "dst_tor"));
      fp.dst_server =
          static_cast<int>(get_int(require(item, "dst_server", "add_flows"), "dst_server"));
      if (fp.src_tor < 1 || fp.src_server < 1 || fp.dst_tor < 1 || fp.dst_server < 1) {
        fail("patch: flow coordinates must be >= 1");
      }
      if (const Json* rate = item.find("rate"); rate != nullptr) {
        fp.rate = get_rational(*rate, "rate");
        if (fp.rate->is_negative()) fail("patch: rate must be non-negative");
      }
      patch.add_flows.push_back(fp);
    }
  }
  if (const Json* remove = json.find("remove_flows"); remove != nullptr) {
    if (!remove->is_array()) fail("patch: remove_flows must be an array");
    for (const Json& item : remove->items()) {
      const std::int64_t idx = get_int(item, "remove_flows");
      if (idx < 0) fail("patch: remove_flows entries must be >= 0");
      patch.remove_flows.push_back(static_cast<std::size_t>(idx));
    }
    auto sorted = patch.remove_flows;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      fail("patch: remove_flows entries must be distinct");
    }
  }
  if (const Json* failed = json.find("fail_middles"); failed != nullptr) {
    if (!failed->is_array()) fail("patch: fail_middles must be an array");
    for (const Json& item : failed->items()) {
      const std::int64_t m = get_int(item, "fail_middles");
      if (m < 1) fail("patch: fail_middles entries must be >= 1");
      patch.fail_middles.push_back(static_cast<int>(m));
    }
  }
  if (const Json* derated = json.find("derate_links"); derated != nullptr) {
    if (!derated->is_array()) fail("patch: derate_links must be an array");
    for (const Json& item : derated->items()) {
      patch.derate_links.push_back(parse_derated_link(item, "patch"));
    }
  }
  if (const Json* objective = json.find("objective"); objective != nullptr) {
    patch.objective = get_string(*objective, "objective");
    if (*patch.objective != "maxmin" && *patch.objective != "maxmin_lp") {
      fail("patch: objective must be 'maxmin' or 'maxmin_lp'");
    }
  }
  return patch;
}

ScenarioSpec SpecPatch::apply(const ScenarioSpec& base) const {
  ScenarioSpec patched = base;

  if (!add_flows.empty() || !remove_flows.empty()) {
    if (patched.workload.instance.empty()) {
      fail("patch: flow edits require the base workload to be an inline instance");
    }
    if (!patched.routing.start.empty()) {
      fail("patch: flow edits invalidate the base routing.start; restate the scenario");
    }
    InstanceSpec inst = parse_instance(patched.workload.instance);
    // Remove first — indices address the *base* flow list — in descending
    // order so earlier erasures don't shift later indices.
    std::vector<std::size_t> removals = remove_flows;
    std::sort(removals.begin(), removals.end(),
              [](std::size_t a, std::size_t b) { return a > b; });
    for (std::size_t idx : removals) {
      if (idx >= inst.flows.size()) {
        fail("patch: remove_flows index " + std::to_string(idx) + " out of range (base has " +
             std::to_string(inst.flows.size()) + " flows)");
      }
      inst.flows.erase(inst.flows.begin() + static_cast<std::ptrdiff_t>(idx));
      if (!inst.rates.empty()) {
        inst.rates.erase(inst.rates.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    for (const FlowPatch& fp : add_flows) {
      if (inst.rates.empty() && fp.rate.has_value()) {
        inst.rates.assign(inst.flows.size(), std::nullopt);
      }
      inst.flows.push_back(FlowSpec{fp.src_tor, fp.src_server, fp.dst_tor, fp.dst_server});
      if (!inst.rates.empty()) inst.rates.push_back(fp.rate);
    }
    if (inst.flows.empty()) fail("patch: removing every flow leaves an empty instance");
    patched.workload.instance = format_instance(inst);
  }

  if (!fail_middles.empty()) {
    auto& failed = patched.fault.scenario.failed_middles;
    failed.insert(failed.end(), fail_middles.begin(), fail_middles.end());
    std::sort(failed.begin(), failed.end());
    failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  }
  for (const fault::LinkDeration& d : derate_links) {
    patched.fault.scenario.derated_links.push_back(d);
  }
  if (objective.has_value()) patched.objective = *objective;

  // Normalize through the exact round trip a cold request takes, so the
  // patched spec — and with it the canonical bytes and content address — is
  // indistinguishable from a client spelling the scenario directly. This
  // also re-runs the full strict validation (instance coordinates, fault on
  // non-Clos bases, flow-count/start mismatches, ...).
  try {
    return ScenarioSpec::from_json(patched.to_json());
  } catch (const SpecError& e) {
    fail(std::string{"patch does not apply: "} + e.what());
  }
}

DeltaRequest DeltaRequest::from_json(const Json& json) {
  if (!json.is_object()) fail("delta request must be a JSON object");
  check_keys(json, {"base", "patch"}, "delta");
  DeltaRequest delta;
  const std::string hex = get_string(require(json, "base", "delta"), "base");
  if (hex.size() != 16) {
    fail("delta: base must be a 16-digit lowercase hex content address");
  }
  for (const char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      fail("delta: base must be a 16-digit lowercase hex content address");
    }
    delta.base = (delta.base << 4) | digit;
  }
  if (const Json* patch = json.find("patch"); patch != nullptr) {
    delta.patch = SpecPatch::from_json(*patch);
  }
  return delta;
}

// ---------------------------------------------------------------------------

Json ScenarioResult::to_json() const {
  Json obj = Json::object();
  obj.set("flows", Json::number(static_cast<std::int64_t>(num_flows)));
  obj.set("macro_rates", rates_json(macro_rates));
  obj.set("macro_throughput", Json::string(macro_throughput.to_string()));
  if (routed) {
    obj.set("rates", rates_json(rates));
    obj.set("throughput", Json::string(throughput.to_string()));
    obj.set("throughput_ratio", Json::string(throughput_ratio.to_string()));
    obj.set("min_rate_ratio", Json::string(min_rate_ratio.to_string()));
    if (!middles.empty()) obj.set("middles", middles_json(middles));
  }
  if (surviving_middles.has_value()) {
    obj.set("surviving_middles", Json::number(static_cast<std::int64_t>(*surviving_middles)));
  }
  if (rerouted.has_value()) {
    obj.set("rerouted", Json::number(static_cast<std::int64_t>(*rerouted)));
  }
  if (search.has_value()) {
    Json stats = Json::object();
    stats.set("routings_evaluated",
              Json::number(static_cast<std::int64_t>(search->routings_evaluated)));
    stats.set("waterfill_invocations",
              Json::number(static_cast<std::int64_t>(search->waterfill_invocations)));
    obj.set("search", std::move(stats));
  }
  if (replication.has_value()) {
    Json stats = Json::object();
    stats.set("feasible", Json::boolean(replication->feasible));
    stats.set("nodes_explored",
              Json::number(static_cast<std::int64_t>(replication->nodes_explored)));
    if (!replication->witness.empty()) {
      stats.set("witness", middles_json(replication->witness));
    }
    obj.set("replication", std::move(stats));
  }
  return obj;
}

ScenarioResult ScenarioResult::from_json(const Json& json) {
  if (!json.is_object()) fail("scenario result must be a JSON object");
  check_keys(json,
             {"flows", "macro_rates", "macro_throughput", "rates", "throughput",
              "throughput_ratio", "min_rate_ratio", "middles", "surviving_middles",
              "rerouted", "search", "replication"},
             "result");
  ScenarioResult result;
  result.num_flows =
      static_cast<std::size_t>(get_int(require(json, "flows", "result"), "flows"));
  result.macro_rates = get_rates(require(json, "macro_rates", "result"), "macro_rates");
  result.macro_throughput =
      get_rational(require(json, "macro_throughput", "result"), "macro_throughput");
  if (const Json* rates = json.find("rates"); rates != nullptr) {
    result.routed = true;
    result.rates = get_rates(*rates, "rates");
    result.throughput = get_rational(require(json, "throughput", "result"), "throughput");
    result.throughput_ratio =
        get_rational(require(json, "throughput_ratio", "result"), "throughput_ratio");
    result.min_rate_ratio =
        get_rational(require(json, "min_rate_ratio", "result"), "min_rate_ratio");
    if (const Json* middles = json.find("middles"); middles != nullptr) {
      result.middles = get_middles(*middles, "middles");
    }
  }
  if (const Json* surviving = json.find("surviving_middles"); surviving != nullptr) {
    result.surviving_middles = static_cast<int>(get_int(*surviving, "surviving_middles"));
  }
  if (const Json* rerouted = json.find("rerouted"); rerouted != nullptr) {
    result.rerouted = static_cast<std::size_t>(get_int(*rerouted, "rerouted"));
  }
  if (const Json* stats = json.find("search"); stats != nullptr) {
    check_keys(*stats, {"routings_evaluated", "waterfill_invocations"}, "result.search");
    SearchStats s;
    s.routings_evaluated = static_cast<std::uint64_t>(
        get_int(require(*stats, "routings_evaluated", "search"), "routings_evaluated"));
    s.waterfill_invocations = static_cast<std::uint64_t>(get_int(
        require(*stats, "waterfill_invocations", "search"), "waterfill_invocations"));
    result.search = s;
  }
  if (const Json* stats = json.find("replication"); stats != nullptr) {
    check_keys(*stats, {"feasible", "nodes_explored", "witness"}, "result.replication");
    ReplicationStats s;
    const Json& feasible = require(*stats, "feasible", "replication");
    if (!feasible.is_bool()) fail("replication.feasible must be a boolean");
    s.feasible = feasible.as_bool();
    s.nodes_explored = static_cast<std::uint64_t>(
        get_int(require(*stats, "nodes_explored", "replication"), "nodes_explored"));
    if (const Json* witness = stats->find("witness"); witness != nullptr) {
      s.witness = get_middles(*witness, "witness");
    }
    result.replication = s;
  }
  return result;
}

}  // namespace closfair::svc
