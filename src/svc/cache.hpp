// Content-addressed result cache for the scenario-evaluation service.
//
// Keys are the *canonical* spec bytes (ScenarioSpec::canonical()); two
// requests that spell the same scenario differently therefore share one
// entry, and the FNV-1a content hash of the key doubles as the response's
// stable scenario address. A secondary index maps that content hash back to
// its entry so delta requests ({"base":"<hash>"}) can resolve the base spec
// without holding the canonical bytes. Eviction is LRU over a fixed entry
// capacity; entries pinned by an outstanding BasePin are exempt (delta
// resolution pins its base for the duration of the warm evaluation).
// Entries spill to JSONL — one {"hash","spec","result"} object per line,
// least-recent first so a reload replays insertions in recency order — and
// reload validates each line by re-canonicalizing the spec, so a stale or
// hand-edited spill cannot poison lookups with unreachable keys.
//
// All public methods are thread-safe (one mutex; the service's workers only
// touch the cache between batches, so contention is not a concern).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include <mutex>

#include "svc/spec.hpp"

namespace closfair::svc {

class ResultCache {
 private:
  struct Entry {
    std::string spec;  ///< canonical bytes (the key)
    ScenarioResult result;
    int pins = 0;  ///< outstanding BasePins; > 0 exempts from eviction
  };

 public:
  /// `capacity` = maximum retained entries (>= 1).
  explicit ResultCache(std::size_t capacity = 1024);

  /// Copy of the cached result for this canonical spec, refreshing its
  /// recency; nullopt on miss. Bumps svc.cache_hits / svc.cache_misses.
  [[nodiscard]] std::optional<ScenarioResult> lookup(const std::string& canonical);

  /// Insert or refresh. Evicts the least-recently-used *unpinned* entry when
  /// full (bumps svc.cache_evictions; when every entry is pinned the cache
  /// temporarily exceeds capacity instead). `canonical` must be canonical
  /// spec bytes — the cache trusts its caller and does not re-derive them.
  /// Returns true when a new entry was created, false when an existing entry
  /// was refreshed.
  bool insert(const std::string& canonical, const ScenarioResult& result);

  /// RAII pin on one cache entry. While the pin is alive the entry cannot be
  /// evicted, cleared, or have its result object reassigned, so canonical()
  /// and result() are stable references readable without the cache lock —
  /// delta resolution pins its base across the warm evaluation.
  class BasePin {
   public:
    BasePin(BasePin&& other) noexcept : cache_(other.cache_), it_(other.it_) {
      other.cache_ = nullptr;
    }
    BasePin& operator=(BasePin&& other) noexcept;
    BasePin(const BasePin&) = delete;
    BasePin& operator=(const BasePin&) = delete;
    ~BasePin();

    [[nodiscard]] const std::string& canonical() const { return it_->spec; }
    [[nodiscard]] const ScenarioResult& result() const { return it_->result; }

   private:
    friend class ResultCache;
    BasePin(ResultCache* cache, std::list<Entry>::iterator it) : cache_(cache), it_(it) {}

    ResultCache* cache_ = nullptr;
    std::list<Entry>::iterator it_;
  };

  /// Pin the entry whose canonical bytes have FNV-1a content hash `hash`,
  /// refreshing its recency; nullopt when no cached entry carries that
  /// address.
  [[nodiscard]] std::optional<BasePin> pin_base(std::uint64_t hash);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every unpinned entry (pinned entries survive — their readers hold
  /// live references).
  void clear();

  /// Write every entry as JSONL, least-recently-used first.
  void save(std::ostream& out) const;

  /// Load a save() spill, inserting line by line (so the stream's last line
  /// ends up most recent). Returns the number of *distinct* entries added —
  /// a line whose canonical spec is already present refreshes that entry
  /// without counting. The svc.cache_size gauge is refreshed once at load
  /// end. A malformed *trailing* record — the signature of an append torn by
  /// a crash — is skipped with a stderr warning and a svc.cache_spill_skipped
  /// count; a malformed line followed by more content is corruption and
  /// throws JsonParseError / SpecError with the 1-based line number.
  std::size_t load(std::istream& in);

 private:
  // front = most recently used. index_ maps the canonical bytes to the list
  // node holding them; by_hash_ maps their FNV-1a content hash the same way
  // (last writer wins on the astronomically unlikely 64-bit collision — the
  // older entry stays reachable by canonical bytes, just not by address).
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_hash_;

  bool insert_locked(const std::string& canonical, const ScenarioResult& result);
  void erase_locked(std::list<Entry>::iterator it);
  void unpin(std::list<Entry>::iterator it);
};

}  // namespace closfair::svc
