// Content-addressed result cache for the scenario-evaluation service.
//
// Keys are the *canonical* spec bytes (ScenarioSpec::canonical()); two
// requests that spell the same scenario differently therefore share one
// entry, and the FNV-1a content hash of the key doubles as the response's
// stable scenario address. Eviction is LRU over a fixed entry capacity.
// Entries spill to JSONL — one {"hash","spec","result"} object per line,
// least-recent first so a reload replays insertions in recency order — and
// reload validates each line by re-canonicalizing the spec, so a stale or
// hand-edited spill cannot poison lookups with unreachable keys.
//
// All public methods are thread-safe (one mutex; the service's workers only
// touch the cache between batches, so contention is not a concern).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include <mutex>

#include "svc/spec.hpp"

namespace closfair::svc {

class ResultCache {
 public:
  /// `capacity` = maximum retained entries (>= 1).
  explicit ResultCache(std::size_t capacity = 1024);

  /// Copy of the cached result for this canonical spec, refreshing its
  /// recency; nullopt on miss. Bumps svc.cache_hits / svc.cache_misses.
  [[nodiscard]] std::optional<ScenarioResult> lookup(const std::string& canonical);

  /// Insert or refresh. Evicts the least-recently-used entry when full
  /// (bumps svc.cache_evictions). `canonical` must be canonical spec bytes —
  /// the cache trusts its caller and does not re-derive them.
  void insert(const std::string& canonical, const ScenarioResult& result);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

  /// Write every entry as JSONL, least-recently-used first.
  void save(std::ostream& out) const;

  /// Load a save() spill, inserting line by line (so the stream's last line
  /// ends up most recent). Returns the number of entries loaded. A malformed
  /// *trailing* record — the signature of an append torn by a crash — is
  /// skipped with a stderr warning and a svc.cache_spill_skipped count; a
  /// malformed line followed by more content is corruption and throws
  /// JsonParseError / SpecError with the 1-based line number.
  std::size_t load(std::istream& in);

 private:
  struct Entry {
    std::string spec;  ///< canonical bytes (the key)
    ScenarioResult result;
  };

  // front = most recently used. index_ maps the canonical bytes to the list
  // node holding them.
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  void insert_locked(const std::string& canonical, const ScenarioResult& result);
};

}  // namespace closfair::svc
