#include "svc/cache.hpp"

#include <cstdio>
#include <iostream>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace closfair::svc {
namespace {

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return std::string{buf};
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  CF_CHECK_MSG(capacity >= 1, "ResultCache capacity must be >= 1");
}

std::optional<ScenarioResult> ResultCache::lookup(const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(canonical);
  if (it == index_.end()) {
    OBS_COUNTER_INC("svc.cache_misses");
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  OBS_COUNTER_INC("svc.cache_hits");
  return entries_.front().result;
}

bool ResultCache::insert(const std::string& canonical, const ScenarioResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool fresh = insert_locked(canonical, result);
  OBS_GAUGE_SET("svc.cache_size", entries_.size());
  return fresh;
}

bool ResultCache::insert_locked(const std::string& canonical,
                                const ScenarioResult& result) {
  const auto it = index_.find(canonical);
  if (it != index_.end()) {
    // Same key ⇒ byte-identical result (the determinism contract), so the
    // refresh is semantically a no-op; skip the assignment while pinned —
    // pin holders read the result object without the lock.
    if (it->second->pins == 0) it->second->result = result;
    entries_.splice(entries_.begin(), entries_, it->second);
    return false;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used unpinned entry; when every entry is
    // pinned, run over capacity rather than invalidate a live reader.
    for (auto victim = std::prev(entries_.end());; --victim) {
      if (victim->pins == 0) {
        erase_locked(victim);
        OBS_COUNTER_INC("svc.cache_evictions");
        break;
      }
      if (victim == entries_.begin()) break;
    }
  }
  entries_.push_front(Entry{canonical, result, 0});
  index_.emplace(canonical, entries_.begin());
  by_hash_[fnv1a64(canonical)] = entries_.begin();
  return true;
}

void ResultCache::erase_locked(std::list<Entry>::iterator it) {
  const auto hashed = by_hash_.find(fnv1a64(it->spec));
  if (hashed != by_hash_.end() && hashed->second == it) by_hash_.erase(hashed);
  index_.erase(it->spec);
  entries_.erase(it);
}

std::optional<ResultCache::BasePin> ResultCache::pin_base(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return std::nullopt;
  entries_.splice(entries_.begin(), entries_, it->second);
  ++it->second->pins;
  return BasePin{this, it->second};
}

void ResultCache::unpin(std::list<Entry>::iterator it) {
  std::lock_guard<std::mutex> lock(mu_);
  CF_CHECK_MSG(it->pins > 0, "BasePin released an entry that was not pinned");
  --it->pins;
}

ResultCache::BasePin& ResultCache::BasePin::operator=(BasePin&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) cache_->unpin(it_);
    cache_ = other.cache_;
    it_ = other.it_;
    other.cache_ = nullptr;
  }
  return *this;
}

ResultCache::BasePin::~BasePin() {
  if (cache_ != nullptr) cache_->unpin(it_);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->pins == 0) {
      erase_locked(it++);
    } else {
      ++it;
    }
  }
}

void ResultCache::save(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Reverse order: the reload inserts sequentially, so writing LRU-first
  // makes the last line — the most recent entry — land at the front again.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Json line = Json::object();
    line.set("hash", Json::string(hash_hex(fnv1a64(it->spec))));
    line.set("spec", Json::string(it->spec));
    line.set("result", it->result.to_json());
    out << line.dump() << '\n';
  }
}

std::size_t ResultCache::load(std::istream& in) {
  std::string line;
  std::size_t loaded = 0;
  std::size_t line_no = 0;
  // A bad line is *deferred* rather than thrown: if it turns out to be the
  // file's final record it was a torn append (process killed mid-save) and
  // is skipped with a warning; a bad line followed by more content is real
  // corruption and aborts the load.
  std::string deferred;
  bool deferred_is_json = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!deferred.empty()) {
      if (deferred_is_json) throw JsonParseError(deferred);
      throw SpecError(deferred);
    }
    const auto annotate = [&](const char* what) -> std::string {
      return "cache line " + std::to_string(line_no) + ": " + what;
    };
    try {
      const Json entry = Json::parse(line);
      if (!entry.is_object()) throw SpecError("entry is not an object");
      const Json* spec_text = entry.find("spec");
      const Json* result_json = entry.find("result");
      if (spec_text == nullptr || !spec_text->is_string() || result_json == nullptr) {
        throw SpecError("entry needs string 'spec' and 'result'");
      }
      // Re-canonicalize: a spill edited (or produced by an older writer)
      // with non-canonical spec bytes would otherwise sit in the cache
      // forever without ever matching a lookup.
      const ScenarioSpec spec =
          ScenarioSpec::from_json(Json::parse(spec_text->as_string()));
      const ScenarioResult result = ScenarioResult::from_json(*result_json);
      std::lock_guard<std::mutex> lock(mu_);
      // Only a *new* entry counts: a duplicate canonical line refreshes the
      // existing node (insert replaces, it doesn't add).
      if (insert_locked(spec.canonical(), result)) ++loaded;
    } catch (const JsonParseError& e) {
      deferred = annotate(e.what());
      deferred_is_json = true;
    } catch (const std::exception& e) {
      deferred = annotate(e.what());
      deferred_is_json = false;
    }
  }
  if (!deferred.empty()) {
    OBS_COUNTER_INC("svc.cache_spill_skipped");
    std::cerr << "warning: skipped torn trailing cache record (" << deferred << ")\n";
  }
  // One refresh at the end keeps the gauge honest regardless of how the
  // stream terminated (duplicate lines, a skipped torn record, or an empty
  // spill set the gauge to the true size rather than a stale per-line echo).
  std::lock_guard<std::mutex> lock(mu_);
  OBS_GAUGE_SET("svc.cache_size", entries_.size());
  return loaded;
}

}  // namespace closfair::svc
