// Batch scenario-evaluation service: sharded workers over the routing /
// fairness / fault stack, fronted by the content-addressed result cache.
//
// Determinism contract (docs/SERVICE.md): a batch's responses are
// byte-identical for every worker count. The queue is built *before* any
// worker starts — cache lookups and duplicate detection happen in input
// order on the submitting thread — so workers only ever run disjoint,
// pre-assigned evaluations into dedicated result slots, and cache
// insertions replay in input order after the pool joins. Worker scheduling
// can therefore change wall-clock time but never a byte of output, a hit
// flag, or the cache's eviction order.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "svc/cache.hpp"
#include "svc/spec.hpp"

namespace closfair::svc {

/// Evaluate one scenario directly (no cache, no workers): build the
/// topology, generate or parse the workload, degrade the fabric, route, and
/// allocate. Throws SpecError (and lets library ContractViolation /
/// ParseError escape) on specs that are well-formed but unevaluable — e.g. a
/// "static" start of the wrong length. Wrapped in the svc.evaluate span.
[[nodiscard]] ScenarioResult evaluate_scenario(const ScenarioSpec& spec);

/// Evaluate `spec` warm-started from a base scenario and its result.
/// Byte-identity with evaluate_scenario(spec) is structural, not asserted:
/// when only the objective changed, the base result is returned wholesale
/// (routing search is objective-independent and the exact LP and water-fill
/// compute the same unique allocation — svc.delta_result_reuses); otherwise
/// the base's macro reference is replayed when topology+workload are
/// untouched, and the base rates seed the final allocation, accepted only
/// when the Lemma 2.2 bottleneck certifier confirms them on the *patched*
/// instance (waterfill.seed_hits / lp.seed_hits) and recomputed cold
/// otherwise. Bumps svc.delta_warm_starts when it actually evaluates.
[[nodiscard]] ScenarioResult evaluate_scenario_warm(const ScenarioSpec& spec,
                                                    const ScenarioSpec& base_spec,
                                                    const ScenarioResult& base_result);

/// Outcome of resolving a DeltaRequest: the patched spec, plus — when the
/// base was found in the cache — a pinned handle on the base entry and the
/// parsed base spec for warm-starting. A non-empty `error` means resolution
/// failed (unknown base address, or a patch that does not apply).
struct DeltaResolution {
  ScenarioSpec spec;
  std::optional<ResultCache::BasePin> base;  ///< pin held across the warm evaluation
  std::optional<ScenarioSpec> base_spec;     ///< set iff `base` is
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Resolve a delta request against `cache` (svc.delta_requests): pin the
/// base entry by content hash and apply the patch to its canonical spec.
/// When the cache has no such entry, `inflight` (if provided) may map the
/// hash to the canonical bytes of a base currently being evaluated — the
/// patch then still resolves, only without a warm result (the wire pipeline
/// uses this so a delta racing its own base on one connection never
/// spuriously misses). Bumps svc.delta_base_misses / svc.delta_patch_errors
/// on the two failure modes.
[[nodiscard]] DeltaResolution resolve_delta(
    ResultCache& cache, const DeltaRequest& delta,
    const std::function<std::optional<std::string>(std::uint64_t)>& inflight = nullptr);

/// One batch response: the result (or an error), plus cache provenance.
struct BatchEntry {
  ScenarioResult result;
  std::uint64_t hash = 0;  ///< content hash of the canonical spec
  bool cached = false;     ///< served from cache, or duplicate of an earlier line
  std::string error;       ///< non-empty: evaluation failed, `result` is empty

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct ServiceOptions {
  unsigned workers = 1;          ///< evaluation threads per batch (>= 1)
  std::size_t cache_capacity = 1024;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Evaluate one spec through the cache.
  [[nodiscard]] BatchEntry evaluate(const ScenarioSpec& spec);

  /// Resolve and evaluate one delta request through the cache. On
  /// resolution failure the entry carries the error with hash == 0 (no spec
  /// ever existed to address); otherwise the entry is exactly what
  /// evaluate() would return for the patched spec — byte-identical to a
  /// cold request — with svc.delta_hits counting patched specs served
  /// straight from the cache.
  [[nodiscard]] BatchEntry evaluate_delta(const DeltaRequest& delta);

  /// Evaluate a batch with the worker pool; responses align with `specs` by
  /// index. Within the batch, duplicate canonical specs evaluate once (the
  /// first occurrence; later ones report cached = true), and failures are
  /// per-entry — one bad spec never poisons the batch.
  [[nodiscard]] std::vector<BatchEntry> evaluate_batch(
      const std::vector<ScenarioSpec>& specs);

  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  ResultCache cache_;
};

}  // namespace closfair::svc
