// Batch scenario-evaluation service: sharded workers over the routing /
// fairness / fault stack, fronted by the content-addressed result cache.
//
// Determinism contract (docs/SERVICE.md): a batch's responses are
// byte-identical for every worker count. The queue is built *before* any
// worker starts — cache lookups and duplicate detection happen in input
// order on the submitting thread — so workers only ever run disjoint,
// pre-assigned evaluations into dedicated result slots, and cache
// insertions replay in input order after the pool joins. Worker scheduling
// can therefore change wall-clock time but never a byte of output, a hit
// flag, or the cache's eviction order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "svc/cache.hpp"
#include "svc/spec.hpp"

namespace closfair::svc {

/// Evaluate one scenario directly (no cache, no workers): build the
/// topology, generate or parse the workload, degrade the fabric, route, and
/// allocate. Throws SpecError (and lets library ContractViolation /
/// ParseError escape) on specs that are well-formed but unevaluable — e.g. a
/// "static" start of the wrong length. Wrapped in the svc.evaluate span.
[[nodiscard]] ScenarioResult evaluate_scenario(const ScenarioSpec& spec);

/// One batch response: the result (or an error), plus cache provenance.
struct BatchEntry {
  ScenarioResult result;
  std::uint64_t hash = 0;  ///< content hash of the canonical spec
  bool cached = false;     ///< served from cache, or duplicate of an earlier line
  std::string error;       ///< non-empty: evaluation failed, `result` is empty

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct ServiceOptions {
  unsigned workers = 1;          ///< evaluation threads per batch (>= 1)
  std::size_t cache_capacity = 1024;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Evaluate one spec through the cache.
  [[nodiscard]] BatchEntry evaluate(const ScenarioSpec& spec);

  /// Evaluate a batch with the worker pool; responses align with `specs` by
  /// index. Within the batch, duplicate canonical specs evaluate once (the
  /// first occurrence; later ones report cached = true), and failures are
  /// per-entry — one bad spec never poisons the batch.
  [[nodiscard]] std::vector<BatchEntry> evaluate_batch(
      const std::vector<ScenarioSpec>& specs);

  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  ResultCache cache_;
};

}  // namespace closfair::svc
