#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <utility>

#include "fairness/waterfill.hpp"
#include "fault/fault.hpp"
#include "io/text_format.hpp"
#include "lp/maxmin_lp.hpp"
#include "lp/splittable.hpp"
#include "net/fattree.hpp"
#include "net/macroswitch.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/exhaustive.hpp"
#include "routing/generic.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "routing/lp_rounding.hpp"
#include "routing/replication.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair::svc {
namespace {

[[noreturn]] void fail(const std::string& message) { throw SpecError(message); }

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return std::string{buf};
}

/// Warm-start inputs threaded into evaluate_clos by evaluate_scenario_warm.
/// Every reuse is certified (macro: projection equality; rates: Lemma 2.2 on
/// the patched instance), so hints can only change wall-clock, never bytes.
struct WarmHints {
  const ScenarioResult* base = nullptr;  ///< seed for the final allocation
  bool reuse_macro = false;              ///< replay base->macro_rates verbatim
};

/// The topology+workload projection of a spec. Equal projections generate
/// the same flow collection and therefore the same macro-switch reference —
/// the exact LP and water-fill agree on it, so the projection ignores
/// routing, objective, and fault.
std::string macro_projection(const ScenarioSpec& spec) {
  ScenarioSpec stripped;
  stripped.topology = spec.topology;
  stripped.workload = spec.workload;
  return stripped.canonical();
}

/// Generate the coordinate-level collection (and declared target rates, for
/// inline instances). Generator draws consume `rng`; a subsequent seedless
/// seeded policy continues the same stream — the sweep-bench convention.
FlowCollection make_workload(const WorkloadSpec& wl, const Fabric& fabric, Rng& rng,
                             std::vector<std::optional<Rational>>& targets) {
  targets.clear();
  if (!wl.instance.empty()) {
    const InstanceSpec inst = parse_instance(wl.instance);
    targets = inst.rates;
    return inst.flows;
  }
  if (wl.generator == "uniform") return uniform_random(fabric, wl.count, rng);
  if (wl.generator == "permutation") return random_permutation(fabric, rng);
  if (wl.generator == "zipf") return zipf_destinations(fabric, wl.count, wl.skew, rng);
  if (wl.generator == "hotspot") {
    return hotspot(fabric, wl.count, wl.hot_tor, wl.hot_fraction, rng);
  }
  if (wl.generator == "incast") {
    return incast(fabric, wl.count, wl.dst_tor, wl.dst_server, rng);
  }
  if (wl.generator == "stride") return stride(fabric, wl.stride);
  if (wl.generator == "all_to_all") return tor_all_to_all(fabric);
  fail("unknown workload generator '" + wl.generator + "'");
}

std::vector<double> as_demands(const Allocation<Rational>& macro) {
  std::vector<double> demands;
  demands.reserve(macro.size());
  for (FlowIndex f = 0; f < macro.size(); ++f) {
    demands.push_back(macro.rate(f).to_double());
  }
  return demands;
}

/// Shared tail: ratios of the routed allocation against the macro reference.
void fill_routed(ScenarioResult& result, const Allocation<Rational>& alloc) {
  result.routed = true;
  result.rates = alloc.rates();
  result.throughput = alloc.throughput();
  result.throughput_ratio = result.macro_throughput.is_zero()
                                ? Rational{1}
                                : result.throughput / result.macro_throughput;
  Rational min_ratio{1};
  bool any = false;
  for (FlowIndex f = 0; f < result.rates.size(); ++f) {
    if (result.macro_rates[f].is_zero()) continue;
    const Rational ratio = result.rates[f] / result.macro_rates[f];
    min_ratio = !any || ratio < min_ratio ? ratio : min_ratio;
    any = true;
  }
  result.min_rate_ratio = min_ratio;
}

ScenarioResult evaluate_fattree(const ScenarioSpec& spec) {
  const FatTree ft(spec.topology.fattree_k);
  const Fabric fabric{ft.num_edge_switches(), ft.servers_per_edge()};
  Rng rng(spec.workload.seed);
  std::vector<std::optional<Rational>> targets;
  const FlowCollection specs = make_workload(spec.workload, fabric, rng, targets);

  const MacroSwitch ms(MacroSwitch::Params{fabric.num_tors, fabric.servers_per_tor,
                                           Rational{1}});
  const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  ScenarioResult result;
  result.num_flows = specs.size();
  result.macro_rates = macro.rates();
  result.macro_throughput = macro.throughput();
  if (spec.routing.policy == "none") return result;

  const FlowSet flows = instantiate(ft, specs);
  PathCandidates candidates;
  candidates.reserve(flows.size());
  for (const Flow& flow : flows) candidates.push_back(ft.paths(flow.src, flow.dst));

  Rng policy_rng = spec.routing.seed.has_value() ? Rng(*spec.routing.seed)
                                                 : std::move(rng);
  Routing routing;
  const std::vector<double> demands = as_demands(macro);
  if (spec.routing.policy == "ecmp") {
    routing = ecmp_paths(candidates, policy_rng);
  } else if (spec.routing.policy == "greedy") {
    routing = greedy_paths(ft.topology(), candidates, demands);
  } else {
    routing = congestion_local_search_paths(ft.topology(), candidates, demands,
                                            greedy_paths(ft.topology(), candidates, demands),
                                            spec.routing.max_moves);
  }
  const auto alloc = spec.objective == "maxmin_lp"
                         ? max_min_fair_lp<Rational>(ft.topology(), flows, routing)
                         : max_min_fair<Rational>(ft.topology(), flows, routing);
  fill_routed(result, alloc);
  return result;
}

ScenarioResult evaluate_clos(const ScenarioSpec& spec, const WarmHints& hints = {}) {
  const Fabric fabric{spec.topology.params.num_tors, spec.topology.params.servers_per_tor};
  Rng rng(spec.workload.seed);
  std::vector<std::optional<Rational>> targets;
  // Always generated, even under a warm start: seedless seeded policies
  // continue this Rng stream, and the flow collection itself is needed.
  const FlowCollection specs = make_workload(spec.workload, fabric, rng, targets);

  // The macro reference is always the *pristine* macro-switch: degraded-vs-
  // ideal ratios are the whole point of the fault studies.
  const MacroSwitch ms(MacroSwitch::Params{spec.topology.params.num_tors,
                                           spec.topology.params.servers_per_tor,
                                           spec.topology.params.link_capacity});
  const auto cold_macro = [&]() {
    const FlowSet ms_flows = instantiate(ms, specs);
    return spec.objective == "maxmin_lp" && spec.routing.policy == "none"
               ? max_min_fair_lp<Rational>(ms.topology(), ms_flows,
                                           macro_routing(ms, ms_flows))
               : max_min_fair<Rational>(ms, ms_flows);
  };
  // Replaying the base macro is exact: the projection matched, so the base
  // was computed over this very flow collection (LP and water-fill agree on
  // the unique allocation, so the base's objective does not matter).
  const auto macro = hints.reuse_macro ? Allocation<Rational>(hints.base->macro_rates)
                                       : cold_macro();

  ScenarioResult result;
  result.num_flows = specs.size();
  result.macro_rates = macro.rates();
  result.macro_throughput = macro.throughput();
  if (spec.topology.kind == "macro") return result;

  ClosNetwork net(spec.topology.params);
  if (!spec.fault.empty()) {
    OBS_SPAN("svc.degrade");
    // Order per svc/spec.hpp: explicit scenario, then the two samplers off
    // one stream (middles first), then the targeted worst-case outage
    // against the already-degraded fabric.
    if (!spec.fault.scenario.empty()) fault::apply(net, spec.fault.scenario);
    if (spec.fault.sample_middles > 0 || spec.fault.link_failure_p > 0.0) {
      Rng fault_rng(spec.fault.seed);
      if (spec.fault.sample_middles > 0) {
        fault::apply(net, fault::sample_middle_outage(net, spec.fault.sample_middles,
                                                      fault_rng));
      }
      if (spec.fault.link_failure_p > 0.0) {
        fault::apply(net, fault::sample_link_failures(net, spec.fault.link_failure_p,
                                                      fault_rng));
      }
    }
    if (spec.fault.worst_case_outage > 0) {
      fault::apply(net, fault::worst_case_outage(net, spec.fault.worst_case_outage));
    }
  }
  result.surviving_middles = static_cast<int>(fault::surviving_middles(net).size());
  if (spec.routing.policy == "none") return result;

  const FlowSet flows = instantiate(net, specs);
  const std::string& policy = spec.routing.policy;

  if (policy == "replicate") {
    std::vector<Rational> rates;
    rates.reserve(flows.size());
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      const bool declared = f < targets.size() && targets[f].has_value();
      rates.push_back(declared ? *targets[f] : macro.rate(f));
    }
    const ReplicationResult rep = find_feasible_routing(net, flows, rates);
    ReplicationStats stats;
    stats.feasible = rep.feasible;
    stats.nodes_explored = rep.nodes_explored;
    if (rep.routing.has_value()) stats.witness = *rep.routing;
    result.replication = stats;
    return result;
  }

  MiddleAssignment start = spec.routing.start;
  if (!start.empty()) {
    if (start.size() != flows.size()) {
      fail("routing.start has " + std::to_string(start.size()) + " entries for " +
           std::to_string(flows.size()) + " flows");
    }
    for (const int m : start) {
      if (m > net.num_middles()) fail("routing.start names middle beyond the fabric");
    }
    if (spec.routing.reroute_dead) {
      result.rerouted = fault::reroute_dead_paths(net, flows, start);
    }
  }

  Rng policy_rng = spec.routing.seed.has_value() ? Rng(*spec.routing.seed)
                                                 : std::move(rng);
  MiddleAssignment middles;
  const auto greedy_start = [&]() {
    return greedy_routing(net, flows, as_demands(macro));
  };
  if (policy == "static") {
    middles = std::move(start);
  } else if (policy == "ecmp") {
    middles = ecmp_routing(net, flows, policy_rng);
  } else if (policy == "greedy") {
    middles = greedy_start();
  } else if (policy == "local_search") {
    LocalSearchOptions options;
    options.max_moves = spec.routing.max_moves;
    middles = congestion_local_search(net, flows, as_demands(macro),
                                      start.empty() ? greedy_start() : std::move(start),
                                      options);
  } else if (policy == "lex_climb" || policy == "tput_climb") {
    LocalSearchOptions options;
    options.max_moves = spec.routing.max_moves;
    MiddleAssignment from = start.empty() ? greedy_start() : std::move(start);
    middles = policy == "lex_climb"
                  ? lex_max_min_local_search(net, flows, std::move(from), options).middles
                  : throughput_max_min_local_search(net, flows, std::move(from), options)
                        .middles;
  } else if (policy == "doom") {
    middles = doom_switch(net, flows).middles;
  } else if (policy == "lp_round") {
    const SplittableMaxMin splittable = splittable_max_min(net, ms, specs);
    middles = round_splittable_best_of(net, flows, splittable, policy_rng,
                                       spec.routing.attempts)
                  .middles;
  } else if (policy == "exhaustive_lex" || policy == "exhaustive_tput") {
    ExhaustiveOptions options;
    if (spec.routing.max_routings != 0) options.max_routings = spec.routing.max_routings;
    options.fix_first_flow = spec.routing.fix_first_flow;
    options.num_threads = spec.routing.threads;
    options.prune_throughput_bound = spec.routing.prune_throughput_bound;
    const ExactRoutingResult exact =
        policy == "exhaustive_lex" ? lex_max_min_exhaustive(net, flows, options)
                                   : throughput_max_min_exhaustive(net, flows, options);
    result.search = SearchStats{exact.routings_evaluated, exact.waterfill_invocations};
    middles = exact.middles;
  } else {
    fail("policy '" + policy + "' is not evaluable on a Clos topology");
  }

  // Seed the final allocation with the base result's rates when available:
  // the bottleneck certifier accepts them only if they are max-min fair on
  // the *patched* routing, and the max-min allocation is unique, so an
  // accepted seed is the cold answer verbatim.
  const bool seedable = hints.base != nullptr && hints.base->routed;
  const Routing routing_paths = expand_routing(net, flows, middles);
  const auto alloc =
      spec.objective == "maxmin_lp"
          ? (seedable ? max_min_fair_lp_seeded(net.topology(), flows, routing_paths,
                                               hints.base->rates)
                      : max_min_fair_lp<Rational>(net.topology(), flows, routing_paths))
          : (seedable ? max_min_fair_seeded(net.topology(), flows, routing_paths,
                                            hints.base->rates)
                      : max_min_fair<Rational>(net.topology(), flows, routing_paths));
  fill_routed(result, alloc);
  result.middles = std::move(middles);
  return result;
}

}  // namespace

ScenarioResult evaluate_scenario(const ScenarioSpec& spec) {
  OBS_SPAN("svc.evaluate");
  OBS_COUNTER_INC("svc.evaluations");
  if (spec.topology.kind == "fattree") return evaluate_fattree(spec);
  return evaluate_clos(spec);
}

ScenarioResult evaluate_scenario_warm(const ScenarioSpec& spec,
                                      const ScenarioSpec& base_spec,
                                      const ScenarioResult& base_result) {
  // Objective-only switch: routing search never reads the objective and the
  // exact LP and water-fill compute the same unique allocation, so the base
  // result *is* the cold result of the patched spec.
  {
    ScenarioSpec probe = spec;
    probe.objective = base_spec.objective;
    if (probe.canonical() == base_spec.canonical()) {
      OBS_COUNTER_INC("svc.delta_result_reuses");
      return base_result;
    }
  }
  OBS_SPAN("svc.evaluate");
  OBS_COUNTER_INC("svc.evaluations");
  OBS_COUNTER_INC("svc.delta_warm_starts");
  if (spec.topology.kind == "fattree") return evaluate_fattree(spec);
  WarmHints hints;
  hints.base = &base_result;
  hints.reuse_macro = macro_projection(spec) == macro_projection(base_spec);
  return evaluate_clos(spec, hints);
}

DeltaResolution resolve_delta(
    ResultCache& cache, const DeltaRequest& delta,
    const std::function<std::optional<std::string>(std::uint64_t)>& inflight) {
  OBS_COUNTER_INC("svc.delta_requests");
  DeltaResolution res;
  std::optional<std::string> base_canonical;
  res.base = cache.pin_base(delta.base);
  if (res.base.has_value()) {
    base_canonical = res.base->canonical();
  } else if (inflight) {
    base_canonical = inflight(delta.base);
  }
  if (!base_canonical.has_value()) {
    OBS_COUNTER_INC("svc.delta_base_misses");
    res.error = "unknown base " + hash_hex(delta.base) + ": not in the result cache";
    return res;
  }
  try {
    ScenarioSpec base_spec = ScenarioSpec::from_json(Json::parse(*base_canonical));
    res.spec = delta.patch.apply(base_spec);
    if (res.base.has_value()) res.base_spec = std::move(base_spec);
  } catch (const std::exception& e) {
    OBS_COUNTER_INC("svc.delta_patch_errors");
    res.base.reset();
    res.base_spec.reset();
    res.error = e.what();
  }
  return res;
}

// ---------------------------------------------------------------------------

Service::Service(ServiceOptions options)
    : options_(options), cache_(options.cache_capacity) {
  if (options_.workers < 1) options_.workers = 1;
  OBS_GAUGE_SET("svc.workers", options_.workers);
}

BatchEntry Service::evaluate(const ScenarioSpec& spec) {
  OBS_COUNTER_INC("svc.requests");
  BatchEntry entry;
  const std::string canonical = spec.canonical();
  entry.hash = fnv1a64(canonical);
  if (auto hit = cache_.lookup(canonical); hit.has_value()) {
    entry.result = std::move(*hit);
    entry.cached = true;
    return entry;
  }
  try {
    entry.result = evaluate_scenario(spec);
  } catch (const std::exception& e) {
    OBS_COUNTER_INC("svc.errors");
    entry.error = e.what();
    return entry;
  }
  cache_.insert(canonical, entry.result);
  return entry;
}

BatchEntry Service::evaluate_delta(const DeltaRequest& delta) {
  BatchEntry entry;
  DeltaResolution res = resolve_delta(cache_, delta);
  if (!res.ok()) {
    // hash stays 0: resolution failed before a patched spec ever existed.
    entry.error = std::move(res.error);
    return entry;
  }
  OBS_COUNTER_INC("svc.requests");
  const std::string canonical = res.spec.canonical();
  entry.hash = fnv1a64(canonical);
  if (auto hit = cache_.lookup(canonical); hit.has_value()) {
    OBS_COUNTER_INC("svc.delta_hits");
    entry.result = std::move(*hit);
    entry.cached = true;
    return entry;
  }
  try {
    entry.result = res.base.has_value()
                       ? evaluate_scenario_warm(res.spec, *res.base_spec, res.base->result())
                       : evaluate_scenario(res.spec);
  } catch (const std::exception& e) {
    OBS_COUNTER_INC("svc.errors");
    entry.error = e.what();
    return entry;
  }
  cache_.insert(canonical, entry.result);
  return entry;
}

std::vector<BatchEntry> Service::evaluate_batch(const std::vector<ScenarioSpec>& specs) {
  OBS_SPAN("svc.batch");
  OBS_COUNTER_ADD("svc.requests", specs.size());
  std::vector<BatchEntry> entries(specs.size());

  // Deterministic pre-pass on the submitting thread: canonicalize, resolve
  // cache hits, and collapse in-batch duplicates onto their first
  // occurrence. Workers then receive a fixed queue of distinct evaluations
  // with pre-assigned result slots — nothing about the output can depend on
  // worker scheduling.
  std::vector<std::string> canonical(specs.size());
  std::vector<std::size_t> queue;                        // first-occurrence indices
  std::unordered_map<std::string, std::size_t> first;    // canonical -> first index
  std::vector<std::size_t> duplicate_of(specs.size(), SIZE_MAX);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    canonical[i] = specs[i].canonical();
    entries[i].hash = fnv1a64(canonical[i]);
    if (const auto it = first.find(canonical[i]); it != first.end()) {
      duplicate_of[i] = it->second;
      entries[i].cached = true;
      OBS_COUNTER_INC("svc.dedup_hits");
      continue;
    }
    if (auto hit = cache_.lookup(canonical[i]); hit.has_value()) {
      entries[i].result = std::move(*hit);
      entries[i].cached = true;
      continue;
    }
    first.emplace(canonical[i], i);
    queue.push_back(i);
  }

  OBS_GAUGE_SET("svc.queue_depth", queue.size());
  const unsigned workers =
      std::min<std::size_t>(options_.workers, std::max<std::size_t>(queue.size(), 1));
  std::atomic<std::size_t> next{0};
  std::atomic<std::int64_t> depth{static_cast<std::int64_t>(queue.size())};
  auto work = [&]() {
    OBS_SPAN("svc.worker");
    while (true) {
      const std::size_t q = next.fetch_add(1, std::memory_order_relaxed);
      if (q >= queue.size()) return;
      const std::size_t slot = queue[q];
      try {
        entries[slot].result = evaluate_scenario(specs[slot]);
      } catch (const std::exception& e) {
        OBS_COUNTER_INC("svc.errors");
        entries[slot].error = e.what();
      }
      OBS_GAUGE_SET("svc.queue_depth",
                    depth.fetch_sub(1, std::memory_order_relaxed) - 1);
    }
  };
  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }

  // Replay into the cache in input order so LRU recency (and with it any
  // eviction sequence) is identical no matter how many workers ran, then
  // materialize duplicates from their first occurrence.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (duplicate_of[i] != SIZE_MAX) {
      const BatchEntry& src = entries[duplicate_of[i]];
      entries[i].result = src.result;
      entries[i].error = src.error;
      continue;
    }
    if (first.contains(canonical[i]) && entries[i].ok()) {
      cache_.insert(canonical[i], entries[i].result);
    }
  }
  return entries;
}

}  // namespace closfair::svc
