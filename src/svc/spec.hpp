// closfair::svc — declarative scenario specifications.
//
// A ScenarioSpec names one evaluation cell of the §6-style studies: a
// topology (Clos / fat-tree / macro-switch), a workload (named stochastic
// generator + seed, or an inline io/text_format instance), a routing policy,
// a fairness objective, and an optional failure scenario. Specs parse from
// JSON (util/json) and serialize back to a *canonical* form: fixed key
// order, defaults omitted, inline instances normalized through
// parse_instance/format_instance. Two spellings of the same scenario
// therefore canonicalize to the same bytes, and the canonical bytes are the
// content address (FNV-1a 64) the result cache (svc/cache.hpp) keys on.
//
// docs/SERVICE.md documents the full request schema with examples.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/json.hpp"
#include "util/rational.hpp"

namespace closfair::svc {

/// Thrown on a structurally valid JSON document that is not a valid
/// ScenarioSpec (unknown key, bad discriminator, out-of-range value).
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// Where the flows run. For "clos" the generalized ClosNetwork::Params apply
/// (the paper's C_n when tors == 2n, servers == n, capacity == 1, emitted
/// canonically as {"kind":"clos","n":N}); "macro" evaluates the macro-switch
/// reference only; "fattree" drives FatTree(k) through the topology-generic
/// routing layer.
struct TopologySpec {
  std::string kind = "clos";  ///< "clos" | "macro" | "fattree"
  ClosNetwork::Params params;
  int fattree_k = 4;
};

/// Either a named stochastic generator (workload/stochastic.hpp; the seed
/// feeds the deterministic Rng stream) or an inline text-format instance
/// (io/text_format.hpp; its `clos` line then *defines* the topology and the
/// spec must not carry a "topology" group).
struct WorkloadSpec {
  std::string generator;  ///< empty when `instance` is used
  std::uint64_t seed = 1;
  std::size_t count = 0;   ///< uniform/zipf/hotspot/incast flow count
  double skew = 1.0;       ///< zipf
  int hot_tor = 1;         ///< hotspot
  double hot_fraction = 0.5;
  int dst_tor = 1;         ///< incast sink
  int dst_server = 1;
  int stride = 1;          ///< stride offset
  std::string instance;    ///< canonicalized text-format instance, or empty
};

/// How flows are routed. Policies follow the library's algorithm layer:
/// "none" (macro-only), "static" (the given `start` assignment verbatim),
/// "ecmp", "greedy", "local_search" (congestion descent from greedy),
/// "lex_climb" / "tput_climb" (hill climbing from `start` or greedy),
/// "doom", "lp_round", "exhaustive_lex" / "exhaustive_tput" (the
/// symmetry-reduced exact engine), and "replicate" (feasibility of the
/// instance's target rates, §4.1).
///
/// When `seed` is absent, seeded policies (ecmp, lp_round) continue the
/// workload generator's Rng stream — the convention of the sweep benches,
/// which draw the workload and the routing from one stream.
struct RoutingSpec {
  std::string policy = "greedy";
  std::optional<std::uint64_t> seed;
  std::size_t max_moves = 10'000;        ///< local_search / lex_climb / tput_climb
  unsigned threads = 1;                  ///< exhaustive engine workers
  bool prune_throughput_bound = true;    ///< exhaustive_tput early exit
  bool fix_first_flow = true;            ///< exhaustive count convention
  std::uint64_t max_routings = 0;        ///< 0 = engine default
  std::size_t attempts = 8;              ///< lp_round draws
  MiddleAssignment start;                ///< explicit start/static assignment
  bool reroute_dead = false;             ///< fault::reroute_dead_paths on the start
};

/// Declarative failure scenario: explicit fault::FailureScenario components
/// plus the deterministic samplers. Application order (all multiplicative,
/// never reviving): explicit components, then `sample_middles` and
/// `link_failure_p` drawn from one Rng(seed) stream (middles first), then
/// `worst_case_outage` targeting the already-degraded fabric's most valuable
/// survivors. Clos topologies only.
struct FaultSpec {
  fault::FailureScenario scenario;
  int sample_middles = 0;
  double link_failure_p = 0.0;
  int worst_case_outage = 0;
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return scenario.empty() && sample_middles == 0 && link_failure_p == 0.0 &&
           worst_case_outage == 0;
  }
};

/// One declarative scenario request.
struct ScenarioSpec {
  TopologySpec topology;
  WorkloadSpec workload;
  RoutingSpec routing;
  std::string objective = "maxmin";  ///< "maxmin" (water-fill) | "maxmin_lp" (LP oracle)
  FaultSpec fault;

  /// Parse from a JSON object. Strict: unknown keys, conflicting groups
  /// (e.g. "topology" next to an inline instance), and invalid values throw
  /// SpecError; malformed embedded instances throw with the ParseError text.
  static ScenarioSpec from_json(const Json& json);

  /// Canonical JSON: fixed key order, defaults omitted, instance text
  /// normalized. parse(to_json()) reproduces the spec exactly, and
  /// to_json() is a fixed point of that round trip.
  [[nodiscard]] Json to_json() const;

  /// to_json().dump() — the bytes the content address is computed over.
  [[nodiscard]] std::string canonical() const;

  /// FNV-1a 64-bit hash of canonical().
  [[nodiscard]] std::uint64_t content_hash() const;
};

/// FNV-1a 64 over arbitrary bytes (the service's content-address function).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// One flow to add via a delta patch (1-based coordinates, like the text
/// format's `flow a b -> c d [@R]` line).
struct FlowPatch {
  int src_tor = 1;
  int src_server = 1;
  int dst_tor = 1;
  int dst_server = 1;
  std::optional<Rational> rate;  ///< declared target rate (replication runs)
};

/// A declarative edit of a base ScenarioSpec — the "patch" half of a delta
/// request (docs/SERVICE.md "Delta requests"). Application order: flows
/// (remove, then add), faults (fail_middles merged sorted-unique,
/// derate_links appended), then the objective switch. Flow edits require the
/// base workload to be an inline instance and are rejected when the base
/// carries an explicit routing.start (the start indexes the old flow list).
struct SpecPatch {
  std::vector<FlowPatch> add_flows;
  std::vector<std::size_t> remove_flows;  ///< 0-based indices into the base flows
  std::vector<int> fail_middles;
  std::vector<fault::LinkDeration> derate_links;
  std::optional<std::string> objective;

  static SpecPatch from_json(const Json& json);

  [[nodiscard]] bool empty() const {
    return add_flows.empty() && remove_flows.empty() && fail_middles.empty() &&
           derate_links.empty() && !objective.has_value();
  }

  /// The patched spec, normalized through the same from_json(to_json())
  /// round trip a cold request takes — so the patched spec's canonical bytes
  /// (and with them its content address) are exactly what a client spelling
  /// the scenario directly would get. Throws SpecError when the patch does
  /// not apply (flow edits without an inline instance, index out of range,
  /// fault on a non-Clos base, ...).
  [[nodiscard]] ScenarioSpec apply(const ScenarioSpec& base) const;
};

/// A delta request: patch the scenario addressed by `base` (the FNV-1a 64
/// content hash a previous response reported) with `patch`.
struct DeltaRequest {
  std::uint64_t base = 0;
  SpecPatch patch;

  /// Parse {"base":"<16-digit hex>", "patch":{...}}; "patch" may be omitted
  /// (an empty patch re-addresses the base spec itself).
  static DeltaRequest from_json(const Json& json);
};

/// Exhaustive-search work stats, reported for exhaustive_* policies so
/// sweeps can gate engine determinism through the service.
struct SearchStats {
  std::uint64_t routings_evaluated = 0;
  std::uint64_t waterfill_invocations = 0;

  friend bool operator==(const SearchStats&, const SearchStats&) = default;
};

/// Replication-feasibility outcome ("replicate" policy).
struct ReplicationStats {
  bool feasible = false;
  std::uint64_t nodes_explored = 0;
  MiddleAssignment witness;  ///< empty when infeasible

  friend bool operator==(const ReplicationStats&, const ReplicationStats&) = default;
};

/// The evaluated scenario: the pristine macro-switch reference always, plus
/// the routed allocation on the (possibly degraded) fabric when the policy
/// routes. All rates are exact rationals.
struct ScenarioResult {
  std::size_t num_flows = 0;
  std::vector<Rational> macro_rates;
  Rational macro_throughput{0};

  bool routed = false;  ///< false for "none" and "replicate"
  std::vector<Rational> rates;
  Rational throughput{0};
  Rational throughput_ratio{1};  ///< clos/macro (1 when macro throughput is 0)
  Rational min_rate_ratio{1};    ///< min over flows with positive macro rate

  MiddleAssignment middles;                    ///< Clos policies only
  std::optional<int> surviving_middles;        ///< Clos topologies only
  std::optional<std::size_t> rerouted;         ///< when routing.reroute_dead
  std::optional<SearchStats> search;
  std::optional<ReplicationStats> replication;

  [[nodiscard]] Json to_json() const;
  static ScenarioResult from_json(const Json& json);

  friend bool operator==(const ScenarioResult&, const ScenarioResult&) = default;
};

}  // namespace closfair::svc
