// closfair::wire — blocking client for the wire protocol.
//
// One long-lived TCP connection; requests are framed JSONL lines
// (framing.hpp) and may be pipelined arbitrarily deep — the server
// guarantees responses come back in request order, so a client can match
// them FIFO without ids (closfair_loadgen's latency accounting relies on
// exactly this). send() and recv() are independently thread-safe against
// each other (one sender thread + one receiver thread is the intended
// pipelined shape), but not against themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/framing.hpp"

namespace closfair::wire {

class Client {
 public:
  /// `max_frame_bytes` bounds both directions: recv() rejects oversized
  /// server frames (as before), and send() now refuses to encode a request
  /// the server would reject anyway — the error surfaces at the call site
  /// instead of as a torn connection.
  explicit Client(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes), decoder_(max_frame_bytes) {}
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to an IPv4 host (dotted quad or resolvable name) and port.
  /// Throws WireError on failure. TCP_NODELAY is set — latency probes must
  /// not be Nagle-delayed.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Frame and write one request line (blocking until fully written).
  void send(std::string_view request_line);

  /// Next response payload in order; nullopt on clean server close. Throws
  /// WireError on a truncated or oversized stream.
  [[nodiscard]] std::optional<std::string> recv();

  /// send() + recv() for unpipelined use; throws WireError if the server
  /// closed instead of answering.
  [[nodiscard]] std::string call(std::string_view request_line);

  /// Half-close the write side: tells the server this client is done
  /// sending (the server finishes in-flight work and then closes).
  void finish_sending();

 private:
  int fd_ = -1;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  FrameDecoder decoder_;
};

}  // namespace closfair::wire
