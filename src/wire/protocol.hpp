// closfair::wire — the request/response line protocol, factored out of the
// batch binary so the one-shot JSONL mode and the persistent TCP server
// produce byte-identical responses from one implementation.
//
// A request line is a bare ScenarioSpec object, a bare delta request
// {"base":"<hash>","patch":{...}}, or an envelope {"id": <any scalar>,
// "spec": {...}} / {"id": ..., "delta": {...}} whose id is echoed back.
// Responses (docs/SERVICE.md):
//
//   {"id":..., "hash":"<fnv1a64 hex>", "cached":<bool>, "result":{...}}
//   {"id":..., "hash":"<fnv1a64 hex>", "error":"..."}   (evaluation failed)
//   {"id":..., "error":"..."}                           (unparseable request)
//   {"id":..., "overload":true, "error":"..."}          (load shed; wire only)
//
// The "id" key is present exactly when the request carried an envelope id,
// and always first, so clients can match responses without knowing which
// shape they will get.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/spec.hpp"
#include "util/json.hpp"

namespace closfair::wire {

/// A parsed request line: exactly one of `spec` (a direct scenario) or
/// `delta` (a patch against a cached base) when the line parsed; otherwise
/// both are empty and `error` carries the parse/validation message. The
/// envelope id (null when absent) survives either way — a bad spec or delta
/// inside an envelope still echoes its id.
struct Request {
  Json id;
  std::optional<svc::ScenarioSpec> spec;
  std::optional<svc::DeltaRequest> delta;
  std::string error;

  [[nodiscard]] bool ok() const { return spec.has_value() || delta.has_value(); }
  [[nodiscard]] bool is_delta() const { return delta.has_value(); }
};

/// Parse one request line. Never throws: malformed JSON and invalid specs
/// come back as `error`.
[[nodiscard]] Request parse_request(std::string_view line);

/// 16-digit lowercase hex of a content hash (the response "hash" value).
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Successful evaluation (or cache/duplicate hit).
[[nodiscard]] std::string render_result(const Json& id, std::uint64_t hash,
                                        bool cached,
                                        const svc::ScenarioResult& result);

/// Evaluation failed after the spec parsed (hash is known).
[[nodiscard]] std::string render_eval_error(const Json& id, std::uint64_t hash,
                                            const std::string& error);

/// The request line itself did not parse (no hash).
[[nodiscard]] std::string render_parse_error(const Json& id,
                                             const std::string& error);

/// Admission control shed the request (wire server only): explicit
/// "overload" marker so load generators can separate sheds from failures.
[[nodiscard]] std::string render_overload(const Json& id,
                                          const std::string& detail);

/// True when a frame payload is one of the admin-plane verbs — exactly
/// "metricsz", "statusz", or "tracez" (docs/OBSERVABILITY.md). Verbs are
/// not valid JSON, so they can never collide with a request line; the
/// server answers them in stream order without touching the data plane.
[[nodiscard]] bool is_admin_verb(std::string_view payload);

}  // namespace closfair::wire
