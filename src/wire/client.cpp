#include "wire/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace closfair::wire {

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                               &result);
  if (rc != 0) {
    throw WireError("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int last_errno = 0;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw WireError("connect " + host + ":" + std::to_string(port) + ": " +
                    std::string(strerror(last_errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder(max_frame_bytes_);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(std::string_view request_line) {
  if (fd_ < 0) throw WireError("send on a closed client");
  const std::string frame = encode_frame(request_line, max_frame_bytes_);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("send: " + std::string(strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::recv() {
  if (fd_ < 0) throw WireError("recv on a closed client");
  char buf[64 * 1024];
  while (true) {
    if (auto payload = decoder_.next(); payload.has_value()) return payload;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("recv: " + std::string(strerror(errno)));
    }
    if (n == 0) {
      if (decoder_.buffered() > 0) {
        throw WireError("server closed mid-frame (" +
                        std::to_string(decoder_.buffered()) + " bytes buffered)");
      }
      return std::nullopt;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::string Client::call(std::string_view request_line) {
  send(request_line);
  auto response = recv();
  if (!response.has_value()) throw WireError("server closed without answering");
  return *response;
}

void Client::finish_sending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace closfair::wire
