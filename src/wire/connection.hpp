// closfair::wire — the per-connection request pipeline.
//
// A Pipeline owns everything about one connection's request stream except
// the socket: sequence numbering, the deterministic admission pre-pass
// (parse → overload shed → in-flight dedup → cache lookup → in-flight
// budget), the reorder buffer that turns out-of-order shard completions
// back into in-order responses, and the seq-order cache commit.
//
// Determinism contract (docs/SERVICE.md): for a fixed request stream on one
// connection, the response byte stream is identical for every worker count
// and identical to the batch binary fed the same lines — the same contract
// svc::Service::evaluate_batch keeps in process. The mechanism is the same
// too: all cache/dedup decisions happen in arrival order on the admitting
// thread, workers only fill pre-assigned slots, and results commit to the
// cache in sequence order when their response becomes writable. Worker
// scheduling can change *when* a response is ready, never its bytes or the
// cache's eviction order. (Across concurrent connections sharing one cache
// the interleaving is the arrival order the kernel delivered — each stream
// still sees coherent results, but cached-flag provenance is then genuinely
// load-dependent.)
//
// Thread-safety: all methods lock one internal mutex. The intended callers
// are the connection's reader thread (admit), any worker thread (complete),
// and the connection's writer thread (take_ready).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/rt.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"
#include "svc/spec.hpp"
#include "util/json.hpp"

namespace closfair::wire {

/// Warm-start context for an admitted delta request: the pinned base cache
/// entry (stable references for the worker, exempt from eviction while the
/// pin lives) plus the parsed base spec. Carried by shared_ptr so the
/// Admission/Job copies share one pin.
struct WarmStart {
  svc::ResultCache::BasePin pin;
  svc::ScenarioSpec base_spec;
};

struct PipelineLimits {
  /// Evaluations admitted but not yet completed before admit() sheds with an
  /// overload response. Cache hits, duplicates, and parse errors never count
  /// against the budget — they consume no worker.
  std::size_t max_inflight = 64;
};

class Pipeline {
 public:
  /// `conn_id` labels this pipeline's request traces (flight recorder /
  /// tracez); 0 is fine for batch or test use.
  Pipeline(svc::ResultCache& cache, PipelineLimits limits = {},
           std::uint64_t conn_id = 0);

  /// What admit() decided for one request line.
  struct Admission {
    std::uint64_t seq = 0;
    bool evaluate = false;    ///< caller must evaluate `spec`, then complete(seq)
    svc::ScenarioSpec spec;   ///< valid only when `evaluate`
    std::shared_ptr<WarmStart> warm;  ///< delta base for evaluate_scenario_warm (may be null)
  };

  /// Admit the next request line, in arrival order. `shed` additionally
  /// forces an overload response (the server passes its global queue-depth
  /// watermark verdict). When the returned Admission has evaluate == false
  /// the response is already queued for take_ready(). `recv_ns` is the
  /// recv() tick that delivered the line (the trace's arrival time; 0 =
  /// stamp on entry).
  ///
  /// Delta request lines ({"base","patch"}) resolve here, in arrival order:
  /// the base is pinned from the shared cache, or — when it is still in
  /// flight *on this connection* — its canonical bytes are read from the
  /// pending set (the patch then applies but evaluation runs cold; warm and
  /// cold are byte-identical, so the response stream cannot tell the
  /// difference). The patched spec then walks the same dedup → cache →
  /// budget ladder as a direct spec, so delta traffic never perturbs
  /// data-plane byte identity. Resolution failures (unknown base, patch
  /// does not apply) respond like parse errors: no hash existed to report.
  [[nodiscard]] Admission admit(std::string_view line, bool shed = false,
                                std::uint64_t recv_ns = 0);

  /// Queue an already-rendered response payload (the admin plane's
  /// metricsz/statusz/tracez answers) at the next seq, so it interleaves
  /// into the response stream in arrival order like any data-plane request.
  void admit_ready(std::string payload);

  /// Deliver an evaluation outcome for an admitted seq. `error` non-empty
  /// means the evaluation failed; duplicates waiting on this seq are
  /// fulfilled either way. `stamps` carries the worker's dequeue /
  /// evaluation-done ticks for the stage breakdown (empty under OBS=OFF).
  void complete(std::uint64_t seq, svc::ScenarioResult result, std::string error,
                obs::rt::WorkerStamps stamps = {});

  /// Drain every response that is ready *and* next in sequence order,
  /// committing first-occurrence results to the cache as they pass. Returns
  /// unframed response payloads, oldest first.
  [[nodiscard]] std::vector<std::string> take_ready();

  /// Tell the pipeline the payloads from the last take_ready() batch have
  /// been written to the socket: their traces get the write stage charged
  /// and are published to the flight recorder. No-op under OBS=OFF.
  void commit_written();

  /// Evaluations admitted but not yet completed.
  [[nodiscard]] std::size_t inflight() const;

  /// True when every admitted request has been returned by take_ready().
  [[nodiscard]] bool idle() const;

  /// Requests admitted so far (== the next seq to be assigned).
  [[nodiscard]] std::uint64_t admitted() const;

  /// Overload responses issued so far (budget or shed).
  [[nodiscard]] std::uint64_t overloads() const;

 private:
  enum class State {
    kReady,        ///< payload rendered, waiting for its turn in seq order
    kEvaluating,   ///< handed to a worker; complete() pending
    kAwaitingDup,  ///< duplicate of an earlier in-flight seq
  };

  struct Slot {
    Json id;
    std::uint64_t hash = 0;
    State state = State::kReady;
    std::string payload;          ///< rendered response (kReady)
    std::string canonical;        ///< non-empty for first-occurrence evaluations
    svc::ScenarioResult result;   ///< completed result awaiting seq-order commit
    std::string error;            ///< completed error (for late duplicates)
    bool ok = false;              ///< result valid (vs. error) after complete()
    bool admin = false;           ///< admin-plane response (admit_ready); kept
                                  ///< out of the wire.requests/responses counters
    std::vector<std::uint64_t> waiters;  ///< duplicate seqs fulfilled on complete
    [[no_unique_address]] obs::rt::RequestTrace trace;  ///< empty under OBS=OFF
  };

  mutable std::mutex mu_;
  svc::ResultCache& cache_;
  PipelineLimits limits_;
  std::uint64_t conn_id_ = 0;
  /// Traces drained by take_ready(), awaiting commit_written(). Never
  /// touched under OBS=OFF (no per-request work or allocation).
  std::vector<obs::rt::RequestTrace> pending_write_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_write_ = 0;
  std::uint64_t inflight_ = 0;
  std::uint64_t overloads_ = 0;
  std::map<std::uint64_t, Slot> slots_;  ///< ordered: take_ready walks from next_write_
  std::unordered_map<std::string, std::uint64_t> pending_;  ///< canonical -> first seq
};

}  // namespace closfair::wire
