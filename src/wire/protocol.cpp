#include "wire/protocol.hpp"

#include <cstdio>

namespace closfair::wire {

Request parse_request(std::string_view line) {
  Request request;
  try {
    const Json parsed = Json::parse(line);
    const Json* spec_json = &parsed;
    const Json* delta_json = nullptr;
    if (parsed.is_object()) {
      if (const Json* inner = parsed.find("spec"); inner != nullptr) {
        spec_json = inner;
        // The id is latched before the body parses, so an invalid spec or
        // delta in an envelope still echoes the id in its error response.
        if (const Json* id = parsed.find("id"); id != nullptr) request.id = *id;
      } else if (const Json* inner_delta = parsed.find("delta"); inner_delta != nullptr) {
        delta_json = inner_delta;
        if (const Json* id = parsed.find("id"); id != nullptr) request.id = *id;
      } else if (parsed.find("base") != nullptr) {
        // A bare delta: "base" can never be a ScenarioSpec key.
        delta_json = &parsed;
      }
    }
    if (delta_json != nullptr) {
      request.delta = svc::DeltaRequest::from_json(*delta_json);
    } else {
      request.spec = svc::ScenarioSpec::from_json(*spec_json);
    }
  } catch (const std::exception& e) {
    request.spec.reset();
    request.delta.reset();
    request.error = e.what();
  }
  return request;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return std::string{buf};
}

namespace {

Json response_base(const Json& id) {
  Json response = Json::object();
  if (!id.is_null()) response.set("id", id);
  return response;
}

}  // namespace

std::string render_result(const Json& id, std::uint64_t hash, bool cached,
                          const svc::ScenarioResult& result) {
  Json response = response_base(id);
  response.set("hash", Json::string(hash_hex(hash)));
  response.set("cached", Json::boolean(cached));
  response.set("result", result.to_json());
  return response.dump();
}

std::string render_eval_error(const Json& id, std::uint64_t hash,
                              const std::string& error) {
  Json response = response_base(id);
  response.set("hash", Json::string(hash_hex(hash)));
  response.set("error", Json::string(error));
  return response.dump();
}

std::string render_parse_error(const Json& id, const std::string& error) {
  Json response = response_base(id);
  response.set("error", Json::string(error));
  return response.dump();
}

std::string render_overload(const Json& id, const std::string& detail) {
  Json response = response_base(id);
  response.set("overload", Json::boolean(true));
  response.set("error", Json::string(detail));
  return response.dump();
}

bool is_admin_verb(std::string_view payload) {
  return payload == "metricsz" || payload == "statusz" || payload == "tracez";
}

}  // namespace closfair::wire
