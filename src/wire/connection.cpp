#include "wire/connection.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "wire/protocol.hpp"

namespace closfair::wire {

Pipeline::Pipeline(svc::ResultCache& cache, PipelineLimits limits,
                   std::uint64_t conn_id)
    : cache_(cache), limits_(limits), conn_id_(conn_id) {
  CF_CHECK_MSG(limits_.max_inflight >= 1, "Pipeline max_inflight must be >= 1");
}

Pipeline::Admission Pipeline::admit(std::string_view line, bool shed,
                                    std::uint64_t recv_ns) {
  // Parse outside the lock: admit() is only ever called from the
  // connection's reader thread, so arrival order is the call order either
  // way, and workers completing into other slots are not held up by spec
  // canonicalization.
  [[maybe_unused]] const std::uint64_t entry_ns = obs::now_ns();
  Request request = parse_request(line);
  [[maybe_unused]] const std::uint64_t parsed_ns = obs::now_ns();
  std::string canonical;
  std::uint64_t hash = 0;
  if (request.spec.has_value()) {
    canonical = request.spec->canonical();
    hash = svc::fnv1a64(canonical);
  }

  std::lock_guard<std::mutex> lock(mu_);
  OBS_COUNTER_INC("wire.requests");
  Admission admission;
  admission.seq = next_seq_++;
  Slot slot;
  slot.id = request.id;
  slot.trace.begin(conn_id_, admission.seq, recv_ns != 0 ? recv_ns : entry_ns);
  slot.trace.mark_at(obs::rt::Stage::kRead, entry_ns);
  slot.trace.mark_at(obs::rt::Stage::kParse, parsed_ns);

  // Delta resolution runs under the pipeline lock, in arrival order — the
  // pending set IS this connection's in-flight view, so a delta pipelined
  // behind its own base always finds it: either committed (pinned, warm) or
  // still pending (cold evaluation of the patched spec; byte-identical).
  std::shared_ptr<WarmStart> warm;
  if (request.is_delta()) {
    const auto inflight_base = [this](std::uint64_t want) -> std::optional<std::string> {
      for (const auto& [pending_canonical, seq] : pending_) {
        (void)seq;
        if (svc::fnv1a64(pending_canonical) == want) return pending_canonical;
      }
      return std::nullopt;
    };
    svc::DeltaResolution res = svc::resolve_delta(cache_, *request.delta, inflight_base);
    if (res.ok()) {
      canonical = res.spec.canonical();
      hash = svc::fnv1a64(canonical);
      request.spec = std::move(res.spec);
      if (res.base.has_value()) {
        warm = std::make_shared<WarmStart>(
            WarmStart{std::move(*res.base), std::move(*res.base_spec)});
      }
    } else {
      // Resolution failed before a patched spec existed: answer like a
      // parse error (no hash), exactly as the batch binary does.
      request.spec.reset();
      request.error = std::move(res.error);
    }
  }
  slot.hash = hash;

  if (!request.spec.has_value()) {
    OBS_COUNTER_INC("wire.parse_errors");
    slot.trace.set_outcome(obs::rt::Outcome::kParseError);
    slot.payload = render_parse_error(slot.id, request.error);
  } else if (const auto it = pending_.find(canonical); it != pending_.end()) {
    // Duplicate of an in-flight (or completed-but-uncommitted) evaluation:
    // never re-evaluates, mirroring the batch dedup pre-pass.
    OBS_COUNTER_INC("wire.dedup_hits");
    if (request.is_delta()) OBS_COUNTER_INC("svc.delta_hits");
    slot.trace.set_outcome(obs::rt::Outcome::kDeduped);
    Slot& first = slots_.at(it->second);
    if (first.state == State::kEvaluating) {
      slot.state = State::kAwaitingDup;
      first.waiters.push_back(admission.seq);
    } else if (first.ok) {
      slot.payload = render_result(slot.id, hash, /*cached=*/true, first.result);
    } else {
      // First occurrence already completed with an error but has not been
      // committed (written) yet; render the same error for this seq now.
      slot.payload = render_eval_error(slot.id, hash, first.error);
    }
  } else if (auto hit = cache_.lookup(canonical); hit.has_value()) {
    if (request.is_delta()) OBS_COUNTER_INC("svc.delta_hits");
    slot.trace.set_outcome(obs::rt::Outcome::kCached);
    slot.payload = render_result(slot.id, hash, /*cached=*/true, *hit);
  } else if (shed || inflight_ >= limits_.max_inflight) {
    OBS_COUNTER_INC("wire.overload_sheds");
    slot.trace.set_outcome(obs::rt::Outcome::kOverload);
    ++overloads_;
    slot.payload = render_overload(
        slot.id, shed ? "server overloaded: evaluation queue is over its watermark"
                      : "server overloaded: connection in-flight budget exhausted");
  } else {
    slot.state = State::kEvaluating;
    slot.canonical = canonical;
    pending_.emplace(std::move(canonical), admission.seq);
    ++inflight_;
    admission.evaluate = true;
    admission.spec = std::move(*request.spec);
    admission.warm = std::move(warm);
  }
  slot.trace.mark(obs::rt::Stage::kAdmit);

  slots_.emplace(admission.seq, std::move(slot));
  OBS_GAUGE_SET("wire.pipeline_depth", slots_.size());
  return admission;
}

void Pipeline::admit_ready(std::string payload) {
  [[maybe_unused]] const std::uint64_t entry_ns = obs::now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = next_seq_++;
  Slot slot;
  slot.admin = true;
  slot.trace.begin(conn_id_, seq, entry_ns);
  slot.trace.set_outcome(obs::rt::Outcome::kAdmin);
  slot.trace.mark(obs::rt::Stage::kAdmit);
  slot.payload = std::move(payload);
  slots_.emplace(seq, std::move(slot));
  OBS_GAUGE_SET("wire.pipeline_depth", slots_.size());
}

void Pipeline::complete(std::uint64_t seq, svc::ScenarioResult result,
                        std::string error, obs::rt::WorkerStamps stamps) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_.at(seq);
  CF_CHECK_MSG(slot.state == State::kEvaluating, "complete() on a non-evaluating seq");
  // Queue-wait ends at the worker's dequeue tick, evaluation at its done
  // tick; the remaining gap up to the writer's drain falls into
  // reorder-wait (mark_at clamps, so a stale stamp can never go backwards).
  slot.trace.mark_at(obs::rt::Stage::kQueueWait, stamps.dequeue_ns);
  slot.trace.mark_at(obs::rt::Stage::kEvaluate, stamps.eval_done_ns);
  if (!error.empty()) slot.trace.set_outcome(obs::rt::Outcome::kEvalError);
  slot.ok = error.empty();
  slot.result = std::move(result);
  slot.error = std::move(error);
  slot.payload = slot.ok
                     ? render_result(slot.id, slot.hash, /*cached=*/false, slot.result)
                     : render_eval_error(slot.id, slot.hash, slot.error);
  slot.state = State::kReady;
  --inflight_;
  for (const std::uint64_t waiter_seq : slot.waiters) {
    Slot& waiter = slots_.at(waiter_seq);
    waiter.payload =
        slot.ok ? render_result(waiter.id, waiter.hash, /*cached=*/true, slot.result)
                : render_eval_error(waiter.id, waiter.hash, slot.error);
    waiter.state = State::kReady;
  }
  slot.waiters.clear();
}

std::vector<std::string> Pipeline::take_ready() {
  [[maybe_unused]] const std::uint64_t drain_ns = obs::now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  while (true) {
    const auto it = slots_.find(next_write_);
    if (it == slots_.end() || it->second.state != State::kReady) break;
    Slot& slot = it->second;
    if (!slot.canonical.empty()) {
      // Seq-order commit: cache insertion (and with it LRU recency and any
      // eviction) happens in response order, not completion order.
      if (slot.ok) cache_.insert(slot.canonical, slot.result);
      pending_.erase(slot.canonical);
    }
    if (!slot.admin) OBS_COUNTER_INC("wire.responses");
    if constexpr (obs::kEnabled) {
      slot.trace.mark_at(obs::rt::Stage::kReorderWait, drain_ns);
      pending_write_.push_back(slot.trace);
    }
    out.push_back(std::move(slot.payload));
    slots_.erase(it);
    ++next_write_;
  }
  OBS_GAUGE_SET("wire.pipeline_depth", slots_.size());
  return out;
}

void Pipeline::commit_written() {
  if constexpr (obs::kEnabled) {
    std::vector<obs::rt::RequestTrace> written;
    {
      std::lock_guard<std::mutex> lock(mu_);
      written.swap(pending_write_);
    }
    const std::uint64_t now = obs::now_ns();
    for (obs::rt::RequestTrace& trace : written) {
      trace.mark_at(obs::rt::Stage::kWrite, now);
      trace.finish();
      obs::rt::FlightRecorder::instance().record(trace);
    }
  }
}

std::size_t Pipeline::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

bool Pipeline::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.empty();
}

std::uint64_t Pipeline::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t Pipeline::overloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overloads_;
}

}  // namespace closfair::wire
