// closfair::wire — length-prefixed framing for the persistent TCP front-end.
//
// A frame is a 4-byte big-endian payload length followed by that many bytes
// of payload; payloads are the same JSONL request/response lines the batch
// binary speaks (docs/SERVICE.md "Wire protocol"). The explicit length
// prefix is what makes pipelining safe: a reader can slice a byte stream
// into requests without scanning payload bytes for newlines, and a frame
// that claims more than the configured maximum is rejected *before* any
// buffer grows to hold it — a malformed or hostile peer cannot make the
// server allocate unboundedly.
//
// FrameDecoder is a pure incremental reassembler (no I/O): feed() it
// whatever read() produced — half a header, three frames and a tail, one
// byte at a time — and next() yields complete payloads in order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace closfair::wire {

/// Thrown on protocol violations (oversized frame) and socket-level
/// failures (connect/bind/read errors in server.hpp / client.hpp).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Frame header: 4-byte big-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default per-frame payload ceiling (1 MiB). Large inline instances fit
/// with room to spare; anything bigger is a protocol violation.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Hard encoding ceiling: the 4-byte big-endian header cannot express a
/// longer payload. A payload above this silently truncated its length
/// before the encode-side guard existed; now it throws.
inline constexpr std::size_t kMaxEncodableFrameBytes = 0xffffffff;

/// Append one frame (header + payload) to `out`. Throws WireError (and
/// bumps wire.oversized_sends) when the payload exceeds `max_payload_bytes`
/// or the absolute kMaxEncodableFrameBytes header limit — *before* touching
/// `out`, so already-appended frames stay intact and sendable. Callers that
/// speak to a peer pass the peer-facing limit (Client / the server's writer
/// pass their configured max_frame_bytes) so an oversized payload fails
/// loudly at the sender instead of poisoning the remote decoder.
void append_frame(std::string& out, std::string_view payload,
                  std::size_t max_payload_bytes = kMaxEncodableFrameBytes);

/// One frame as fresh bytes — append_frame into an empty string.
[[nodiscard]] std::string encode_frame(std::string_view payload,
                                       std::size_t max_payload_bytes = kMaxEncodableFrameBytes);

/// Incremental frame reassembler with partial-read tolerance and an
/// oversized-frame guard. Not thread-safe (one per connection direction).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffer `n` more stream bytes. Throws WireError (and bumps
  /// wire.oversized_frames) as soon as a buffered header announces a payload
  /// larger than the configured maximum — the stream is then unusable and
  /// the connection must close. No payload bytes of the oversized frame are
  /// retained.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// The next complete payload, in stream order; nullopt until one is fully
  /// buffered.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned by next().
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

  [[nodiscard]] std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool poisoned_ = false;

  void check_header();
};

}  // namespace closfair::wire
