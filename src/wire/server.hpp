// closfair::wire — the persistent TCP front-end over svc::Service.
//
// One acceptor thread hands long-lived connections to a reader/writer
// thread pair each; evaluations from every connection funnel into one
// shared worker pool (the sharding engine of PR 5, now fed by sockets).
// Each connection's Pipeline (connection.hpp) keeps the deterministic
// admission order and reorders out-of-order completions back into
// sequence-order responses, so the batch binary's byte-identity contract
// holds end to end over the socket.
//
// Admission control is two-level: a per-connection in-flight budget
// (PipelineLimits) and a global evaluation-queue high watermark. Either
// trips an explicit {"overload":true,...} response instead of unbounded
// buffering — memory is bounded by (connections x budget) regardless of
// offered load.
//
// Graceful drain (SIGTERM via run_until_signal(), or drain() directly):
// stop accepting, half-close every connection's read side so no new
// requests are admitted, let the workers finish everything already
// admitted, flush every response, then join. Drain wall time lands in the
// wire.drain_ns gauge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"
#include "wire/connection.hpp"
#include "wire/framing.hpp"

namespace closfair::wire {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the choice via port()
  unsigned workers = 0;    ///< evaluation threads; 0 = service.options().workers
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_inflight_per_conn = 64;   ///< per-connection admission budget
  std::size_t queue_high_watermark = 256;   ///< global pending-eval shed threshold
};

class Server {
 public:
  /// The service outlives the server; its cache is shared across every
  /// connection (and with any batch-mode use of the same Service).
  Server(svc::Service& service, ServerOptions options = {});
  ~Server();  ///< drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the acceptor + worker pool. Throws WireError
  /// when the address cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 choices).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, safe from any non-signal thread.
  void drain();

  /// Install SIGTERM/SIGINT handlers and block until one arrives (or
  /// drain() is called from elsewhere), then drain. One server per process.
  void run_until_signal();

  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// Pending + executing evaluations across all connections (the watermark
  /// input).
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_.load(); }

  [[nodiscard]] std::uint64_t connections_accepted() const {
    return conns_accepted_.load();
  }

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    svc::ScenarioSpec spec;
    std::shared_ptr<WarmStart> warm;  ///< delta base context (null for direct specs)
  };

  void accept_loop();
  void worker_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void enqueue(Job job);
  void reap_finished_locked();

  /// Render the response payload for an admin verb (metricsz / statusz /
  /// tracez). Under OBS=OFF every verb answers a well-formed
  /// "observability disabled" error object instead.
  [[nodiscard]] std::string admin_response(std::string_view verb);

  svc::Service& service_;
  ServerOptions options_;
  unsigned workers_ = 1;
  std::uint16_t port_ = 0;
  std::uint64_t start_ns_ = 0;  ///< start() tick; statusz uptime base
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: drain() wakes the acceptor
  std::thread acceptor_;
  std::vector<std::thread> pool_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stop_workers_ = false;
  std::atomic<std::size_t> queue_depth_{0};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool drained_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> conns_accepted_{0};
};

}  // namespace closfair::wire
