#include "wire/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/rt.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "wire/protocol.hpp"

namespace closfair::wire {
namespace {

void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// send() the whole buffer; false on a dead peer. MSG_NOSIGNAL: a client
/// that vanished mid-response must not SIGPIPE the server.
bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// run_until_signal() plumbing: the handler may only touch async-signal-safe
// state, so it writes one byte into a static pipe the waiting thread reads.
int g_signal_pipe[2] = {-1, -1};

void drain_signal_handler(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

/// Per-connection state: the socket, the deterministic pipeline, and the
/// reader/writer thread pair. Jobs hold a shared_ptr so a completion can
/// always deliver, even into a connection that is tearing down.
struct Server::Connection {
  int fd = -1;
  Pipeline pipeline;
  std::thread reader;
  std::thread writer;

  std::mutex mu;                 ///< guards wakeups + flags below
  std::condition_variable cv;    ///< writer wakeups
  std::uint64_t wakeups = 0;
  bool reading_done = false;
  bool dead = false;             ///< write side failed; discard instead of send
  std::string protocol_error;    ///< oversized frame: final response, then close
  std::atomic<bool> finished{false};

  Connection(int fd_in, svc::ResultCache& cache, PipelineLimits limits,
             std::uint64_t conn_id)
      : fd(fd_in), pipeline(cache, limits, conn_id) {}

  void wake(bool done_reading = false) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++wakeups;
      if (done_reading) reading_done = true;
    }
    cv.notify_one();
  }
};

Server::Server(svc::Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  workers_ = options_.workers != 0 ? options_.workers : service_.options().workers;
  if (workers_ < 1) workers_ = 1;
}

Server::~Server() { drain(); }

void Server::start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    CF_CHECK_MSG(!started_, "Server::start() called twice");
    started_ = true;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw WireError("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw WireError("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw WireError("bind(" + options_.host + ":" + std::to_string(options_.port) +
                    "): " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, 128) < 0) {
    throw WireError("listen(): " + std::string(strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  start_ns_ = obs::now_ns();

  if (::pipe(wake_fds_) < 0) {
    throw WireError("pipe(): " + std::string(strerror(errno)));
  }

  pool_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    pool_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // drain() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    set_tcp_nodelay(fd);
    const std::uint64_t conn_id =
        conns_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    OBS_COUNTER_INC("wire.conns_accepted");

    auto conn = std::make_shared<Connection>(
        fd, service_.cache(), PipelineLimits{options_.max_inflight_per_conn},
        conn_id);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
      conns_.push_back(std::move(conn));
      obs::Registry::instance().gauge("wire.conns_active").set(
          static_cast<std::int64_t>(conns_.size()));
    }
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  std::vector<char> buf(64 * 1024);
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, peer reset, or drain()'s SHUT_RD
    // One arrival stamp per recv() batch: every frame it delivered was on
    // the wire by this tick, so the gap to its admit() entry is read time.
    const std::uint64_t recv_ns = obs::now_ns();
    try {
      decoder.feed(buf.data(), static_cast<std::size_t>(n));
      while (auto frame = decoder.next()) {
        if (is_admin_verb(*frame)) {
          // Admin verbs bypass parse/shed entirely — they must answer even
          // (especially) when the data plane is overloaded — but flow
          // through the pipeline's seq order like any response.
          OBS_COUNTER_INC("wire.admin_requests");
          conn->pipeline.admit_ready(admin_response(*frame));
          conn->wake();
          continue;
        }
        const bool shed = queue_depth_.load(std::memory_order_relaxed) >=
                          options_.queue_high_watermark;
        Pipeline::Admission admission =
            conn->pipeline.admit(*frame, shed, recv_ns);
        if (admission.evaluate) {
          enqueue(Job{conn, admission.seq, std::move(admission.spec),
                      std::move(admission.warm)});
        }
        conn->wake();  // non-evaluate admissions are ready immediately
      }
    } catch (const WireError& e) {
      // Oversized frame: the stream is unrecoverable. Flush what was
      // admitted, append one final error response, close.
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->protocol_error = e.what();
      }
      break;
    }
  }
  conn->wake(/*done_reading=*/true);
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      // Every state change (admission, completion, EOF, write failure)
      // bumps wakeups, so waiting on the counter alone cannot miss an event
      // or busy-spin on a level-triggered flag.
      conn->cv.wait(lock, [&] { return conn->wakeups != seen; });
      seen = conn->wakeups;
    }
    const std::vector<std::string> payloads = conn->pipeline.take_ready();
    if (!payloads.empty()) {
      std::string frames;
      bool oversized = false;
      for (const std::string& payload : payloads) {
        try {
          append_frame(frames, payload, options_.max_frame_bytes);
        } catch (const WireError&) {
          // The throw happens before any header byte lands, so every frame
          // already in `frames` is complete: flush those, then give up on
          // the connection — the peer could never decode this response.
          oversized = true;
          break;
        }
      }
      bool dead;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (oversized) conn->dead = true;
        dead = conn->dead && !oversized;
      }
      if (!dead && !send_all(conn->fd, frames)) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->dead = true;
        // Kick the reader out of recv(): a peer we cannot write to is gone.
        ::shutdown(conn->fd, SHUT_RD);
      }
      // Seal the drained traces (write stage ends here) and publish them to
      // the flight recorder — even for a dead peer, where the write is the
      // failed attempt.
      conn->pipeline.commit_written();
    }
    std::unique_lock<std::mutex> lock(conn->mu);
    if ((conn->reading_done && conn->pipeline.idle()) || conn->dead) {
      if (!conn->protocol_error.empty() && !conn->dead) {
        send_all(conn->fd,
                 encode_frame(render_parse_error(Json::null(), conn->protocol_error)));
      }
      break;
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true);
}

void Server::enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(job));
  }
  const std::size_t depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  OBS_GAUGE_SET("wire.eval_queue_depth", depth);
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || stop_workers_; });
      if (queue_.empty()) return;  // stop_workers_ and nothing left to flush
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::rt::WorkerStamps stamps = obs::rt::begin_work();
    svc::ScenarioResult result;
    std::string error;
    try {
      // Delta jobs carry their pinned base: warm evaluation is byte-identical
      // to cold by construction, so the response stream cannot tell.
      result = job.warm != nullptr
                   ? svc::evaluate_scenario_warm(job.spec, job.warm->base_spec,
                                                 job.warm->pin.result())
                   : svc::evaluate_scenario(job.spec);
    } catch (const std::exception& e) {
      OBS_COUNTER_INC("svc.errors");
      error = e.what();
    }
    job.warm.reset();  // release the base pin as soon as the result exists
    obs::rt::end_work(stamps);
    OBS_COUNTER_INC("wire.evaluations");
    const std::size_t depth = queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1;
    OBS_GAUGE_SET("wire.eval_queue_depth", depth);
    job.conn->pipeline.complete(job.seq, std::move(result), std::move(error),
                                stamps);
    job.conn->wake();
  }
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = **it;
    if (conn.finished.load()) {
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.writer.joinable()) conn.writer.join();
      ::close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  obs::Registry::instance().gauge("wire.conns_active").set(
      static_cast<std::int64_t>(conns_.size()));
}

void Server::drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!started_ || drained_) return;
  drained_ = true;
  draining_.store(true);
  OBS_SPAN("wire.drain");
  const std::uint64_t t0 = obs::now_ns();

  // 1. Stop accepting: wake the acceptor and close the listen socket.
  {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);

  // 2. Half-close every connection's read side: readers see EOF, so nothing
  // new is admitted, but every admitted request still gets its response.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 3. Let the workers flush the queue, then retire them.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : pool_) worker.join();
  pool_.clear();

  // 4. Writers flush the last responses and exit on pipeline idle.
  for (const auto& conn : conns) {
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  obs::Registry::instance().gauge("wire.conns_active").set(0);
  obs::Registry::instance().gauge("wire.drain_ns").set(
      static_cast<std::int64_t>(obs::now_ns() - t0));
}

std::string Server::admin_response(std::string_view verb) {
  Json response = Json::object();
  response.set("admin", Json::string(std::string(verb)));
  if constexpr (!obs::kEnabled) {
    // Well-formed, self-describing refusal: the admin plane stays reachable
    // in OBS=OFF builds, it just has nothing to report.
    response.set("error",
                 Json::string("observability disabled (CLOSFAIR_OBS=OFF)"));
    return response.dump();
  } else {
    if (verb == "metricsz") {
      response.set("metrics",
                   metrics_to_json(obs::Registry::instance().snapshot()));
    } else if (verb == "statusz") {
      std::size_t active = 0;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        active = conns_.size();
      }
      response.set("uptime_ns", Json::number(static_cast<std::int64_t>(
                                    obs::now_ns() - start_ns_)));
      response.set("workers", Json::number(static_cast<std::int64_t>(workers_)));
      response.set("draining", Json::boolean(draining_.load()));
      response.set("conns_active",
                   Json::number(static_cast<std::int64_t>(active)));
      response.set("conns_accepted", Json::number(static_cast<std::int64_t>(
                                         conns_accepted_.load())));
      response.set("queue_depth", Json::number(static_cast<std::int64_t>(
                                      queue_depth_.load())));
      response.set("queue_high_watermark",
                   Json::number(static_cast<std::int64_t>(
                       options_.queue_high_watermark)));
      response.set("max_inflight_per_conn",
                   Json::number(static_cast<std::int64_t>(
                       options_.max_inflight_per_conn)));
      response.set("overload_sheds",
                   Json::number(static_cast<std::int64_t>(
                       obs::Registry::instance()
                           .counter("wire.overload_sheds")
                           .total())));
      response.set("cache_size", Json::number(static_cast<std::int64_t>(
                                     service_.cache().size())));
      response.set("cache_capacity", Json::number(static_cast<std::int64_t>(
                                         service_.cache().capacity())));
    } else {  // tracez (is_admin_verb gated the dispatch)
      const obs::rt::FlightRecorder& recorder =
          obs::rt::FlightRecorder::instance();
      response.set("slow_threshold_ns", Json::number(static_cast<std::int64_t>(
                                            recorder.slow_threshold_ns())));
      Json recent = Json::array();
      for (const obs::rt::RequestTrace& trace : recorder.recent()) {
        recent.push_back(obs::rt::trace_to_json(trace));
      }
      response.set("recent", std::move(recent));
      Json shame = Json::array();
      for (const obs::rt::RequestTrace& trace : recorder.shame()) {
        shame.push_back(obs::rt::trace_to_json(trace));
      }
      response.set("shame", std::move(shame));
    }
    return response.dump();
  }
}

void Server::run_until_signal() {
  if (g_signal_pipe[0] < 0) {
    CF_CHECK_MSG(::pipe(g_signal_pipe) == 0, "signal pipe creation failed");
  }
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  drain();
}

}  // namespace closfair::wire
