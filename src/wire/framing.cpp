#include "wire/framing.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace closfair::wire {

void append_frame(std::string& out, std::string_view payload,
                  std::size_t max_payload_bytes) {
  // Guard before any byte lands in `out`: a payload the header cannot
  // express would encode a corrupt (truncated) length, and one over the
  // peer's configured maximum would only poison the remote decoder.
  if (payload.size() > max_payload_bytes || payload.size() > kMaxEncodableFrameBytes) {
    OBS_COUNTER_INC("wire.oversized_sends");
    throw WireError("refusing to encode a frame of " + std::to_string(payload.size()) +
                    " bytes (maximum " +
                    std::to_string(std::min(max_payload_bytes, kMaxEncodableFrameBytes)) +
                    ")");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
}

std::string encode_frame(std::string_view payload, std::size_t max_payload_bytes) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, payload, max_payload_bytes);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::check_header() {
  if (buffered() < kFrameHeaderBytes) return;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  const std::size_t length = (std::size_t{p[0]} << 24) | (std::size_t{p[1]} << 16) |
                             (std::size_t{p[2]} << 8) | std::size_t{p[3]};
  if (length > max_frame_bytes_) {
    poisoned_ = true;
    buffer_.clear();
    pos_ = 0;
    OBS_COUNTER_INC("wire.oversized_frames");
    throw WireError("frame of " + std::to_string(length) +
                    " bytes exceeds the maximum of " +
                    std::to_string(max_frame_bytes_));
  }
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (poisoned_) throw WireError("decoder poisoned by an oversized frame");
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer with dead bytes.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, n);
  check_header();
}

std::optional<std::string> FrameDecoder::next() {
  if (poisoned_) throw WireError("decoder poisoned by an oversized frame");
  // The frame at pos_ may have become current only after the previous next()
  // consumed its predecessor, so its header is (re)checked here, not just at
  // feed() time.
  check_header();
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  const std::size_t length = (std::size_t{p[0]} << 24) | (std::size_t{p[1]} << 16) |
                             (std::size_t{p[2]} << 8) | std::size_t{p[3]};
  if (buffered() < kFrameHeaderBytes + length) return std::nullopt;
  std::string payload = buffer_.substr(pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  return payload;
}

}  // namespace closfair::wire
