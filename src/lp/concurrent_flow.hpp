// Maximum concurrent flow: the "throughput of a topology" metric of Jyothi
// et al., the paper's citation [20].
//
// Given per-flow demands d_f, find the largest uniform scale factor λ such
// that rates λ·d_f can be routed *splittably* inside the Clos network:
//
//   maximize λ  s.t.  Σ_m x_{f,m} = λ d_f,   link loads within capacity.
//
// λ >= 1 means the demand matrix fits (the fluid regime of §1's demand
// satisfaction); λ < 1 measures structural oversubscription. Comparing λ·Σd
// against the unsplittable max-min throughput isolates, once more, what the
// single-path restriction costs.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "net/clos.hpp"
#include "util/rational.hpp"

namespace closfair {

struct ConcurrentFlowResult {
  Rational lambda{0};  ///< max uniform demand scale factor
  /// shares[f][m-1] = flow f's rate via middle m at scale lambda.
  std::vector<std::vector<Rational>> shares;
};

/// Solve the maximum concurrent flow LP exactly. Demands must be
/// non-negative with at least one positive entry.
[[nodiscard]] ConcurrentFlowResult max_concurrent_flow(const ClosNetwork& net,
                                                       const FlowSet& flows,
                                                       const std::vector<Rational>& demands);

}  // namespace closfair
