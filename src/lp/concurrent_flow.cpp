#include "lp/concurrent_flow.hpp"

#include "lp/simplex.hpp"

namespace closfair {

ConcurrentFlowResult max_concurrent_flow(const ClosNetwork& net, const FlowSet& flows,
                                         const std::vector<Rational>& demands) {
  CF_CHECK_MSG(demands.size() == flows.size(),
               "demands cover " << demands.size() << " flows, expected " << flows.size());
  bool any_positive = false;
  for (const Rational& d : demands) {
    CF_CHECK_MSG(!d.is_negative(), "negative demand");
    if (!d.is_zero()) any_positive = true;
  }
  CF_CHECK_MSG(any_positive, "all-zero demands make lambda unbounded");

  const int n = net.num_middles();
  const std::size_t num_flows = flows.size();
  // Variables: x_{f,m} for f, m, then lambda (last).
  const auto var = [n](FlowIndex f, int m) {
    return f * static_cast<std::size_t>(n) + static_cast<std::size_t>(m - 1);
  };
  const std::size_t lambda_var = num_flows * static_cast<std::size_t>(n);
  const std::size_t num_vars = lambda_var + 1;

  GeneralLp<Rational> lp;
  lp.c.assign(num_vars, Rational{0});
  lp.c[lambda_var] = Rational{1};

  // Conservation: sum_m x_{f,m} - lambda d_f = 0.
  for (FlowIndex f = 0; f < num_flows; ++f) {
    std::vector<Rational> row(num_vars, Rational{0});
    for (int m = 1; m <= n; ++m) row[var(f, m)] = Rational{1};
    row[lambda_var] = -demands[f];
    lp.A_eq.push_back(std::move(row));
    lp.b_eq.push_back(Rational{0});
  }

  // Edge links: sum over flows at a server of lambda d_f <= cap, i.e.
  // (sum of d_f) * lambda <= cap per server link; expressed via x so the
  // witness decomposition stays consistent: edge loads equal the summed
  // shares of the flows at that server.
  // Source/destination edge links.
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int j = 1; j <= net.servers_per_tor(); ++j) {
      std::vector<Rational> src_row(num_vars, Rational{0});
      std::vector<Rational> dst_row(num_vars, Rational{0});
      bool src_used = false;
      bool dst_used = false;
      for (FlowIndex f = 0; f < num_flows; ++f) {
        if (flows[f].src == net.source(i, j)) {
          for (int m = 1; m <= n; ++m) src_row[var(f, m)] = Rational{1};
          src_used = true;
        }
        if (flows[f].dst == net.destination(i, j)) {
          for (int m = 1; m <= n; ++m) dst_row[var(f, m)] = Rational{1};
          dst_used = true;
        }
      }
      if (src_used) {
        lp.A_ub.push_back(std::move(src_row));
        lp.b_ub.push_back(net.topology().link(net.source_link(i, j)).capacity);
      }
      if (dst_used) {
        lp.A_ub.push_back(std::move(dst_row));
        lp.b_ub.push_back(net.topology().link(net.dest_link(i, j)).capacity);
      }
    }
  }
  // Inside links.
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int m = 1; m <= n; ++m) {
      std::vector<Rational> up(num_vars, Rational{0});
      std::vector<Rational> down(num_vars, Rational{0});
      bool up_used = false;
      bool down_used = false;
      for (FlowIndex f = 0; f < num_flows; ++f) {
        if (net.source_coord(flows[f].src).tor == i) {
          up[var(f, m)] = Rational{1};
          up_used = true;
        }
        if (net.dest_coord(flows[f].dst).tor == i) {
          down[var(f, m)] = Rational{1};
          down_used = true;
        }
      }
      if (up_used) {
        lp.A_ub.push_back(std::move(up));
        lp.b_ub.push_back(net.topology().link(net.uplink(i, m)).capacity);
      }
      if (down_used) {
        lp.A_ub.push_back(std::move(down));
        lp.b_ub.push_back(net.topology().link(net.downlink(m, i)).capacity);
      }
    }
  }

  const GeneralLpResult<Rational> solved = solve_lp_general(lp);
  CF_CHECK_MSG(solved.status == GeneralLpStatus::kOptimal,
               "concurrent flow LP not optimal (status "
                   << (solved.status == GeneralLpStatus::kInfeasible ? "infeasible"
                                                                     : "unbounded")
                   << ")");
  ConcurrentFlowResult result;
  result.lambda = solved.objective;
  result.shares.assign(num_flows, std::vector<Rational>(static_cast<std::size_t>(n)));
  for (FlowIndex f = 0; f < num_flows; ++f) {
    for (int m = 1; m <= n; ++m) {
      result.shares[f][static_cast<std::size_t>(m - 1)] = solved.x[var(f, m)];
    }
  }
  return result;
}

}  // namespace closfair
