#include "lp/maxmin_lp.hpp"

#include <optional>

#include "fairness/bottleneck.hpp"
#include "lp/simplex.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace closfair {

template <typename R>
Allocation<R> max_min_fair_lp(const Topology& topo, const FlowSet& flows,
                              const Routing& routing) {
  OBS_SPAN("lp.maxmin.solve");
  CF_CHECK(routing.size() == flows.size());
  const std::size_t num_flows = flows.size();
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  Allocation<R> alloc(num_flows);
  std::vector<bool> fixed(num_flows, false);
  std::size_t num_fixed = 0;

  // Residual capacity of each bounded link after subtracting fixed flows.
  std::vector<R> residual(topo.num_links(), R{0});
  std::vector<bool> bounded(topo.num_links(), false);
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    bounded[l] = true;
    residual[l] = capacity_as<R>(link);
  }

  while (num_fixed < num_flows) {
    // Active flows and their dense positions.
    std::vector<FlowIndex> active;
    std::vector<std::size_t> pos(num_flows, static_cast<std::size_t>(-1));
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!fixed[f]) {
        pos[f] = active.size();
        active.push_back(f);
      }
    }
    const std::size_t k = active.size();

    // Bounded links carrying at least one active flow, with active counts.
    std::vector<std::size_t> lp_links;
    for (std::size_t l = 0; l < topo.num_links(); ++l) {
      if (!bounded[l]) continue;
      bool carries_active = false;
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) {
          carries_active = true;
          break;
        }
      }
      if (carries_active) lp_links.push_back(l);
    }

    // LP 1: maximize t s.t. sum of active x_f on link <= residual,
    // t - x_f <= 0. Variables: x_0..x_{k-1}, then t.
    const std::size_t num_vars = k + 1;
    std::vector<std::vector<R>> A;
    std::vector<R> b;
    for (std::size_t l : lp_links) {
      std::vector<R> row(num_vars, R{0});
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) row[pos[f]] += R{1};
      }
      A.push_back(std::move(row));
      b.push_back(residual[l]);
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<R> row(num_vars, R{0});
      row[i] = R{-1};
      row[k] = R{1};
      A.push_back(std::move(row));
      b.push_back(R{0});
    }
    std::vector<R> c(num_vars, R{0});
    c[k] = R{1};
    OBS_COUNTER_INC("lp.maxmin.rounds");
    OBS_COUNTER_INC("lp.maxmin.level_lps");
    const LpResult<R> level_lp = solve_lp<R>(A, b, c);
    CF_CHECK_MSG(level_lp.status == LpStatus::kOptimal,
                 "max-min level LP unbounded: some flow crosses no bounded link");
    const R level = level_lp.objective;

    // LP 2 (per active flow): with x_g = level + y_g, can y_f exceed 0?
    // Constraints: sum of y_g on link <= residual - (#active on link)*level.
    std::vector<std::vector<R>> A2;
    std::vector<R> b2;
    for (std::size_t l : lp_links) {
      std::vector<R> row(k, R{0});
      R active_on_link{0};
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) {
          row[pos[f]] += R{1};
          active_on_link += R{1};
        }
      }
      A2.push_back(std::move(row));
      R slack = residual[l] - active_on_link * level;
      // Exact arithmetic keeps slack >= 0; with doubles, clamp roundoff.
      if (slack < R{0}) slack = R{0};
      b2.push_back(std::move(slack));
    }

    std::vector<FlowIndex> to_fix;
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<R> c2(k, R{0});
      c2[i] = R{1};
      OBS_COUNTER_INC("lp.maxmin.improve_lps");
      const LpResult<R> improve = solve_lp<R>(A2, b2, c2);
      CF_CHECK(improve.status == LpStatus::kOptimal);
      if (improve.objective == R{0}) to_fix.push_back(active[i]);
    }
    CF_CHECK_MSG(!to_fix.empty(), "max-min LP made no progress");
    OBS_COUNTER_ADD("lp.maxmin.flows_frozen", to_fix.size());

    for (FlowIndex f : to_fix) {
      fixed[f] = true;
      ++num_fixed;
      alloc.set_rate(f, level);
      for (LinkId l : routing.path(f)) {
        const auto idx = static_cast<std::size_t>(l);
        if (bounded[idx]) residual[idx] -= level;
      }
    }
  }
  return alloc;
}

template Allocation<Rational> max_min_fair_lp<Rational>(const Topology&, const FlowSet&,
                                                        const Routing&);

Allocation<Rational> max_min_fair_lp_seeded(const Topology& topo, const FlowSet& flows,
                                            const Routing& routing,
                                            const std::vector<Rational>& seed_rates) {
  if (seed_rates.size() == flows.size()) {
    Allocation<Rational> seeded(seed_rates);
    if (is_max_min_fair<Rational>(topo, routing, seeded)) {
      OBS_COUNTER_INC("lp.seed_hits");
      return seeded;
    }
  }
  OBS_COUNTER_INC("lp.seed_misses");
  return max_min_fair_lp<Rational>(topo, flows, routing);
}

Allocation<Rational> weighted_max_min_fair_lp(const Topology& topo, const FlowSet& flows,
                                              const Routing& routing,
                                              const std::vector<Rational>& weights) {
  using R = Rational;
  OBS_SPAN("lp.maxmin.solve");
  CF_CHECK(routing.size() == flows.size());
  CF_CHECK_MSG(weights.size() == flows.size(),
               "weights cover " << weights.size() << " flows, expected " << flows.size());
  for (const R& w : weights) CF_CHECK_MSG(R{0} < w, "weights must be strictly positive");

  const std::size_t num_flows = flows.size();
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  Allocation<R> alloc(num_flows);
  std::vector<bool> fixed(num_flows, false);
  std::size_t num_fixed = 0;

  std::vector<R> residual(topo.num_links(), R{0});
  std::vector<bool> bounded(topo.num_links(), false);
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    bounded[l] = true;
    residual[l] = capacity_as<R>(link);
  }

  while (num_fixed < num_flows) {
    std::vector<FlowIndex> active;
    std::vector<std::size_t> pos(num_flows, static_cast<std::size_t>(-1));
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!fixed[f]) {
        pos[f] = active.size();
        active.push_back(f);
      }
    }
    const std::size_t k = active.size();

    std::vector<std::size_t> lp_links;
    for (std::size_t l = 0; l < topo.num_links(); ++l) {
      if (!bounded[l]) continue;
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) {
          lp_links.push_back(l);
          break;
        }
      }
    }

    // LP 1: maximize t s.t. active loads within residuals, w_f t - x_f <= 0.
    const std::size_t num_vars = k + 1;
    std::vector<std::vector<R>> A;
    std::vector<R> b;
    for (std::size_t l : lp_links) {
      std::vector<R> row(num_vars, R{0});
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) row[pos[f]] += R{1};
      }
      A.push_back(std::move(row));
      b.push_back(residual[l]);
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<R> row(num_vars, R{0});
      row[i] = R{-1};
      row[k] = weights[active[i]];
      A.push_back(std::move(row));
      b.push_back(R{0});
    }
    std::vector<R> c(num_vars, R{0});
    c[k] = R{1};
    OBS_COUNTER_INC("lp.maxmin.rounds");
    OBS_COUNTER_INC("lp.maxmin.level_lps");
    const LpResult<R> level_lp = solve_lp<R>(A, b, c);
    CF_CHECK_MSG(level_lp.status == LpStatus::kOptimal,
                 "weighted max-min level LP unbounded");
    const R level = level_lp.objective;

    // LP 2 per flow with x_g = w_g*level + y_g: can y_f exceed 0?
    std::vector<std::vector<R>> A2;
    std::vector<R> b2;
    for (std::size_t l : lp_links) {
      std::vector<R> row(k, R{0});
      R active_weight{0};
      for (FlowIndex f : on_link[l]) {
        if (!fixed[f]) {
          row[pos[f]] += R{1};
          active_weight += weights[f];
        }
      }
      A2.push_back(std::move(row));
      R slack = residual[l] - active_weight * level;
      if (slack < R{0}) slack = R{0};
      b2.push_back(std::move(slack));
    }

    std::vector<FlowIndex> to_fix;
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<R> c2(k, R{0});
      c2[i] = R{1};
      OBS_COUNTER_INC("lp.maxmin.improve_lps");
      const LpResult<R> improve = solve_lp<R>(A2, b2, c2);
      CF_CHECK(improve.status == LpStatus::kOptimal);
      if (improve.objective == R{0}) to_fix.push_back(active[i]);
    }
    CF_CHECK_MSG(!to_fix.empty(), "weighted max-min LP made no progress");
    OBS_COUNTER_ADD("lp.maxmin.flows_frozen", to_fix.size());

    for (FlowIndex f : to_fix) {
      fixed[f] = true;
      ++num_fixed;
      alloc.set_rate(f, weights[f] * level);
      for (LinkId l : routing.path(f)) {
        const auto idx = static_cast<std::size_t>(l);
        if (bounded[idx]) residual[idx] -= weights[f] * level;
      }
    }
  }
  return alloc;
}

}  // namespace closfair
