// Splittable flows: the classic network-flow regime the paper contrasts
// against (§1, "Demand satisfaction").
//
// When a flow may be divided across its n middle-switch paths, any rates
// that satisfy the edge links can be routed inside a Clos network — so the
// splittable max-min fair allocation in C_n *equals* the macro-switch
// max-min allocation. This module witnesses that folklore computationally:
// given a collection, it returns the macro-switch rates together with a
// fractional routing (per-flow middle shares) found by the general-form
// exact LP, certified feasible. The unsplittable machinery elsewhere then
// quantifies exactly how much the single-path restriction costs — which is
// the whole subject of the paper.
#pragma once

#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"
#include "util/rational.hpp"

namespace closfair {

struct SplittableMaxMin {
  /// Per-flow rates (equal to the macro-switch max-min rates).
  Allocation<Rational> rates;
  /// shares[f][m-1] = rate of flow f sent via middle m; rows sum to rates.
  std::vector<std::vector<Rational>> shares;
};

/// The splittable max-min fair allocation in `net`, with a witness
/// fractional routing. The companion macro-switch must have matching
/// dimensions. Throws ContractViolation if the witness LP is infeasible —
/// which would falsify the demand-satisfaction folklore and therefore
/// indicates a library bug.
[[nodiscard]] SplittableMaxMin splittable_max_min(const ClosNetwork& net,
                                                  const MacroSwitch& ms,
                                                  const FlowCollection& specs);

/// Check that a fractional routing carries the given rates within all link
/// capacities (exact).
[[nodiscard]] bool fractional_routing_feasible(const ClosNetwork& net, const FlowSet& flows,
                                               const std::vector<std::vector<Rational>>& shares);

}  // namespace closfair
