// Dense simplex solver for linear programs in the inequality form
//
//   maximize c^T x   subject to   A x <= b,  x >= 0,   with  b >= 0.
//
// The b >= 0 restriction means the all-slack basis is feasible, so no phase-1
// is needed; every LP closfair poses (link-capacity constraints, fairness
// level constraints after shifting) satisfies it.
//
// Instantiated with R = Rational the solver is *exact*: pivots never divide
// by anything but nonzero rationals and Bland's anti-cycling rule guarantees
// termination, making it a trustworthy independent oracle against the
// combinatorial algorithms (water-filling, matching). R = double gives the
// usual numeric solver for larger instances.
#pragma once

#include <vector>

#include "util/check.hpp"
#include "util/rational.hpp"

namespace closfair {

enum class LpStatus {
  kOptimal,
  kUnbounded,
};

template <typename R>
struct LpResult {
  LpStatus status = LpStatus::kOptimal;
  R objective{0};
  std::vector<R> x;  ///< optimal primal point (empty when unbounded)
};

/// Solve max c^T x s.t. Ax <= b, x >= 0, b >= 0.
///
/// `A` is row-major with m rows of n entries; `b` has m entries (each >= 0);
/// `c` has n entries. Throws ContractViolation on shape mismatch or b < 0.
template <typename R>
[[nodiscard]] LpResult<R> solve_lp(const std::vector<std::vector<R>>& A,
                                   const std::vector<R>& b, const std::vector<R>& c);

/// A general-form LP:
///   maximize c^T x  s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  x >= 0,
/// with b of any sign. Solved by two-phase simplex (phase 1 drives the
/// artificial variables to zero); detects infeasibility.
template <typename R>
struct GeneralLp {
  std::vector<std::vector<R>> A_ub;
  std::vector<R> b_ub;
  std::vector<std::vector<R>> A_eq;
  std::vector<R> b_eq;
  std::vector<R> c;
};

enum class GeneralLpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

template <typename R>
struct GeneralLpResult {
  GeneralLpStatus status = GeneralLpStatus::kOptimal;
  R objective{0};
  std::vector<R> x;
};

template <typename R>
[[nodiscard]] GeneralLpResult<R> solve_lp_general(const GeneralLp<R>& lp);

}  // namespace closfair
