// Max-min fair allocation by iterative linear programming.
//
// The classical LP formulation of Definition 2.1: repeatedly maximize a
// common rate floor t over the still-unfixed flows subject to residual link
// capacities, then freeze exactly the flows whose rate cannot exceed t while
// every other unfixed flow keeps at least t. With R = Rational and the exact
// simplex (lp/simplex.hpp) this is a fully independent oracle for the
// water-filling algorithm — the two implementations share no code beyond the
// topology types, and the test suite demands exact equality of their outputs.
#pragma once

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

/// Max-min fair allocation for a fixed routing, via iterative LP.
/// Same preconditions as max_min_fair (every flow crosses a bounded link).
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair_lp(const Topology& topo, const FlowSet& flows,
                                            const Routing& routing);

/// Warm-started LP oracle: certify `seed_rates` as the max-min fair
/// allocation via the bottleneck condition (Lemma 2.2) and return it
/// verbatim on success (lp.seed_hits); otherwise run the cold iterative LP
/// (lp.seed_misses). Uniqueness of the max-min allocation makes an accepted
/// seed byte-identical to the cold LP result — the certifier replaces the
/// previous basis wholesale, which is the strongest warm start an unchanged
/// objective admits.
[[nodiscard]] Allocation<Rational> max_min_fair_lp_seeded(
    const Topology& topo, const FlowSet& flows, const Routing& routing,
    const std::vector<Rational>& seed_rates);

/// Weighted variant: maximize the common normalized floor t with
/// x_f >= w_f * t, freezing flows whose normalized rate cannot exceed t.
/// The independent oracle for fairness/weighted.hpp; weights must be
/// strictly positive.
[[nodiscard]] Allocation<Rational> weighted_max_min_fair_lp(
    const Topology& topo, const FlowSet& flows, const Routing& routing,
    const std::vector<Rational>& weights);

}  // namespace closfair
