#include "lp/throughput_lp.hpp"

#include "lp/simplex.hpp"

namespace closfair {

template <typename R>
MaxThroughputResult<R> max_throughput_lp(const Topology& topo, const FlowSet& flows,
                                         const Routing& routing) {
  CF_CHECK(routing.size() == flows.size());
  const std::size_t num_flows = flows.size();
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  std::vector<std::vector<R>> A;
  std::vector<R> b;
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded || on_link[l].empty()) continue;
    std::vector<R> row(num_flows, R{0});
    for (FlowIndex f : on_link[l]) row[f] += R{1};
    A.push_back(std::move(row));
    b.push_back(capacity_as<R>(link));
  }
  const std::vector<R> c(num_flows, R{1});

  const LpResult<R> lp = solve_lp<R>(A, b, c);
  CF_CHECK_MSG(lp.status == LpStatus::kOptimal,
               "throughput LP unbounded: some flow crosses no bounded link");
  return MaxThroughputResult<R>{lp.objective, Allocation<R>{lp.x}};
}

template MaxThroughputResult<Rational> max_throughput_lp<Rational>(const Topology&,
                                                                   const FlowSet&,
                                                                   const Routing&);
template MaxThroughputResult<double> max_throughput_lp<double>(const Topology&,
                                                               const FlowSet&,
                                                               const Routing&);

}  // namespace closfair
