#include "lp/splittable.hpp"

#include "fairness/waterfill.hpp"
#include "lp/simplex.hpp"

namespace closfair {

SplittableMaxMin splittable_max_min(const ClosNetwork& net, const MacroSwitch& ms,
                                    const FlowCollection& specs) {
  CF_CHECK_MSG(net.num_tors() == ms.num_tors() &&
                   net.servers_per_tor() == ms.servers_per_tor(),
               "Clos network and macro-switch have mismatched dimensions");
  const FlowSet flows = instantiate(net, specs);
  const int n = net.num_middles();
  const std::size_t num_flows = flows.size();

  // The optimum: macro-switch max-min rates. Any feasible Clos allocation is
  // macro-feasible, so nothing can lexicographically exceed these; the LP
  // below witnesses they are attainable with splitting.
  const Allocation<Rational> macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

  SplittableMaxMin result;
  result.rates = macro;
  result.shares.assign(num_flows, std::vector<Rational>(static_cast<std::size_t>(n)));
  if (num_flows == 0) return result;

  // Feasibility LP over x_{f,m} >= 0:
  //   sum_m x_{f,m} = rate_f                       (flow conservation)
  //   sum_{f from ToR i} x_{f,m} <= cap(I_i M_m)   (uplinks)
  //   sum_{f to ToR j}  x_{f,m} <= cap(M_m O_j)    (downlinks)
  // Edge links carry rate_f regardless of the split and are feasible by
  // macro-switch feasibility.
  const auto var = [n](FlowIndex f, int m) {
    return f * static_cast<std::size_t>(n) + static_cast<std::size_t>(m - 1);
  };
  const std::size_t num_vars = num_flows * static_cast<std::size_t>(n);

  GeneralLp<Rational> lp;
  lp.c.assign(num_vars, Rational{0});
  for (FlowIndex f = 0; f < num_flows; ++f) {
    std::vector<Rational> row(num_vars, Rational{0});
    for (int m = 1; m <= n; ++m) row[var(f, m)] = Rational{1};
    lp.A_eq.push_back(std::move(row));
    lp.b_eq.push_back(macro.rate(f));
  }
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int m = 1; m <= n; ++m) {
      std::vector<Rational> up(num_vars, Rational{0});
      std::vector<Rational> down(num_vars, Rational{0});
      bool up_used = false;
      bool down_used = false;
      for (FlowIndex f = 0; f < num_flows; ++f) {
        if (net.source_coord(flows[f].src).tor == i) {
          up[var(f, m)] = Rational{1};
          up_used = true;
        }
        if (net.dest_coord(flows[f].dst).tor == i) {
          down[var(f, m)] = Rational{1};
          down_used = true;
        }
      }
      if (up_used) {
        lp.A_ub.push_back(std::move(up));
        lp.b_ub.push_back(net.topology().link(net.uplink(i, m)).capacity);
      }
      if (down_used) {
        lp.A_ub.push_back(std::move(down));
        lp.b_ub.push_back(net.topology().link(net.downlink(m, i)).capacity);
      }
    }
  }

  const GeneralLpResult<Rational> witness = solve_lp_general(lp);
  CF_CHECK_MSG(witness.status == GeneralLpStatus::kOptimal,
               "splittable routing LP infeasible: demand-satisfaction folklore violated "
               "(library bug)");
  for (FlowIndex f = 0; f < num_flows; ++f) {
    for (int m = 1; m <= n; ++m) {
      result.shares[f][static_cast<std::size_t>(m - 1)] = witness.x[var(f, m)];
    }
  }
  return result;
}

bool fractional_routing_feasible(const ClosNetwork& net, const FlowSet& flows,
                                 const std::vector<std::vector<Rational>>& shares) {
  CF_CHECK(shares.size() == flows.size());
  const int n = net.num_middles();
  std::vector<Rational> load(net.topology().num_links(), Rational{0});
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    CF_CHECK_MSG(shares[f].size() == static_cast<std::size_t>(n),
                 "flow " << f << " has " << shares[f].size() << " middle shares, expected "
                         << n);
    for (int m = 1; m <= n; ++m) {
      const Rational& share = shares[f][static_cast<std::size_t>(m - 1)];
      if (share.is_negative()) return false;
      if (share.is_zero()) continue;
      for (LinkId l : net.path(flows[f].src, flows[f].dst, m)) {
        load[static_cast<std::size_t>(l)] += share;
      }
    }
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = net.topology().link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    if (link.capacity < load[l]) return false;
  }
  return true;
}

}  // namespace closfair
