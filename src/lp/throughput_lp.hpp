// Maximum throughput allocation for a fixed routing, as an LP (Definition
// 3.1): maximize the total rate subject to link capacities.
//
// In a macro-switch with unit edge capacities the optimum equals the maximum
// matching size of G^MS (Lemma 3.2); the test suite checks the LP value
// against Hopcroft–Karp, tying the two folklore characterizations together.
#pragma once

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

template <typename R>
struct MaxThroughputResult {
  R throughput{0};
  Allocation<R> alloc;
};

/// Maximize total rate subject to link capacities for a fixed routing.
template <typename R>
[[nodiscard]] MaxThroughputResult<R> max_throughput_lp(const Topology& topo,
                                                       const FlowSet& flows,
                                                       const Routing& routing);

}  // namespace closfair
