#include "lp/simplex.hpp"

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace closfair {
namespace {

// Tableau layout: m constraint rows + 1 objective row; n structural columns,
// m slack columns, 1 rhs column. basis[i] is the column currently basic in
// row i (initially the slacks).
template <typename R>
class Tableau {
 public:
  Tableau(const std::vector<std::vector<R>>& A, const std::vector<R>& b,
          const std::vector<R>& c)
      : m_(A.size()), n_(c.size()), cols_(n_ + m_ + 1) {
    CF_CHECK_MSG(b.size() == m_, "b has " << b.size() << " rows, A has " << m_);
    rows_.assign(m_ + 1, std::vector<R>(cols_, R{0}));
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      CF_CHECK_MSG(A[i].size() == n_, "A row " << i << " has " << A[i].size()
                                               << " cols, expected " << n_);
      CF_CHECK_MSG(!(b[i] < R{0}), "solve_lp requires b >= 0 (row " << i << ")");
      for (std::size_t j = 0; j < n_; ++j) rows_[i][j] = A[i][j];
      rows_[i][n_ + i] = R{1};  // slack
      rows_[i][cols_ - 1] = b[i];
      basis_[i] = n_ + i;
    }
    // Objective row stores -c so that optimality == no negative entries.
    for (std::size_t j = 0; j < n_; ++j) rows_[m_][j] = R{0} - c[j];
  }

  LpResult<R> run() {
    OBS_SPAN("lp.solve");
    OBS_COUNTER_INC("lp.solves");
    while (true) {
      const std::size_t enter = entering_column();
      if (enter == kNoCol) break;  // optimal
      const std::size_t leave = leaving_row(enter);
      if (leave == kNoRow) {
        OBS_COUNTER_INC("lp.unbounded");
        return LpResult<R>{LpStatus::kUnbounded, R{0}, {}};
      }
      OBS_COUNTER_INC("lp.pivots");
      if (rows_[leave][cols_ - 1] == R{0}) OBS_COUNTER_INC("lp.degenerate_pivots");
      pivot(leave, enter);
    }
    LpResult<R> result;
    result.status = LpStatus::kOptimal;
    result.objective = rows_[m_][cols_ - 1];
    result.x.assign(n_, R{0});
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) result.x[basis_[i]] = rows_[i][cols_ - 1];
    }
    return result;
  }

 private:
  static constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  // Bland's rule: the lowest-index column with a negative reduced cost.
  [[nodiscard]] std::size_t entering_column() const {
    for (std::size_t j = 0; j + 1 < cols_; ++j) {
      if (rows_[m_][j] < R{0}) return j;
    }
    return kNoCol;
  }

  // Minimum-ratio test; ties broken by the smallest basic variable index
  // (the second half of Bland's rule).
  [[nodiscard]] std::size_t leaving_row(std::size_t enter) const {
    std::size_t best = kNoRow;
    R best_ratio{0};
    for (std::size_t i = 0; i < m_; ++i) {
      if (!(rows_[i][enter] > R{0})) continue;
      const R ratio = rows_[i][cols_ - 1] / rows_[i][enter];
      if (best == kNoRow || ratio < best_ratio ||
          (ratio == best_ratio && basis_[i] < basis_[best])) {
        best = i;
        best_ratio = ratio;
      }
    }
    return best;
  }

  void pivot(std::size_t row, std::size_t col) {
    const R pivot_value = rows_[row][col];
    CF_CHECK(!(pivot_value == R{0}));
    for (auto& cell : rows_[row]) cell /= pivot_value;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const R factor = rows_[i][col];
      if (factor == R{0}) continue;
      for (std::size_t j = 0; j < cols_; ++j) {
        rows_[i][j] -= factor * rows_[row][j];
      }
    }
    basis_[row] = col;
  }

  std::size_t m_;
  std::size_t n_;
  std::size_t cols_;
  std::vector<std::vector<R>> rows_;
  std::vector<std::size_t> basis_;
};

}  // namespace

namespace {

// Two-phase simplex for the general form (arbitrary-sign b, equalities).
// Rows are normalized to equalities with non-negative rhs; phase 1 drives
// the artificial variables out, phase 2 optimizes the real objective with
// artificial columns barred from entering. Bland's rule throughout.
template <typename R>
class TwoPhaseTableau {
 public:
  explicit TwoPhaseTableau(const GeneralLp<R>& lp) : n_(lp.c.size()) {
    CF_CHECK(lp.A_ub.size() == lp.b_ub.size());
    CF_CHECK(lp.A_eq.size() == lp.b_eq.size());
    const std::size_t m = lp.A_ub.size() + lp.A_eq.size();

    // Column layout: n structural | up to m slack/surplus | up to m artificial.
    // We materialize exactly one slack/surplus per inequality row and one
    // artificial per row that needs one.
    struct RowSpec {
      std::vector<R> coeffs;
      R rhs{0};
      bool inequality = false;
    };
    std::vector<RowSpec> specs;
    specs.reserve(m);
    for (std::size_t i = 0; i < lp.A_ub.size(); ++i) {
      CF_CHECK_MSG(lp.A_ub[i].size() == n_, "A_ub row width mismatch");
      specs.push_back(RowSpec{lp.A_ub[i], lp.b_ub[i], true});
    }
    for (std::size_t i = 0; i < lp.A_eq.size(); ++i) {
      CF_CHECK_MSG(lp.A_eq[i].size() == n_, "A_eq row width mismatch");
      specs.push_back(RowSpec{lp.A_eq[i], lp.b_eq[i], false});
    }

    // First pass: count auxiliary columns.
    std::size_t num_slack = 0;
    for (const RowSpec& spec : specs) {
      if (spec.inequality) ++num_slack;
    }
    slack_base_ = n_;
    art_base_ = n_ + num_slack;
    // Artificials: inequality rows with negative rhs, plus all equality rows.
    std::size_t num_art = 0;
    for (const RowSpec& spec : specs) {
      if (!spec.inequality || spec.rhs < R{0}) ++num_art;
    }
    cols_ = art_base_ + num_art + 1;  // +1 rhs

    rows_.assign(specs.size(), std::vector<R>(cols_, R{0}));
    basis_.assign(specs.size(), 0);
    std::size_t slack_at = slack_base_;
    std::size_t art_at = art_base_;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const bool negate = specs[i].rhs < R{0};
      for (std::size_t j = 0; j < n_; ++j) {
        rows_[i][j] = negate ? R{0} - specs[i].coeffs[j] : specs[i].coeffs[j];
      }
      rows_[i][cols_ - 1] = negate ? R{0} - specs[i].rhs : specs[i].rhs;
      if (specs[i].inequality) {
        rows_[i][slack_at] = negate ? R{-1} : R{1};
        if (!negate) basis_[i] = slack_at;
        ++slack_at;
      }
      if (!specs[i].inequality || negate) {
        rows_[i][art_at] = R{1};
        basis_[i] = art_at;
        ++art_at;
      }
    }
    c_full_.assign(cols_ - 1, R{0});
    for (std::size_t j = 0; j < n_; ++j) c_full_[j] = lp.c[j];
  }

  GeneralLpResult<R> run() {
    OBS_SPAN("lp.solve_general");
    OBS_COUNTER_INC("lp.two_phase_solves");
    // Phase 1: maximize -(sum of artificials).
    std::vector<R> phase1(cols_ - 1, R{0});
    for (std::size_t j = art_base_; j + 1 < cols_; ++j) phase1[j] = R{-1};
    build_objective(phase1);
    if (!optimize(/*allow_artificials=*/true)) {
      // Phase 1 objective is bounded (<= 0), so unboundedness is impossible.
      throw ContractViolation("phase-1 LP reported unbounded");
    }
    if (z_[cols_ - 1] < R{0}) {
      OBS_COUNTER_INC("lp.infeasible");
      return GeneralLpResult<R>{GeneralLpStatus::kInfeasible, R{0}, {}};
    }
    pivot_out_artificials();

    // Phase 2: the real objective, artificials barred.
    build_objective(c_full_);
    if (!optimize(/*allow_artificials=*/false)) {
      OBS_COUNTER_INC("lp.unbounded");
      return GeneralLpResult<R>{GeneralLpStatus::kUnbounded, R{0}, {}};
    }
    GeneralLpResult<R> result;
    result.status = GeneralLpStatus::kOptimal;
    result.objective = z_[cols_ - 1];
    result.x.assign(n_, R{0});
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < n_) result.x[basis_[i]] = rows_[i][cols_ - 1];
    }
    return result;
  }

 private:
  // Rebuild the reduced-cost row for objective `c` over the current basis —
  // the dense-tableau analogue of a basis refactorization.
  void build_objective(const std::vector<R>& c) {
    OBS_COUNTER_INC("lp.refactorizations");
    z_.assign(cols_, R{0});
    for (std::size_t j = 0; j + 1 < cols_; ++j) z_[j] = R{0} - c[j];
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const R& cb = c[basis_[i]];
      if (cb == R{0}) continue;
      for (std::size_t j = 0; j < cols_; ++j) z_[j] += cb * rows_[i][j];
    }
  }

  // Bland pivoting until optimal; false if unbounded.
  bool optimize(bool allow_artificials) {
    const std::size_t limit = allow_artificials ? cols_ - 1 : art_base_;
    while (true) {
      std::size_t enter = cols_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (z_[j] < R{0}) {
          enter = j;
          break;
        }
      }
      if (enter == cols_) return true;

      std::size_t leave = rows_.size();
      R best_ratio{0};
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (!(rows_[i][enter] > R{0})) continue;
        const R ratio = rows_[i][cols_ - 1] / rows_[i][enter];
        if (leave == rows_.size() || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == rows_.size()) return false;
      OBS_COUNTER_INC("lp.pivots");
      if (rows_[leave][cols_ - 1] == R{0}) OBS_COUNTER_INC("lp.degenerate_pivots");
      pivot(leave, enter);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const R pivot_value = rows_[row][col];
    CF_CHECK(!(pivot_value == R{0}));
    for (auto& cell : rows_[row]) cell /= pivot_value;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i == row) continue;
      const R factor = rows_[i][col];
      if (factor == R{0}) continue;
      for (std::size_t j = 0; j < cols_; ++j) rows_[i][j] -= factor * rows_[row][j];
    }
    const R zfactor = z_[col];
    if (!(zfactor == R{0})) {
      for (std::size_t j = 0; j < cols_; ++j) z_[j] -= zfactor * rows_[row][j];
    }
    basis_[row] = col;
  }

  // After phase 1, pivot basic artificials (value 0) out where a real column
  // has a nonzero coefficient; all-zero rows are inert and stay.
  void pivot_out_artificials() {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < art_base_) continue;
      for (std::size_t j = 0; j < art_base_; ++j) {
        if (!(rows_[i][j] == R{0})) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  std::size_t n_;
  std::size_t slack_base_ = 0;
  std::size_t art_base_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::vector<R>> rows_;
  std::vector<R> z_;
  std::vector<std::size_t> basis_;
  std::vector<R> c_full_;
};

}  // namespace

template <typename R>
LpResult<R> solve_lp(const std::vector<std::vector<R>>& A, const std::vector<R>& b,
                     const std::vector<R>& c) {
  Tableau<R> tableau(A, b, c);
  return tableau.run();
}

template <typename R>
GeneralLpResult<R> solve_lp_general(const GeneralLp<R>& lp) {
  TwoPhaseTableau<R> tableau(lp);
  return tableau.run();
}

template GeneralLpResult<Rational> solve_lp_general<Rational>(const GeneralLp<Rational>&);
template GeneralLpResult<double> solve_lp_general<double>(const GeneralLp<double>&);

template LpResult<Rational> solve_lp<Rational>(const std::vector<std::vector<Rational>>&,
                                               const std::vector<Rational>&,
                                               const std::vector<Rational>&);
template LpResult<double> solve_lp<double>(const std::vector<std::vector<double>>&,
                                           const std::vector<double>&,
                                           const std::vector<double>&);

}  // namespace closfair
