#include "workload/stochastic.hpp"

#include <algorithm>

namespace closfair {
namespace {

// Global 0-based server index -> 1-based (tor, server) coordinates.
struct Coord {
  int tor;
  int server;
};

Coord coord_of(const Fabric& fabric, std::size_t global) {
  return Coord{static_cast<int>(global) / fabric.servers_per_tor + 1,
               static_cast<int>(global) % fabric.servers_per_tor + 1};
}

std::size_t random_server(const Fabric& fabric, Rng& rng) {
  return rng.next_below(static_cast<std::uint64_t>(fabric.num_servers()));
}

// Self-flows (source server == destination server) never enter the fabric:
// they traverse no bounded link, contribute phantom throughput to T-metrics,
// and crash rcp_rate_control ("flow with no bounded link"). Every random
// generator below excludes them, which needs at least two servers.
void check_two_servers(const Fabric& fabric) {
  CF_CHECK_MSG(fabric.num_servers() > 1,
               "self-flow-free workloads need at least 2 servers, fabric has "
                   << fabric.num_servers());
}

}  // namespace

FlowCollection uniform_random(const Fabric& fabric, std::size_t count, Rng& rng) {
  check_two_servers(fabric);
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = random_server(fabric, rng);
    std::size_t dst = random_server(fabric, rng);
    while (dst == src) dst = random_server(fabric, rng);
    const Coord s = coord_of(fabric, src);
    const Coord t = coord_of(fabric, dst);
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection random_permutation(const Fabric& fabric, Rng& rng) {
  check_two_servers(fabric);
  // Sample a derangement: a permutation with a fixed point maps some server
  // to itself — a self-flow. Whole-permutation rejection keeps the result
  // uniform over derangements and deterministic per seed; the acceptance
  // probability tends to 1/e, so a few draws suffice in expectation.
  auto perm = rng.permutation(static_cast<std::size_t>(fabric.num_servers()));
  auto has_fixed_point = [](const std::vector<std::size_t>& p) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] == i) return true;
    }
    return false;
  };
  while (has_fixed_point(perm)) {
    perm = rng.permutation(static_cast<std::size_t>(fabric.num_servers()));
  }
  FlowCollection flows;
  flows.reserve(perm.size());
  for (std::size_t src = 0; src < perm.size(); ++src) {
    const Coord s = coord_of(fabric, src);
    const Coord t = coord_of(fabric, perm[src]);
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection zipf_destinations(const Fabric& fabric, std::size_t count, double skew,
                                 Rng& rng) {
  check_two_servers(fabric);
  const ZipfSampler sampler(static_cast<std::size_t>(fabric.num_servers()), skew);
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = random_server(fabric, rng);
    std::size_t dst = sampler.sample(rng);
    while (dst == src) dst = sampler.sample(rng);
    const Coord s = coord_of(fabric, src);
    const Coord t = coord_of(fabric, dst);
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection incast(const Fabric& fabric, std::size_t senders, int dst_tor, int dst_server,
                      Rng& rng) {
  CF_CHECK(dst_tor >= 1 && dst_tor <= fabric.num_tors);
  CF_CHECK(dst_server >= 1 && dst_server <= fabric.servers_per_tor);
  check_two_servers(fabric);
  // The destination server is excluded from the sender pool: draw over the
  // other num_servers-1 servers and shift past the destination's slot.
  const std::size_t dst_global = static_cast<std::size_t>(dst_tor - 1) *
                                     static_cast<std::size_t>(fabric.servers_per_tor) +
                                 static_cast<std::size_t>(dst_server - 1);
  FlowCollection flows;
  flows.reserve(senders);
  for (std::size_t i = 0; i < senders; ++i) {
    std::size_t src =
        rng.next_below(static_cast<std::uint64_t>(fabric.num_servers()) - 1);
    if (src >= dst_global) ++src;
    const Coord s = coord_of(fabric, src);
    flows.push_back(FlowSpec{s.tor, s.server, dst_tor, dst_server});
  }
  return flows;
}

FlowCollection hotspot(const Fabric& fabric, std::size_t count, int hot_tor,
                       double hot_fraction, Rng& rng) {
  CF_CHECK(hot_tor >= 1 && hot_tor <= fabric.num_tors);
  CF_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  check_two_servers(fabric);
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Resample the whole (source, branch, destination) tuple on a self-flow:
    // resampling only the destination could loop forever when the hot branch
    // is forced (hot_fraction == 1) and the source *is* the single hot
    // server; re-drawing the source always terminates with >= 2 servers.
    Coord s{};
    Coord t{};
    do {
      const std::size_t src = random_server(fabric, rng);
      s = coord_of(fabric, src);
      if (rng.next_bool(hot_fraction)) {
        t = Coord{hot_tor,
                  static_cast<int>(rng.next_below(
                      static_cast<std::uint64_t>(fabric.servers_per_tor))) +
                      1};
      } else {
        t = coord_of(fabric, random_server(fabric, rng));
      }
    } while (s.tor == t.tor && s.server == t.server);
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection stride(const Fabric& fabric, int stride_amount) {
  const int servers = fabric.num_servers();
  CF_CHECK(servers > 0);
  FlowCollection flows;
  flows.reserve(static_cast<std::size_t>(servers));
  for (int g = 0; g < servers; ++g) {
    const Coord s = coord_of(fabric, static_cast<std::size_t>(g));
    const int dst = ((g + stride_amount) % servers + servers) % servers;
    const Coord t = coord_of(fabric, static_cast<std::size_t>(dst));
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection tor_all_to_all(const Fabric& fabric) {
  FlowCollection flows;
  for (int i = 1; i <= fabric.num_tors; ++i) {
    int j = 1;
    for (int k = 1; k <= fabric.num_tors; ++k) {
      if (k == i) continue;
      flows.push_back(FlowSpec{i, j, k, j});
      j = j % fabric.servers_per_tor + 1;
    }
  }
  return flows;
}

}  // namespace closfair
