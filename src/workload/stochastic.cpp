#include "workload/stochastic.hpp"

namespace closfair {
namespace {

// Global 0-based server index -> 1-based (tor, server) coordinates.
struct Coord {
  int tor;
  int server;
};

Coord coord_of(const Fabric& fabric, std::size_t global) {
  return Coord{static_cast<int>(global) / fabric.servers_per_tor + 1,
               static_cast<int>(global) % fabric.servers_per_tor + 1};
}

std::size_t random_server(const Fabric& fabric, Rng& rng) {
  return rng.next_below(static_cast<std::uint64_t>(fabric.num_servers()));
}

}  // namespace

FlowCollection uniform_random(const Fabric& fabric, std::size_t count, Rng& rng) {
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord s = coord_of(fabric, random_server(fabric, rng));
    const Coord t = coord_of(fabric, random_server(fabric, rng));
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection random_permutation(const Fabric& fabric, Rng& rng) {
  const auto perm = rng.permutation(static_cast<std::size_t>(fabric.num_servers()));
  FlowCollection flows;
  flows.reserve(perm.size());
  for (std::size_t src = 0; src < perm.size(); ++src) {
    const Coord s = coord_of(fabric, src);
    const Coord t = coord_of(fabric, perm[src]);
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection zipf_destinations(const Fabric& fabric, std::size_t count, double skew,
                                 Rng& rng) {
  const ZipfSampler sampler(static_cast<std::size_t>(fabric.num_servers()), skew);
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord s = coord_of(fabric, random_server(fabric, rng));
    const Coord t = coord_of(fabric, sampler.sample(rng));
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection incast(const Fabric& fabric, std::size_t senders, int dst_tor, int dst_server,
                      Rng& rng) {
  CF_CHECK(dst_tor >= 1 && dst_tor <= fabric.num_tors);
  CF_CHECK(dst_server >= 1 && dst_server <= fabric.servers_per_tor);
  FlowCollection flows;
  flows.reserve(senders);
  for (std::size_t i = 0; i < senders; ++i) {
    const Coord s = coord_of(fabric, random_server(fabric, rng));
    flows.push_back(FlowSpec{s.tor, s.server, dst_tor, dst_server});
  }
  return flows;
}

FlowCollection hotspot(const Fabric& fabric, std::size_t count, int hot_tor,
                       double hot_fraction, Rng& rng) {
  CF_CHECK(hot_tor >= 1 && hot_tor <= fabric.num_tors);
  CF_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  FlowCollection flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Coord s = coord_of(fabric, random_server(fabric, rng));
    Coord t;
    if (rng.next_bool(hot_fraction)) {
      t = Coord{hot_tor,
                static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(fabric.servers_per_tor))) +
                    1};
    } else {
      t = coord_of(fabric, random_server(fabric, rng));
    }
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection stride(const Fabric& fabric, int stride_amount) {
  const int servers = fabric.num_servers();
  CF_CHECK(servers > 0);
  FlowCollection flows;
  flows.reserve(static_cast<std::size_t>(servers));
  for (int g = 0; g < servers; ++g) {
    const Coord s = coord_of(fabric, static_cast<std::size_t>(g));
    const int dst = ((g + stride_amount) % servers + servers) % servers;
    const Coord t = coord_of(fabric, static_cast<std::size_t>(dst));
    flows.push_back(FlowSpec{s.tor, s.server, t.tor, t.server});
  }
  return flows;
}

FlowCollection tor_all_to_all(const Fabric& fabric) {
  FlowCollection flows;
  for (int i = 1; i <= fabric.num_tors; ++i) {
    int j = 1;
    for (int k = 1; k <= fabric.num_tors; ++k) {
      if (k == i) continue;
      flows.push_back(FlowSpec{i, j, k, j});
      j = j % fabric.servers_per_tor + 1;
    }
  }
  return flows;
}

}  // namespace closfair
