// Stochastic workload generators for the extended-version style evaluation
// (§6): the paper reports that on *stochastic* inputs, congestion-aware
// routing approximates macro-switch rates well, in contrast to the
// adversarial worst cases of §§3-5. These generators produce the standard
// data-center traffic patterns used for such studies.
//
// All generators emit coordinate-level FlowCollections for a fabric with
// `num_tors` ToRs and `servers_per_tor` servers per ToR (both sides), so the
// same collection instantiates on C_n and MS_n.
//
// No generator ever emits a self-flow (source server == destination server):
// such flows traverse no bounded link, inflate throughput metrics for free,
// and crash rcp_rate_control. Random generators therefore require fabrics
// with at least two servers and resample deterministically (per seed) until
// the endpoints differ.
#pragma once

#include <cstddef>

#include "flow/flow.hpp"
#include "util/rng.hpp"

namespace closfair {

/// Fabric dimensions for workload generation.
struct Fabric {
  int num_tors = 2;
  int servers_per_tor = 1;

  [[nodiscard]] int num_servers() const { return num_tors * servers_per_tor; }
};

/// `count` flows with source and destination chosen uniformly at random
/// among distinct servers (the destination is resampled until it differs
/// from the source).
[[nodiscard]] FlowCollection uniform_random(const Fabric& fabric, std::size_t count,
                                            Rng& rng);

/// One flow per source, destinations forming a uniformly random *derangement*
/// (classic permutation traffic; at most one flow per source and per
/// destination — the admission-control regime of §1 — and no server sends to
/// itself). Whole permutations are rejected until fixed-point-free, so the
/// result is uniform over derangements and deterministic per seed.
[[nodiscard]] FlowCollection random_permutation(const Fabric& fabric, Rng& rng);

/// `count` flows with uniform sources and Zipf(s)-skewed destinations (rank 1
/// = hottest server; resampled until distinct from the source). s = 0
/// degenerates to uniform.
[[nodiscard]] FlowCollection zipf_destinations(const Fabric& fabric, std::size_t count,
                                               double skew, Rng& rng);

/// Incast: `senders` flows from uniformly random sources into one
/// destination (1-based coordinates). The destination server is excluded
/// from the sender pool, so exactly `senders` flows cross the fabric.
[[nodiscard]] FlowCollection incast(const Fabric& fabric, std::size_t senders, int dst_tor,
                                    int dst_server, Rng& rng);

/// Hotspot: `count` flows; with probability `hot_fraction` the destination
/// lies on `hot_tor`, otherwise uniform. Self-flows resample the whole
/// (source, destination) pair, so the hot-branch probability is preserved
/// conditional on the pair being a real flow.
[[nodiscard]] FlowCollection hotspot(const Fabric& fabric, std::size_t count, int hot_tor,
                                     double hot_fraction, Rng& rng);

/// Stride: one flow per source; server g (global 0-based index) sends to
/// server (g + stride) mod num_servers.
[[nodiscard]] FlowCollection stride(const Fabric& fabric, int stride_amount);

/// ToR-level all-to-all: one flow from each ToR's server j to the matching
/// server of every other ToR (j cycles over servers). Size grows as
/// num_tors^2, so use small fabrics.
[[nodiscard]] FlowCollection tor_all_to_all(const Fabric& fabric);

}  // namespace closfair
