#include "workload/trace.hpp"

namespace closfair {

Trace poisson_trace(const TraceParams& params, Rng& rng) {
  CF_CHECK(params.arrival_rate > 0);
  CF_CHECK(params.mean_size > 0);

  const ZipfSampler zipf(static_cast<std::size_t>(params.fabric.num_servers()), 1.1);

  auto draw_spec = [&]() -> FlowSpec {
    auto coord_of = [&](std::size_t global) {
      return std::pair<int, int>{
          static_cast<int>(global) / params.fabric.servers_per_tor + 1,
          static_cast<int>(global) % params.fabric.servers_per_tor + 1};
    };
    // Self-flows never enter the fabric (no bounded link), so each pattern
    // resamples until the endpoints differ — same policy as the static
    // generators in workload/stochastic.cpp.
    const auto servers = static_cast<std::uint64_t>(params.fabric.num_servers());
    CF_CHECK_MSG(servers > 1, "self-flow-free traces need at least 2 servers");
    switch (params.endpoints) {
      case EndpointPattern::kUniform: {
        const std::size_t src = rng.next_below(servers);
        std::size_t dst = rng.next_below(servers);
        while (dst == src) dst = rng.next_below(servers);
        const auto [si, sj] = coord_of(src);
        const auto [ti, tj] = coord_of(dst);
        return FlowSpec{si, sj, ti, tj};
      }
      case EndpointPattern::kZipfDst: {
        const std::size_t src = rng.next_below(servers);
        std::size_t dst = zipf.sample(rng);
        while (dst == src) dst = zipf.sample(rng);
        const auto [si, sj] = coord_of(src);
        const auto [ti, tj] = coord_of(dst);
        return FlowSpec{si, sj, ti, tj};
      }
      case EndpointPattern::kIncast: {
        // Destination is server (1,1) = global 0; draw senders from the rest.
        const std::size_t src = rng.next_below(servers - 1) + 1;
        const auto [si, sj] = coord_of(src);
        return FlowSpec{si, sj, 1, 1};
      }
    }
    return FlowSpec{};
  };

  auto draw_size = [&]() -> double {
    switch (params.sizes) {
      case SizeDistribution::kFixed:
        return params.mean_size;
      case SizeDistribution::kExponential:
        return rng.next_exponential(1.0 / params.mean_size);
      case SizeDistribution::kBimodal:
        // 90% mice, 10% elephants; mean preserved:
        // 0.9*(m/10) + 0.1*(9.1 m) = m.
        return rng.next_bool(0.9) ? params.mean_size / 10.0 : params.mean_size * 9.1;
    }
    return params.mean_size;
  };

  Trace trace;
  trace.reserve(params.num_flows);
  double t = 0.0;
  for (std::size_t i = 0; i < params.num_flows; ++i) {
    t += rng.next_exponential(params.arrival_rate);
    trace.push_back(FlowArrival{t, draw_spec(), draw_size()});
  }
  return trace;
}

}  // namespace closfair
