// Dynamic flow arrival traces for the flow-level simulator (sim/event_sim.hpp).
//
// Poisson arrivals with configurable size distributions model the open-loop
// traffic of the extended-version evaluation and of the R1 discussion
// (scheduling vs congestion control, §7).
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {

/// One flow arrival: when, between which servers, how many capacity-seconds
/// of data (a size of 1.0 takes one second at full link rate).
struct FlowArrival {
  double time = 0.0;
  FlowSpec spec;
  double size = 1.0;
};

using Trace = std::vector<FlowArrival>;

enum class SizeDistribution {
  kFixed,        ///< every flow has mean_size
  kExponential,  ///< exponential with the given mean
  kBimodal,      ///< 90% mice at mean/10, 10% elephants at ~2x mean
};

enum class EndpointPattern {
  kUniform,   ///< uniform src and dst
  kZipfDst,   ///< uniform src, Zipf(1.1) dst
  kIncast,    ///< uniform src, fixed dst (ToR 1, server 1)
};

struct TraceParams {
  Fabric fabric;
  double arrival_rate = 1.0;  ///< flows per unit time (Poisson)
  std::size_t num_flows = 100;
  double mean_size = 1.0;
  SizeDistribution sizes = SizeDistribution::kExponential;
  EndpointPattern endpoints = EndpointPattern::kUniform;
};

/// Generate a trace of `num_flows` arrivals (sorted by time).
[[nodiscard]] Trace poisson_trace(const TraceParams& params, Rng& rng);

}  // namespace closfair
