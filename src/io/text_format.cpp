#include "io/text_format.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace closfair {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  throw ParseError(os.str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

int parse_int(const std::string& token, std::size_t line, const char* what) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(line, std::string{"expected integer for "} + what + ", got '" + token + "'");
  }
  return value;
}

Rational parse_rational(const std::string& token, std::size_t line, const char* what) {
  const auto slash = token.find('/');
  if (slash == std::string::npos) {
    return Rational{parse_int(token, line, what)};
  }
  const int num = parse_int(token.substr(0, slash), line, what);
  const int den = parse_int(token.substr(slash + 1), line, what);
  if (den == 0) fail(line, std::string{what} + ": zero denominator");
  return Rational{num, den};
}

// key=value option on the `clos` line.
std::pair<std::string, std::string> split_option(const std::string& token, std::size_t line) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    fail(line, "expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

void parse_clos_line(const std::vector<std::string>& tokens, std::size_t line,
                     InstanceSpec& spec, bool& have_clos) {
  if (have_clos) fail(line, "duplicate 'clos' line");
  have_clos = true;

  bool paper_form = false;
  ClosNetwork::Params params;
  bool saw_middles = false;
  bool saw_tors = false;
  bool saw_servers = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto [key, value] = split_option(tokens[i], line);
    if (key == "n") {
      const int n = parse_int(value, line, "n");
      if (n < 1) fail(line, "n must be >= 1");
      params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
      paper_form = true;
    } else if (key == "middles") {
      params.num_middles = parse_int(value, line, "middles");
      saw_middles = true;
    } else if (key == "tors") {
      params.num_tors = parse_int(value, line, "tors");
      saw_tors = true;
    } else if (key == "servers") {
      params.servers_per_tor = parse_int(value, line, "servers");
      saw_servers = true;
    } else if (key == "capacity") {
      params.link_capacity = parse_rational(value, line, "capacity");
    } else {
      fail(line, "unknown clos option '" + key + "'");
    }
  }
  if (paper_form && (saw_middles || saw_tors || saw_servers)) {
    fail(line, "use either n=... or middles=/tors=/servers=, not both");
  }
  if (!paper_form && !(saw_middles && saw_tors && saw_servers)) {
    fail(line, "clos needs n=... or all of middles=, tors=, servers=");
  }
  spec.params = params;
}

void parse_flow_line(const std::vector<std::string>& tokens, std::size_t line,
                     InstanceSpec& spec) {
  // flow A B -> C D [xK] [@R]
  if (tokens.size() < 6 || tokens[3] != "->") {
    fail(line,
         "expected: flow <src_tor> <src_server> -> <dst_tor> <dst_server> [xK] [@rate]");
  }
  FlowSpec flow;
  flow.src_tor = parse_int(tokens[1], line, "src_tor");
  flow.src_server = parse_int(tokens[2], line, "src_server");
  flow.dst_tor = parse_int(tokens[4], line, "dst_tor");
  flow.dst_server = parse_int(tokens[5], line, "dst_server");

  int multiplicity = 1;
  std::optional<Rational> rate;
  for (std::size_t i = 6; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t.size() >= 2 && t[0] == 'x') {
      multiplicity = parse_int(t.substr(1), line, "multiplicity");
      if (multiplicity < 1) fail(line, "multiplicity must be >= 1");
    } else if (t.size() >= 2 && t[0] == '@') {
      rate = parse_rational(t.substr(1), line, "rate");
      if (rate->is_negative()) fail(line, "target rate must be non-negative");
    } else {
      fail(line, "unexpected token '" + t + "' after flow (want xK or @rate)");
    }
  }
  for (int c = 0; c < multiplicity; ++c) {
    spec.flows.push_back(flow);
    spec.rates.push_back(rate);
  }
}

}  // namespace

InstanceSpec parse_instance(const std::string& text) {
  std::istringstream is(text);
  return parse_instance_stream(is);
}

InstanceSpec parse_instance_stream(std::istream& in) {
  InstanceSpec spec;
  bool have_clos = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "clos") {
      parse_clos_line(tokens, line_number, spec, have_clos);
    } else if (tokens[0] == "flow") {
      if (!have_clos) fail(line_number, "'flow' before 'clos'");
      parse_flow_line(tokens, line_number, spec);
    } else {
      fail(line_number, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!have_clos) throw ParseError("missing 'clos' line");

  // Validate coordinates against the declared dimensions.
  for (const FlowSpec& f : spec.flows) {
    CF_CHECK_MSG(f.src_tor >= 1 && f.src_tor <= spec.params.num_tors &&
                     f.dst_tor >= 1 && f.dst_tor <= spec.params.num_tors &&
                     f.src_server >= 1 && f.src_server <= spec.params.servers_per_tor &&
                     f.dst_server >= 1 && f.dst_server <= spec.params.servers_per_tor,
                 "flow coordinates out of range for declared clos dimensions");
  }
  return spec;
}

std::string format_instance(const InstanceSpec& spec) {
  std::ostringstream os;
  const auto& p = spec.params;
  if (p.num_tors == 2 * p.num_middles && p.servers_per_tor == p.num_middles &&
      p.link_capacity == Rational{1}) {
    os << "clos n=" << p.num_middles << '\n';
  } else {
    os << "clos middles=" << p.num_middles << " tors=" << p.num_tors
       << " servers=" << p.servers_per_tor;
    if (!(p.link_capacity == Rational{1})) os << " capacity=" << p.link_capacity;
    os << '\n';
  }
  // Coalesce consecutive identical flows (same endpoints and target rate)
  // into multiplicities.
  const bool with_rates = spec.rates.size() == spec.flows.size();
  for (std::size_t i = 0; i < spec.flows.size();) {
    std::size_t j = i;
    while (j < spec.flows.size() && spec.flows[j] == spec.flows[i] &&
           (!with_rates || spec.rates[j] == spec.rates[i])) {
      ++j;
    }
    const FlowSpec& f = spec.flows[i];
    os << "flow " << f.src_tor << ' ' << f.src_server << " -> " << f.dst_tor << ' '
       << f.dst_server;
    if (j - i > 1) os << " x" << (j - i);
    if (with_rates && spec.rates[i].has_value()) os << " @" << *spec.rates[i];
    os << '\n';
    i = j;
  }
  return os.str();
}

void write_rates_csv(std::ostream& out, const FlowCollection& flows,
                     const std::vector<std::string>& labels,
                     const std::vector<NamedAllocation>& allocations) {
  CF_CHECK(labels.empty() || labels.size() == flows.size());
  for (const NamedAllocation& named : allocations) {
    CF_CHECK(named.alloc != nullptr);
    CF_CHECK_MSG(named.alloc->size() == flows.size(),
                 "allocation '" << named.name << "' covers " << named.alloc->size()
                                << " flows, expected " << flows.size());
  }
  out << "flow,src_tor,src_server,dst_tor,dst_server";
  if (!labels.empty()) out << ",label";
  for (const NamedAllocation& named : allocations) {
    out << ',' << named.name << ',' << named.name << "_approx";
  }
  out << '\n';
  for (std::size_t f = 0; f < flows.size(); ++f) {
    out << f << ',' << flows[f].src_tor << ',' << flows[f].src_server << ','
        << flows[f].dst_tor << ',' << flows[f].dst_server;
    if (!labels.empty()) out << ',' << labels[f];
    for (const NamedAllocation& named : allocations) {
      const Rational& r = named.alloc->rate(f);
      out << ',' << r << ',' << r.to_double();
    }
    out << '\n';
  }
}

}  // namespace closfair
