#include "io/json_export.hpp"

namespace closfair {

Json to_json(const Allocation<Rational>& alloc) {
  Json rates = Json::array();
  Json approx = Json::array();
  for (const Rational& r : alloc.rates()) {
    rates.push_back(Json::string(r.to_string()));
    approx.push_back(Json::number(r.to_double()));
  }
  Json j = Json::object();
  j.set("rates", std::move(rates));
  j.set("rates_approx", std::move(approx));
  const Rational t = alloc.throughput();
  j.set("throughput", Json::string(t.to_string()));
  j.set("throughput_approx", Json::number(t.to_double()));
  return j;
}

Json to_json(const MacroAnalysis& analysis) {
  Json j = Json::object();
  j.set("maxmin", to_json(analysis.maxmin));
  j.set("t_maxmin", Json::string(analysis.t_maxmin.to_string()));
  j.set("t_max_throughput", Json::string(analysis.t_max_throughput.to_string()));
  j.set("price_of_fairness", Json::number(analysis.price_of_fairness.to_double()));
  Json matching = Json::array();
  for (FlowIndex f : analysis.max_matching) {
    matching.push_back(Json::number(static_cast<std::int64_t>(f)));
  }
  j.set("max_matching", std::move(matching));
  return j;
}

Json to_json(const Comparison& comparison) {
  Json j = Json::object();
  j.set("macro", to_json(comparison.macro));
  Json clos = Json::object();
  clos.set("maxmin", to_json(comparison.clos.maxmin));
  clos.set("throughput", Json::string(comparison.clos.throughput.to_string()));
  j.set("clos", std::move(clos));
  j.set("throughput_ratio", Json::number(comparison.throughput_ratio.to_double()));
  j.set("min_rate_ratio", Json::number(comparison.min_rate_ratio.to_double()));
  const char* lex = comparison.lex_vs_macro == std::strong_ordering::less      ? "less"
                    : comparison.lex_vs_macro == std::strong_ordering::greater ? "greater"
                                                                               : "equal";
  j.set("lex_vs_macro", Json::string(lex));
  return j;
}

Json to_json(const SimStats& stats) {
  Json j = Json::object();
  j.set("completed", Json::number(static_cast<std::int64_t>(stats.completed)));
  j.set("mean_fct", Json::number(stats.mean_fct));
  j.set("p50_fct", Json::number(stats.p50_fct));
  j.set("p99_fct", Json::number(stats.p99_fct));
  j.set("max_fct", Json::number(stats.max_fct));
  j.set("mean_slowdown", Json::number(stats.mean_slowdown));
  j.set("finish_time", Json::number(stats.finish_time));
  return j;
}

Json metrics_to_json(const obs::MetricsSnapshot& snapshot) {
  Json counters = Json::object();
  for (const auto& c : snapshot.counters) {
    counters.set(c.name, Json::number(static_cast<std::int64_t>(c.value)));
  }
  Json gauges = Json::object();
  for (const auto& g : snapshot.gauges) {
    gauges.set(g.name, Json::number(g.value));
  }
  Json histograms = Json::object();
  for (const auto& h : snapshot.histograms) {
    Json entry = Json::object();
    entry.set("count", Json::number(static_cast<std::int64_t>(h.count)));
    entry.set("total_ns", Json::number(static_cast<std::int64_t>(h.total_ns)));
    entry.set("min_ns", Json::number(static_cast<std::int64_t>(h.min_ns)));
    entry.set("max_ns", Json::number(static_cast<std::int64_t>(h.max_ns)));
    // Log-linear quantile estimates from the buckets (obs.hpp): never off
    // by more than one octave, exact for single-value distributions.
    entry.set("p50_ns", Json::number(obs::estimate_quantile_ns(h, 0.50)));
    entry.set("p99_ns", Json::number(obs::estimate_quantile_ns(h, 0.99)));
    entry.set("p999_ns", Json::number(obs::estimate_quantile_ns(h, 0.999)));
    // Log2-ns buckets, truncated after the last nonzero bin to keep dumps
    // readable; bucket i counts durations in [2^(i-1), 2^i) ns.
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    Json buckets = Json::array();
    for (std::size_t b = 0; b < last; ++b) {
      buckets.push_back(Json::number(static_cast<std::int64_t>(h.buckets[b])));
    }
    entry.set("buckets_log2_ns", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  Json j = Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

}  // namespace closfair
