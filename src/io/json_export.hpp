// JSON export of analysis results, for plotting pipelines and external
// tooling. Rates are exported both exactly ("1/3") and as doubles.
#pragma once

#include "core/analysis.hpp"
#include "obs/obs.hpp"
#include "sim/event_sim.hpp"
#include "util/json.hpp"

namespace closfair {

/// One allocation: {"rates": ["1/3", ...], "rates_approx": [...],
/// "throughput": "...", "throughput_approx": ...}.
[[nodiscard]] Json to_json(const Allocation<Rational>& alloc);

/// Macro-switch analysis: max-min allocation, matching size, price of
/// fairness.
[[nodiscard]] Json to_json(const MacroAnalysis& analysis);

/// Full Clos-vs-macro comparison.
[[nodiscard]] Json to_json(const Comparison& comparison);

/// Simulator statistics.
[[nodiscard]] Json to_json(const SimStats& stats);

/// Registry snapshot (src/obs): {"counters": {name: n, ...}, "gauges":
/// {...}, "histograms": {name: {count, total_ns, min_ns, max_ns, buckets},
/// ...}}. Entries are name-sorted (snapshot order), so exports diff cleanly.
/// In CLOSFAIR_OBS=OFF builds snapshots are empty and this returns the same
/// shape with empty objects.
[[nodiscard]] Json metrics_to_json(const obs::MetricsSnapshot& snapshot);

}  // namespace closfair
