// Plain-text instance format and result serialization.
//
// Instances (a Clos network plus a flow collection) can be written by hand:
//
//   # Example 3.3 (k = 1)
//   clos n=1
//   flow 1 1 -> 1 1
//   flow 2 1 -> 2 1
//   flow 2 1 -> 1 1
//
// or with explicit dimensions and multiplicities:
//
//   clos middles=4 tors=6 servers=2 capacity=1/2
//   flow 1 2 -> 2 1 x3
//   flow 2 1 -> 1 1 @2/3
//
// `flow a b -> c d [xK] [@R]` adds K copies of (s_a^b, t_c^d) (K defaults
// to 1), each carrying an optional target rate R — used by replication
// feasibility tooling (`closfair_cli --replicate`). Blank lines and `#`
// comments are ignored. Errors carry line numbers.
//
// Results are serialized as CSV (one row per flow) for plotting pipelines.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "net/clos.hpp"
#include "util/rational.hpp"

namespace closfair {

/// Thrown on malformed instance text; what() includes the line number.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed instance: network parameters + flow collection (+ optional
/// per-flow target rates, index-aligned with `flows`).
struct InstanceSpec {
  ClosNetwork::Params params;
  FlowCollection flows;
  std::vector<std::optional<Rational>> rates;  ///< empty or flows.size() long

  /// Build the Clos network (the macro-switch takes {num_tors,
  /// servers_per_tor, link_capacity} from the same params).
  [[nodiscard]] ClosNetwork build_clos() const { return ClosNetwork(params); }

  /// True if at least one flow declared a target rate.
  [[nodiscard]] bool has_rates() const {
    for (const auto& r : rates) {
      if (r.has_value()) return true;
    }
    return false;
  }
};

/// Parse an instance from text. Throws ParseError on malformed input and
/// ContractViolation on out-of-range coordinates.
[[nodiscard]] InstanceSpec parse_instance(const std::string& text);
[[nodiscard]] InstanceSpec parse_instance_stream(std::istream& in);

/// Render an InstanceSpec back to the text format (round-trips through
/// parse_instance).
[[nodiscard]] std::string format_instance(const InstanceSpec& spec);

/// CSV with one row per flow: index, endpoints, optional label, and one
/// column per named allocation. All allocations must cover every flow.
struct NamedAllocation {
  std::string name;
  const Allocation<Rational>* alloc = nullptr;
};
void write_rates_csv(std::ostream& out, const FlowCollection& flows,
                     const std::vector<std::string>& labels,
                     const std::vector<NamedAllocation>& allocations);

}  // namespace closfair
