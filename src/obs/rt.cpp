#include "obs/rt.hpp"

#if CLOSFAIR_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

namespace closfair::obs::rt {
namespace {

/// Seqlock slot: version 0 = empty or mid-write; version v = a consistent
/// copy of global trace number v - 1.
struct TraceSlot {
  std::atomic<std::uint64_t> version{0};
  RequestTrace trace;
};

template <std::size_t N>
struct TraceRing {
  std::atomic<std::uint64_t> head{0};  ///< next global index to claim
  std::array<TraceSlot, N> slots;

  void push(const RequestTrace& trace) noexcept {
    const std::uint64_t index = head.fetch_add(1, std::memory_order_relaxed);
    TraceSlot& slot = slots[index % N];
    // Tear the slot before copying so a concurrent reader sees version 0
    // (or a mismatch) instead of a half-written trace. Two writers landing
    // on the same slot (a full wrap mid-copy) leave whichever copy wrote
    // its version last — stale data is acceptable, torn data is not.
    slot.version.store(0, std::memory_order_release);
    slot.trace = trace;
    slot.version.store(index + 1, std::memory_order_release);
  }

  [[nodiscard]] std::vector<RequestTrace> copy_out() const {
    std::vector<std::pair<std::uint64_t, RequestTrace>> keyed;
    keyed.reserve(N);
    for (const TraceSlot& slot : slots) {
      const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 == 0) continue;
      RequestTrace copy = slot.trace;
      const std::uint64_t v2 = slot.version.load(std::memory_order_acquire);
      if (v1 != v2) continue;  // torn by a concurrent writer; skip
      keyed.emplace_back(v1, copy);
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<RequestTrace> out;
    out.reserve(keyed.size());
    for (auto& [version, trace] : keyed) out.push_back(trace);
    return out;
  }

  void reset() noexcept {
    head.store(0, std::memory_order_relaxed);
    for (TraceSlot& slot : slots) slot.version.store(0, std::memory_order_relaxed);
  }
};

struct RecorderState {
  TraceRing<FlightRecorder::kRecentCapacity> recent;
  TraceRing<FlightRecorder::kShameCapacity> shame;
  std::atomic<std::uint64_t> slow_threshold_ns{
      FlightRecorder::kDefaultSlowThresholdNs};
};

RecorderState& state() {
  // Leaked like the Registry: traces may still be recorded by connection
  // threads that outlive main()'s statics.
  static RecorderState* recorder_state = new RecorderState();
  return *recorder_state;
}

/// Registry histograms fed by record(); index == Stage value.
Histogram& stage_histogram(std::size_t stage) {
  static Histogram* hists[kStageCount] = {
      &Registry::instance().histogram("wire.stage.read"),
      &Registry::instance().histogram("wire.stage.parse"),
      &Registry::instance().histogram("wire.stage.admit"),
      &Registry::instance().histogram("wire.stage.queue_wait"),
      &Registry::instance().histogram("wire.stage.evaluate"),
      &Registry::instance().histogram("wire.stage.reorder_wait"),
      &Registry::instance().histogram("wire.stage.write"),
  };
  return *hists[stage];
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(const RequestTrace& trace) noexcept {
  RecorderState& s = state();
  s.recent.push(trace);
  const bool errored = trace.outcome == Outcome::kOverload ||
                       trace.outcome == Outcome::kParseError ||
                       trace.outcome == Outcome::kEvalError;
  if (errored ||
      trace.wall_ns() >= s.slow_threshold_ns.load(std::memory_order_relaxed)) {
    s.shame.push(trace);
  }
  if (trace.outcome != Outcome::kAdmin) {
    static Histogram& request_hist =
        Registry::instance().histogram("wire.request");
    request_hist.record_ns(trace.wall_ns());
    for (std::size_t i = 0; i < kStageCount; ++i) {
      stage_histogram(i).record_ns(trace.stage_ns[i]);
    }
  }
}

std::vector<RequestTrace> FlightRecorder::recent() const {
  return state().recent.copy_out();
}

std::vector<RequestTrace> FlightRecorder::shame() const {
  return state().shame.copy_out();
}

void FlightRecorder::set_slow_threshold_ns(std::uint64_t ns) noexcept {
  state().slow_threshold_ns.store(ns, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::slow_threshold_ns() const noexcept {
  return state().slow_threshold_ns.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() noexcept {
  state().recent.reset();
  state().shame.reset();
  state().slow_threshold_ns.store(kDefaultSlowThresholdNs,
                                  std::memory_order_relaxed);
}

Json trace_to_json(const RequestTrace& trace) {
  Json j = Json::object();
  j.set("conn", Json::number(static_cast<std::int64_t>(trace.conn_id)));
  j.set("seq", Json::number(static_cast<std::int64_t>(trace.seq)));
  j.set("arrival_ns", Json::number(static_cast<std::int64_t>(trace.arrival_ns)));
  j.set("wall_ns", Json::number(static_cast<std::int64_t>(trace.wall_ns())));
  j.set("outcome", Json::string(outcome_name(trace.outcome)));
  Json stages = Json::object();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stages.set(stage_name(static_cast<Stage>(i)),
               Json::number(static_cast<std::int64_t>(trace.stage_ns[i])));
  }
  j.set("stages_ns", std::move(stages));
  return j;
}

std::string dump_chrome_jsonl(const std::vector<RequestTrace>& traces) {
  // Same event shape as obs/trace.cpp: complete ("ph":"X") events with
  // microsecond ts/dur, pid 1, tid = connection id, so both streams can be
  // concatenated into one about:tracing / Perfetto load.
  std::string out;
  char line[256];
  for (const RequestTrace& trace : traces) {
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"wire.request/%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%llu}\n",
                  outcome_name(trace.outcome),
                  static_cast<double>(trace.arrival_ns) / 1000.0,
                  static_cast<double>(trace.wall_ns()) / 1000.0,
                  static_cast<unsigned long long>(trace.conn_id));
    out += line;
    std::uint64_t offset_ns = trace.arrival_ns;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::uint64_t duration_ns = trace.stage_ns[i];
      if (duration_ns == 0) continue;
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"wire.stage.%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%llu}\n",
                    stage_name(static_cast<Stage>(i)),
                    static_cast<double>(offset_ns) / 1000.0,
                    static_cast<double>(duration_ns) / 1000.0,
                    static_cast<unsigned long long>(trace.conn_id));
      out += line;
      offset_ns += duration_ns;
    }
  }
  return out;
}

}  // namespace closfair::obs::rt

#endif  // CLOSFAIR_OBS_ENABLED
