// closfair::obs — scoped wall-time spans and JSONL trace export.
//
// OBS_SPAN("waterfill.round") opens a RAII span: on scope exit its duration
// lands in the registry histogram of the same name (obs/obs.hpp), and — when
// a trace sink is attached via start_trace() — a Chrome-trace "complete"
// event {"name", "ph":"X", "ts", "dur", "pid", "tid"} is enqueued on the
// calling thread's lock-free SPSC ring buffer. Rings drain to the sink file
// (one JSON object per line) when full, on thread exit, and at stop_trace().
// docs/OBSERVABILITY.md explains how to open the output in about:tracing or
// Perfetto.
//
// Span names must be string literals (or otherwise outlive the trace
// session): the ring stores pointers, not copies.
//
// With CLOSFAIR_OBS=OFF everything here is an inline no-op and OBS_SPAN
// expands to nothing.
#pragma once

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace closfair {
namespace obs {

#if CLOSFAIR_OBS_ENABLED

/// Attach a JSONL trace sink. Returns false (and stays inactive) if `path`
/// cannot be opened, or if a session is already active.
[[nodiscard]] bool start_trace(const std::string& path);

/// Flush every thread's ring buffer and close the sink. No-op when inactive.
void stop_trace();

/// Whether a trace session is currently attached.
[[nodiscard]] bool trace_active() noexcept;

/// Monotonic nanoseconds (steady clock) — the time base of all spans.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// RAII scope: records wall time into `hist` on destruction and, when a
/// trace session is active, emits a trace event named `name`. Use through
/// OBS_SPAN, which wires up the magic-static histogram.
class Span {
 public:
  Span(const char* name, Histogram& hist) noexcept
      : name_(name), hist_(&hist), start_ns_(now_ns()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

 private:
  void finish() noexcept;

  const char* name_;
  Histogram* hist_;
  std::uint64_t start_ns_;
};

#else  // !CLOSFAIR_OBS_ENABLED

inline bool start_trace(const std::string&) { return false; }
inline void stop_trace() {}
inline bool trace_active() noexcept { return false; }
inline std::uint64_t now_ns() noexcept { return 0; }

#endif  // CLOSFAIR_OBS_ENABLED

}  // namespace obs
}  // namespace closfair

#if CLOSFAIR_OBS_ENABLED

#define CF_OBS_CONCAT_INNER(a, b) a##b
#define CF_OBS_CONCAT(a, b) CF_OBS_CONCAT_INNER(a, b)

/// Scoped timer + trace span. Declares block-scope locals; `name` must be a
/// string literal.
#define OBS_SPAN(name)                                                       \
  static ::closfair::obs::Histogram& CF_OBS_CONCAT(cf_obs_span_hist_,        \
                                                   __LINE__) =               \
      ::closfair::obs::Registry::instance().histogram(name);                 \
  const ::closfair::obs::Span CF_OBS_CONCAT(cf_obs_span_, __LINE__)(         \
      name, CF_OBS_CONCAT(cf_obs_span_hist_, __LINE__))

#else

#define OBS_SPAN(name) static_assert(true, "")

#endif  // CLOSFAIR_OBS_ENABLED
