#include "obs/trace.hpp"

#if CLOSFAIR_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/json.hpp"

namespace closfair {
namespace obs {
namespace {

constexpr std::size_t kRingCapacity = 4096;  // power of two
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0);

struct TraceEvent {
  const char* name;
  std::uint64_t start_ns;  // absolute steady-clock time
  std::uint64_t dur_ns;
  std::uint32_t tid;
};

// SPSC ring: the owning thread enqueues and bumps `head` (release); whoever
// holds the sink mutex drains [tail, head) and bumps `tail` (release). The
// owner never reuses a slot before observing `tail` past it, so slot
// accesses are ordered by the head/tail handshake alone — the enqueue path
// takes no lock.
struct TraceRing {
  TraceEvent events[kRingCapacity];
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> session_start_ns{0};
  std::atomic<std::uint32_t> next_tid{0};

  std::mutex sink_mu;  // guards sink + all ring drains
  std::ofstream sink;

  std::mutex rings_mu;  // guards the ring list
  std::vector<TraceRing*> rings;
};

TraceState& state() {
  static TraceState* instance = new TraceState();
  return *instance;
}

// Drain [tail, head) of one ring into the sink. Caller holds sink_mu.
void drain_ring_locked(TraceRing& ring) {
  TraceState& s = state();
  const std::uint64_t start = s.session_start_ns.load(std::memory_order_relaxed);
  std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  for (; tail != head; ++tail) {
    const TraceEvent& e = ring.events[tail & (kRingCapacity - 1)];
    if (e.start_ns < start) continue;  // stale event from a previous session
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}\n",
                  static_cast<double>(e.start_ns - start) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    s.sink << "{\"name\":\"" << json_escape(e.name) << buf;
  }
  ring.tail.store(tail, std::memory_order_release);
}

struct RingHolder {
  TraceRing ring;
  RingHolder() {
    TraceState& s = state();
    ring.tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.rings_mu);
    s.rings.push_back(&ring);
  }
  ~RingHolder() {
    TraceState& s = state();
    {
      std::lock_guard<std::mutex> lock(s.sink_mu);
      if (s.sink.is_open()) drain_ring_locked(ring);
    }
    std::lock_guard<std::mutex> lock(s.rings_mu);
    s.rings.erase(std::remove(s.rings.begin(), s.rings.end(), &ring), s.rings.end());
  }
};

TraceRing& local_ring() {
  thread_local RingHolder holder;
  return holder.ring;
}

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool trace_active() noexcept {
  return state().active.load(std::memory_order_relaxed);
}

bool start_trace(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.sink_mu);
  if (s.active.load(std::memory_order_relaxed)) return false;
  s.sink.open(path, std::ios::trunc);
  if (!s.sink) return false;
  s.session_start_ns.store(now_ns(), std::memory_order_relaxed);
  s.active.store(true, std::memory_order_release);
  return true;
}

void stop_trace() {
  TraceState& s = state();
  // Stop accepting events first; in-flight emits that already passed the
  // active check either land before the drain below or wait for the next
  // flush (thread exit) and are dropped as stale by the session-start guard.
  s.active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> rings_lock(s.rings_mu);
  std::lock_guard<std::mutex> sink_lock(s.sink_mu);
  if (!s.sink.is_open()) return;
  for (TraceRing* ring : s.rings) drain_ring_locked(*ring);
  s.sink.close();
}

void Span::finish() noexcept {
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end - start_ns_;
  hist_->record_ns(dur);
  TraceState& s = state();
  if (!s.active.load(std::memory_order_relaxed)) return;
  TraceRing& ring = local_ring();
  std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  if (head - ring.tail.load(std::memory_order_acquire) == kRingCapacity) {
    // Ring full: the owner drains its own backlog to the sink.
    std::lock_guard<std::mutex> lock(s.sink_mu);
    if (s.sink.is_open()) {
      drain_ring_locked(ring);
    } else {
      ring.tail.store(head, std::memory_order_release);  // sink gone; drop
    }
  }
  ring.events[head & (kRingCapacity - 1)] =
      TraceEvent{name_, start_ns_, dur, ring.tid};
  ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace obs
}  // namespace closfair

#endif  // CLOSFAIR_OBS_ENABLED
