// closfair::obs — counters, gauges, and duration histograms behind a
// process-wide registry with stable string names.
//
// Hot paths report through the OBS_* macros below. Counters write to
// cache-line-padded per-thread atomic slots (one relaxed fetch_add, no
// sharing between threads); the registry aggregates live threads plus the
// retired totals of exited ones, so totals survive worker-pool teardown and
// are exact. Gauges and histograms are process-wide atomics — they record
// rarely (per run / per solve), not per candidate.
//
// The whole layer is compile-time gated: configure with -DCLOSFAIR_OBS=OFF
// and every macro expands to nothing, every class below becomes an empty
// inline stub, and no obs translation unit is linked. Instrumented code
// (the search engine, the water-filler, the simplex solver) is then
// bit-for-bit the uninstrumented algorithm — determinism and the
// allocation-free inner-loop guarantee are untouched.
//
// Determinism note: counters that measure *algorithmic* work (candidates
// water-filled, rounds, pivots) aggregate to identical totals no matter how
// many worker threads ran, because the engine evaluates the same candidate
// set; counters and gauges that describe the *engine shape* (prefix work
// units claimed, worker count) legitimately vary with num_threads. The
// distinction is documented per metric in docs/OBSERVABILITY.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef CLOSFAIR_OBS_ENABLED
#define CLOSFAIR_OBS_ENABLED 1
#endif

namespace closfair {
namespace obs {

/// Compile-time switch mirror, for code that wants `if constexpr`.
inline constexpr bool kEnabled = CLOSFAIR_OBS_ENABLED != 0;

/// Log2 duration buckets: bucket i holds durations in [2^(i-1), 2^i) ns
/// (bucket 0: < 1 ns). 40 buckets reach ~9 minutes.
inline constexpr std::size_t kHistogramBuckets = 40;

/// A point-in-time copy of every registered metric, sorted by name so dumps
/// diff cleanly. Produced by Registry::snapshot(); serialized by
/// io/json_export.hpp (metrics_to_json).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;  ///< 0 when count == 0
    std::uint64_t max_ns = 0;
    std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets log2-ns bins
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Estimate the q-quantile (q in [0, 1]) of a histogram snapshot by
/// log-linear interpolation: the target rank is located in its log2-ns
/// bucket, then interpolated linearly in log-space across the bucket's
/// [2^(i-1), 2^i) range — the bucket boundaries bound the true quantile, so
/// the estimate is never off by more than one octave, and interpolation
/// recovers most of that. The result is clamped to the recorded
/// [min_ns, max_ns], which makes degenerate (single-value) distributions
/// exact. Returns 0 for an empty histogram. Inline (not in obs.cpp): it
/// works on snapshot data in both OBS builds, and the OFF build requires
/// the obs TUs to stay symbol-free.
[[nodiscard]] inline double estimate_quantile_ns(
    const MetricsSnapshot::HistogramValue& hist, double q) {
  if (hist.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(hist.count);
  double cumulative = 0.0;
  double estimate = static_cast<double>(hist.max_ns);
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(hist.buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i == 0) {
        estimate = 0.0;  // bucket 0 holds only 0 ns durations
      } else {
        const double lo = std::exp2(static_cast<double>(i) - 1.0);
        const double fraction = std::max(0.0, (rank - cumulative) / in_bucket);
        estimate = lo * std::exp2(fraction);  // log-linear across [lo, 2*lo)
      }
      break;
    }
    cumulative += in_bucket;
  }
  // Clamp into the observed range: the true quantile cannot leave it, and
  // single-value distributions come out exact.
  if (hist.max_ns > 0) {
    estimate = std::min(estimate, static_cast<double>(hist.max_ns));
  }
  return std::max(estimate, static_cast<double>(hist.min_ns));
}

#if CLOSFAIR_OBS_ENABLED

/// Monotonically increasing event count. add() is wait-free on the calling
/// thread's padded slot; total() aggregates across threads (live + retired).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Counter(std::string name, std::size_t id) : name_(std::move(name)), id_(id) {}
  std::string name_;
  std::size_t id_;
};

/// Last-write-wins instantaneous value (worker count, space size, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void add(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::size_t id) : name_(std::move(name)), id_(id) {}
  std::string name_;
  std::size_t id_;
};

/// Duration histogram (log2 ns buckets + count/sum/min/max), the backing
/// store of OBS_SPAN wall-time stats. record_ns is a handful of relaxed
/// atomic ops; contention is only with other recorders of the same span.
class Histogram {
 public:
  void record_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::size_t id) : name_(std::move(name)), id_(id) {}
  std::string name_;
  std::size_t id_;
};

/// Process-wide metric registry. Instruments register once (first use of an
/// OBS_* macro; the returned reference is stable forever), report lock-free,
/// and exporters call snapshot(). Intentionally leaked at exit so
/// thread_local destructors of late-dying threads can still retire slots.
class Registry {
 public:
  static Registry& instance();

  /// Find-or-create by stable name. Throws ContractViolation when the fixed
  /// metric capacity (128 counters / 64 gauges / 64 histograms) is exhausted.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Aggregate every metric. Safe to call while instrumented code runs
  /// (values are then merely a consistent-enough snapshot of a moving run).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every counter slot (live and retired), gauge, and histogram.
  /// Call between runs, not while instrumented code is executing.
  void reset();

 private:
  Registry() = default;
};

#else  // !CLOSFAIR_OBS_ENABLED — inline no-op stubs, no library symbols.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t total() const { return 0; }
  [[nodiscard]] const std::string& name() const { return empty_name(); }

 private:
  friend class Registry;
  Counter() = default;
  static const std::string& empty_name() {
    static const std::string kEmpty;
    return kEmpty;
  }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }

 private:
  friend class Registry;
  Gauge() = default;
};

class Histogram {
 public:
  void record_ns(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }

 private:
  friend class Registry;
  Histogram() = default;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}

 private:
  Registry() = default;
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // CLOSFAIR_OBS_ENABLED

}  // namespace obs
}  // namespace closfair

// ---------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal (or otherwise have
// static storage duration): it becomes the metric's registry key, resolved
// once per call site through a magic-static reference.

#if CLOSFAIR_OBS_ENABLED

#define OBS_COUNTER_ADD(name, n)                                            \
  do {                                                                      \
    static ::closfair::obs::Counter& cf_obs_counter_ref_ =                  \
        ::closfair::obs::Registry::instance().counter(name);                \
    cf_obs_counter_ref_.add(static_cast<std::uint64_t>(n));                 \
  } while (0)

#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, v)                                              \
  do {                                                                      \
    static ::closfair::obs::Gauge& cf_obs_gauge_ref_ =                      \
        ::closfair::obs::Registry::instance().gauge(name);                  \
    cf_obs_gauge_ref_.set(static_cast<std::int64_t>(v));                    \
  } while (0)

#else

// sizeof keeps the value expression an unevaluated operand: no code is
// generated, yet tally variables maintained only for these macros still
// count as used (no -Wunused-but-set-variable in OBS-off builds).
#define OBS_COUNTER_ADD(name, n) ((void)sizeof(n))
#define OBS_COUNTER_INC(name) ((void)0)
#define OBS_GAUGE_SET(name, v) ((void)sizeof(v))

#endif  // CLOSFAIR_OBS_ENABLED
