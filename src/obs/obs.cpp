#include "obs/obs.hpp"

#if CLOSFAIR_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/check.hpp"

namespace closfair {
namespace obs {
namespace {

constexpr std::size_t kMaxCounters = 128;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;

// One counter slot, padded to a cache line so the owning thread's writes
// never false-share with neighbours or with the aggregating reader.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct ThreadSlab {
  CounterCell cells[kMaxCounters];
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};

struct HistogramCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns{0};
  std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};

  void reset() {
    count.store(0, std::memory_order_relaxed);
    total_ns.store(0, std::memory_order_relaxed);
    min_ns.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

void atomic_update_min(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct RegistryImpl {
  mutable std::mutex mu;

  // Metric objects live in deques: references handed out stay stable.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::unordered_map<std::string, std::size_t> counter_index;
  std::unordered_map<std::string, std::size_t> gauge_index;
  std::unordered_map<std::string, std::size_t> histogram_index;

  // Per-thread counter slabs currently alive, plus totals folded in from
  // threads that have exited.
  std::vector<ThreadSlab*> slabs;
  std::atomic<std::uint64_t> retired[kMaxCounters] = {};

  GaugeCell gauge_cells[kMaxGauges];
  HistogramCell histogram_cells[kMaxHistograms];

  void attach(ThreadSlab* slab) {
    std::lock_guard<std::mutex> lock(mu);
    slabs.push_back(slab);
  }

  void detach(ThreadSlab* slab) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      const std::uint64_t v = slab->cells[i].value.load(std::memory_order_relaxed);
      if (v != 0) retired[i].fetch_add(v, std::memory_order_relaxed);
    }
    slabs.erase(std::remove(slabs.begin(), slabs.end(), slab), slabs.end());
  }

  [[nodiscard]] std::uint64_t counter_total_locked(std::size_t id) const {
    std::uint64_t total = retired[id].load(std::memory_order_relaxed);
    for (const ThreadSlab* slab : slabs) {
      total += slab->cells[id].value.load(std::memory_order_relaxed);
    }
    return total;
  }
};

RegistryImpl& impl() {
  // Leaked on purpose: thread_local slab destructors of threads outliving
  // main must still find a live registry to retire into.
  static RegistryImpl* instance = new RegistryImpl();
  return *instance;
}

struct SlabHolder {
  ThreadSlab slab;
  SlabHolder() { impl().attach(&slab); }
  ~SlabHolder() { impl().detach(&slab); }
};

ThreadSlab& local_slab() {
  thread_local SlabHolder holder;
  return holder.slab;
}

}  // namespace

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  impl();  // force construction before first metric registration
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string key(name);
  if (auto it = s.counter_index.find(key); it != s.counter_index.end()) {
    return s.counters[it->second];
  }
  CF_CHECK_MSG(s.counters.size() < kMaxCounters,
               "obs counter capacity (" << kMaxCounters << ") exhausted at '" << key
                                        << "'");
  const std::size_t id = s.counters.size();
  s.counters.push_back(Counter(key, id));
  s.counter_index.emplace(std::move(key), id);
  return s.counters.back();
}

Gauge& Registry::gauge(std::string_view name) {
  RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string key(name);
  if (auto it = s.gauge_index.find(key); it != s.gauge_index.end()) {
    return s.gauges[it->second];
  }
  CF_CHECK_MSG(s.gauges.size() < kMaxGauges,
               "obs gauge capacity (" << kMaxGauges << ") exhausted at '" << key << "'");
  const std::size_t id = s.gauges.size();
  s.gauges.push_back(Gauge(key, id));
  s.gauge_index.emplace(std::move(key), id);
  return s.gauges.back();
}

Histogram& Registry::histogram(std::string_view name) {
  RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string key(name);
  if (auto it = s.histogram_index.find(key); it != s.histogram_index.end()) {
    return s.histograms[it->second];
  }
  CF_CHECK_MSG(s.histograms.size() < kMaxHistograms,
               "obs histogram capacity (" << kMaxHistograms << ") exhausted at '" << key
                                          << "'");
  const std::size_t id = s.histograms.size();
  s.histograms.push_back(Histogram(key, id));
  s.histogram_index.emplace(std::move(key), id);
  return s.histograms.back();
}

MetricsSnapshot Registry::snapshot() const {
  const RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  MetricsSnapshot snap;

  snap.counters.reserve(s.counters.size());
  for (const Counter& c : s.counters) {
    snap.counters.push_back({c.name_, s.counter_total_locked(c.id_)});
  }
  snap.gauges.reserve(s.gauges.size());
  for (const Gauge& g : s.gauges) {
    snap.gauges.push_back(
        {g.name_, s.gauge_cells[g.id_].value.load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(s.histograms.size());
  for (const Histogram& h : s.histograms) {
    const HistogramCell& cell = s.histogram_cells[h.id_];
    MetricsSnapshot::HistogramValue v;
    v.name = h.name_;
    v.count = cell.count.load(std::memory_order_relaxed);
    v.total_ns = cell.total_ns.load(std::memory_order_relaxed);
    const std::uint64_t min_ns = cell.min_ns.load(std::memory_order_relaxed);
    v.min_ns = v.count == 0 || min_ns == UINT64_MAX ? 0 : min_ns;
    v.max_ns = cell.max_ns.load(std::memory_order_relaxed);
    v.buckets.resize(kHistogramBuckets);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      v.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(v));
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    s.retired[i].store(0, std::memory_order_relaxed);
    for (ThreadSlab* slab : s.slabs) {
      slab->cells[i].value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& cell : s.gauge_cells) cell.value.store(0, std::memory_order_relaxed);
  for (auto& cell : s.histogram_cells) cell.reset();
}

void Counter::add(std::uint64_t n) noexcept {
  local_slab().cells[id_].value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::total() const {
  const RegistryImpl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.counter_total_locked(id_);
}

void Gauge::set(std::int64_t v) noexcept {
  impl().gauge_cells[id_].value.store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t v) noexcept {
  impl().gauge_cells[id_].value.fetch_add(v, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const noexcept {
  return impl().gauge_cells[id_].value.load(std::memory_order_relaxed);
}

void Histogram::record_ns(std::uint64_t ns) noexcept {
  HistogramCell& cell = impl().histogram_cells[id_];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  atomic_update_min(cell.min_ns, ns);
  atomic_update_max(cell.max_ns, ns);
  const std::size_t bucket = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(ns)), kHistogramBuckets - 1);
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return impl().histogram_cells[id_].count.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace closfair

#endif  // CLOSFAIR_OBS_ENABLED
