// closfair::obs::rt — request-scoped tracing and the flight recorder.
//
// A RequestTrace rides inside each wire::Pipeline slot and records a
// per-request stage breakdown (read → parse → admit → queue-wait → evaluate
// → reorder-wait → write) as successive monotonic marks: every mark_at()
// charges the time since the previous mark to one stage, so the stage sums
// reconstruct the request's wall time *exactly* — no sampling, no drift.
// The data path never allocates: the trace is a preallocated POD inside the
// slot, marks are one steady-clock read plus an add, and completed traces
// are published to a fixed-size lock-free ring (the flight recorder).
//
// The flight recorder keeps two seqlock rings: `recent` (the last
// kRecentCapacity completed requests) and `shame` (the slowest / shed /
// errored ones — anything an operator would page through after an
// incident). Writers are wait-free (one fetch_add plus a slot copy);
// readers (the tracez admin verb, bench dumps) retry torn slots. record()
// also feeds the wire.stage.* and wire.request registry histograms, which
// is where metricsz quantiles come from.
//
// With CLOSFAIR_OBS=OFF every type here collapses to an empty inline stub
// (RequestTrace and WorkerStamps become empty structs, so
// [[no_unique_address]] members vanish), rt.cpp compiles to nothing, and
// the wire server is bit-for-bit the uninstrumented code.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace closfair::obs::rt {

/// Pipeline stages a request's wall time is charged to, in order. Every
/// nanosecond between arrival (the recv() tick) and the post-write mark
/// lands in exactly one stage.
enum class Stage : std::uint8_t {
  kRead = 0,     ///< recv() tick → admit() entry (kernel → reader handoff)
  kParse,        ///< JSON parse + spec canonicalization
  kAdmit,        ///< pipeline lock: dedup/cache lookup, budget check
  kQueueWait,    ///< admitted → a worker dequeued it
  kEvaluate,     ///< scenario evaluation on the worker
  kReorderWait,  ///< completed → drained in seq order by the writer
  kWrite,        ///< frame assembly + send()
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] constexpr const char* stage_name(Stage stage) noexcept {
  constexpr const char* kNames[kStageCount] = {
      "read", "parse", "admit", "queue_wait", "evaluate", "reorder_wait", "write"};
  return kNames[static_cast<std::size_t>(stage)];
}

/// How the request was answered (set at admission, refined at completion).
enum class Outcome : std::uint8_t {
  kEvaluated = 0,  ///< fresh evaluation on a worker
  kCached,         ///< answered from the result cache
  kDeduped,        ///< coalesced onto an in-flight duplicate
  kOverload,       ///< shed by admission control
  kParseError,     ///< request line did not parse
  kEvalError,      ///< evaluation threw
  kAdmin,          ///< metricsz / statusz / tracez
};

[[nodiscard]] constexpr const char* outcome_name(Outcome outcome) noexcept {
  constexpr const char* kNames[7] = {"evaluated", "cached",      "deduped",
                                     "overload",  "parse_error", "eval_error",
                                     "admin"};
  return kNames[static_cast<std::size_t>(outcome)];
}

#if CLOSFAIR_OBS_ENABLED

/// One request's stage clock. Trivially copyable; lives inside the pipeline
/// slot and is only ever touched under the pipeline lock, so it needs no
/// atomics of its own.
struct RequestTrace {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t arrival_ns = 0;  ///< recv() tick (steady clock)
  std::uint64_t finish_ns = 0;   ///< last mark; 0 until finish()
  std::uint64_t last_ns = 0;     ///< previous mark (internal)
  std::array<std::uint64_t, kStageCount> stage_ns{};
  Outcome outcome = Outcome::kEvaluated;
  bool active = false;

  void begin(std::uint64_t conn, std::uint64_t sequence,
             std::uint64_t recv_ns) noexcept {
    conn_id = conn;
    seq = sequence;
    arrival_ns = recv_ns != 0 ? recv_ns : now_ns();
    last_ns = arrival_ns;
    finish_ns = 0;
    stage_ns.fill(0);
    outcome = Outcome::kEvaluated;
    active = true;
  }

  /// Charge [last mark, now) to `stage`. Clamps backwards ticks (a worker's
  /// stamp can be older than a later reader-side mark), so stage sums stay
  /// exactly equal to wall time under any interleaving.
  void mark_at(Stage stage, std::uint64_t now) noexcept {
    if (!active) return;
    if (now < last_ns) now = last_ns;
    stage_ns[static_cast<std::size_t>(stage)] += now - last_ns;
    last_ns = now;
  }

  void mark(Stage stage) noexcept { mark_at(stage, now_ns()); }

  void set_outcome(Outcome o) noexcept { outcome = o; }

  /// Seal the trace: wall time becomes the span arrival → last mark, which
  /// equals the sum of the stage durations by construction.
  void finish() noexcept {
    finish_ns = last_ns;
    active = false;
  }

  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return finish_ns - arrival_ns;
  }
};

/// Ticks a worker takes outside the pipeline lock: dequeue (ends
/// queue-wait) and evaluation-done (ends evaluate). Passed by value into
/// Pipeline::complete(), which charges the stages under the lock.
struct WorkerStamps {
  std::uint64_t dequeue_ns = 0;
  std::uint64_t eval_done_ns = 0;
};

[[nodiscard]] inline WorkerStamps begin_work() noexcept {
  return WorkerStamps{now_ns(), 0};
}
inline void end_work(WorkerStamps& stamps) noexcept {
  stamps.eval_done_ns = now_ns();
}

/// Process-wide ring of completed traces. record() is wait-free per writer
/// (seqlock slots: version 0 = being written, version v = global index
/// v - 1); recent()/shame() copy out whatever is consistent right now and
/// skip slots torn by a concurrent writer.
class FlightRecorder {
 public:
  static constexpr std::size_t kRecentCapacity = 256;
  static constexpr std::size_t kShameCapacity = 64;
  /// Default slowness bar for the shame ring; tune per deployment via
  /// set_slow_threshold_ns().
  static constexpr std::uint64_t kDefaultSlowThresholdNs = 10'000'000;

  static FlightRecorder& instance();

  /// Publish a finished trace: always into `recent`; into `shame` when the
  /// outcome is overload/parse_error/eval_error or wall time is at or over
  /// the slow threshold. Also records the wire.stage.* and wire.request
  /// histograms for non-admin requests.
  void record(const RequestTrace& trace) noexcept;

  /// Completed traces, oldest first. Bounded by the ring capacities.
  [[nodiscard]] std::vector<RequestTrace> recent() const;
  [[nodiscard]] std::vector<RequestTrace> shame() const;

  void set_slow_threshold_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] std::uint64_t slow_threshold_ns() const noexcept;

  /// Forget every recorded trace. Not safe against concurrent record();
  /// call between runs (tests, bench phases), like Registry::reset().
  void reset() noexcept;

 private:
  FlightRecorder() = default;
};

/// One trace as a JSON object: conn/seq/arrival_ns/wall_ns/outcome plus a
/// stages_ns map keyed by stage_name(). The tracez payload is arrays of
/// these.
[[nodiscard]] Json trace_to_json(const RequestTrace& trace);

/// Chrome-trace JSONL ("ph":"X" complete events, one per nonzero stage plus
/// one per request, tid = connection id): load into about:tracing or
/// Perfetto alongside the OBS_SPAN stream from obs/trace.cpp.
[[nodiscard]] std::string dump_chrome_jsonl(const std::vector<RequestTrace>& traces);

#else  // !CLOSFAIR_OBS_ENABLED — empty inline stubs, no library symbols.

/// Empty stub: [[no_unique_address]] members of this type occupy no space,
/// and every method is an inert inline no-op (ObsDisabled tests assert
/// std::is_empty_v on this). The static constexpr stage_ns keeps readers of
/// the stage breakdown (bench/serve_net) compiling without adding state.
struct RequestTrace {
  static constexpr std::array<std::uint64_t, kStageCount> stage_ns{};
  void begin(std::uint64_t, std::uint64_t, std::uint64_t) noexcept {}
  void mark_at(Stage, std::uint64_t) noexcept {}
  void mark(Stage) noexcept {}
  void set_outcome(Outcome) noexcept {}
  void finish() noexcept {}
  [[nodiscard]] std::uint64_t wall_ns() const noexcept { return 0; }
};

/// static constexpr members keep `stamps.dequeue_ns` expressions compiling
/// in call sites while the struct itself stays empty.
struct WorkerStamps {
  static constexpr std::uint64_t dequeue_ns = 0;
  static constexpr std::uint64_t eval_done_ns = 0;
};

[[nodiscard]] inline WorkerStamps begin_work() noexcept { return {}; }
inline void end_work(WorkerStamps&) noexcept {}

class FlightRecorder {
 public:
  static constexpr std::size_t kRecentCapacity = 0;
  static constexpr std::size_t kShameCapacity = 0;
  static constexpr std::uint64_t kDefaultSlowThresholdNs = 0;

  static FlightRecorder& instance() {
    static FlightRecorder recorder;
    return recorder;
  }
  void record(const RequestTrace&) noexcept {}
  [[nodiscard]] std::vector<RequestTrace> recent() const { return {}; }
  [[nodiscard]] std::vector<RequestTrace> shame() const { return {}; }
  void set_slow_threshold_ns(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t slow_threshold_ns() const noexcept { return 0; }
  void reset() noexcept {}

 private:
  FlightRecorder() = default;
};

[[nodiscard]] inline Json trace_to_json(const RequestTrace&) {
  return Json::null();
}
[[nodiscard]] inline std::string dump_chrome_jsonl(
    const std::vector<RequestTrace>&) {
  return {};
}

#endif  // CLOSFAIR_OBS_ENABLED

}  // namespace closfair::obs::rt
