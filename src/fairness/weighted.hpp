// Weighted max-min fairness: progressive filling where flow f's rate grows
// as weight_f * level, freezing at saturated links.
//
// This generalization is the natural mechanism probe for the paper's §7
// discussion of R2: lex-max-min fairness starves high-macro-rate flows
// because all flows rise at the *same* speed. If congestion control instead
// weights each flow by its macro-switch rate, the allocation maximizes (per
// routing) the minimum of a(f)/macro(f) — the relative-max-min objective the
// paper proposes as an open question. The ext_weighted bench measures how
// much of the Theorem 4.3 starvation this recovers.
#pragma once

#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

/// Weighted max-min fair allocation for a fixed routing: the vector of
/// a(f)/w(f) is lexicographically maximal (when sorted ascending) over
/// feasible allocations. Weights must be strictly positive. Preconditions
/// otherwise as max_min_fair.
template <typename R>
[[nodiscard]] Allocation<R> weighted_max_min_fair(const Topology& topo, const FlowSet& flows,
                                                  const Routing& routing,
                                                  const std::vector<R>& weights);

/// The weighted analogue of the bottleneck property: every flow has a
/// saturated link on which its *normalized* rate a(f)/w(f) is maximal.
/// Certifies the output of weighted_max_min_fair independently.
template <typename R>
[[nodiscard]] bool is_weighted_max_min_fair(const Topology& topo, const Routing& routing,
                                            const Allocation<R>& alloc,
                                            const std::vector<R>& weights,
                                            R tolerance = R{0});

}  // namespace closfair
