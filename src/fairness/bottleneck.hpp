// The bottleneck property (Lemma 2.2): a feasible allocation is max-min fair
// iff every flow has a bottleneck link — a saturated link on which the flow's
// rate is maximal.
//
// This is an *independent* certifier for allocations produced by water-filling
// (fairness/waterfill.hpp) or by the LP path (lp/maxmin_lp.hpp): it inspects
// only the allocation, never the algorithm that made it.
#pragma once

#include <optional>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

/// For each flow, some bottleneck link under (routing, alloc), or nullopt if
/// the flow has none. A link (u,v) is a bottleneck for flow f when its total
/// rate equals its capacity (within `tolerance`) and f's rate is maximal
/// (within `tolerance`) among flows traversing it.
template <typename R>
[[nodiscard]] std::vector<std::optional<LinkId>> bottleneck_links(
    const Topology& topo, const Routing& routing, const Allocation<R>& alloc,
    R tolerance = R{0}) {
  CF_CHECK(routing.size() == alloc.size());
  const std::vector<R> load = link_loads(topo, routing, alloc);
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  // Precompute per-link saturation and max flow rate.
  std::vector<bool> saturated(topo.num_links(), false);
  std::vector<R> max_rate(topo.num_links(), R{0});
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;  // an unbounded link can never saturate
    saturated[l] = load[l] + tolerance >= capacity_as<R>(link);
    for (FlowIndex f : on_link[l]) {
      if (alloc.rate(f) > max_rate[l]) max_rate[l] = alloc.rate(f);
    }
  }

  std::vector<std::optional<LinkId>> result(alloc.size());
  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    for (LinkId l : routing.path(f)) {
      const auto idx = static_cast<std::size_t>(l);
      if (topo.link(l).unbounded) continue;
      if (saturated[idx] && alloc.rate(f) + tolerance >= max_rate[idx]) {
        result[f] = l;
        break;
      }
    }
  }
  return result;
}

/// Certify max-min fairness via Lemma 2.2: feasible and every flow has a
/// bottleneck link.
template <typename R>
[[nodiscard]] bool is_max_min_fair(const Topology& topo, const Routing& routing,
                                   const Allocation<R>& alloc, R tolerance = R{0}) {
  if (!is_feasible(topo, routing, alloc, tolerance)) return false;
  for (const auto& bn : bottleneck_links(topo, routing, alloc, tolerance)) {
    if (!bn.has_value()) return false;
  }
  return true;
}

}  // namespace closfair
