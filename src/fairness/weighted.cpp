#include "fairness/weighted.hpp"

#include <optional>

#include "fairness/waterfill.hpp"

namespace closfair {

template <typename R>
Allocation<R> weighted_max_min_fair(const Topology& topo, const FlowSet& flows,
                                    const Routing& routing, const std::vector<R>& weights) {
  CF_CHECK(routing.size() == flows.size());
  CF_CHECK_MSG(weights.size() == flows.size(),
               "weights cover " << weights.size() << " flows, expected " << flows.size());
  for (const R& w : weights) {
    CF_CHECK_MSG(R{0} < w, "weighted max-min requires strictly positive weights");
  }
  const std::size_t num_flows = flows.size();

  // Same bind-time bounded-link index as the unweighted engine: rounds run
  // over dense slots, never re-checking topo.link(l).unbounded.
  detail::FillIndex<R> index;
  index.bind(topo, routing);
  const std::size_t num_slots = index.num_slots();

  // residual[s] = capacity - consumption of frozen flows - (active weight on
  // s) * current level. active_weight[s] = total weight of unfrozen flows.
  std::vector<R> residual = index.capacity;
  std::vector<R> active_weight(num_slots, R{0});
  for (std::size_t s = 0; s < num_slots; ++s) {
    for (std::size_t idx = index.slot_off[s]; idx < index.slot_off[s + 1]; ++idx) {
      active_weight[s] += weights[index.slot_flows[idx]];
    }
  }

  Allocation<R> alloc(num_flows);
  std::vector<bool> frozen(num_flows, false);
  std::size_t num_frozen = 0;
  std::vector<std::uint32_t> saturated;  // slots attaining the round's level
  std::vector<FlowIndex> to_freeze;      // both reused across rounds
  saturated.reserve(num_slots);

  while (num_frozen < num_flows) {
    // Next level increment: the smallest residual / active-weight over slots
    // still carrying active flows. Each share is computed exactly once;
    // slots attaining the minimum are collected during the same scan.
    std::optional<R> level;
    saturated.clear();
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (active_weight[s] == R{0}) continue;
      R share = residual[s] / active_weight[s];
      if (!level || share < *level) {
        level = std::move(share);
        saturated.clear();
        saturated.push_back(static_cast<std::uint32_t>(s));
      } else if (share == *level) {
        saturated.push_back(static_cast<std::uint32_t>(s));
      }
    }
    CF_CHECK_MSG(level.has_value(),
                 "flow with no bounded link: weighted max-min rate would be unbounded");

    to_freeze.clear();
    for (std::uint32_t s : saturated) {
      for (std::size_t idx = index.slot_off[s]; idx < index.slot_off[s + 1]; ++idx) {
        const FlowIndex f = index.slot_flows[idx];
        if (!frozen[f]) to_freeze.push_back(f);
      }
    }
    CF_CHECK(!to_freeze.empty());

    for (std::size_t s = 0; s < num_slots; ++s) {
      if (active_weight[s] == R{0}) continue;
      residual[s] -= *level * active_weight[s];
    }
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!frozen[f]) alloc.set_rate(f, alloc.rate(f) + *level * weights[f]);
    }
    for (FlowIndex f : to_freeze) {
      if (frozen[f]) continue;
      frozen[f] = true;
      ++num_frozen;
      for (std::size_t idx = index.flow_off[f]; idx < index.flow_off[f + 1]; ++idx) {
        active_weight[index.flow_slots[idx]] -= weights[f];
      }
    }
  }
  return alloc;
}

template <typename R>
bool is_weighted_max_min_fair(const Topology& topo, const Routing& routing,
                              const Allocation<R>& alloc, const std::vector<R>& weights,
                              R tolerance) {
  CF_CHECK(weights.size() == alloc.size());
  if (!is_feasible(topo, routing, alloc, tolerance)) return false;

  const std::vector<R> load = link_loads(topo, routing, alloc);
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  std::vector<bool> saturated(topo.num_links(), false);
  std::vector<R> max_normalized(topo.num_links(), R{0});
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    saturated[l] = load[l] + tolerance >= capacity_as<R>(link);
    for (FlowIndex f : on_link[l]) {
      const R normalized = alloc.rate(f) / weights[f];
      if (normalized > max_normalized[l]) max_normalized[l] = normalized;
    }
  }

  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    bool has_bottleneck = false;
    for (LinkId l : routing.path(f)) {
      const auto idx = static_cast<std::size_t>(l);
      if (topo.link(l).unbounded) continue;
      if (saturated[idx] &&
          alloc.rate(f) / weights[f] + tolerance >= max_normalized[idx]) {
        has_bottleneck = true;
        break;
      }
    }
    if (!has_bottleneck) return false;
  }
  return true;
}

template Allocation<Rational> weighted_max_min_fair<Rational>(const Topology&,
                                                              const FlowSet&, const Routing&,
                                                              const std::vector<Rational>&);
template Allocation<double> weighted_max_min_fair<double>(const Topology&, const FlowSet&,
                                                          const Routing&,
                                                          const std::vector<double>&);
template bool is_weighted_max_min_fair<Rational>(const Topology&, const Routing&,
                                                 const Allocation<Rational>&,
                                                 const std::vector<Rational>&, Rational);
template bool is_weighted_max_min_fair<double>(const Topology&, const Routing&,
                                               const Allocation<double>&,
                                               const std::vector<double>&, double);

}  // namespace closfair
