// Max-min fair allocation by progressive filling (Definition 2.1; the
// "water-filling algorithm" of Bertsekas & Gallager cited by the paper).
//
// Given a fixed routing, all flows' rates rise together from zero; whenever a
// link saturates, the flows crossing it freeze at the current water level,
// and the rest keep rising. The result is the unique max-min fair allocation
// for that routing, characterized by the bottleneck property (Lemma 2.2,
// checked independently in fairness/bottleneck.hpp).
//
// Templated on the rate domain: with R = Rational the result is exact, which
// the lexicographic-order theorems require; R = double serves the simulator.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {
namespace detail {

/// Flow-count as a rate value, in either numeric domain.
template <typename R>
[[nodiscard]] R count_as_rate(std::size_t k) {
  if constexpr (std::is_same_v<R, Rational>) {
    return Rational{static_cast<std::int64_t>(k)};
  } else {
    return static_cast<R>(k);
  }
}

}  // namespace detail

/// Max-min fair allocation for a fixed routing.
///
/// Preconditions: the routing is valid for `flows`, and every flow traverses
/// at least one capacity-bounded link (otherwise its max-min rate would be
/// unbounded; in Clos networks and macro-switches the server links always
/// bound it). Throws ContractViolation if violated.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const Topology& topo, const FlowSet& flows,
                                         const Routing& routing) {
  CF_CHECK(routing.size() == flows.size());
  const std::size_t num_flows = flows.size();
  const std::size_t num_links = topo.num_links();

  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  // Per-link state: residual capacity after frozen flows, and the number of
  // still-active (unfrozen) flows crossing the link. Unbounded links never
  // constrain and are skipped throughout.
  std::vector<R> residual(num_links, R{0});
  std::vector<std::size_t> active_count(num_links, 0);
  for (std::size_t l = 0; l < num_links; ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    residual[l] = capacity_as<R>(link);
    active_count[l] = on_link[l].size();
  }

  Allocation<R> alloc(num_flows);
  std::vector<bool> frozen(num_flows, false);
  std::size_t num_frozen = 0;

  while (num_frozen < num_flows) {
    // The next saturation level: the smallest fair share (residual / active)
    // over bounded links that still carry active flows. All active flows
    // currently sit at the previous level, already subtracted from residual.
    std::optional<R> level;
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0 || topo.link(static_cast<LinkId>(l)).unbounded) continue;
      R share = residual[l] / detail::count_as_rate<R>(active_count[l]);
      if (!level || share < *level) level = std::move(share);
    }
    CF_CHECK_MSG(level.has_value(),
                 "flow with no bounded link: max-min rate would be unbounded");

    // Freeze every active flow crossing a link that saturates at this level.
    std::vector<FlowIndex> to_freeze;
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0 || topo.link(static_cast<LinkId>(l)).unbounded) continue;
      const R share = residual[l] / detail::count_as_rate<R>(active_count[l]);
      if (share == *level) {
        for (FlowIndex f : on_link[l]) {
          if (!frozen[f]) to_freeze.push_back(f);
        }
      }
    }
    CF_CHECK(!to_freeze.empty());

    // The increment applies to *all* active flows; links keep carrying the
    // unfrozen ones, so charge every bounded link for its active flows first,
    // then retire the frozen flows from the active sets.
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0 || topo.link(static_cast<LinkId>(l)).unbounded) continue;
      residual[l] -= *level * detail::count_as_rate<R>(active_count[l]);
    }
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!frozen[f]) alloc.set_rate(f, alloc.rate(f) + *level);
    }
    for (FlowIndex f : to_freeze) {
      if (frozen[f]) continue;
      frozen[f] = true;
      ++num_frozen;
      for (LinkId l : routing.path(f)) {
        if (topo.link(l).unbounded) continue;
        --active_count[static_cast<std::size_t>(l)];
      }
    }
  }
  return alloc;
}

/// Convenience: max-min fair allocation in a Clos network for a compact
/// middle assignment.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const ClosNetwork& net, const FlowSet& flows,
                                         const MiddleAssignment& middles) {
  return max_min_fair<R>(net.topology(), flows, expand_routing(net, flows, middles));
}

/// Convenience: the (unique) max-min fair allocation in a macro-switch.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const MacroSwitch& ms, const FlowSet& flows) {
  return max_min_fair<R>(ms.topology(), flows, macro_routing(ms, flows));
}

}  // namespace closfair
