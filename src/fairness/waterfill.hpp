// Max-min fair allocation by progressive filling (Definition 2.1; the
// "water-filling algorithm" of Bertsekas & Gallager cited by the paper).
//
// Given a fixed routing, all flows' rates rise together from zero; whenever a
// link saturates, the flows crossing it freeze at the current water level,
// and the rest keep rising. The result is the unique max-min fair allocation
// for that routing, characterized by the bottleneck property (Lemma 2.2,
// checked independently in fairness/bottleneck.hpp).
//
// Two engines share the algorithm:
//  - the generic template below, for any Topology/Routing and either rate
//    domain (R = Rational exact, R = double for the simulator), built on a
//    bind-time bounded-link index so rounds never re-deref the topology;
//  - WaterfillWorkspace, the exhaustive-search inner loop, which adds an
//    int64 fixed-denominator fast path and a bitset link-membership sweep
//    (see waterfill.cpp and docs/ALGORITHMS.md "Water-fill fast path").
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"

namespace closfair {
namespace detail {

/// Flow-count as a rate value, in either numeric domain.
template <typename R>
[[nodiscard]] R count_as_rate(std::size_t k) {
  if constexpr (std::is_same_v<R, Rational>) {
    return Rational{static_cast<std::int64_t>(k)};
  } else {
    return static_cast<R>(k);
  }
}

/// Dense progressive-filling state over the *bounded* links of a topology:
/// link l's dense slot is slot_of[l] (kNoSlot for unbounded links), flows per
/// slot and bounded slots per flow are CSR-indexed, and count_rate caches
/// count_as_rate for every possible active count so the round loop never
/// constructs a fresh R per link per round. Shared by the generic
/// max_min_fair (both domains) so the simulator and LP layers run the same
/// core the search path does.
template <typename R>
struct FillIndex {
  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  std::vector<std::uint32_t> slot_of;   // per link id -> dense slot
  std::vector<R> capacity;              // per slot
  std::vector<std::size_t> slot_off;    // per slot: CSR offset into slot_flows
  std::vector<FlowIndex> slot_flows;    // flows crossing each slot
  std::vector<std::size_t> flow_off;    // per flow: CSR offset into flow_slots
  std::vector<std::uint32_t> flow_slots;  // bounded slots on each flow's path
  std::vector<R> count_rate;            // count_as_rate(k) for k = 0..max_active

  [[nodiscard]] std::size_t num_slots() const { return capacity.size(); }

  void bind(const Topology& topo, const Routing& routing) {
    const std::size_t num_links = topo.num_links();
    const std::size_t num_flows = routing.size();

    // One topology pass hoists the per-round `topo.link(l).unbounded`
    // re-lookup into this bind-time bounded-link index.
    slot_of.assign(num_links, kNoSlot);
    capacity.clear();
    for (std::size_t l = 0; l < num_links; ++l) {
      const Link& link = topo.link(static_cast<LinkId>(l));
      if (link.unbounded) continue;
      slot_of[l] = static_cast<std::uint32_t>(capacity.size());
      capacity.push_back(capacity_as<R>(link));
    }

    // CSR in both directions, counting first.
    slot_off.assign(num_slots() + 1, 0);
    flow_off.assign(num_flows + 1, 0);
    for (FlowIndex f = 0; f < num_flows; ++f) {
      for (LinkId l : routing.path(f)) {
        const std::uint32_t s = slot_of[static_cast<std::size_t>(l)];
        if (s == kNoSlot) continue;
        ++slot_off[s + 1];
        ++flow_off[f + 1];
      }
    }
    for (std::size_t s = 0; s < num_slots(); ++s) slot_off[s + 1] += slot_off[s];
    for (FlowIndex f = 0; f < num_flows; ++f) flow_off[f + 1] += flow_off[f];

    slot_flows.assign(slot_off[num_slots()], 0);
    flow_slots.assign(flow_off[num_flows], 0);
    std::vector<std::size_t> cursor(slot_off.begin(), slot_off.end() - 1);
    std::size_t flow_cursor = 0;
    for (FlowIndex f = 0; f < num_flows; ++f) {
      for (LinkId l : routing.path(f)) {
        const std::uint32_t s = slot_of[static_cast<std::size_t>(l)];
        if (s == kNoSlot) continue;
        slot_flows[cursor[s]++] = f;
        flow_slots[flow_cursor++] = s;
      }
    }

    std::size_t max_active = 0;
    for (std::size_t s = 0; s < num_slots(); ++s) {
      max_active = std::max(max_active, slot_off[s + 1] - slot_off[s]);
    }
    count_rate.clear();
    count_rate.reserve(max_active + 1);
    for (std::size_t k = 0; k <= max_active; ++k) {
      count_rate.push_back(count_as_rate<R>(k));
    }
  }
};

}  // namespace detail

/// Max-min fair allocation for a fixed routing.
///
/// Preconditions: the routing is valid for `flows`, and every flow traverses
/// at least one capacity-bounded link (otherwise its max-min rate would be
/// unbounded; in Clos networks and macro-switches the server links always
/// bound it). Throws ContractViolation if violated.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const Topology& topo, const FlowSet& flows,
                                         const Routing& routing) {
  CF_CHECK(routing.size() == flows.size());
  const std::size_t num_flows = flows.size();

  detail::FillIndex<R> index;
  index.bind(topo, routing);
  const std::size_t num_slots = index.num_slots();

  // Per-slot state: residual capacity after frozen flows, and the number of
  // still-active (unfrozen) flows crossing the link.
  std::vector<R> residual = index.capacity;
  std::vector<std::size_t> active_count(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    active_count[s] = index.slot_off[s + 1] - index.slot_off[s];
  }

  std::vector<R> rates(num_flows, R{0});
  std::vector<bool> frozen(num_flows, false);
  std::size_t num_frozen = 0;
  std::vector<std::uint32_t> saturated;  // slots attaining the round's level
  std::vector<FlowIndex> to_freeze;      // both reused across rounds
  saturated.reserve(num_slots);
  std::uint64_t obs_rounds = 0;          // reported once, below

  while (num_frozen < num_flows) {
    // The next saturation level: the smallest fair share (residual / active)
    // over bounded links that still carry active flows. All active flows
    // currently sit at the previous level, already subtracted from residual.
    // One pass computes each slot's share once, tracking the minimum and the
    // slots that attain it.
    bool have_level = false;
    R level{0};
    saturated.clear();
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (active_count[s] == 0) continue;
      R share = residual[s] / index.count_rate[active_count[s]];
      if (!have_level || share < level) {
        have_level = true;
        level = std::move(share);
        saturated.clear();
        saturated.push_back(static_cast<std::uint32_t>(s));
      } else if (share == level) {
        saturated.push_back(static_cast<std::uint32_t>(s));
      }
    }
    CF_CHECK_MSG(have_level,
                 "flow with no bounded link: max-min rate would be unbounded");

    // Freeze every active flow crossing a link that saturates at this level.
    to_freeze.clear();
    for (std::uint32_t s : saturated) {
      for (std::size_t idx = index.slot_off[s]; idx < index.slot_off[s + 1]; ++idx) {
        const FlowIndex f = index.slot_flows[idx];
        if (!frozen[f]) to_freeze.push_back(f);
      }
    }
    CF_CHECK(!to_freeze.empty());

    // The increment applies to *all* active flows; links keep carrying the
    // unfrozen ones, so charge every slot for its active flows first, then
    // retire the frozen flows from the active sets.
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (active_count[s] == 0) continue;
      residual[s] -= level * index.count_rate[active_count[s]];
    }
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!frozen[f]) rates[f] += level;
    }
    for (FlowIndex f : to_freeze) {
      if (frozen[f]) continue;
      frozen[f] = true;
      ++num_frozen;
      for (std::size_t idx = index.flow_off[f]; idx < index.flow_off[f + 1]; ++idx) {
        --active_count[index.flow_slots[idx]];
      }
    }
    ++obs_rounds;
  }
  OBS_COUNTER_INC("waterfill.generic_calls");
  OBS_COUNTER_ADD("waterfill.generic_rounds", obs_rounds);
  return Allocation<R>(std::move(rates));
}

/// Convenience: max-min fair allocation in a Clos network for a compact
/// middle assignment.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const ClosNetwork& net, const FlowSet& flows,
                                         const MiddleAssignment& middles) {
  return max_min_fair<R>(net.topology(), flows, expand_routing(net, flows, middles));
}

/// Convenience: the (unique) max-min fair allocation in a macro-switch.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const MacroSwitch& ms, const FlowSet& flows) {
  return max_min_fair<R>(ms.topology(), flows, macro_routing(ms, flows));
}

/// Warm-started exact water-fill: certify `seed_rates` as *the* max-min fair
/// allocation for (topo, flows, routing) via the bottleneck condition
/// (Lemma 2.2, fairness/bottleneck.hpp) and return it verbatim on success
/// (waterfill.seed_hits); otherwise run the cold generic sweep
/// (waterfill.seed_misses). The max-min fair allocation is unique and
/// Rationals are canonical, so an accepted seed is byte-identical to the
/// cold result by construction — the delta service leans on this to reuse a
/// base result's rates whenever the patch left them fair.
[[nodiscard]] Allocation<Rational> max_min_fair_seeded(const Topology& topo,
                                                       const FlowSet& flows,
                                                       const Routing& routing,
                                                       const std::vector<Rational>& seed_rates);

/// Reusable exact water-filling state for repeated evaluation of Clos middle
/// assignments — the exhaustive-search inner loop.
///
/// `bind` precomputes, per flow, the two routing-independent links (source
/// and destination) and a per-middle uplink/downlink lookup table, so a
/// candidate MiddleAssignment maps directly onto link loads without building
/// a Routing (`expand_routing`) or a per-link flow index (`flows_per_link`)
/// per candidate. Every buffer is pre-sized at bind: no heap allocation
/// happens per candidate (steady_state_allocs() audits this; the search
/// engine exports it as the waterfill.steady_state_allocs gauge).
///
/// Candidate state is SoA over the *used* links only: each used link gets a
/// dense slot holding its residual, active count, and a bitset of the flows
/// crossing it, so the min-share scan runs over contiguous arrays and a
/// freeze round is a masked word sweep with popcount instead of CSR pointer
/// chasing. Endpoint (source/destination) links do not depend on the middle
/// assignment, so their slots are built once at bind and replayed per call
/// with three memcpys; endpoint links carrying exactly one flow fold into a
/// single per-flow ceiling slot (among constraints on the same lone flow,
/// only the tightest can ever bind — the rest are dominated and saturate no
/// earlier, freezing nothing new).
///
/// Arithmetic runs on an int64 fixed-denominator fast path whenever bind
/// found a common denominator that scales every capacity into int64: levels,
/// residual updates, and share comparisons are then pure integer ops (shares
/// compared by 128-bit cross-multiplication, state rescaled by the freezing
/// link's active count each round). Any checked-arithmetic overflow abandons
/// the call and transparently re-runs it on the exact Rational engine, so
/// results are byte-identical to `max_min_fair<Rational>(net, flows,
/// middles)` by construction — gated by tests/test_waterfill_fastpath.cpp.
class WaterfillWorkspace {
 public:
  WaterfillWorkspace() = default;

  /// Bind to an instance; sizes all buffers. May be called again to re-bind.
  void bind(const ClosNetwork& net, const FlowSet& flows);

  /// Max-min fair rates in flow order for `middles`. The returned reference
  /// (and its `data()` pointer) stays valid and stable until the next call;
  /// callers needing persistence must copy.
  const std::vector<Rational>& max_min_rates(const MiddleAssignment& middles);

  /// True when bind found a common denominator scaling every capacity into
  /// int64 — the precondition of the fixed-denominator fast path.
  [[nodiscard]] bool fast_path_available() const { return fast_ok_; }

  /// Route every call onto the exact Rational engine regardless of
  /// fast-path availability (differential tests, fallback benchmarks).
  void set_force_fallback(bool force) { force_fallback_ = force; }

  /// True iff the most recent max_min_rates call completed on the fast path.
  [[nodiscard]] bool last_call_was_fast() const { return last_call_fast_; }

  /// Buffer-growth events observed since bind. Zero proves the steady state
  /// allocates nothing; the search engine sums this across workers into the
  /// waterfill.steady_state_allocs gauge.
  [[nodiscard]] std::uint64_t steady_state_allocs() const {
    return steady_state_allocs_;
  }

 private:
  /// Maps `middles` onto dense per-used-link slots (capacities, flow
  /// bitsets). Shared prologue of both engines.
  void map_candidate(const MiddleAssignment& middles);

  /// Int64 fixed-denominator filling. Returns false when a checked op
  /// overflows (state is then abandoned; the caller re-runs on Rationals).
  /// Internally retries once via reseed_fast() with the running state
  /// gcd-reduced before every round.
  bool run_fast(std::uint64_t& rounds, std::uint64_t& saturations);

  /// One filling attempt over the mapped slots. No overflow snapshots: a
  /// failed round leaves the int64 state consumed and returns false.
  bool fill_fast(bool reduce_each_round, std::uint64_t& rounds,
                 std::uint64_t& saturations);

  /// Re-derives the int64 residuals (and, for multi-word bitsets, the
  /// active counts) consumed by a failed fill_fast attempt.
  void reseed_fast();

  /// Exact Rational filling over the same mapped slots.
  void run_fallback(std::uint64_t& rounds, std::uint64_t& saturations);

  /// Sum of every member buffer's capacity — the steady-state alloc audit.
  [[nodiscard]] std::size_t buffer_capacity_sum() const;

  int num_middles_ = 0;
  std::size_t num_flows_ = 0;
  std::size_t words_ = 0;  ///< bitset words per flow set: ceil(num_flows / 64)

  // Bind-time tables. flow_links_ holds each flow's fixed endpoint links in
  // slots 0 (source link) and 3 (destination link); the per-candidate uplink
  // and downlink come straight from the lookup tables in map_candidate and
  // never touch memory.
  std::vector<LinkId> flow_links_;     // 4 * num_flows_
  std::vector<LinkId> updown_of_;      // [2 * (flow * n + (m-1))] -> {up, down}
  std::vector<Rational> capacity_;     // per link
  std::vector<std::int64_t> scaled_capacity_;  // per link, over common_den_
  std::vector<Rational> count_rational_;       // Rational{k}, k = 0..num_flows_
  std::int64_t common_den_ = 1;
  bool fast_ok_ = false;
  bool force_fallback_ = false;
  bool last_call_fast_ = false;

  // Fixed endpoint slots, built once at bind: slots [0, num_fixed_) hold the
  // source/destination-link constraints (middle-independent), with endpoint
  // links carrying exactly one flow folded into a single per-flow ceiling
  // slot of the minimum capacity. map_candidate replays them by memcpy.
  std::size_t num_fixed_ = 0;
  std::vector<Rational> fixed_cap_;                  // per fixed slot (fallback)
  std::vector<std::int64_t> fixed_residual_template_;  // scaled capacities
  std::vector<std::uint32_t> fixed_active_template_;   // flows per fixed slot
  std::vector<std::uint64_t> fixed_mask_template_;     // words_ per fixed slot

  // Candidate mapping: link id -> dense slot, via epoch stamps so reset cost
  // scales with the links the candidate actually uses. Only uplinks and
  // downlinks go through the epoch table; per-call slots start at num_fixed_.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> link_epoch_;  // per link
  std::vector<std::uint32_t> link_slot_;   // per link: dense slot this epoch
  std::size_t num_slots_ = 0;

  // SoA per-slot candidate state (dense, pre-sized to 4 * num_flows_ plus a
  // sink slot that absorbs count decrements for folded duplicate entries).
  // map_candidate() seeds slot_residual_num_ and slot_active_ directly, so
  // the fast engine starts without an init pass; the fallback re-derives
  // both from fixed_cap_ / slot_link_ / slot_mask_ (it runs after the fast
  // engine may have consumed them).
  std::vector<std::uint32_t> slot_link_;      // slot -> link id (j >= num_fixed_)
  std::vector<Rational> slot_residual_;       // fallback engine state
  std::vector<std::int64_t> slot_residual_num_;  // fast engine state
  std::vector<std::uint32_t> slot_active_;    // unfrozen flows per slot
  std::vector<std::uint64_t> slot_mask_;      // words_ per slot: flows crossing
  std::vector<std::uint32_t> flow_slot_;      // 4 * num_flows_: slots per flow
  std::vector<std::uint32_t> saturated_;      // round scratch: slots at the min
  std::vector<std::uint64_t> frozen_mask_;    // words_
  std::vector<std::uint64_t> freeze_mask_;    // words_: round scratch
  std::vector<std::int64_t> rate_num_;        // per flow, over the running den
  std::vector<Rational> rates_;               // per flow: the result

  std::uint64_t steady_state_allocs_ = 0;
  std::size_t bound_capacity_sum_ = 0;
};

}  // namespace closfair
