// Max-min fair allocation by progressive filling (Definition 2.1; the
// "water-filling algorithm" of Bertsekas & Gallager cited by the paper).
//
// Given a fixed routing, all flows' rates rise together from zero; whenever a
// link saturates, the flows crossing it freeze at the current water level,
// and the rest keep rising. The result is the unique max-min fair allocation
// for that routing, characterized by the bottleneck property (Lemma 2.2,
// checked independently in fairness/bottleneck.hpp).
//
// Templated on the rate domain: with R = Rational the result is exact, which
// the lexicographic-order theorems require; R = double serves the simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"

namespace closfair {
namespace detail {

/// Flow-count as a rate value, in either numeric domain.
template <typename R>
[[nodiscard]] R count_as_rate(std::size_t k) {
  if constexpr (std::is_same_v<R, Rational>) {
    return Rational{static_cast<std::int64_t>(k)};
  } else {
    return static_cast<R>(k);
  }
}

}  // namespace detail

/// Max-min fair allocation for a fixed routing.
///
/// Preconditions: the routing is valid for `flows`, and every flow traverses
/// at least one capacity-bounded link (otherwise its max-min rate would be
/// unbounded; in Clos networks and macro-switches the server links always
/// bound it). Throws ContractViolation if violated.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const Topology& topo, const FlowSet& flows,
                                         const Routing& routing) {
  CF_CHECK(routing.size() == flows.size());
  const std::size_t num_flows = flows.size();
  const std::size_t num_links = topo.num_links();

  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  // Per-link state: residual capacity after frozen flows, and the number of
  // still-active (unfrozen) flows crossing the link. Unbounded links never
  // constrain and are skipped throughout.
  std::vector<R> residual(num_links, R{0});
  std::vector<std::size_t> active_count(num_links, 0);
  for (std::size_t l = 0; l < num_links; ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    residual[l] = capacity_as<R>(link);
    active_count[l] = on_link[l].size();
  }

  Allocation<R> alloc(num_flows);
  std::vector<bool> frozen(num_flows, false);
  std::size_t num_frozen = 0;
  std::vector<std::size_t> saturated;  // links attaining the round's level
  std::vector<FlowIndex> to_freeze;    // both reused across rounds
  std::uint64_t obs_rounds = 0;        // reported once, below

  while (num_frozen < num_flows) {
    // The next saturation level: the smallest fair share (residual / active)
    // over bounded links that still carry active flows. All active flows
    // currently sit at the previous level, already subtracted from residual.
    // One pass computes each link's share once, tracking the minimum and the
    // links that attain it.
    std::optional<R> level;
    saturated.clear();
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0 || topo.link(static_cast<LinkId>(l)).unbounded) continue;
      R share = residual[l] / detail::count_as_rate<R>(active_count[l]);
      if (!level || share < *level) {
        level = std::move(share);
        saturated.clear();
        saturated.push_back(l);
      } else if (share == *level) {
        saturated.push_back(l);
      }
    }
    CF_CHECK_MSG(level.has_value(),
                 "flow with no bounded link: max-min rate would be unbounded");

    // Freeze every active flow crossing a link that saturates at this level.
    to_freeze.clear();
    for (std::size_t l : saturated) {
      for (FlowIndex f : on_link[l]) {
        if (!frozen[f]) to_freeze.push_back(f);
      }
    }
    CF_CHECK(!to_freeze.empty());

    // The increment applies to *all* active flows; links keep carrying the
    // unfrozen ones, so charge every bounded link for its active flows first,
    // then retire the frozen flows from the active sets.
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0 || topo.link(static_cast<LinkId>(l)).unbounded) continue;
      residual[l] -= *level * detail::count_as_rate<R>(active_count[l]);
    }
    for (FlowIndex f = 0; f < num_flows; ++f) {
      if (!frozen[f]) alloc.set_rate(f, alloc.rate(f) + *level);
    }
    for (FlowIndex f : to_freeze) {
      if (frozen[f]) continue;
      frozen[f] = true;
      ++num_frozen;
      for (LinkId l : routing.path(f)) {
        if (topo.link(l).unbounded) continue;
        --active_count[static_cast<std::size_t>(l)];
      }
    }
    ++obs_rounds;
  }
  OBS_COUNTER_INC("waterfill.generic_calls");
  OBS_COUNTER_ADD("waterfill.generic_rounds", obs_rounds);
  return alloc;
}

/// Convenience: max-min fair allocation in a Clos network for a compact
/// middle assignment.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const ClosNetwork& net, const FlowSet& flows,
                                         const MiddleAssignment& middles) {
  return max_min_fair<R>(net.topology(), flows, expand_routing(net, flows, middles));
}

/// Convenience: the (unique) max-min fair allocation in a macro-switch.
template <typename R>
[[nodiscard]] Allocation<R> max_min_fair(const MacroSwitch& ms, const FlowSet& flows) {
  return max_min_fair<R>(ms.topology(), flows, macro_routing(ms, flows));
}

/// Reusable exact water-filling state for repeated evaluation of Clos middle
/// assignments — the exhaustive-search inner loop.
///
/// `bind` precomputes, per flow, the two routing-independent links (source
/// and destination) and a per-middle uplink/downlink lookup table, so a
/// candidate MiddleAssignment maps directly onto link loads without building
/// a Routing (`expand_routing`) or a per-link flow index (`flows_per_link`)
/// per candidate. After the first evaluation every buffer is reused: no heap
/// allocation happens per candidate. Per-link state is reset via a touched-
/// links list stamped with an epoch counter, so cost scales with the links
/// the flows actually use, not the topology size.
///
/// Results are bit-identical to `max_min_fair<Rational>(net, flows, middles)`
/// (same progressive-filling algorithm on the same exact arithmetic).
class WaterfillWorkspace {
 public:
  WaterfillWorkspace() = default;

  /// Bind to an instance; sizes all buffers. May be called again to re-bind.
  void bind(const ClosNetwork& net, const FlowSet& flows);

  /// Max-min fair rates in flow order for `middles`. The returned reference
  /// (and its `data()` pointer) stays valid and stable until the next call;
  /// callers needing persistence must copy.
  const std::vector<Rational>& max_min_rates(const MiddleAssignment& middles);

 private:
  int num_middles_ = 0;
  std::size_t num_flows_ = 0;

  // Bind-time tables. flow_links_ holds each flow's 4-link path; slots 0
  // (source link) and 3 (destination link) are fixed at bind, slots 1 and 2
  // (uplink, downlink) are filled per candidate from the lookup tables.
  std::vector<LinkId> flow_links_;     // 4 * num_flows_
  std::vector<LinkId> uplink_of_;      // [flow * n + (m-1)] -> uplink id
  std::vector<LinkId> downlink_of_;    // [flow * n + (m-1)] -> downlink id
  std::vector<Rational> capacity_;     // per link

  // Per-candidate state, reset via used_links_ / epoch stamps.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> link_epoch_;     // per link
  std::vector<LinkId> used_links_;            // distinct links of the candidate
  std::vector<std::size_t> flows_on_;         // per link: flows crossing it
  std::vector<std::size_t> active_count_;     // per link: unfrozen flows
  std::vector<Rational> residual_;            // per link
  std::vector<std::size_t> link_offset_;      // per link: CSR offset
  std::vector<std::size_t> link_cursor_;      // per link: CSR fill cursor
  std::vector<FlowIndex> link_flows_;         // CSR payload, 4 * num_flows_
  std::vector<LinkId> saturated_;             // round scratch
  std::vector<FlowIndex> to_freeze_;          // round scratch
  std::vector<unsigned char> frozen_;         // per flow
  std::vector<Rational> rates_;               // per flow: the result
};

}  // namespace closfair
