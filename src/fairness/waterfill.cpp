#include "fairness/waterfill.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace closfair {

// Explicit instantiations for the two supported rate domains, keeping the
// template out of every includer's object file.
template Allocation<Rational> max_min_fair<Rational>(const Topology&, const FlowSet&,
                                                     const Routing&);
template Allocation<double> max_min_fair<double>(const Topology&, const FlowSet&,
                                                 const Routing&);

void WaterfillWorkspace::bind(const ClosNetwork& net, const FlowSet& flows) {
  const Topology& topo = net.topology();
  const int n = net.num_middles();
  num_middles_ = n;
  num_flows_ = flows.size();
  const std::size_t num_links = topo.num_links();

  capacity_.assign(num_links, Rational{0});
  for (std::size_t l = 0; l < num_links; ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    CF_CHECK_MSG(!link.unbounded, "WaterfillWorkspace requires bounded links");
    capacity_[l] = link.capacity;
  }

  flow_links_.assign(4 * num_flows_, kInvalidLink);
  uplink_of_.assign(num_flows_ * static_cast<std::size_t>(n), kInvalidLink);
  downlink_of_.assign(num_flows_ * static_cast<std::size_t>(n), kInvalidLink);
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    const ClosNetwork::ServerCoord s = net.source_coord(flows[f].src);
    const ClosNetwork::ServerCoord t = net.dest_coord(flows[f].dst);
    flow_links_[4 * f + 0] = net.source_link(s.tor, s.server);
    flow_links_[4 * f + 3] = net.dest_link(t.tor, t.server);
    for (int m = 1; m <= n; ++m) {
      uplink_of_[f * static_cast<std::size_t>(n) + (m - 1)] = net.uplink(s.tor, m);
      downlink_of_[f * static_cast<std::size_t>(n) + (m - 1)] = net.downlink(m, t.tor);
    }
  }

  epoch_ = 0;
  link_epoch_.assign(num_links, 0);
  used_links_.clear();
  used_links_.reserve(4 * num_flows_);
  flows_on_.assign(num_links, 0);
  active_count_.assign(num_links, 0);
  residual_.assign(num_links, Rational{0});
  link_offset_.assign(num_links, 0);
  link_cursor_.assign(num_links, 0);
  link_flows_.assign(4 * num_flows_, 0);
  saturated_.clear();
  saturated_.reserve(4 * num_flows_);
  to_freeze_.clear();
  // A flow can be pushed once per saturated link it crosses (up to 4), so
  // reserve enough that the inner loop never reallocates.
  to_freeze_.reserve(4 * num_flows_);
  frozen_.assign(num_flows_, 0);
  rates_.assign(num_flows_, Rational{0});
  OBS_COUNTER_INC("waterfill.binds");
}

const std::vector<Rational>& WaterfillWorkspace::max_min_rates(
    const MiddleAssignment& middles) {
  CF_CHECK_MSG(middles.size() == num_flows_,
               "middle assignment covers " << middles.size() << " flows, expected "
                                           << num_flows_);
  const auto n = static_cast<std::size_t>(num_middles_);

  // Map the assignment onto link loads: fill the per-flow variable links and
  // gather the distinct links touched, counting flows per link.
  ++epoch_;
  used_links_.clear();
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    const int m = middles[f];
    CF_CHECK_MSG(m >= 1 && m <= num_middles_,
                 "middle index " << m << " out of [1, " << num_middles_ << "]");
    flow_links_[4 * f + 1] = uplink_of_[f * n + static_cast<std::size_t>(m - 1)];
    flow_links_[4 * f + 2] = downlink_of_[f * n + static_cast<std::size_t>(m - 1)];
    for (int slot = 0; slot < 4; ++slot) {
      const auto l = static_cast<std::size_t>(flow_links_[4 * f + slot]);
      if (link_epoch_[l] != epoch_) {
        link_epoch_[l] = epoch_;
        used_links_.push_back(static_cast<LinkId>(l));
        flows_on_[l] = 0;
      }
      ++flows_on_[l];
    }
  }

  // CSR index of flows per used link, then per-link water-fill state.
  std::size_t running = 0;
  for (const LinkId link : used_links_) {
    const auto l = static_cast<std::size_t>(link);
    link_offset_[l] = running;
    link_cursor_[l] = running;
    running += flows_on_[l];
    residual_[l] = capacity_[l];
    active_count_[l] = flows_on_[l];
  }
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    for (int slot = 0; slot < 4; ++slot) {
      const auto l = static_cast<std::size_t>(flow_links_[4 * f + slot]);
      link_flows_[link_cursor_[l]++] = f;
    }
  }

  // Progressive filling, identical to max_min_fair<Rational> but iterating
  // only the links this candidate actually uses. Telemetry accumulates in
  // plain locals; the registry is touched once per call, at the bottom.
  std::uint64_t obs_rounds = 0;
  std::uint64_t obs_saturations = 0;
  std::fill(rates_.begin(), rates_.end(), Rational{0});
  std::fill(frozen_.begin(), frozen_.end(), static_cast<unsigned char>(0));
  std::size_t num_frozen = 0;
  while (num_frozen < num_flows_) {
    bool have_level = false;
    Rational level{0};
    saturated_.clear();
    for (const LinkId link : used_links_) {
      const auto l = static_cast<std::size_t>(link);
      if (active_count_[l] == 0) continue;
      const Rational share =
          residual_[l] / Rational{static_cast<std::int64_t>(active_count_[l])};
      if (!have_level || share < level) {
        have_level = true;
        level = share;
        saturated_.clear();
        saturated_.push_back(link);
      } else if (share == level) {
        saturated_.push_back(link);
      }
    }
    CF_CHECK_MSG(have_level,
                 "flow with no bounded link: max-min rate would be unbounded");

    to_freeze_.clear();
    for (const LinkId link : saturated_) {
      const auto l = static_cast<std::size_t>(link);
      const std::size_t end = link_offset_[l] + flows_on_[l];
      for (std::size_t idx = link_offset_[l]; idx < end; ++idx) {
        const FlowIndex f = link_flows_[idx];
        if (!frozen_[f]) to_freeze_.push_back(f);
      }
    }
    CF_CHECK(!to_freeze_.empty());

    for (const LinkId link : used_links_) {
      const auto l = static_cast<std::size_t>(link);
      if (active_count_[l] == 0) continue;
      residual_[l] -= level * Rational{static_cast<std::int64_t>(active_count_[l])};
    }
    for (FlowIndex f = 0; f < num_flows_; ++f) {
      if (!frozen_[f]) rates_[f] += level;
    }
    for (const FlowIndex f : to_freeze_) {
      if (frozen_[f]) continue;
      frozen_[f] = 1;
      ++num_frozen;
      for (int slot = 0; slot < 4; ++slot) {
        --active_count_[static_cast<std::size_t>(flow_links_[4 * f + slot])];
      }
    }
    ++obs_rounds;
    obs_saturations += saturated_.size();
  }
  OBS_COUNTER_INC("waterfill.calls");
  OBS_COUNTER_ADD("waterfill.rounds", obs_rounds);
  OBS_COUNTER_ADD("waterfill.saturated_links", obs_saturations);
  OBS_COUNTER_ADD("waterfill.links_touched", used_links_.size());
  return rates_;
}

}  // namespace closfair
