#include "fairness/waterfill.hpp"

#include <algorithm>
#include <bit>

#include "fairness/bottleneck.hpp"
#include "obs/obs.hpp"

namespace closfair {

// Explicit instantiations for the two supported rate domains, keeping the
// template out of every includer's object file.
template Allocation<Rational> max_min_fair<Rational>(const Topology&, const FlowSet&,
                                                     const Routing&);
template Allocation<double> max_min_fair<double>(const Topology&, const FlowSet&,
                                                 const Routing&);

Allocation<Rational> max_min_fair_seeded(const Topology& topo, const FlowSet& flows,
                                         const Routing& routing,
                                         const std::vector<Rational>& seed_rates) {
  if (seed_rates.size() == flows.size()) {
    Allocation<Rational> seeded(seed_rates);
    if (is_max_min_fair<Rational>(topo, routing, seeded)) {
      OBS_COUNTER_INC("waterfill.seed_hits");
      return seeded;
    }
  }
  OBS_COUNTER_INC("waterfill.seed_misses");
  return max_min_fair<Rational>(topo, flows, routing);
}

void WaterfillWorkspace::bind(const ClosNetwork& net, const FlowSet& flows) {
  const Topology& topo = net.topology();
  const int n = net.num_middles();
  num_middles_ = n;
  num_flows_ = flows.size();
  words_ = (num_flows_ + 63) / 64;
  const std::size_t num_links = topo.num_links();

  capacity_.assign(num_links, Rational{0});
  for (std::size_t l = 0; l < num_links; ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    CF_CHECK_MSG(!link.unbounded, "WaterfillWorkspace requires bounded links");
    capacity_[l] = link.capacity;
  }

  // Fixed-denominator scaling: common_den_ = lcm of every capacity
  // denominator; scaled_capacity_[l] = num_l * (common_den_ / den_l). The
  // fast path is available only when both survive int64.
  common_den_ = 1;
  fast_ok_ = true;
  for (std::size_t l = 0; l < num_links && fast_ok_; ++l) {
    fast_ok_ = checked_lcm_i64(common_den_, capacity_[l].den(), common_den_);
  }
  scaled_capacity_.assign(num_links, 0);
  for (std::size_t l = 0; l < num_links && fast_ok_; ++l) {
    fast_ok_ = checked_mul_i64(capacity_[l].num(), common_den_ / capacity_[l].den(),
                               scaled_capacity_[l]);
  }
  if (!fast_ok_) common_den_ = 1;

  count_rational_.clear();
  count_rational_.reserve(num_flows_ + 1);
  for (std::size_t k = 0; k <= num_flows_; ++k) {
    count_rational_.push_back(Rational{static_cast<std::int64_t>(k)});
  }

  // Uplink/downlink ids interleaved per (flow, middle) so map_candidate
  // reads both middle-dependent links of a flow from one cache line.
  flow_links_.assign(4 * num_flows_, kInvalidLink);
  updown_of_.assign(num_flows_ * static_cast<std::size_t>(n) * 2, kInvalidLink);
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    const ClosNetwork::ServerCoord s = net.source_coord(flows[f].src);
    const ClosNetwork::ServerCoord t = net.dest_coord(flows[f].dst);
    flow_links_[4 * f + 0] = net.source_link(s.tor, s.server);
    flow_links_[4 * f + 3] = net.dest_link(t.tor, t.server);
    for (int m = 1; m <= n; ++m) {
      const std::size_t base = (f * static_cast<std::size_t>(n) + (m - 1)) * 2;
      updown_of_[base + 0] = net.uplink(s.tor, m);
      updown_of_[base + 1] = net.downlink(m, t.tor);
    }
  }

  epoch_ = 0;
  link_epoch_.assign(num_links, 0);
  link_slot_.assign(num_links, 0);
  num_slots_ = 0;

  // One extra sink slot: when both endpoint links of a flow fold into the
  // same ceiling slot, the duplicate flow_slot_ entry points here so the
  // per-flow decrement path stays branch-free (the sink is never scanned).
  const std::size_t max_slots = 4 * num_flows_;
  slot_link_.assign(max_slots, 0);
  slot_residual_.assign(max_slots, Rational{0});
  slot_residual_num_.assign(max_slots, 0);
  slot_active_.assign(max_slots + 1, 0);
  slot_mask_.assign(max_slots * words_, 0);
  flow_slot_.assign(4 * num_flows_, 0);
  saturated_.assign(max_slots, 0);
  frozen_mask_.assign(words_, 0);
  freeze_mask_.assign(words_, 0);
  rate_num_.assign(num_flows_, 0);
  rates_.assign(num_flows_, Rational{0});

  // Fixed endpoint slots: source and destination links do not depend on the
  // middle assignment, so their slots, bitsets, and active counts are built
  // once here and replayed by memcpy in map_candidate. An endpoint link
  // carrying exactly one flow folds into that flow's single ceiling slot of
  // minimum capacity: among constraints binding the same lone flow only the
  // tightest can saturate first, so the others are dominated — they saturate
  // no earlier and would freeze nothing new in either engine.
  constexpr std::uint32_t kNoFixedSlot = 0xFFFFFFFFu;
  const auto sink_slot = static_cast<std::uint32_t>(max_slots);
  std::vector<std::uint32_t> endpoint_count(num_links, 0);
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    ++endpoint_count[static_cast<std::size_t>(flow_links_[4 * f + 0])];
    ++endpoint_count[static_cast<std::size_t>(flow_links_[4 * f + 3])];
  }
  num_fixed_ = 0;
  fixed_cap_.clear();
  fixed_residual_template_.clear();
  fixed_active_template_.clear();
  fixed_mask_template_.clear();
  std::vector<std::uint32_t> fixed_slot_of(num_links, kNoFixedSlot);
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    const std::uint64_t bit = 1ULL << (f & 63);
    const std::size_t word = f >> 6;
    LinkId ceiling = kInvalidLink;
    for (const int e : {0, 3}) {
      const auto l = static_cast<std::size_t>(flow_links_[4 * f + e]);
      if (endpoint_count[l] == 1) {
        if (ceiling == kInvalidLink ||
            capacity_[l] < capacity_[static_cast<std::size_t>(ceiling)]) {
          ceiling = flow_links_[4 * f + e];
        }
        flow_slot_[4 * f + e] = sink_slot;
        continue;
      }
      std::uint32_t j = fixed_slot_of[l];
      if (j == kNoFixedSlot) {
        j = static_cast<std::uint32_t>(num_fixed_++);
        fixed_slot_of[l] = j;
        fixed_cap_.push_back(capacity_[l]);
        fixed_residual_template_.push_back(scaled_capacity_[l]);
        fixed_active_template_.push_back(0);
        fixed_mask_template_.resize(num_fixed_ * words_, 0ULL);
      }
      ++fixed_active_template_[j];
      fixed_mask_template_[j * words_ + word] |= bit;
      flow_slot_[4 * f + e] = j;
    }
    if (ceiling != kInvalidLink) {
      const auto l = static_cast<std::size_t>(ceiling);
      const auto j = static_cast<std::uint32_t>(num_fixed_++);
      fixed_cap_.push_back(capacity_[l]);
      fixed_residual_template_.push_back(scaled_capacity_[l]);
      fixed_active_template_.push_back(1);
      fixed_mask_template_.resize(num_fixed_ * words_, 0ULL);
      fixed_mask_template_[j * words_ + word] |= bit;
      // The first folded entry addresses the ceiling slot; when both
      // endpoints folded, the duplicate keeps pointing at the sink so the
      // per-flow decrement path never double-counts.
      if (flow_slot_[4 * f + 0] == sink_slot) {
        flow_slot_[4 * f + 0] = j;
      } else {
        flow_slot_[4 * f + 3] = j;
      }
    }
  }

  last_call_fast_ = false;
  steady_state_allocs_ = 0;
  bound_capacity_sum_ = buffer_capacity_sum();
  OBS_COUNTER_INC("waterfill.binds");
}

std::size_t WaterfillWorkspace::buffer_capacity_sum() const {
  return flow_links_.capacity() + updown_of_.capacity() +
         capacity_.capacity() + scaled_capacity_.capacity() +
         count_rational_.capacity() + fixed_cap_.capacity() +
         fixed_residual_template_.capacity() + fixed_active_template_.capacity() +
         fixed_mask_template_.capacity() +
         link_epoch_.capacity() + link_slot_.capacity() +
         slot_link_.capacity() + slot_residual_.capacity() +
         slot_residual_num_.capacity() + slot_active_.capacity() +
         slot_mask_.capacity() + flow_slot_.capacity() + saturated_.capacity() +
         frozen_mask_.capacity() + freeze_mask_.capacity() +
         rate_num_.capacity() + rates_.capacity();
}

void WaterfillWorkspace::map_candidate(const MiddleAssignment& middles) {
  const auto n = static_cast<std::size_t>(num_middles_);
  if (++epoch_ == 0) {
    // Epoch counter wrapped: invalidate every stamp once, then restart at 1.
    std::fill(link_epoch_.begin(), link_epoch_.end(), 0u);
    epoch_ = 1;
  }
  // Replay the bind-time endpoint slots wholesale, then map only the two
  // middle-dependent links of each flow through the epoch table.
  num_slots_ = num_fixed_;
  std::copy_n(fixed_residual_template_.begin(), num_fixed_,
              slot_residual_num_.begin());
  if (words_ == 1) {
    // Single-word lane: the fast engine derives active counts straight from
    // popcount(mask & live), so neither slot_active_ nor flow_slot_ is
    // maintained here (the fallback re-derives what it needs on its own).
    std::copy_n(fixed_mask_template_.begin(), num_fixed_, slot_mask_.begin());
    for (FlowIndex f = 0; f < num_flows_; ++f) {
      const int m = middles[f];
      CF_CHECK_MSG(m >= 1 && m <= num_middles_,
                   "middle index " << m << " out of [1, " << num_middles_ << "]");
      const std::size_t base = (f * n + static_cast<std::size_t>(m - 1)) * 2;
      const std::uint64_t bit = 1ULL << f;
      for (int slot = 0; slot < 2; ++slot) {
        const auto l = static_cast<std::size_t>(updown_of_[base + slot]);
        if (link_epoch_[l] != epoch_) {
          link_epoch_[l] = epoch_;
          const auto j = static_cast<std::uint32_t>(num_slots_++);
          link_slot_[l] = j;
          slot_link_[j] = static_cast<std::uint32_t>(l);
          slot_residual_num_[j] = scaled_capacity_[l];
          slot_mask_[j] = bit;
        } else {
          slot_mask_[link_slot_[l]] |= bit;
        }
      }
    }
    return;
  }
  std::copy_n(fixed_active_template_.begin(), num_fixed_, slot_active_.begin());
  std::copy_n(fixed_mask_template_.begin(), num_fixed_ * words_,
              slot_mask_.begin());
  for (FlowIndex f = 0; f < num_flows_; ++f) {
    const int m = middles[f];
    CF_CHECK_MSG(m >= 1 && m <= num_middles_,
                 "middle index " << m << " out of [1, " << num_middles_ << "]");
    const std::size_t base = (f * n + static_cast<std::size_t>(m - 1)) * 2;
    const std::uint64_t bit = 1ULL << (f & 63);
    const std::size_t word = f >> 6;
    for (int slot = 0; slot < 2; ++slot) {
      const auto l = static_cast<std::size_t>(updown_of_[base + slot]);
      std::uint32_t j;
      if (link_epoch_[l] != epoch_) {
        link_epoch_[l] = epoch_;
        j = static_cast<std::uint32_t>(num_slots_++);
        link_slot_[l] = j;
        slot_link_[j] = static_cast<std::uint32_t>(l);
        slot_residual_num_[j] = scaled_capacity_[l];
        slot_active_[j] = 1;
        std::fill_n(slot_mask_.begin() + static_cast<std::ptrdiff_t>(j * words_),
                    words_, 0ULL);
      } else {
        j = link_slot_[l];
        ++slot_active_[j];
      }
      flow_slot_[4 * f + 1 + slot] = j;
      slot_mask_[j * words_ + word] |= bit;
    }
  }
}

namespace {

using Int128 = __int128;

}  // namespace

bool WaterfillWorkspace::run_fast(std::uint64_t& rounds, std::uint64_t& saturations) {
  // Attempt 1 carries no overflow bookkeeping at all — the rare overflow
  // abandons the consumed int64 state, reseed_fast() rebuilds it from the
  // bind tables, and attempt 2 re-runs with the running state gcd-reduced
  // before every round. A second overflow means the state genuinely needs a
  // denominator beyond int64, and the exact engine takes over. Only the
  // completing attempt reports its rounds.
  std::uint64_t r = 0;
  std::uint64_t s = 0;
  if (fill_fast(false, r, s)) {
    rounds += r;
    saturations += s;
    return true;
  }
  reseed_fast();
  r = 0;
  s = 0;
  if (fill_fast(true, r, s)) {
    rounds += r;
    saturations += s;
    return true;
  }
  return false;
}

void WaterfillWorkspace::reseed_fast() {
  std::copy_n(fixed_residual_template_.begin(), num_fixed_,
              slot_residual_num_.begin());
  for (std::size_t j = num_fixed_; j < num_slots_; ++j) {
    slot_residual_num_[j] = scaled_capacity_[slot_link_[j]];
  }
  if (words_ > 1) {
    for (std::size_t j = 0; j < num_slots_; ++j) {
      std::uint32_t count = 0;
      for (std::size_t w = 0; w < words_; ++w) {
        count +=
            static_cast<std::uint32_t>(std::popcount(slot_mask_[j * words_ + w]));
      }
      slot_active_[j] = count;
    }
  }
}

bool WaterfillWorkspace::fill_fast(bool reduce_each_round, std::uint64_t& rounds,
                                   std::uint64_t& saturations) {
  std::int64_t den = common_den_;
  std::fill(rate_num_.begin(), rate_num_.end(), std::int64_t{0});

  std::size_t num_frozen = 0;
  if (words_ == 1) {
    // Single-word lane (up to 64 flows): a slot's active count is
    // popcount(mask & live), so freezing is one OR into `frozen` and no
    // per-slot count state exists between rounds.
    std::uint64_t frozen = 0;
    while (num_frozen < num_flows_) {
      const std::uint64_t live = ~frozen;
      if (reduce_each_round) {
        std::int64_t g = den;
        for (std::size_t j = 0; j < num_slots_ && g > 1; ++j) {
          if ((slot_mask_[j] & live) != 0) g = gcd_i64(g, slot_residual_num_[j]);
        }
        for (std::size_t f = 0; f < num_flows_ && g > 1; ++f) {
          g = gcd_i64(g, rate_num_[f]);
        }
        if (g > 1) {
          den /= g;
          for (std::size_t j = 0; j < num_slots_; ++j) {
            if ((slot_mask_[j] & live) != 0) slot_residual_num_[j] /= g;
          }
          for (std::size_t f = 0; f < num_flows_; ++f) rate_num_[f] /= g;
        }
      }

      // Min-share scan: share_j = residual_j / k_j (the common denominator
      // cancels). Residuals are non-negative; when both sides fit 32 bits
      // the cross-products fit 64 and the scan avoids 128-bit multiplies.
      bool have_level = false;
      std::int64_t r_min = 0;
      std::int64_t k_min = 1;
      std::size_t num_sat = 0;
      for (std::size_t j = 0; j < num_slots_; ++j) {
        const int k = std::popcount(slot_mask_[j] & live);
        if (k == 0) continue;
        const std::int64_t r = slot_residual_num_[j];
        if (!have_level) {
          have_level = true;
          r_min = r;
          k_min = k;
          saturated_[num_sat++] = static_cast<std::uint32_t>(j);
          continue;
        }
        Int128 lhs;
        Int128 rhs;
        if (((r | r_min) >> 32) == 0) {
          lhs = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(k_min);
          rhs = static_cast<std::uint64_t>(r_min) * static_cast<std::uint64_t>(k);
        } else {
          lhs = Int128{r} * k_min;
          rhs = Int128{r_min} * k;
        }
        if (lhs < rhs) {
          r_min = r;
          k_min = k;
          saturated_[0] = static_cast<std::uint32_t>(j);
          num_sat = 1;
        } else if (lhs == rhs) {
          saturated_[num_sat++] = static_cast<std::uint32_t>(j);
        }
      }
      CF_CHECK_MSG(have_level,
                   "flow with no bounded link: max-min rate would be unbounded");

      // Flows to freeze: union of the saturated slots' bitsets, minus the
      // already-frozen ones.
      std::uint64_t freeze = 0;
      for (std::size_t i = 0; i < num_sat; ++i) freeze |= slot_mask_[saturated_[i]];
      freeze &= live;
      const auto newly = static_cast<std::uint64_t>(std::popcount(freeze));
      CF_CHECK(newly != 0);
      const bool last_round = num_frozen + newly == num_flows_;

      // Arithmetic round: the level increment is r_min / (den * k_min), so
      // den picks up k_min, every numerator rescales by k_min, and live
      // flows additionally gain r_min (a saturated slot's residual lands on
      // exactly zero). Once every flow is frozen the residuals are dead and
      // only the rates advance.
      bool ok = checked_mul_i64(den, k_min, den);
      if (!last_round) {
        for (std::size_t j = 0; j < num_slots_ && ok; ++j) {
          const int k = std::popcount(slot_mask_[j] & live);
          if (k == 0) continue;
          std::int64_t scaled;
          std::int64_t charge;
          ok = checked_mul_i64(slot_residual_num_[j], k_min, scaled) &&
               checked_mul_i64(r_min, static_cast<std::int64_t>(k), charge) &&
               checked_sub_i64(scaled, charge, slot_residual_num_[j]);
        }
      }
      for (std::size_t f = 0; f < num_flows_ && ok; ++f) {
        ok = checked_mul_i64(rate_num_[f], k_min, rate_num_[f]);
        if (ok && ((live >> f) & 1ULL) != 0) {
          ok = checked_add_i64(rate_num_[f], r_min, rate_num_[f]);
        }
      }
      if (!ok) return false;

      frozen |= freeze;
      num_frozen += newly;
      ++rounds;
      saturations += num_sat;
    }
  } else {
    // Multi-word lane: per-slot active counts are maintained explicitly and
    // decremented through the per-flow slot table on freeze.
    std::fill(frozen_mask_.begin(), frozen_mask_.end(), 0ULL);
    while (num_frozen < num_flows_) {
      if (reduce_each_round) {
        std::int64_t g = den;
        for (std::size_t j = 0; j < num_slots_ && g > 1; ++j) {
          if (slot_active_[j] != 0) g = gcd_i64(g, slot_residual_num_[j]);
        }
        for (std::size_t f = 0; f < num_flows_ && g > 1; ++f) {
          g = gcd_i64(g, rate_num_[f]);
        }
        if (g > 1) {
          den /= g;
          for (std::size_t j = 0; j < num_slots_; ++j) {
            if (slot_active_[j] != 0) slot_residual_num_[j] /= g;
          }
          for (std::size_t f = 0; f < num_flows_; ++f) rate_num_[f] /= g;
        }
      }

      bool have_level = false;
      std::int64_t r_min = 0;
      std::int64_t k_min = 1;
      std::size_t num_sat = 0;
      for (std::size_t j = 0; j < num_slots_; ++j) {
        const std::uint32_t k = slot_active_[j];
        if (k == 0) continue;
        const std::int64_t r = slot_residual_num_[j];
        if (!have_level) {
          have_level = true;
          r_min = r;
          k_min = k;
          saturated_[num_sat++] = static_cast<std::uint32_t>(j);
          continue;
        }
        Int128 lhs;
        Int128 rhs;
        if (((r | r_min) >> 32) == 0) {
          lhs = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(k_min);
          rhs = static_cast<std::uint64_t>(r_min) * k;
        } else {
          lhs = Int128{r} * k_min;
          rhs = Int128{r_min} * k;
        }
        if (lhs < rhs) {
          r_min = r;
          k_min = k;
          saturated_[0] = static_cast<std::uint32_t>(j);
          num_sat = 1;
        } else if (lhs == rhs) {
          saturated_[num_sat++] = static_cast<std::uint32_t>(j);
        }
      }
      CF_CHECK_MSG(have_level,
                   "flow with no bounded link: max-min rate would be unbounded");

      std::fill(freeze_mask_.begin(), freeze_mask_.end(), 0ULL);
      for (std::size_t i = 0; i < num_sat; ++i) {
        const std::size_t j = saturated_[i];
        for (std::size_t w = 0; w < words_; ++w) {
          freeze_mask_[w] |= slot_mask_[j * words_ + w];
        }
      }
      std::uint64_t newly = 0;
      for (std::size_t w = 0; w < words_; ++w) {
        freeze_mask_[w] &= ~frozen_mask_[w];
        newly += static_cast<std::uint64_t>(std::popcount(freeze_mask_[w]));
      }
      CF_CHECK(newly != 0);
      const bool last_round = num_frozen + newly == num_flows_;

      bool ok = checked_mul_i64(den, k_min, den);
      if (!last_round) {
        for (std::size_t j = 0; j < num_slots_ && ok; ++j) {
          const std::uint32_t k = slot_active_[j];
          if (k == 0) continue;
          std::int64_t scaled;
          std::int64_t charge;
          ok = checked_mul_i64(slot_residual_num_[j], k_min, scaled) &&
               checked_mul_i64(r_min, static_cast<std::int64_t>(k), charge) &&
               checked_sub_i64(scaled, charge, slot_residual_num_[j]);
        }
      }
      for (std::size_t f = 0; f < num_flows_ && ok; ++f) {
        ok = checked_mul_i64(rate_num_[f], k_min, rate_num_[f]);
        if (ok && ((frozen_mask_[f >> 6] >> (f & 63)) & 1ULL) == 0) {
          ok = checked_add_i64(rate_num_[f], r_min, rate_num_[f]);
        }
      }
      if (!ok) return false;

      num_frozen += newly;
      if (!last_round) {
        for (std::size_t w = 0; w < words_; ++w) frozen_mask_[w] |= freeze_mask_[w];
        for (std::size_t w = 0; w < words_; ++w) {
          std::uint64_t bits = freeze_mask_[w];
          while (bits != 0) {
            const auto f = static_cast<std::size_t>(
                (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
            for (int slot = 0; slot < 4; ++slot) {
              --slot_active_[flow_slot_[4 * f + slot]];
            }
          }
        }
      }
      ++rounds;
      saturations += num_sat;
    }
  }

  // Normalize once per flow; the Rational constructor reduces num/den to
  // the canonical form the exact engine produces. Flows frozen in the same
  // round share a numerator, so a small memo spends one gcd per distinct
  // level instead of one per flow.
  std::int64_t memo_num[8];
  Rational memo_val[8];
  std::size_t memo_size = 0;
  for (std::size_t f = 0; f < num_flows_; ++f) {
    const std::int64_t v = rate_num_[f];
    std::size_t i = 0;
    while (i < memo_size && memo_num[i] != v) ++i;
    if (i < memo_size) {
      rates_[f] = memo_val[i];
    } else {
      rates_[f] = Rational{v, den};
      if (memo_size < 8) {
        memo_num[memo_size] = v;
        memo_val[memo_size] = rates_[f];
        ++memo_size;
      }
    }
  }
  return true;
}

void WaterfillWorkspace::run_fallback(std::uint64_t& rounds,
                                      std::uint64_t& saturations) {
  std::fill(rates_.begin(), rates_.end(), Rational{0});
  std::fill(frozen_mask_.begin(), frozen_mask_.end(), 0ULL);
  // Re-derive residuals and counts: the fast engine may have consumed the
  // map_candidate-seeded state before overflowing into this path.
  for (std::size_t j = 0; j < num_slots_; ++j) {
    slot_residual_[j] = j < num_fixed_ ? fixed_cap_[j] : capacity_[slot_link_[j]];
    std::uint32_t count = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      count += static_cast<std::uint32_t>(std::popcount(slot_mask_[j * words_ + w]));
    }
    slot_active_[j] = count;
  }

  std::size_t num_frozen = 0;
  while (num_frozen < num_flows_) {
    // Same scan order as the fast path, on exact Rationals; the per-count
    // divisors come from the bind-time table instead of a fresh Rational per
    // slot per round.
    bool have_level = false;
    Rational level{0};
    std::size_t num_sat = 0;
    for (std::size_t j = 0; j < num_slots_; ++j) {
      const std::uint32_t k = slot_active_[j];
      if (k == 0) continue;
      const Rational share = slot_residual_[j] / count_rational_[k];
      if (!have_level || share < level) {
        have_level = true;
        level = share;
        saturated_[0] = static_cast<std::uint32_t>(j);
        num_sat = 1;
      } else if (share == level) {
        saturated_[num_sat++] = static_cast<std::uint32_t>(j);
      }
    }
    CF_CHECK_MSG(have_level,
                 "flow with no bounded link: max-min rate would be unbounded");

    std::fill(freeze_mask_.begin(), freeze_mask_.end(), 0ULL);
    for (std::size_t i = 0; i < num_sat; ++i) {
      const std::size_t j = saturated_[i];
      for (std::size_t w = 0; w < words_; ++w) {
        freeze_mask_[w] |= slot_mask_[j * words_ + w];
      }
    }
    std::uint64_t newly_frozen = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      freeze_mask_[w] &= ~frozen_mask_[w];
      newly_frozen += static_cast<std::uint64_t>(std::popcount(freeze_mask_[w]));
    }
    CF_CHECK(newly_frozen != 0);

    for (std::size_t j = 0; j < num_slots_; ++j) {
      const std::uint32_t k = slot_active_[j];
      if (k == 0) continue;
      slot_residual_[j] -= level * count_rational_[k];
    }
    for (std::size_t f = 0; f < num_flows_; ++f) {
      if (((frozen_mask_[f >> 6] >> (f & 63)) & 1ULL) == 0) rates_[f] += level;
    }

    num_frozen += newly_frozen;
    for (std::size_t w = 0; w < words_; ++w) frozen_mask_[w] |= freeze_mask_[w];
    if (words_ == 1) {
      const std::uint64_t live = ~frozen_mask_[0];
      for (std::size_t j = 0; j < num_slots_; ++j) {
        slot_active_[j] =
            static_cast<std::uint32_t>(std::popcount(slot_mask_[j] & live));
      }
    } else {
      for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t bits = freeze_mask_[w];
        while (bits != 0) {
          const auto f = static_cast<std::size_t>(
              (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
          bits &= bits - 1;
          for (int slot = 0; slot < 4; ++slot) --slot_active_[flow_slot_[4 * f + slot]];
        }
      }
    }
    ++rounds;
    saturations += num_sat;
  }
}

const std::vector<Rational>& WaterfillWorkspace::max_min_rates(
    const MiddleAssignment& middles) {
  CF_CHECK_MSG(middles.size() == num_flows_,
               "middle assignment covers " << middles.size() << " flows, expected "
                                           << num_flows_);
  map_candidate(middles);

  // Telemetry accumulates in plain locals; the registry is touched once per
  // call, at the bottom. Only the engine that completed the call reports its
  // rounds, so an overflow-aborted fast attempt leaves no trace in the work
  // counters (the overflow point is deterministic, and so is the fallback).
  std::uint64_t obs_rounds = 0;
  std::uint64_t obs_saturations = 0;
  last_call_fast_ = false;
  if (fast_ok_ && !force_fallback_ && run_fast(obs_rounds, obs_saturations)) {
    last_call_fast_ = true;
    OBS_COUNTER_INC("waterfill.fast_calls");
  } else {
    obs_rounds = 0;
    obs_saturations = 0;
    run_fallback(obs_rounds, obs_saturations);
    OBS_COUNTER_INC("waterfill.fallback_calls");
  }
  OBS_COUNTER_INC("waterfill.calls");
  OBS_COUNTER_ADD("waterfill.rounds", obs_rounds);
  OBS_COUNTER_ADD("waterfill.saturated_links", obs_saturations);
  OBS_COUNTER_ADD("waterfill.links_touched", num_slots_);

  if (buffer_capacity_sum() != bound_capacity_sum_) {
    ++steady_state_allocs_;
    bound_capacity_sum_ = buffer_capacity_sum();
  }
  return rates_;
}

}  // namespace closfair
