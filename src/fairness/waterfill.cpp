#include "fairness/waterfill.hpp"

namespace closfair {

// Explicit instantiations for the two supported rate domains, keeping the
// template out of every includer's object file.
template Allocation<Rational> max_min_fair<Rational>(const Topology&, const FlowSet&,
                                                     const Routing&);
template Allocation<double> max_min_fair<double>(const Topology&, const FlowSet&,
                                                 const Routing&);

}  // namespace closfair
