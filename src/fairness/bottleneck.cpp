#include "fairness/bottleneck.hpp"

namespace closfair {

// Explicit instantiations for the supported rate domains.
template std::vector<std::optional<LinkId>> bottleneck_links<Rational>(
    const Topology&, const Routing&, const Allocation<Rational>&, Rational);
template std::vector<std::optional<LinkId>> bottleneck_links<double>(
    const Topology&, const Routing&, const Allocation<double>&, double);
template bool is_max_min_fair<Rational>(const Topology&, const Routing&,
                                        const Allocation<Rational>&, Rational);
template bool is_max_min_fair<double>(const Topology&, const Routing&,
                                      const Allocation<double>&, double);

}  // namespace closfair
