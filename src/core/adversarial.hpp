// The paper's adversarial flow collections, exactly as constructed in the
// proofs and worked examples. Each generator returns the flow collection in
// ToR/server coordinates (instantiable on both C_n and MS_n), per-flow type
// labels, the predicted macro-switch max-min rates, and — where the paper
// exhibits one — the witness Clos routing with its predicted rates.
//
// Flow ordering is deterministic and documented per generator so that witness
// middle assignments line up by index.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "util/rational.hpp"

namespace closfair {

/// One adversarial instance: flows plus everything the paper predicts about
/// them.
struct AdversarialInstance {
  int n = 1;  ///< Clos size parameter the instance was built for
  FlowCollection flows;
  std::vector<std::string> labels;  ///< per-flow type ("type1", "type2a", ...)

  /// Predicted max-min fair rates in MS_n (unique; §2.2).
  std::vector<Rational> macro_rates;

  /// The paper's witness routing in C_n, when the construction names one.
  std::optional<MiddleAssignment> witness;
  /// Predicted max-min fair rates in C_n under `witness`.
  std::optional<std::vector<Rational>> witness_rates;
};

/// Example 2.3 / Figure 1: six flows in C_2. `routing_a` assigns the type 1
/// flow (s_1^2, t_2^1) to M_1 (sorted vector [1/3 ×3, 2/3 ×3]); `routing_b`
/// re-assigns it to M_2 (sorted vector [1/3 ×4, 2/3, 1]). The instance's
/// witness is routing A (the lexicographically better of the two).
struct Example23 {
  AdversarialInstance instance;
  MiddleAssignment routing_a;
  std::vector<Rational> rates_a;
  MiddleAssignment routing_b;
  std::vector<Rational> rates_b;
};
[[nodiscard]] Example23 example_2_3();

/// Theorem 3.4 / Example 3.3 / Figure 2: the price-of-fairness family on
/// MS_n. Two type 1 flows plus k parallel type 2 flows; T^MT = 2 while
/// T^MmF = 1 + 1/(k+1). Flow order: type1 (s_1^1,t_1^1), type1 (s_2^1,t_2^1),
/// then the k type 2 flows (s_2^1, t_1^1). Example 3.3 is k = 1.
[[nodiscard]] AdversarialInstance theorem_3_4_instance(int n, int k);

/// Theorem 4.2 / Example 4.1 / Figure 3: the replication-infeasibility
/// instance in C_n (n >= 3). Flow order: type 1 (i in [n] outer, j in [2,n]
/// inner), type 2.a (i in [n]), type 2.b (i in [n] outer, j in [n-1] inner),
/// type 3. No witness: the point is that *no* routing replicates the macro
/// rates.
[[nodiscard]] AdversarialInstance theorem_4_2_instance(int n);

/// Theorem 4.3 / Lemmas 4.4-4.6: the starvation instance in C_n (n >= 3);
/// same as Theorem 4.2 but with n+1 copies of each type 1 flow. Flow order:
/// type 1 (i outer, j middle, copy inner), type 2.a, type 2.b, type 3. The
/// witness is the Lemma 4.6 routing, under which the type 3 flow gets rate
/// 1/n against its macro-switch rate 1.
[[nodiscard]] AdversarialInstance theorem_4_3_instance(int n);

/// Theorem 5.4 / Example 5.3 / Figure 4: the throughput-doubling instance in
/// C_n (odd n >= 3): (n-1)/2 stacked Example 3.3 gadgets on ToR 1, k type 2
/// flows each. Flow order: type 1 (s_1^j, t_1^j) for j in [n-1], then type 2
/// gadgets (j = 2, 4, ..., n-1; k copies each of (s_1^j, t_1^{j-1})).
/// No witness routing is fixed — the Doom-Switch algorithm builds one.
/// Example 5.3 is (n, k) = (7, 1).
[[nodiscard]] AdversarialInstance theorem_5_4_instance(int n, int k);

}  // namespace closfair
