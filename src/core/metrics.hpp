// Fairness and efficiency metrics over allocations.
//
// The paper measures allocations by throughput and lexicographic order; the
// networking literature it engages (Hedera, pFabric, the price-of-fairness
// work) reports scalar fairness metrics. This module provides the standard
// ones so benches and downstream users can score routings on familiar axes:
//
//  * Jain's fairness index      (Σx)² / (n·Σx²), in (0, 1], 1 = equal
//  * min-rate / mean-rate       the worst-off flow and the average
//  * α-fair welfare             Σ x^(1-α)/(1-α), α=1 → Σ log x
//    (α → ∞ recovers max-min; α = 1 is proportional fairness)
#pragma once

#include <vector>

#include "flow/allocation.hpp"
#include "util/rational.hpp"

namespace closfair {

/// Jain's fairness index of a non-negative rate vector; 1.0 for the empty
/// or all-zero vector (vacuously fair).
[[nodiscard]] double jain_index(const std::vector<double>& rates);
[[nodiscard]] double jain_index(const Allocation<Rational>& alloc);

/// Smallest rate (0 for empty).
[[nodiscard]] double min_rate(const std::vector<double>& rates);

/// Mean rate (0 for empty).
[[nodiscard]] double mean_rate(const std::vector<double>& rates);

/// α-fair welfare Σ_f u_α(x_f) with u_1 = log, u_α = x^(1-α)/(1-α) for
/// α != 1. Zero rates contribute -infinity for α >= 1 (they are infinitely
/// unfair under proportional fairness), consistent with the literature.
/// Requires alpha >= 0.
[[nodiscard]] double alpha_fair_welfare(const std::vector<double>& rates, double alpha);

/// Convenience: extract doubles from an exact allocation.
[[nodiscard]] std::vector<double> as_doubles(const Allocation<Rational>& alloc);

}  // namespace closfair
