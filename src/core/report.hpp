// Human-readable reports over allocations and comparisons, shared by the
// bench harnesses and example programs.
#pragma once

#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "flow/allocation.hpp"
#include "util/rational.hpp"

namespace closfair {

/// Per-label rate summary of an allocation (count, min, max rate per label,
/// in first-appearance order).
struct LabelSummary {
  std::string label;
  std::size_t count = 0;
  Rational min_rate{0};
  Rational max_rate{0};
};
[[nodiscard]] std::vector<LabelSummary> summarize_by_label(
    const std::vector<std::string>& labels, const Allocation<Rational>& alloc);

/// Render label summaries of one or two allocations side by side (pass an
/// empty `right` to print just the left). Column names are caller-chosen.
[[nodiscard]] std::string render_label_table(const std::vector<std::string>& labels,
                                             const Allocation<Rational>& left,
                                             const std::string& left_name,
                                             const Allocation<Rational>* right = nullptr,
                                             const std::string& right_name = "");

/// Render a full Clos-vs-macro Comparison.
[[nodiscard]] std::string render_comparison(const Comparison& comparison);

}  // namespace closfair
