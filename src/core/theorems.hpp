// Closed-form predictions of the paper's three theorems, used by the bench
// harnesses to print "paper" columns next to measured values and by the test
// suite as exact expectations.
#pragma once

#include "util/rational.hpp"

namespace closfair {

/// Theorem 3.4 (R1): for the adversarial family with k type 2 flows,
/// T^MT = 2 and T^MmF = 1 + 1/(k+1), so T^MmF / T^MT -> 1/2 as k grows.
struct Theorem34Prediction {
  Rational t_max_throughput;  ///< T^MT
  Rational t_maxmin;          ///< T^MmF
  Rational fairness_ratio;    ///< T^MmF / T^MT
  Rational epsilon;           ///< T^MmF = (1+eps)/2 * T^MT
};
[[nodiscard]] Theorem34Prediction predict_theorem_3_4(int k);

/// Theorem 4.3 (R2): per-type rates of the starvation instance. The type 3
/// flow drops from macro rate 1 to lex-max-min rate 1/n.
struct Theorem43Prediction {
  Rational type1_rate;        ///< 1/(n+1) in both MS_n and C_n
  Rational type2_rate;        ///< 1/n in both
  Rational type3_macro_rate;  ///< 1 in MS_n
  Rational type3_clos_rate;   ///< 1/n under lex-max-min fairness in C_n
  Rational starvation_factor; ///< type3_clos / type3_macro = 1/n
};
[[nodiscard]] Theorem43Prediction predict_theorem_4_3(int n);

/// Theorem 5.4 (R3): for the stacked-gadget family (odd n, k type 2 flows
/// per gadget), T^MmF(MS) = (n-1)/2 * (1 + 1/(k+1)) while the Doom-Switch
/// routing achieves T >= n-2; the gain approaches 2 as n and k grow.
///
/// The per-flow fields (type1_rate, type2_rate, doom_throughput) describe
/// the Doom-Switch allocation exactly for n >= 5. At n = 3 there is a single
/// gadget, the type 2 flows' bottleneck stays on their edge links, and the
/// measured Doom-Switch throughput equals T^MmF(MS) (the 2(1-eps) bound is
/// trivial there since eps -> 1/2); `gain` and `epsilon` remain valid as the
/// paper's *lower-bound* quantities for every odd n >= 3.
struct Theorem54Prediction {
  Rational t_maxmin_macro;      ///< T^MmF in MS_n
  Rational t_doom_lower_bound;  ///< n - 2
  Rational type1_rate;          ///< 1 - 2/(n-1) under Doom-Switch
  Rational type2_rate;          ///< 2 / (k (n-1)) under Doom-Switch
  Rational doom_throughput;     ///< exact Doom-Switch throughput
  Rational gain;                ///< doom_throughput / t_maxmin_macro
  Rational epsilon;             ///< gain = 2 (1 - eps); eps -> 1/(n-1)
};
[[nodiscard]] Theorem54Prediction predict_theorem_5_4(int n, int k);

}  // namespace closfair
