#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace closfair {

double jain_index(const std::vector<double>& rates) {
  if (rates.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double r : rates) {
    CF_CHECK_MSG(r >= 0.0, "Jain index requires non-negative rates");
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(rates.size()) * sum_sq);
}

double jain_index(const Allocation<Rational>& alloc) { return jain_index(as_doubles(alloc)); }

double min_rate(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  return *std::min_element(rates.begin(), rates.end());
}

double mean_rate(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  double sum = 0.0;
  for (double r : rates) sum += r;
  return sum / static_cast<double>(rates.size());
}

double alpha_fair_welfare(const std::vector<double>& rates, double alpha) {
  CF_CHECK_MSG(alpha >= 0.0, "alpha-fair welfare requires alpha >= 0");
  double welfare = 0.0;
  for (double r : rates) {
    CF_CHECK_MSG(r >= 0.0, "alpha-fair welfare requires non-negative rates");
    if (r == 0.0 && alpha >= 1.0) return -std::numeric_limits<double>::infinity();
    if (alpha == 1.0) {
      welfare += std::log(r);
    } else {
      welfare += std::pow(r, 1.0 - alpha) / (1.0 - alpha);
    }
  }
  return welfare;
}

std::vector<double> as_doubles(const Allocation<Rational>& alloc) {
  std::vector<double> rates;
  rates.reserve(alloc.size());
  for (const Rational& r : alloc.rates()) rates.push_back(r.to_double());
  return rates;
}

}  // namespace closfair
