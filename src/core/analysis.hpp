// The analysis toolkit: the quantities the paper's theorems are about,
// computed exactly for concrete instances.
//
//  * analyze_macro      — a^MmF, T^MmF, F', T^MT and the price of fairness
//                         in a macro-switch (§3).
//  * analyze_clos       — the max-min fair allocation and throughput for a
//                         Clos routing (§2.2).
//  * max_throughput_routing — a link-disjoint routing carrying a maximum
//                         matching at rate 1 (Lemma 5.2): T^T-MT = T^MT.
//  * compare            — full Clos-vs-macro gap report for one collection
//                         and one routing (the object Theorems 4.3 and 5.4
//                         quantify).
#pragma once

#include <compare>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"
#include "util/rational.hpp"

namespace closfair {

/// Macro-switch quantities for one flow collection.
struct MacroAnalysis {
  Allocation<Rational> maxmin;           ///< a^MmF (unique)
  Rational t_maxmin{0};                  ///< T^MmF
  std::vector<FlowIndex> max_matching;   ///< F' (maximum matching in G^MS)
  Rational t_max_throughput{0};          ///< T^MT = |F'| (Lemma 3.2)
  Rational price_of_fairness{1};         ///< T^MmF / T^MT (1 when T^MT = 0)
};
[[nodiscard]] MacroAnalysis analyze_macro(const MacroSwitch& ms, const FlowSet& flows);

/// Clos quantities for one flow collection under one routing.
struct ClosAnalysis {
  Allocation<Rational> maxmin;  ///< a_r^MmF
  Rational throughput{0};       ///< t(a_r^MmF)
};
[[nodiscard]] ClosAnalysis analyze_clos(const ClosNetwork& net, const FlowSet& flows,
                                        const MiddleAssignment& middles);

/// A maximum-throughput routing per Lemma 5.2: matched flows at rate 1 on
/// link-disjoint paths (via König coloring), all others at rate 0.
struct MaxThroughputRouting {
  std::vector<FlowIndex> matched;  ///< F'
  MiddleAssignment middles;        ///< link-disjoint for F'; rest arbitrary
  Allocation<Rational> alloc;      ///< 1 on matched, 0 elsewhere
  Rational throughput{0};          ///< T^T-MT = |F'|
};
[[nodiscard]] MaxThroughputRouting max_throughput_routing(const ClosNetwork& net,
                                                          const FlowSet& flows);

/// Side-by-side Clos vs macro-switch comparison for one coordinate-level
/// collection. Both topologies must have compatible ToR/server counts.
struct Comparison {
  MacroAnalysis macro;
  ClosAnalysis clos;
  /// t(a_r^MmF) / T^MmF — the R3 throughput gain (1 when T^MmF = 0).
  Rational throughput_ratio{1};
  /// min over flows of clos_rate/macro_rate (flows with macro rate 0
  /// skipped) — the R2 starvation factor. 1 when no flow qualifies.
  Rational min_rate_ratio{1};
  /// sorted(a_r^MmF) vs sorted(a^MmF); never `greater` (§2.3).
  std::strong_ordering lex_vs_macro = std::strong_ordering::equal;
};
[[nodiscard]] Comparison compare(const ClosNetwork& net, const MacroSwitch& ms,
                                 const FlowCollection& specs,
                                 const MiddleAssignment& middles);

}  // namespace closfair
