#include "core/adversarial.hpp"

#include "util/check.hpp"

namespace closfair {

Example23 example_2_3() {
  Example23 ex;
  AdversarialInstance& inst = ex.instance;
  inst.n = 2;

  // Flow order (paper's Figure 1):
  //   0 type1 (s_1^2, t_1^2)   1 type1 (s_1^2, t_2^1)   2 type1 (s_1^2, t_2^2)
  //   3 type2 (s_2^1, t_2^1)   4 type2 (s_2^2, t_2^2)   5 type3 (s_1^1, t_1^1)
  inst.flows = {
      FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
      FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1},
  };
  inst.labels = {"type1", "type1", "type1", "type2", "type2", "type3"};
  inst.macro_rates = {Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                      Rational{2, 3}, Rational{2, 3}, Rational{1}};

  // Routing A: the contested type 1 flow (s_1^2, t_2^1) rides M_1 together
  // with the type 3 flow; the other two type 1 flows ride M_2. The type 3
  // flow's bottleneck moves to I_1M_1 and its rate drops to 2/3.
  ex.routing_a = {2, 1, 2, 1, 2, 1};
  ex.rates_a = {Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                Rational{2, 3}, Rational{2, 3}, Rational{2, 3}};

  // Routing B: re-assigning that flow to M_2 restores the type 3 flow to
  // rate 1 but drags the type 2 flow (s_2^2, t_2^2) down to 1/3 on M_2O_2.
  ex.routing_b = {2, 2, 2, 1, 2, 1};
  ex.rates_b = {Rational{1, 3}, Rational{1, 3}, Rational{1, 3},
                Rational{2, 3}, Rational{1, 3}, Rational{1}};

  inst.witness = ex.routing_a;
  inst.witness_rates = ex.rates_a;
  return ex;
}

AdversarialInstance theorem_3_4_instance(int n, int k) {
  CF_CHECK_MSG(n >= 1, "Theorem 3.4 instance needs n >= 1");
  CF_CHECK_MSG(k >= 1, "Theorem 3.4 instance needs k >= 1");
  AdversarialInstance inst;
  inst.n = n;
  inst.flows = {FlowSpec{1, 1, 1, 1}, FlowSpec{2, 1, 2, 1}};
  inst.labels = {"type1", "type1"};
  for (int copy = 0; copy < k; ++copy) {
    inst.flows.push_back(FlowSpec{2, 1, 1, 1});
    inst.labels.emplace_back("type2");
  }
  // All k+2 flows share a saturated link carrying k+1 flows, so the max-min
  // fair rate of every flow is 1/(k+1).
  inst.macro_rates.assign(inst.flows.size(), Rational{1, k + 1});
  return inst;
}

AdversarialInstance theorem_4_2_instance(int n) {
  CF_CHECK_MSG(n >= 3, "Theorem 4.2 instance needs n >= 3");
  AdversarialInstance inst;
  inst.n = n;

  // Type 1: (s_i^j, t_i^j), i in [n], j in [2, n] — macro rate 1.
  for (int i = 1; i <= n; ++i) {
    for (int j = 2; j <= n; ++j) {
      inst.flows.push_back(FlowSpec{i, j, i, j});
      inst.labels.emplace_back("type1");
      inst.macro_rates.emplace_back(1);
    }
  }
  // Type 2.a: (s_i^1, t_i^1), i in [n] — macro rate 1/n (n type 2 flows
  // share each s_i^1 edge link).
  for (int i = 1; i <= n; ++i) {
    inst.flows.push_back(FlowSpec{i, 1, i, 1});
    inst.labels.emplace_back("type2a");
    inst.macro_rates.emplace_back(Rational{1, n});
  }
  // Type 2.b: (s_i^1, t_{n+1}^j), i in [n], j in [n-1] — macro rate 1/n.
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n - 1; ++j) {
      inst.flows.push_back(FlowSpec{i, 1, n + 1, j});
      inst.labels.emplace_back("type2b");
      inst.macro_rates.emplace_back(Rational{1, n});
    }
  }
  // Type 3: (s_{n+1}^n, t_{n+1}^n) — macro rate 1.
  inst.flows.push_back(FlowSpec{n + 1, n, n + 1, n});
  inst.labels.emplace_back("type3");
  inst.macro_rates.emplace_back(1);
  return inst;
}

AdversarialInstance theorem_4_3_instance(int n) {
  CF_CHECK_MSG(n >= 3, "Theorem 4.3 instance needs n >= 3");
  AdversarialInstance inst;
  inst.n = n;
  MiddleAssignment witness;
  std::vector<Rational> witness_rates;

  // Type 1: n+1 copies of (s_i^j, t_i^j), i in [n], j in [2, n]; macro rate
  // 1/(n+1). Witness: all copies of (i, j) ride M_{((i+j-2) mod n) + 1}.
  for (int i = 1; i <= n; ++i) {
    for (int j = 2; j <= n; ++j) {
      const int middle = (i + j - 2) % n + 1;
      for (int copy = 0; copy < n + 1; ++copy) {
        inst.flows.push_back(FlowSpec{i, j, i, j});
        inst.labels.emplace_back("type1");
        inst.macro_rates.emplace_back(Rational{1, n + 1});
        witness.push_back(middle);
        witness_rates.emplace_back(Rational{1, n + 1});
      }
    }
  }
  // Type 2.a: (s_i^1, t_i^1) rides M_i; macro and witness rate 1/n.
  for (int i = 1; i <= n; ++i) {
    inst.flows.push_back(FlowSpec{i, 1, i, 1});
    inst.labels.emplace_back("type2a");
    inst.macro_rates.emplace_back(Rational{1, n});
    witness.push_back(i);
    witness_rates.emplace_back(Rational{1, n});
  }
  // Type 2.b: (s_i^1, t_{n+1}^j) rides M_i; macro and witness rate 1/n.
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n - 1; ++j) {
      inst.flows.push_back(FlowSpec{i, 1, n + 1, j});
      inst.labels.emplace_back("type2b");
      inst.macro_rates.emplace_back(Rational{1, n});
      witness.push_back(i);
      witness_rates.emplace_back(Rational{1, n});
    }
  }
  // Type 3: rides M_n; macro rate 1 but witness rate only 1/n — the
  // starvation Theorem 4.3 proves unavoidable under lex-max-min fairness.
  inst.flows.push_back(FlowSpec{n + 1, n, n + 1, n});
  inst.labels.emplace_back("type3");
  inst.macro_rates.emplace_back(1);
  witness.push_back(n);
  witness_rates.emplace_back(Rational{1, n});

  inst.witness = std::move(witness);
  inst.witness_rates = std::move(witness_rates);
  return inst;
}

AdversarialInstance theorem_5_4_instance(int n, int k) {
  CF_CHECK_MSG(n >= 3 && n % 2 == 1, "Theorem 5.4 instance needs odd n >= 3");
  CF_CHECK_MSG(k >= 1, "Theorem 5.4 instance needs k >= 1");
  AdversarialInstance inst;
  inst.n = n;

  // Type 1: (s_1^j, t_1^j), j in [n-1]; macro rate 1/(k+1).
  for (int j = 1; j <= n - 1; ++j) {
    inst.flows.push_back(FlowSpec{1, j, 1, j});
    inst.labels.emplace_back("type1");
    inst.macro_rates.emplace_back(Rational{1, k + 1});
  }
  // Type 2: k copies of (s_1^j, t_1^{j-1}) for even j; macro rate 1/(k+1).
  for (int j = 2; j <= n - 1; j += 2) {
    for (int copy = 0; copy < k; ++copy) {
      inst.flows.push_back(FlowSpec{1, j, 1, j - 1});
      inst.labels.emplace_back("type2");
      inst.macro_rates.emplace_back(Rational{1, k + 1});
    }
  }
  return inst;
}

}  // namespace closfair
