#include "core/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace closfair {

std::vector<LabelSummary> summarize_by_label(const std::vector<std::string>& labels,
                                             const Allocation<Rational>& alloc) {
  CF_CHECK_MSG(labels.size() == alloc.size(),
               "labels cover " << labels.size() << " flows, allocation has " << alloc.size());
  std::vector<LabelSummary> summaries;
  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    LabelSummary* entry = nullptr;
    for (auto& s : summaries) {
      if (s.label == labels[f]) {
        entry = &s;
        break;
      }
    }
    if (entry == nullptr) {
      summaries.push_back(LabelSummary{labels[f], 0, alloc.rate(f), alloc.rate(f)});
      entry = &summaries.back();
    }
    ++entry->count;
    if (alloc.rate(f) < entry->min_rate) entry->min_rate = alloc.rate(f);
    if (entry->max_rate < alloc.rate(f)) entry->max_rate = alloc.rate(f);
  }
  return summaries;
}

std::string render_label_table(const std::vector<std::string>& labels,
                               const Allocation<Rational>& left, const std::string& left_name,
                               const Allocation<Rational>* right,
                               const std::string& right_name) {
  const auto left_summary = summarize_by_label(labels, left);
  std::vector<std::string> header = {"flow type", "count", left_name + " rate"};
  if (right != nullptr) header.push_back(right_name + " rate");
  TextTable table(header);

  const auto right_summary =
      right != nullptr ? summarize_by_label(labels, *right) : std::vector<LabelSummary>{};

  auto render_range = [](const LabelSummary& s) {
    if (s.min_rate == s.max_rate) return s.min_rate.to_string();
    return s.min_rate.to_string() + " .. " + s.max_rate.to_string();
  };

  for (std::size_t i = 0; i < left_summary.size(); ++i) {
    std::vector<std::string> row = {left_summary[i].label,
                                    std::to_string(left_summary[i].count),
                                    render_range(left_summary[i])};
    if (right != nullptr) row.push_back(render_range(right_summary[i]));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_comparison(const Comparison& c) {
  std::ostringstream os;
  os << "macro-switch: T^MmF = " << c.macro.t_maxmin
     << ", T^MT = " << c.macro.t_max_throughput
     << ", price of fairness = " << c.macro.price_of_fairness << '\n';
  os << "clos routing: t(a_r^MmF) = " << c.clos.throughput
     << ", throughput ratio vs macro = " << c.throughput_ratio
     << ", min per-flow rate ratio = " << c.min_rate_ratio << '\n';
  os << "sorted(a_r^MmF) vs sorted(a^MmF): "
     << (c.lex_vs_macro == std::strong_ordering::less
             ? "less"
             : (c.lex_vs_macro == std::strong_ordering::equal ? "equal" : "greater"))
     << '\n';
  return os.str();
}

}  // namespace closfair
