#include "core/proofs.hpp"

#include "fairness/waterfill.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"

namespace closfair {

Theorem34Replay replay_theorem_3_4(const MacroSwitch& ms, const FlowSet& flows) {
  Theorem34Replay replay;

  // The max-min fair allocation and the per-endpoint totals τ.
  const Allocation<Rational> maxmin = max_min_fair<Rational>(ms, flows);
  replay.t_maxmin = maxmin.throughput();

  const auto matching = maximum_matching(server_flow_graph(ms, flows));
  replay.matching.assign(matching.begin(), matching.end());

  auto tau_of = [&](NodeId endpoint, bool source) {
    Rational total{0};
    for (FlowIndex g = 0; g < flows.size(); ++g) {
      if ((source ? flows[g].src : flows[g].dst) == endpoint) total += maxmin.rate(g);
    }
    return total;
  };

  replay.bottleneck_step_holds = true;
  for (FlowIndex f : replay.matching) {
    const Rational ts = tau_of(flows[f].src, /*source=*/true);
    const Rational tt = tau_of(flows[f].dst, /*source=*/false);
    replay.tau_source.push_back(ts);
    replay.tau_dest.push_back(tt);
    replay.sum_tau_source += ts;
    replay.sum_tau_dest += tt;
    // Lemma 2.2 gives f a bottleneck on s_f's or t_f's edge link; in either
    // case the saturated link's full unit capacity is counted by τ, hence
    // τ_{s_f} + τ_{t_f} >= 1.
    if (ts + tt < Rational{1}) replay.bottleneck_step_holds = false;
  }

  const Rational matched{static_cast<std::int64_t>(replay.matching.size())};
  const Rational larger = max(replay.sum_tau_source, replay.sum_tau_dest);
  // T^MmF counts every flow's rate; the matched flows' sources (dests) are
  // distinct, so Σ_{f in F'} τ_{s_f} (τ_{t_f}) never double-counts a flow.
  replay.max_step_holds = replay.t_maxmin >= larger;
  replay.half_step_holds =
      larger >= (replay.sum_tau_source + replay.sum_tau_dest) / Rational{2} &&
      (replay.sum_tau_source + replay.sum_tau_dest) >= matched;
  replay.conclusion_holds = replay.t_maxmin * Rational{2} >= matched;
  return replay;
}

std::vector<Claim45Solution> replay_claim_4_5(int n) {
  CF_CHECK(n >= 1);
  std::vector<Claim45Solution> solutions;
  for (int x = 0; x <= n + 1; ++x) {
    for (int y = 0; y <= n; ++y) {
      // x/(n+1) + y/n == 1  <=>  x*n + y*(n+1) == n*(n+1).
      const std::int64_t lhs = static_cast<std::int64_t>(x) * n +
                               static_cast<std::int64_t>(y) * (n + 1);
      if (lhs == static_cast<std::int64_t>(n) * (n + 1)) {
        solutions.push_back(Claim45Solution{x, y});
      }
    }
  }
  return solutions;
}

}  // namespace closfair
