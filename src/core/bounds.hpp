// Certified paper-bound checking for arbitrary instances.
//
// Given any flow collection and Clos routing, verify every quantitative
// bound the paper proves (they are theorems, so a failure means a bug in
// this library, not in the instance):
//
//   B1  T^MmF >= 1/2 T^MT                     (Theorem 3.4, macro-switch)
//   B2  T^MmF <= T^MT                         (definition of maximum)
//   B3  sorted(a_r^MmF) <=lex sorted(a^MmF)   (§2.3, macro dominance)
//   B4  t(a_r^MmF) <= 2 T^MmF                 (Theorem 5.4 upper bound)
//   B5  T^T-MT == T^MT                        (Lemma 5.2, via König routing)
//   B6  a_r^MmF satisfies the bottleneck property (Lemma 2.2)
//
// The CLI exposes this as --verify; the test suite sweeps it over random
// instances.
#pragma once

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"

namespace closfair {

struct BoundCheck {
  std::string name;        ///< e.g. "B1: T^MmF >= 1/2 T^MT"
  bool holds = false;
  std::string detail;      ///< the instantiated inequality, for reporting
};

struct BoundReport {
  std::vector<BoundCheck> checks;
  [[nodiscard]] bool all_hold() const {
    for (const auto& c : checks) {
      if (!c.holds) return false;
    }
    return true;
  }
};

/// Run every bound check for one (collection, routing) pair on C/MS with the
/// given dimensions.
[[nodiscard]] BoundReport check_paper_bounds(const ClosNetwork& net, const MacroSwitch& ms,
                                             const FlowCollection& specs,
                                             const MiddleAssignment& middles);

/// Render a report as an aligned table.
[[nodiscard]] std::string render_bound_report(const BoundReport& report);

}  // namespace closfair
