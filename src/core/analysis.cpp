#include "core/analysis.hpp"

#include <algorithm>

#include "fairness/waterfill.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "routing/doom_switch.hpp"

namespace closfair {

MacroAnalysis analyze_macro(const MacroSwitch& ms, const FlowSet& flows) {
  MacroAnalysis a;
  a.maxmin = max_min_fair<Rational>(ms, flows);
  a.t_maxmin = a.maxmin.throughput();

  const BipartiteMultigraph g_ms = server_flow_graph(ms, flows);
  const std::vector<std::size_t> matching = maximum_matching(g_ms);
  a.max_matching.assign(matching.begin(), matching.end());
  std::sort(a.max_matching.begin(), a.max_matching.end());
  a.t_max_throughput = Rational{static_cast<std::int64_t>(matching.size())};
  a.price_of_fairness = a.t_max_throughput.is_zero()
                            ? Rational{1}
                            : a.t_maxmin / a.t_max_throughput;
  return a;
}

ClosAnalysis analyze_clos(const ClosNetwork& net, const FlowSet& flows,
                          const MiddleAssignment& middles) {
  ClosAnalysis a;
  a.maxmin = max_min_fair<Rational>(net, flows, middles);
  a.throughput = a.maxmin.throughput();
  return a;
}

MaxThroughputRouting max_throughput_routing(const ClosNetwork& net, const FlowSet& flows) {
  // The Doom-Switch routing's first two steps are exactly Lemma 5.2's
  // construction: a maximum matching placed link-disjointly via König
  // coloring; where the unmatched flows go is irrelevant for T^T-MT.
  const DoomSwitchResult doom = doom_switch(net, flows);
  MaxThroughputRouting r;
  r.matched = doom.matched;
  r.middles = doom.middles;
  r.alloc = Allocation<Rational>(flows.size());
  for (FlowIndex f : r.matched) r.alloc.set_rate(f, Rational{1});
  r.throughput = r.alloc.throughput();
  return r;
}

Comparison compare(const ClosNetwork& net, const MacroSwitch& ms,
                   const FlowCollection& specs, const MiddleAssignment& middles) {
  CF_CHECK_MSG(net.num_tors() == ms.num_tors() &&
                   net.servers_per_tor() == ms.servers_per_tor(),
               "Clos network and macro-switch have mismatched dimensions");
  const FlowSet clos_flows = instantiate(net, specs);
  const FlowSet macro_flows = instantiate(ms, specs);

  Comparison c;
  c.macro = analyze_macro(ms, macro_flows);
  c.clos = analyze_clos(net, clos_flows, middles);

  c.throughput_ratio = c.macro.t_maxmin.is_zero()
                           ? Rational{1}
                           : c.clos.throughput / c.macro.t_maxmin;

  bool any_ratio = false;
  for (FlowIndex f = 0; f < specs.size(); ++f) {
    const Rational& macro_rate = c.macro.maxmin.rate(f);
    if (macro_rate.is_zero()) continue;
    const Rational ratio = c.clos.maxmin.rate(f) / macro_rate;
    if (!any_ratio || ratio < c.min_rate_ratio) {
      c.min_rate_ratio = ratio;
      any_ratio = true;
    }
  }
  c.lex_vs_macro = lex_compare_sorted(c.clos.maxmin, c.macro.maxmin);
  return c;
}

}  // namespace closfair
