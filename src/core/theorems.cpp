#include "core/theorems.hpp"

#include "util/check.hpp"

namespace closfair {

Theorem34Prediction predict_theorem_3_4(int k) {
  CF_CHECK(k >= 1);
  Theorem34Prediction p;
  p.t_max_throughput = Rational{2};
  p.t_maxmin = Rational{1} + Rational{1, k + 1};
  p.fairness_ratio = p.t_maxmin / p.t_max_throughput;
  // T^MmF = (1 + eps)/2 * T^MT with eps = 1/(k+1).
  p.epsilon = Rational{1, k + 1};
  return p;
}

Theorem43Prediction predict_theorem_4_3(int n) {
  CF_CHECK(n >= 3);
  Theorem43Prediction p;
  p.type1_rate = Rational{1, n + 1};
  p.type2_rate = Rational{1, n};
  p.type3_macro_rate = Rational{1};
  p.type3_clos_rate = Rational{1, n};
  p.starvation_factor = p.type3_clos_rate / p.type3_macro_rate;
  return p;
}

Theorem54Prediction predict_theorem_5_4(int n, int k) {
  CF_CHECK(n >= 3 && n % 2 == 1);
  CF_CHECK(k >= 1);
  Theorem54Prediction p;
  const Rational gadgets{(n - 1) / 2};
  p.t_maxmin_macro = gadgets * (Rational{1} + Rational{1, k + 1});
  p.t_doom_lower_bound = Rational{n - 2};
  p.type1_rate = Rational{1} - Rational{2, n - 1};
  p.type2_rate = Rational{2, static_cast<std::int64_t>(k) * (n - 1)};
  // Exact Doom-Switch throughput: (n-1) type 1 flows + (n-1)k/2 type 2 flows.
  const Rational num_type2 = gadgets * Rational{k};
  p.doom_throughput = Rational{n - 1} * p.type1_rate + num_type2 * p.type2_rate;
  p.gain = p.doom_throughput / p.t_maxmin_macro;
  // gain = 2 (1 - eps)  =>  eps = 1 - gain/2; the paper gives
  // eps = (k+n) / ((n-1)(k+2)) -> 1/(n-1).
  p.epsilon = Rational{1} - p.gain / Rational{2};
  return p;
}

}  // namespace closfair
