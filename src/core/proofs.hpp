// Proof replay: execute the inequality chains of the paper's proofs on
// concrete instances.
//
// A theory reproduction can do more than check final numbers — it can walk
// the *argument*. replay_theorem_3_4 recomputes every intermediate quantity
// of the Theorem 3.4 proof (the per-endpoint totals τ, the bottleneck
// inequality τ_{s_f} + τ_{t_f} >= 1 for matched flows, the max/half/matching
// chain) and reports whether each step held. replay_claim_4_5 enumerates the
// integer solutions of the proof's Equation 1. The test suite runs these on
// randomized instances, so a bug in *either* the allocator or the proof's
// transcription would surface as a broken step.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "net/macroswitch.hpp"
#include "util/rational.hpp"

namespace closfair {

/// Every intermediate quantity of the Theorem 3.4 proof on one instance.
struct Theorem34Replay {
  std::vector<FlowIndex> matching;      ///< F' (maximum matching in G^MS)
  std::vector<Rational> tau_source;     ///< τ_{s_f} for each f in F' (same order)
  std::vector<Rational> tau_dest;       ///< τ_{t_f} for each f in F'
  Rational sum_tau_source{0};           ///< Σ_{f in F'} τ_{s_f}
  Rational sum_tau_dest{0};             ///< Σ_{f in F'} τ_{t_f}
  Rational t_maxmin{0};                 ///< T^MmF
  bool bottleneck_step_holds = false;   ///< τ_{s_f} + τ_{t_f} >= 1 for all f in F'
  bool max_step_holds = false;          ///< T^MmF >= max(Σ τ_s, Σ τ_t)
  bool half_step_holds = false;         ///< max(...) >= |F'| / 2
  bool conclusion_holds = false;        ///< T^MmF >= T^MT / 2
};

/// Replay the Theorem 3.4 proof on a concrete macro-switch instance.
[[nodiscard]] Theorem34Replay replay_theorem_3_4(const MacroSwitch& ms, const FlowSet& flows);

/// One candidate solution of Claim 4.5's Equation 1:
///   x/(n+1) + y/n = 1  with x in [0, n+1], y in [0, n].
struct Claim45Solution {
  int x = 0;  ///< type 1 flows on the (input switch, middle) pair
  int y = 0;  ///< type 2 flows on the pair
};

/// Enumerate all integer solutions of Equation 1 for a given n. The claim
/// asserts exactly {(0, n), (n+1, 0)}; the test suite verifies this for a
/// range of n.
[[nodiscard]] std::vector<Claim45Solution> replay_claim_4_5(int n);

}  // namespace closfair
