#include "core/bounds.hpp"

#include <sstream>

#include "core/analysis.hpp"
#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "util/table.hpp"

namespace closfair {
namespace {

BoundCheck make_check(std::string name, bool holds, std::string detail) {
  return BoundCheck{std::move(name), holds, std::move(detail)};
}

}  // namespace

BoundReport check_paper_bounds(const ClosNetwork& net, const MacroSwitch& ms,
                               const FlowCollection& specs,
                               const MiddleAssignment& middles) {
  BoundReport report;

  const MacroAnalysis macro = analyze_macro(ms, instantiate(ms, specs));
  const FlowSet flows = instantiate(net, specs);
  const Routing routing = expand_routing(net, flows, middles);
  const Allocation<Rational> clos = max_min_fair<Rational>(net.topology(), flows, routing);
  const Rational clos_t = clos.throughput();

  {
    std::ostringstream os;
    os << macro.t_maxmin << " >= " << macro.t_max_throughput << "/2";
    report.checks.push_back(make_check(
        "B1: T^MmF >= 1/2 T^MT (Thm 3.4)",
        macro.t_maxmin * Rational{2} >= macro.t_max_throughput, os.str()));
  }
  {
    std::ostringstream os;
    os << macro.t_maxmin << " <= " << macro.t_max_throughput;
    report.checks.push_back(make_check("B2: T^MmF <= T^MT",
                                       macro.t_maxmin <= macro.t_max_throughput, os.str()));
  }
  {
    const auto order = lex_compare_sorted(clos, macro.maxmin);
    report.checks.push_back(make_check(
        "B3: sorted(a_r^MmF) <=lex sorted(a^MmF) (par. 2.3)",
        order != std::strong_ordering::greater,
        order == std::strong_ordering::equal ? "equal" : "clos below macro"));
  }
  {
    std::ostringstream os;
    os << clos_t << " <= 2 * " << macro.t_maxmin;
    report.checks.push_back(make_check("B4: t(a_r^MmF) <= 2 T^MmF (Thm 5.4)",
                                       clos_t <= Rational{2} * macro.t_maxmin, os.str()));
  }
  {
    const MaxThroughputRouting mt = max_throughput_routing(net, flows);
    std::ostringstream os;
    os << mt.throughput << " == " << macro.t_max_throughput;
    report.checks.push_back(make_check("B5: T^T-MT == T^MT (Lemma 5.2)",
                                       mt.throughput == macro.t_max_throughput, os.str()));
  }
  {
    report.checks.push_back(make_check(
        "B6: a_r^MmF has the bottleneck property (Lemma 2.2)",
        is_max_min_fair(net.topology(), routing, clos), "certified by checker"));
  }
  return report;
}

std::string render_bound_report(const BoundReport& report) {
  TextTable table({"bound", "holds", "instantiated"});
  for (const BoundCheck& c : report.checks) {
    table.add_row({c.name, c.holds ? "yes" : "VIOLATED", c.detail});
  }
  return table.render();
}

}  // namespace closfair
