// Flows and flow collections (§2.2).
//
// A flow maps to a (source server, destination server) pair; multiple flows
// may map to the same pair. To evaluate the same collection on both a Clos
// network and its macro-switch, collections are specified in ToR/server
// coordinates (FlowSpec) and instantiated against a concrete topology.
#pragma once

#include <vector>

#include "net/clos.hpp"
#include "net/fattree.hpp"
#include "net/macroswitch.hpp"
#include "net/topology.hpp"

namespace closfair {

/// A flow between two server nodes of a concrete topology.
struct Flow {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Flows are identified by their index in a FlowSet.
using FlowIndex = std::size_t;
using FlowSet = std::vector<Flow>;

/// Topology-independent flow description: (s_i^j, t_k^l) in 1-based paper
/// coordinates.
struct FlowSpec {
  int src_tor = 1;
  int src_server = 1;
  int dst_tor = 1;
  int dst_server = 1;

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

using FlowCollection = std::vector<FlowSpec>;

/// Instantiate a collection against a Clos network / macro-switch.
[[nodiscard]] FlowSet instantiate(const ClosNetwork& net, const FlowCollection& specs);
[[nodiscard]] FlowSet instantiate(const MacroSwitch& ms, const FlowCollection& specs);

/// Instantiate against a fat-tree, reading the ToR coordinate as the global
/// (pod-major) edge-switch index — so a collection generated for a fabric of
/// `num_edge_switches` ToRs with k/2 servers each maps onto FatTree(k) and
/// onto the equivalent MacroSwitch interchangeably.
[[nodiscard]] FlowSet instantiate(const FatTree& ft, const FlowCollection& specs);

/// Recover the coordinate form of a concrete flow.
[[nodiscard]] FlowSpec spec_of(const ClosNetwork& net, const Flow& flow);
[[nodiscard]] FlowSpec spec_of(const MacroSwitch& ms, const Flow& flow);
[[nodiscard]] FlowSpec spec_of(const FatTree& ft, const Flow& flow);

}  // namespace closfair
