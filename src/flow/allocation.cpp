#include "flow/allocation.hpp"

#include <sstream>

namespace closfair {
namespace {

std::string bracketed(const std::vector<Rational>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string format_sorted(const Allocation<Rational>& alloc) { return bracketed(alloc.sorted()); }

std::string format_rates(const Allocation<Rational>& alloc) { return bracketed(alloc.rates()); }

}  // namespace closfair
