// Rate allocations (§2.2): an assignment of a non-negative rate to each flow,
// plus the derived quantities the paper's theorems are stated over —
// throughput t(a), the sorted vector a↑, lexicographic order on sorted
// vectors, and feasibility against link capacities.
//
// Allocation is templated on the rate domain: Rational for exact theory-path
// computations, double for large-scale simulation.
#pragma once

#include <algorithm>
#include <compare>
#include <type_traits>
#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"
#include "util/rational.hpp"

namespace closfair {

template <typename R>
class Allocation {
 public:
  Allocation() = default;
  explicit Allocation(std::size_t num_flows) : rates_(num_flows, R{0}) {}
  explicit Allocation(std::vector<R> rates) : rates_(std::move(rates)) {}

  [[nodiscard]] std::size_t size() const { return rates_.size(); }

  [[nodiscard]] const R& rate(FlowIndex f) const {
    CF_CHECK_MSG(f < rates_.size(), "flow index " << f << " out of range");
    return rates_[f];
  }

  void set_rate(FlowIndex f, R rate) {
    CF_CHECK_MSG(f < rates_.size(), "flow index " << f << " out of range");
    rates_[f] = std::move(rate);
  }

  [[nodiscard]] const std::vector<R>& rates() const { return rates_; }

  /// Throughput t(a): the total rate over all flows.
  [[nodiscard]] R throughput() const {
    R total{0};
    for (const R& r : rates_) total += r;
    return total;
  }

  /// The sorted vector a↑ (rates ascending).
  [[nodiscard]] std::vector<R> sorted() const {
    std::vector<R> v = rates_;
    std::sort(v.begin(), v.end());
    return v;
  }

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<R> rates_;
};

/// Lexicographic comparison of two equally-long rate vectors (used on sorted
/// vectors: a↑ ⪰ a'↑ in the paper's notation).
template <typename R>
[[nodiscard]] std::strong_ordering lex_compare(const std::vector<R>& a,
                                               const std::vector<R>& b) {
  CF_CHECK_MSG(a.size() == b.size(),
               "lexicographic comparison of vectors with different lengths");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return std::strong_ordering::less;
    if (b[i] < a[i]) return std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

/// Lexicographic comparison of the *sorted* vectors of two allocations.
template <typename R>
[[nodiscard]] std::strong_ordering lex_compare_sorted(const Allocation<R>& a,
                                                      const Allocation<R>& b) {
  return lex_compare(a.sorted(), b.sorted());
}

/// Total rate crossing each link under (routing, allocation).
template <typename R>
[[nodiscard]] std::vector<R> link_loads(const Topology& topo, const Routing& routing,
                                        const Allocation<R>& alloc) {
  CF_CHECK(routing.size() == alloc.size());
  std::vector<R> load(topo.num_links(), R{0});
  for (FlowIndex f = 0; f < routing.size(); ++f) {
    for (LinkId l : routing.path(f)) {
      load[static_cast<std::size_t>(l)] += alloc.rate(f);
    }
  }
  return load;
}

/// Feasibility (§2.2): all rates non-negative and every bounded link's total
/// rate at most its capacity. `tolerance` absorbs floating-point error when
/// R = double; leave it zero for Rational.
template <typename R>
[[nodiscard]] bool is_feasible(const Topology& topo, const Routing& routing,
                               const Allocation<R>& alloc, R tolerance = R{0}) {
  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    if (alloc.rate(f) < R{0}) return false;
  }
  const std::vector<R> load = link_loads(topo, routing, alloc);
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    if (load[l] > capacity_as<R>(link) + tolerance) return false;
  }
  return true;
}

/// Render an exact allocation's sorted vector, e.g. "[1/3, 1/3, 2/3, 1]".
[[nodiscard]] std::string format_sorted(const Allocation<Rational>& alloc);

/// Render a rate vector in flow order.
[[nodiscard]] std::string format_rates(const Allocation<Rational>& alloc);

}  // namespace closfair
