// Routings: the assignment of each flow to a single source-destination path
// (§2.2). Flows are unsplittable, so a routing is exactly one path per flow.
//
// In a Clos network a path is determined by the middle-switch choice, so Clos
// routings are usually manipulated as a MiddleAssignment (one 1-based middle
// index per flow) and expanded to link paths on demand.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"
#include "net/topology.hpp"

namespace closfair {

/// One path per flow. Index-aligned with the FlowSet it routes.
class Routing {
 public:
  Routing() = default;
  explicit Routing(std::vector<Path> paths) : paths_(std::move(paths)) {}

  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  [[nodiscard]] const Path& path(FlowIndex f) const;
  void set_path(FlowIndex f, Path path);
  void append(Path path) { paths_.push_back(std::move(path)); }

  /// Throws ContractViolation unless every path is a contiguous src->dst walk
  /// for its flow.
  void validate(const Topology& topo, const FlowSet& flows) const;

 private:
  std::vector<Path> paths_;
};

/// Clos routing in compact form: middles[f] is the 1-based middle switch of
/// flow f.
using MiddleAssignment = std::vector<int>;

/// Expand a middle assignment to a link-path routing on a Clos network.
[[nodiscard]] Routing expand_routing(const ClosNetwork& net, const FlowSet& flows,
                                     const MiddleAssignment& middles);

/// The unique routing in a macro-switch.
[[nodiscard]] Routing macro_routing(const MacroSwitch& ms, const FlowSet& flows);

/// Inverse index: for each link, the flows whose path traverses it.
[[nodiscard]] std::vector<std::vector<FlowIndex>> flows_per_link(const Topology& topo,
                                                                 const Routing& routing);

}  // namespace closfair
