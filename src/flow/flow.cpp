#include "flow/flow.hpp"

namespace closfair {

FlowSet instantiate(const ClosNetwork& net, const FlowCollection& specs) {
  FlowSet flows;
  flows.reserve(specs.size());
  for (const FlowSpec& sp : specs) {
    flows.push_back(Flow{net.source(sp.src_tor, sp.src_server),
                         net.destination(sp.dst_tor, sp.dst_server)});
  }
  return flows;
}

FlowSet instantiate(const MacroSwitch& ms, const FlowCollection& specs) {
  FlowSet flows;
  flows.reserve(specs.size());
  for (const FlowSpec& sp : specs) {
    flows.push_back(Flow{ms.source(sp.src_tor, sp.src_server),
                         ms.destination(sp.dst_tor, sp.dst_server)});
  }
  return flows;
}

FlowSet instantiate(const FatTree& ft, const FlowCollection& specs) {
  const int half = ft.k() / 2;
  FlowSet flows;
  flows.reserve(specs.size());
  for (const FlowSpec& sp : specs) {
    const int src_pod = (sp.src_tor - 1) / half + 1;
    const int src_edge = (sp.src_tor - 1) % half + 1;
    const int dst_pod = (sp.dst_tor - 1) / half + 1;
    const int dst_edge = (sp.dst_tor - 1) % half + 1;
    flows.push_back(Flow{ft.source(src_pod, src_edge, sp.src_server),
                         ft.destination(dst_pod, dst_edge, sp.dst_server)});
  }
  return flows;
}

FlowSpec spec_of(const FatTree& ft, const Flow& flow) {
  const auto s = ft.source_coord(flow.src);
  const auto t = ft.dest_coord(flow.dst);
  return FlowSpec{ft.edge_index(s.pod, s.edge), s.server, ft.edge_index(t.pod, t.edge),
                  t.server};
}

FlowSpec spec_of(const ClosNetwork& net, const Flow& flow) {
  const auto s = net.source_coord(flow.src);
  const auto t = net.dest_coord(flow.dst);
  return FlowSpec{s.tor, s.server, t.tor, t.server};
}

FlowSpec spec_of(const MacroSwitch& ms, const Flow& flow) {
  const auto s = ms.source_coord(flow.src);
  const auto t = ms.dest_coord(flow.dst);
  return FlowSpec{s.tor, s.server, t.tor, t.server};
}

}  // namespace closfair
