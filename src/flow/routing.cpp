#include "flow/routing.hpp"

namespace closfair {

const Path& Routing::path(FlowIndex f) const {
  CF_CHECK_MSG(f < paths_.size(), "flow index " << f << " out of range");
  return paths_[f];
}

void Routing::set_path(FlowIndex f, Path path) {
  CF_CHECK_MSG(f < paths_.size(), "flow index " << f << " out of range");
  paths_[f] = std::move(path);
}

void Routing::validate(const Topology& topo, const FlowSet& flows) const {
  CF_CHECK_MSG(paths_.size() == flows.size(),
               "routing covers " << paths_.size() << " flows, expected " << flows.size());
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    CF_CHECK_MSG(topo.is_path(paths_[f], flows[f].src, flows[f].dst),
                 "flow " << f << " path is not a valid src->dst walk");
  }
}

Routing expand_routing(const ClosNetwork& net, const FlowSet& flows,
                       const MiddleAssignment& middles) {
  CF_CHECK_MSG(middles.size() == flows.size(),
               "middle assignment covers " << middles.size() << " flows, expected "
                                           << flows.size());
  std::vector<Path> paths;
  paths.reserve(flows.size());
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    paths.push_back(net.path(flows[f].src, flows[f].dst, middles[f]));
  }
  return Routing{std::move(paths)};
}

Routing macro_routing(const MacroSwitch& ms, const FlowSet& flows) {
  std::vector<Path> paths;
  paths.reserve(flows.size());
  for (const Flow& flow : flows) paths.push_back(ms.path(flow.src, flow.dst));
  return Routing{std::move(paths)};
}

std::vector<std::vector<FlowIndex>> flows_per_link(const Topology& topo,
                                                   const Routing& routing) {
  std::vector<std::vector<FlowIndex>> on_link(topo.num_links());
  for (FlowIndex f = 0; f < routing.size(); ++f) {
    for (LinkId l : routing.path(f)) {
      on_link[static_cast<std::size_t>(l)].push_back(f);
    }
  }
  return on_link;
}

}  // namespace closfair
