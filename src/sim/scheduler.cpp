#include "sim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "fairness/waterfill.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/hungarian.hpp"

namespace closfair {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

BatchFct finalize(std::vector<double> fct, const std::vector<double>& sizes) {
  BatchFct result;
  result.fct = std::move(fct);
  if (result.fct.empty()) return result;
  result.mean_fct = std::accumulate(result.fct.begin(), result.fct.end(), 0.0) /
                    static_cast<double>(result.fct.size());
  result.max_fct = *std::max_element(result.fct.begin(), result.fct.end());
  const double total = std::accumulate(sizes.begin(), sizes.end(), 0.0);
  result.throughput_time_avg = result.max_fct > 0.0 ? total / result.max_fct : 0.0;
  return result;
}

}  // namespace

BatchFct batch_congestion_control(const Topology& topo, const FlowSet& flows,
                                  const Routing& routing,
                                  const std::vector<double>& sizes) {
  CF_CHECK(sizes.size() == flows.size());
  std::vector<double> remaining = sizes;
  std::vector<double> fct(flows.size(), 0.0);
  std::vector<bool> done(flows.size(), false);
  std::size_t num_done = 0;
  double now = 0.0;

  while (num_done < flows.size()) {
    // Rates for the unfinished sub-batch.
    FlowSet live;
    std::vector<Path> live_paths;
    std::vector<FlowIndex> live_index;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (done[f]) continue;
      live.push_back(flows[f]);
      live_paths.push_back(routing.path(f));
      live_index.push_back(f);
    }
    const Allocation<double> alloc =
        max_min_fair<double>(topo, live, Routing{std::move(live_paths)});

    double dt = kInf;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (alloc.rate(i) <= 0.0) continue;
      dt = std::min(dt, remaining[live_index[i]] / alloc.rate(i));
    }
    CF_CHECK_MSG(dt < kInf, "congestion-control batch stalled (all rates zero)");

    now += dt;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const FlowIndex f = live_index[i];
      remaining[f] -= alloc.rate(i) * dt;
      if (remaining[f] <= 1e-12 && !done[f]) {
        done[f] = true;
        ++num_done;
        fct[f] = now;
        remaining[f] = 0.0;
      }
    }
  }
  return finalize(std::move(fct), sizes);
}

BatchFct batch_matching_schedule(const MacroSwitch& ms, const FlowSet& flows,
                                 const std::vector<double>& sizes) {
  CF_CHECK(sizes.size() == flows.size());
  std::vector<double> remaining = sizes;
  std::vector<double> fct(flows.size(), 0.0);
  std::vector<bool> done(flows.size(), false);
  std::size_t num_done = 0;
  double now = 0.0;

  while (num_done < flows.size()) {
    // Maximum matching among unfinished flows.
    FlowSet live;
    std::vector<FlowIndex> live_index;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (done[f]) continue;
      live.push_back(flows[f]);
      live_index.push_back(f);
    }
    const BipartiteMultigraph g = server_flow_graph(ms, live);
    const std::vector<std::size_t> matched = maximum_matching(g);
    CF_CHECK_MSG(!matched.empty(), "matching schedule stalled");

    // Matched flows run at rate 1 (server link capacity) until the first of
    // them finishes.
    double dt = kInf;
    for (std::size_t e : matched) dt = std::min(dt, remaining[live_index[e]]);
    now += dt;
    for (std::size_t e : matched) {
      const FlowIndex f = live_index[e];
      remaining[f] -= dt;
      if (remaining[f] <= 1e-12 && !done[f]) {
        done[f] = true;
        ++num_done;
        fct[f] = now;
        remaining[f] = 0.0;
      }
    }
  }
  return finalize(std::move(fct), sizes);
}

BatchFct batch_srpt_schedule(const MacroSwitch& ms, const FlowSet& flows,
                             const std::vector<double>& sizes) {
  CF_CHECK(sizes.size() == flows.size());
  std::vector<double> remaining = sizes;
  std::vector<double> fct(flows.size(), 0.0);
  std::vector<bool> done(flows.size(), false);
  std::size_t num_done = 0;
  double now = 0.0;

  const auto servers = static_cast<std::size_t>(ms.num_sources());
  auto server_of = [&](NodeId node, bool source) -> std::size_t {
    const auto coord = source ? ms.source_coord(node) : ms.dest_coord(node);
    return static_cast<std::size_t>(coord.tor - 1) *
               static_cast<std::size_t>(ms.servers_per_tor()) +
           static_cast<std::size_t>(coord.server - 1);
  };

  while (num_done < flows.size()) {
    // Per (source, destination) pair, the shortest unfinished flow competes.
    std::vector<std::vector<std::size_t>> candidate(
        servers, std::vector<std::size_t>(servers, kUnassigned));
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (done[f]) continue;
      const std::size_t s = server_of(flows[f].src, true);
      const std::size_t t = server_of(flows[f].dst, false);
      std::size_t& cur = candidate[s][t];
      if (cur == kUnassigned || remaining[f] < remaining[cur]) cur = f;
    }

    // Weights: 1 for any runnable pair (cardinality dominates) plus a
    // sub-1/(2 pairs) bonus favoring short remaining sizes.
    std::size_t num_pairs = 0;
    for (const auto& row : candidate) {
      for (std::size_t f : row) {
        if (f != kUnassigned) ++num_pairs;
      }
    }
    CF_CHECK_MSG(num_pairs > 0, "SRPT schedule stalled");
    const double bonus_scale = 1.0 / (2.0 * static_cast<double>(num_pairs));
    std::vector<std::vector<double>> weight(servers, std::vector<double>(servers, 0.0));
    for (std::size_t s = 0; s < servers; ++s) {
      for (std::size_t t = 0; t < servers; ++t) {
        const std::size_t f = candidate[s][t];
        if (f == kUnassigned) continue;
        weight[s][t] = 1.0 + bonus_scale / (remaining[f] + 1.0);
      }
    }
    const std::vector<std::size_t> assignment = max_weight_matching(weight);

    // Matched candidates run at rate 1 until the first finishes.
    std::vector<FlowIndex> running;
    for (std::size_t s = 0; s < servers; ++s) {
      if (assignment[s] == kUnassigned) continue;
      running.push_back(candidate[s][assignment[s]]);
    }
    CF_CHECK(!running.empty());
    double dt = std::numeric_limits<double>::infinity();
    for (FlowIndex f : running) dt = std::min(dt, remaining[f]);
    now += dt;
    for (FlowIndex f : running) {
      remaining[f] -= dt;
      if (remaining[f] <= 1e-12 && !done[f]) {
        done[f] = true;
        ++num_done;
        fct[f] = now;
        remaining[f] = 0.0;
      }
    }
  }
  return finalize(std::move(fct), sizes);
}

}  // namespace closfair
