// Packet-level fair-queueing simulator.
//
// The paper's model assumes congestion control imposes max-min fair rates
// (§1). The micro-foundation for that assumption is the classic result that
// per-link fair queueing combined with window flow control drives long-lived
// flows to their max-min rates (Hahne). This simulator builds exactly that
// machinery — store-and-forward packets, per-link round-robin service over
// per-flow queues, fixed end-to-end windows with instantaneous acks — and
// measures the emergent per-flow throughput, which the test suite compares
// against the water-filling oracle.
//
// This is the lowest-level of the library's three congestion-control layers:
//   packet_sim  (packets + FQ + windows)   -> emerges max-min
//   rate_control (per-link advertised shares) -> converges to max-min
//   waterfill   (the allocation itself)       -> defines max-min
#pragma once

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

struct PacketSimParams {
  /// Capacity-seconds per packet: a unit-capacity link serves one packet per
  /// `packet_size` seconds. Smaller = finer granularity, more events.
  double packet_size = 0.02;
  /// End-to-end window (packets in flight per flow). Must cover the path's
  /// bandwidth-delay product; with zero propagation delay a handful suffice.
  int window = 8;
  /// Simulated seconds to discard before measuring.
  double warmup = 30.0;
  /// Measurement interval (seconds).
  double measure = 60.0;
};

struct PacketSimResult {
  Allocation<double> rates;     ///< delivered throughput per flow
  std::vector<double> link_utilization;  ///< delivered load / capacity per bounded link
  std::uint64_t events = 0;     ///< service completions processed
};

/// Simulate long-lived (infinitely backlogged) flows on the given routing
/// and measure steady-state per-flow throughput. Preconditions as
/// max_min_fair (each flow crosses a bounded link).
[[nodiscard]] PacketSimResult packet_fair_queueing(const Topology& topo, const FlowSet& flows,
                                                   const Routing& routing,
                                                   const PacketSimParams& params = {});

}  // namespace closfair
