// Flow-level event-driven simulator.
//
// Models the congestion-control regime of the paper dynamically: flows
// arrive per a trace, each is pinned to a single path on arrival
// (unsplittable), and after every arrival/completion the rates of all active
// flows snap to the max-min fair allocation for the current routing — the
// steady-state abstraction of TCP-like congestion control the paper assumes.
// Flow completion times (FCTs) come out the other end.
//
// Running the same trace against the Clos network (with a routing policy)
// and against its macro-switch quantifies, in FCT terms, the rate gaps that
// Theorems 4.3 and 5.4 prove in allocation terms.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace closfair {

/// How a Clos arrival picks its middle switch.
enum class SimPolicy {
  kEcmp,         ///< uniformly random middle
  kLeastLoaded,  ///< middle minimizing current max(uplink, downlink) load
};

/// Aggregate FCT statistics; `slowdown` is FCT / (size / 1.0), i.e. relative
/// to transmitting alone at full link rate.
struct SimStats {
  std::size_t completed = 0;
  double mean_fct = 0.0;
  double p50_fct = 0.0;
  double p99_fct = 0.0;
  double max_fct = 0.0;
  double mean_slowdown = 0.0;
  double finish_time = 0.0;  ///< when the last flow completed
  std::vector<double> fcts;  ///< in arrival order
};

/// Simulate a trace on a Clos network under the given routing policy.
[[nodiscard]] SimStats simulate_clos(const ClosNetwork& net, const Trace& trace,
                                     SimPolicy policy, Rng& rng);

/// Simulate the same trace on a macro-switch (the ideal reference).
[[nodiscard]] SimStats simulate_macro(const MacroSwitch& ms, const Trace& trace);

/// Online matching scheduler on a macro-switch (§7, R1 discussion, dynamic
/// form): after every arrival/completion a maximum matching of the active
/// flows transmits at full link rate while the rest wait — admission control
/// rediscovered per event. Contrast with simulate_macro's max-min sharing.
[[nodiscard]] SimStats simulate_macro_scheduled(const MacroSwitch& ms, const Trace& trace);

/// Summarize a vector of FCTs (and matching sizes, for slowdowns).
[[nodiscard]] SimStats summarize_fcts(std::vector<double> fcts,
                                      const std::vector<double>& sizes, double finish_time);

}  // namespace closfair
