// Distributed rate control converging to max-min fairness.
//
// The paper's model *assumes* congestion control imposes the max-min fair
// allocation at each routing (§1). This module validates that premise
// dynamically with an RCP-style distributed algorithm: each link advertises
// a fair share computed from local state only (capacity, current demand,
// number of active flows), and each flow sets its rate to the minimum
// advertised share along its path. Iterating this process converges to the
// exact max-min fair allocation — the test suite checks convergence against
// the water-filling oracle on randomized instances.
//
// An AIMD variant (additive increase, multiplicative decrease on congestion)
// is provided as the TCP-like counterpart; it oscillates around — rather
// than converges to — the fair allocation, which the tests document with a
// time-average tolerance.
#pragma once

#include <cstddef>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"

namespace closfair {

struct RateControlResult {
  Allocation<double> rates;    ///< final (RCP) or time-averaged (AIMD) rates
  std::size_t iterations = 0;  ///< rounds executed
  bool converged = false;      ///< RCP: successive-round change below epsilon

  /// RCP with transient failures only: rounds executed from the last applied
  /// failure event (inclusive) until re-convergence — the recovery time of
  /// the rate-control loop. Zero when no failure event was scheduled or the
  /// run never re-converged.
  std::size_t recovery_rounds = 0;
};

/// A mid-run capacity drop: at the start of round `round` (0-based) the
/// link's effective capacity is multiplied by `factor` in [0, 1] — factor 0
/// is a link death. The topology itself is untouched; only the RCP loop's
/// view of the capacity changes, and flows re-converge to the max-min
/// allocation of the degraded fabric (rates on dead links collapse to 0
/// without tripping the bounded-link check).
struct LinkFailureEvent {
  std::size_t round = 0;
  LinkId link = kInvalidLink;
  double factor = 0.0;
};

struct RcpParams {
  std::size_t max_iterations = 1000;
  double epsilon = 1e-9;  ///< max per-flow rate change that counts as converged

  /// Transient failures, applied in round order. Convergence is never
  /// declared while events are still pending, so a run always experiences
  /// every scheduled failure. Each event's round must be < max_iterations
  /// and its factor in [0, 1]; events must target bounded links.
  std::vector<LinkFailureEvent> failures;
};

/// RCP-style explicit fair-share iteration. Links iterate
///   share_l <- (capacity_l - rate of flows bottlenecked elsewhere) / rest
/// implicitly, by each flow taking min over links of
///   (capacity_l - sum of rates of other flows capped below share) ...
/// realized as the standard synchronous update
///   rate_f <- min over links l on f of  fair_share_l
///   fair_share_l = (c_l - sum_{g on l, rate_g < fair_share_l} rate_g) / #rest
/// computed from the previous round's rates. Converges to max-min.
[[nodiscard]] RateControlResult rcp_rate_control(const Topology& topo, const FlowSet& flows,
                                                 const Routing& routing,
                                                 const RcpParams& params = {});

struct AimdParams {
  std::size_t rounds = 4000;
  double additive_increase = 0.002;  ///< per-round rate bump
  double multiplicative_decrease = 0.5;
  std::size_t average_window = 1000;  ///< trailing rounds to average over
};

/// Synchronous AIMD: every round each flow adds `additive_increase`; flows
/// crossing any over-capacity link multiply by `multiplicative_decrease`.
/// Returns rates averaged over the trailing window.
[[nodiscard]] RateControlResult aimd_rate_control(const Topology& topo, const FlowSet& flows,
                                                  const Routing& routing,
                                                  const AimdParams& params = {});

}  // namespace closfair
