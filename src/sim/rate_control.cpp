#include "sim/rate_control.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace closfair {
namespace {

// The advertised fair share of a link given the flows' last-round rates
// (sorted ascending): max over i of (c - prefix_i) / (m - i) — the classic
// "treat smaller flows as capped at their current rate, split the rest
// evenly" estimate (Charny-style). For an underloaded link this exceeds
// every current rate, letting flows grow; for a bottleneck it converges to
// the link's max-min level.
double advertised_share(double capacity, std::vector<double> rates) {
  // With no flows every division below is 0/0 = NaN — a failed (capacity 0)
  // link that happens to carry no flows must still advertise a number, not
  // poison anything that reads share[] beyond the link's own flows.
  if (rates.empty()) return capacity;
  std::sort(rates.begin(), rates.end());
  double best = capacity / static_cast<double>(rates.size());
  double prefix = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double candidate =
        (capacity - prefix) / static_cast<double>(rates.size() - i);
    best = std::max(best, candidate);
    prefix += rates[i];
  }
  // No separate "everyone else capped" term for the largest flow: the loop's
  // final candidate (i = m-1) is exactly (capacity - (sum - rates.back())),
  // so adding it again would at best be redundant — and a version that
  // subtracted each tied-largest rate once ("capacity - (prefix -
  // rates.back()) per duplicate") over-advertises when several flows tie for
  // largest. The Charny estimate is the loop maximum alone.
  return best;
}

}  // namespace

RateControlResult rcp_rate_control(const Topology& topo, const FlowSet& flows,
                                   const Routing& routing, const RcpParams& params) {
  CF_CHECK(routing.size() == flows.size());
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  // Effective capacities: the topology's, shrunk by transient failure events
  // as rounds pass. A degraded capacity of 0 advertises share 0 — its flows
  // collapse to rate 0 and the loop still converges.
  std::vector<double> capacity(topo.num_links(), 0.0);
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (!link.unbounded) capacity[l] = link.capacity.to_double();
  }

  std::vector<LinkFailureEvent> events = params.failures;
  std::stable_sort(events.begin(), events.end(),
                   [](const LinkFailureEvent& a, const LinkFailureEvent& b) {
                     return a.round < b.round;
                   });
  for (const LinkFailureEvent& e : events) {
    CF_CHECK_MSG(e.round < params.max_iterations,
                 "failure event at round " << e.round << " beyond max_iterations "
                                           << params.max_iterations);
    CF_CHECK_MSG(e.link >= 0 && static_cast<std::size_t>(e.link) < topo.num_links(),
                 "failure event targets unknown link " << e.link);
    CF_CHECK_MSG(!topo.link(e.link).unbounded,
                 "failure event targets unbounded link " << e.link);
    CF_CHECK_MSG(e.factor >= 0.0 && e.factor <= 1.0,
                 "failure factor " << e.factor << " outside [0, 1]");
  }

  RateControlResult result;
  result.rates = Allocation<double>(flows.size());
  std::vector<double> rate(flows.size(), 0.0);
  std::size_t next_event = 0;
  std::size_t last_failure_round = 0;

  for (std::size_t round = 0; round < params.max_iterations; ++round) {
    while (next_event < events.size() && events[next_event].round <= round) {
      const LinkFailureEvent& e = events[next_event];
      capacity[static_cast<std::size_t>(e.link)] *= e.factor;
      last_failure_round = round;
      ++next_event;
    }

    // Each bounded link advertises a share from last round's rates.
    std::vector<double> share(topo.num_links(),
                              std::numeric_limits<double>::infinity());
    for (std::size_t l = 0; l < topo.num_links(); ++l) {
      const Link& link = topo.link(static_cast<LinkId>(l));
      if (link.unbounded || on_link[l].empty()) continue;
      std::vector<double> local;
      local.reserve(on_link[l].size());
      for (FlowIndex f : on_link[l]) local.push_back(rate[f]);
      share[l] = advertised_share(capacity[l], std::move(local));
    }

    // Each flow takes the minimum advertised share along its path.
    double max_change = 0.0;
    std::vector<double> next(flows.size(), 0.0);
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      double allowed = std::numeric_limits<double>::infinity();
      for (LinkId l : routing.path(f)) {
        allowed = std::min(allowed, share[static_cast<std::size_t>(l)]);
      }
      CF_CHECK_MSG(std::isfinite(allowed),
                   "flow with no bounded link: rate control cannot converge");
      next[f] = allowed;
      max_change = std::max(max_change, std::abs(next[f] - rate[f]));
    }
    rate = std::move(next);
    result.iterations = round + 1;
    // Never declare convergence with failures still pending: the run must
    // experience every scheduled event and re-converge afterwards.
    if (max_change <= params.epsilon && next_event == events.size()) {
      result.converged = true;
      break;
    }
  }
  if (result.converged && !events.empty()) {
    result.recovery_rounds = result.iterations - last_failure_round;
    OBS_COUNTER_ADD("rate_control.recovery_rounds", result.recovery_rounds);
  }
  OBS_COUNTER_ADD("rate_control.transient_failures", next_event);
  result.rates = Allocation<double>(rate);
  return result;
}

RateControlResult aimd_rate_control(const Topology& topo, const FlowSet& flows,
                                    const Routing& routing, const AimdParams& params) {
  CF_CHECK(routing.size() == flows.size());
  CF_CHECK(params.average_window >= 1 && params.average_window <= params.rounds);
  const std::vector<std::vector<FlowIndex>> on_link = flows_per_link(topo, routing);

  std::vector<double> rate(flows.size(), 0.0);
  std::vector<double> sum(flows.size(), 0.0);

  for (std::size_t round = 0; round < params.rounds; ++round) {
    for (double& r : rate) r += params.additive_increase;

    // Congestion detection: any over-capacity link cuts all its flows.
    std::vector<bool> cut(flows.size(), false);
    for (std::size_t l = 0; l < topo.num_links(); ++l) {
      const Link& link = topo.link(static_cast<LinkId>(l));
      if (link.unbounded || on_link[l].empty()) continue;
      double load = 0.0;
      for (FlowIndex f : on_link[l]) load += rate[f];
      if (load > link.capacity.to_double()) {
        for (FlowIndex f : on_link[l]) cut[f] = true;
      }
    }
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (cut[f]) rate[f] *= params.multiplicative_decrease;
    }
    if (round + params.average_window >= params.rounds) {
      for (FlowIndex f = 0; f < flows.size(); ++f) sum[f] += rate[f];
    }
  }

  RateControlResult result;
  std::vector<double> averaged(flows.size());
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    averaged[f] = sum[f] / static_cast<double>(params.average_window);
  }
  result.rates = Allocation<double>(std::move(averaged));
  result.iterations = params.rounds;
  result.converged = false;  // AIMD oscillates by design
  return result;
}

}  // namespace closfair
