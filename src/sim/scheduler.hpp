// Scheduling vs congestion control (§7, discussion of R1).
//
// The paper observes that max-min fair congestion control can forfeit up to
// half the throughput (Theorem 3.4), and suggests *scheduling* as the
// circumvention: delay some flows so the rest transmit at full link
// capacity, as admission control did in telephone networks. This module
// makes that comparison concrete for a static batch of flows:
//
//  * batch_congestion_control — all flows start together; rates follow the
//    max-min fair allocation, recomputed at every completion.
//  * batch_matching_schedule  — rounds of maximum matchings: matched flows
//    transmit at rate 1, everyone else waits (the scheduling analogue of
//    Lemma 3.2's admission control).
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/macroswitch.hpp"
#include "net/topology.hpp"

namespace closfair {

/// FCT outcomes for a batch that all started at time 0.
struct BatchFct {
  std::vector<double> fct;  ///< per flow, batch order
  double mean_fct = 0.0;
  double max_fct = 0.0;  ///< makespan
  double throughput_time_avg = 0.0;  ///< total bytes / makespan
};

/// Max-min congestion control on an arbitrary (topology, routing).
[[nodiscard]] BatchFct batch_congestion_control(const Topology& topo, const FlowSet& flows,
                                                const Routing& routing,
                                                const std::vector<double>& sizes);

/// Matching-round scheduling on a macro-switch: repeatedly compute a maximum
/// matching among unfinished flows in G^MS and run the matched flows at rate
/// 1 until one finishes.
[[nodiscard]] BatchFct batch_matching_schedule(const MacroSwitch& ms, const FlowSet& flows,
                                               const std::vector<double>& sizes);

/// Shortest-remaining-first matching schedule: each round runs a
/// maximum-WEIGHT matching (matching/hungarian.hpp) where every
/// source-destination pair offers its shortest unfinished flow, weighted to
/// keep near-maximum cardinality while preferring short flows — the
/// SRPT-flavored refinement of batch_matching_schedule that further cuts
/// mean FCT on skewed sizes.
[[nodiscard]] BatchFct batch_srpt_schedule(const MacroSwitch& ms, const FlowSet& flows,
                                           const std::vector<double>& sizes);

}  // namespace closfair
