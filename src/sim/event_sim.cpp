#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fairness/waterfill.hpp"
#include "flow/allocation.hpp"
#include "flow/routing.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"

namespace closfair {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One in-flight flow.
struct ActiveFlow {
  std::size_t trace_index = 0;
  Flow flow;
  Path path;
  double remaining = 0.0;
  double arrival = 0.0;
};

// Core event loop shared by all simulators. `choose_path` maps an arrival to
// its (fixed) path; `on_complete` lets the routing policy release per-path
// accounting; `compute_rates(active) -> rates` is the congestion-control /
// scheduling policy (max-min water-fill by default, matching rounds for the
// scheduled variant).
template <typename ChoosePath, typename OnComplete, typename ComputeRates>
std::pair<std::vector<double>, double> run(const Trace& trace,
                                           ChoosePath choose_path, OnComplete on_complete,
                                           ComputeRates compute_rates) {
  std::vector<double> fcts(trace.size(), 0.0);
  std::vector<ActiveFlow> active;
  std::size_t next_arrival = 0;
  double now = 0.0;
  double finish = 0.0;

  // Rates for the current active set (recomputed after each event).
  std::vector<double> rates;
  auto recompute_rates = [&]() {
    if (active.empty()) {
      rates.clear();
      return;
    }
    rates = compute_rates(active);
  };

  recompute_rates();
  while (!active.empty() || next_arrival < trace.size()) {
    // Earliest completion among active flows at current rates.
    double completion_dt = kInf;
    std::size_t completing = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (rates[i] <= 0.0) continue;
      const double dt = active[i].remaining / rates[i];
      if (dt < completion_dt) {
        completion_dt = dt;
        completing = i;
      }
    }
    const double arrival_dt =
        next_arrival < trace.size() ? trace[next_arrival].time - now : kInf;
    CF_CHECK_MSG(completion_dt < kInf || arrival_dt < kInf,
                 "simulator stalled: active flows with zero rate and no arrivals");

    if (arrival_dt <= completion_dt) {
      // Advance to the arrival.
      for (std::size_t i = 0; i < active.size(); ++i) {
        active[i].remaining -= rates[i] * arrival_dt;
      }
      now += arrival_dt;
      const FlowArrival& arr = trace[next_arrival];
      ActiveFlow a;
      a.trace_index = next_arrival;
      a.arrival = now;
      a.remaining = arr.size;
      std::tie(a.flow, a.path) = choose_path(arr.spec);
      active.push_back(std::move(a));
      ++next_arrival;
    } else {
      // Advance to the completion.
      for (std::size_t i = 0; i < active.size(); ++i) {
        active[i].remaining -= rates[i] * completion_dt;
      }
      now += completion_dt;
      fcts[active[completing].trace_index] = now - active[completing].arrival;
      finish = now;
      on_complete(active[completing].path);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(completing));
    }
    recompute_rates();
  }
  return {std::move(fcts), finish};
}

// Max-min water-fill as the rate policy (the model's default congestion
// control).
std::vector<double> waterfill_rates(const Topology& topo,
                                    const std::vector<ActiveFlow>& active) {
  FlowSet flows;
  std::vector<Path> paths;
  flows.reserve(active.size());
  paths.reserve(active.size());
  for (const ActiveFlow& a : active) {
    flows.push_back(a.flow);
    paths.push_back(a.path);
  }
  return max_min_fair<double>(topo, flows, Routing{std::move(paths)}).rates();
}

}  // namespace

SimStats summarize_fcts(std::vector<double> fcts, const std::vector<double>& sizes,
                        double finish_time) {
  CF_CHECK(fcts.size() == sizes.size());
  SimStats stats;
  stats.completed = fcts.size();
  stats.finish_time = finish_time;
  stats.fcts = fcts;
  if (fcts.empty()) return stats;

  double sum = 0.0;
  double slowdown_sum = 0.0;
  for (std::size_t i = 0; i < fcts.size(); ++i) {
    sum += fcts[i];
    slowdown_sum += sizes[i] > 0.0 ? fcts[i] / sizes[i] : 1.0;
  }
  stats.mean_fct = sum / static_cast<double>(fcts.size());
  stats.mean_slowdown = slowdown_sum / static_cast<double>(fcts.size());

  std::vector<double> sorted = fcts;
  std::sort(sorted.begin(), sorted.end());
  auto percentile = [&](double p) {
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - std::floor(pos);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  stats.p50_fct = percentile(0.50);
  stats.p99_fct = percentile(0.99);
  stats.max_fct = sorted.back();
  return stats;
}

SimStats simulate_clos(const ClosNetwork& net, const Trace& trace, SimPolicy policy,
                       Rng& rng) {
  const Topology& topo = net.topology();

  // Current loads per link, maintained only for the least-loaded policy (a
  // per-arrival snapshot computed from flow counts would be stale anyway;
  // using active-flow counts matches what a switch can observe cheaply).
  std::vector<std::size_t> flows_on_link(topo.num_links(), 0);

  auto choose = [&](const FlowSpec& spec) -> std::pair<Flow, Path> {
    const Flow flow{net.source(spec.src_tor, spec.src_server),
                    net.destination(spec.dst_tor, spec.dst_server)};
    int middle = 1;
    if (policy == SimPolicy::kEcmp) {
      middle =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(net.num_middles()))) +
          1;
    } else {
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (int m = 1; m <= net.num_middles(); ++m) {
        const auto up = static_cast<std::size_t>(net.uplink(spec.src_tor, m));
        const auto down = static_cast<std::size_t>(net.downlink(m, spec.dst_tor));
        const std::size_t load = std::max(flows_on_link[up], flows_on_link[down]);
        if (load < best_load) {
          best_load = load;
          middle = m;
        }
      }
    }
    const Path path = net.path(flow.src, flow.dst, middle);
    for (LinkId l : path) ++flows_on_link[static_cast<std::size_t>(l)];
    return {flow, path};
  };

  auto release = [&](const Path& path) {
    for (LinkId l : path) --flows_on_link[static_cast<std::size_t>(l)];
  };
  auto [fcts, finish] =
      run(trace, choose, release,
          [&](const std::vector<ActiveFlow>& active) { return waterfill_rates(topo, active); });
  std::vector<double> sizes;
  sizes.reserve(trace.size());
  for (const FlowArrival& a : trace) sizes.push_back(a.size);
  return summarize_fcts(std::move(fcts), sizes, finish);
}

SimStats simulate_macro(const MacroSwitch& ms, const Trace& trace) {
  auto choose = [&](const FlowSpec& spec) -> std::pair<Flow, Path> {
    const Flow flow{ms.source(spec.src_tor, spec.src_server),
                    ms.destination(spec.dst_tor, spec.dst_server)};
    return {flow, ms.path(flow.src, flow.dst)};
  };
  const Topology& topo = ms.topology();
  auto [fcts, finish] =
      run(trace, choose, [](const Path&) {},
          [&](const std::vector<ActiveFlow>& active) { return waterfill_rates(topo, active); });
  std::vector<double> sizes;
  sizes.reserve(trace.size());
  for (const FlowArrival& a : trace) sizes.push_back(a.size);
  return summarize_fcts(std::move(fcts), sizes, finish);
}

SimStats simulate_macro_scheduled(const MacroSwitch& ms, const Trace& trace) {
  auto choose = [&](const FlowSpec& spec) -> std::pair<Flow, Path> {
    const Flow flow{ms.source(spec.src_tor, spec.src_server),
                    ms.destination(spec.dst_tor, spec.dst_server)};
    return {flow, ms.path(flow.src, flow.dst)};
  };
  auto schedule = [&](const std::vector<ActiveFlow>& active) {
    FlowSet flows;
    flows.reserve(active.size());
    for (const ActiveFlow& a : active) flows.push_back(a.flow);
    const auto matched = maximum_matching(server_flow_graph(ms, flows));
    std::vector<double> rates(active.size(), 0.0);
    for (std::size_t e : matched) rates[e] = 1.0;  // edge index == flow index
    return rates;
  };
  auto [fcts, finish] = run(trace, choose, [](const Path&) {}, schedule);
  std::vector<double> sizes;
  sizes.reserve(trace.size());
  for (const FlowArrival& a : trace) sizes.push_back(a.size);
  return summarize_fcts(std::move(fcts), sizes, finish);
}

}  // namespace closfair
