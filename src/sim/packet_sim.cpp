#include "sim/packet_sim.hpp"

#include <deque>
#include <queue>
#include <vector>

namespace closfair {
namespace {

// Per-link state: per-flow queued packet counts and a round-robin list of
// flows with at least one queued packet. Packets of one flow at one link are
// interchangeable, so only counts are stored.
struct LinkState {
  double capacity = 0.0;
  bool busy = false;
  std::vector<std::size_t> queued;   // per flow-slot (dense, see below)
  std::deque<std::size_t> rr;        // flow-slots with queued > 0
  std::uint64_t served = 0;          // packets served within the measure window
};

// A service completion: (time, link, flow-slot).
struct Event {
  double time;
  LinkId link;
  std::size_t slot;
  friend bool operator>(const Event& a, const Event& b) { return a.time > b.time; }
};

}  // namespace

PacketSimResult packet_fair_queueing(const Topology& topo, const FlowSet& flows,
                                     const Routing& routing,
                                     const PacketSimParams& params) {
  CF_CHECK(routing.size() == flows.size());
  CF_CHECK(params.packet_size > 0.0);
  CF_CHECK(params.window >= 1);
  CF_CHECK(params.warmup >= 0.0 && params.measure > 0.0);

  const std::size_t num_flows = flows.size();

  // Bounded-hop sequences: unbounded links forward instantly and are elided.
  std::vector<std::vector<LinkId>> hops(num_flows);
  for (FlowIndex f = 0; f < num_flows; ++f) {
    for (LinkId l : routing.path(f)) {
      if (!topo.link(l).unbounded) hops[f].push_back(l);
    }
    CF_CHECK_MSG(!hops[f].empty(),
                 "flow " << f << " crosses no bounded link: throughput unbounded");
  }

  // Dense per-link flow-slot mapping (only links actually traversed).
  std::vector<LinkState> links(topo.num_links());
  std::vector<std::vector<std::size_t>> slot_of(topo.num_links());  // flow -> slot
  std::vector<std::vector<FlowIndex>> flow_of(topo.num_links());    // slot -> flow
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    slot_of[l].assign(num_flows, static_cast<std::size_t>(-1));
  }
  for (FlowIndex f = 0; f < num_flows; ++f) {
    for (LinkId l : hops[f]) {
      const auto idx = static_cast<std::size_t>(l);
      if (slot_of[idx][f] == static_cast<std::size_t>(-1)) {
        slot_of[idx][f] = flow_of[idx].size();
        flow_of[idx].push_back(f);
      }
    }
  }
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    if (flow_of[l].empty()) continue;
    links[l].capacity = topo.link(static_cast<LinkId>(l)).capacity.to_double();
    links[l].queued.assign(flow_of[l].size(), 0);
  }

  // A packet in flight is (flow, hop index currently being served); the
  // event queue holds service completions.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  // Hop position of each flow's packets is tracked implicitly: a flow's
  // packets move strictly in order, and all its packets at link l wait in
  // one queue. We track, per flow, a FIFO of hop indices for its in-flight
  // packets at each link -- but since service is per-link FIFO within a
  // flow and every packet of flow f entering link hops[f][i] continues to
  // hops[f][i+1], it suffices to know the hop index of each queued packet.
  // Per (link, flow) all queued packets share the same *set* of remaining
  // hops but possibly entered at different times; since the hop sequence is
  // a function of (flow, link), the next hop after serving at link l is
  // simply the successor of l in hops[f].
  std::vector<std::vector<std::size_t>> next_hop_index(num_flows);
  for (FlowIndex f = 0; f < num_flows; ++f) {
    next_hop_index[f].assign(topo.num_links(), 0);
    for (std::size_t i = 0; i < hops[f].size(); ++i) {
      next_hop_index[f][static_cast<std::size_t>(hops[f][i])] = i + 1;
    }
  }

  std::vector<std::uint64_t> delivered(num_flows, 0);
  const double t_measure_start = params.warmup;
  const double t_end = params.warmup + params.measure;
  std::uint64_t processed = 0;

  // Start serving the head-of-line flow if the link is idle.
  auto kick = [&](LinkId link, double now) {
    auto& st = links[static_cast<std::size_t>(link)];
    if (st.busy || st.rr.empty()) return;
    const std::size_t slot = st.rr.front();
    st.rr.pop_front();
    st.busy = true;
    events.push(Event{now + params.packet_size / st.capacity, link, slot});
  };

  auto enqueue = [&](FlowIndex f, LinkId link, double now) {
    auto& st = links[static_cast<std::size_t>(link)];
    const std::size_t slot = slot_of[static_cast<std::size_t>(link)][f];
    if (st.queued[slot]++ == 0) st.rr.push_back(slot);
    kick(link, now);
  };

  // Inject the initial windows at t = 0.
  for (FlowIndex f = 0; f < num_flows; ++f) {
    for (int w = 0; w < params.window; ++w) enqueue(f, hops[f][0], 0.0);
  }

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.time > t_end) break;
    ++processed;

    auto& st = links[static_cast<std::size_t>(ev.link)];
    const FlowIndex f = flow_of[static_cast<std::size_t>(ev.link)][ev.slot];
    // The served packet leaves this link's queue.
    CF_CHECK(st.queued[ev.slot] > 0);
    if (--st.queued[ev.slot] > 0) st.rr.push_back(ev.slot);  // round-robin re-arm
    if (ev.time >= t_measure_start) ++st.served;
    st.busy = false;
    kick(ev.link, ev.time);

    const std::size_t next = next_hop_index[f][static_cast<std::size_t>(ev.link)];
    if (next < hops[f].size()) {
      enqueue(f, hops[f][next], ev.time);
    } else {
      // Delivered: instantaneous ack, window slot refills at the source.
      if (ev.time >= t_measure_start) ++delivered[f];
      enqueue(f, hops[f][0], ev.time);
    }
  }

  PacketSimResult result;
  std::vector<double> rates(num_flows);
  for (FlowIndex f = 0; f < num_flows; ++f) {
    rates[f] = static_cast<double>(delivered[f]) * params.packet_size / params.measure;
  }
  result.rates = Allocation<double>(std::move(rates));
  result.link_utilization.assign(topo.num_links(), 0.0);
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    if (flow_of[l].empty() || links[l].capacity <= 0.0) continue;
    result.link_utilization[l] = static_cast<double>(links[l].served) *
                                 params.packet_size / params.measure / links[l].capacity;
  }
  result.events = processed;
  return result;
}

}  // namespace closfair
