// Bipartite multigraphs.
//
// Two of the paper's folklore lemmas live on bipartite multigraphs derived
// from a flow collection: Lemma 3.2 (maximum throughput = maximum matching in
// G^MS) and Lemma 5.2 / Algorithm 1 (König n-edge-coloring of G^C gives a
// link-disjoint Clos routing). Parallel edges are essential — multiple flows
// may share a source-destination or switch pair.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace closfair {

/// A bipartite multigraph over left vertices [0, num_left) and right vertices
/// [0, num_right). Edge indices are stable in insertion order; the flow-graph
/// builders (matching/flow_graphs.hpp) make edge index == flow index.
class BipartiteMultigraph {
 public:
  struct Edge {
    std::size_t left = 0;
    std::size_t right = 0;
  };

  BipartiteMultigraph(std::size_t num_left, std::size_t num_right);

  std::size_t add_edge(std::size_t left, std::size_t right);

  [[nodiscard]] std::size_t num_left() const { return left_adj_.size(); }
  [[nodiscard]] std::size_t num_right() const { return right_adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(std::size_t e) const;
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edge indices incident to a left / right vertex.
  [[nodiscard]] const std::vector<std::size_t>& left_edges(std::size_t l) const;
  [[nodiscard]] const std::vector<std::size_t>& right_edges(std::size_t r) const;

  /// Maximum vertex degree Δ over both sides (0 for an edgeless graph).
  [[nodiscard]] std::size_t max_degree() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> left_adj_;
  std::vector<std::vector<std::size_t>> right_adj_;
};

}  // namespace closfair
