// König edge coloring of bipartite multigraphs.
//
// König's theorem: a bipartite multigraph with maximum degree Δ has a proper
// Δ-edge-coloring. In the paper's footnote 5, an n-edge-coloring of the flow
// multigraph G^C corresponds to a link-disjoint routing in C_n (color m ↦
// middle switch M_m) — this is the machinery behind Lemma 5.2 and step 2 of
// the Doom-Switch algorithm.
//
// We implement the constructive proof directly: insert edges one at a time;
// if the endpoints have no common free color, swap colors along the
// alternating (Kempe) chain, which in a bipartite graph can never loop back
// to the starting edge. O(E·(V+Δ)) overall.
#pragma once

#include <vector>

#include "matching/bipartite.hpp"

namespace closfair {

/// A proper edge coloring of g using colors {0, ..., num_colors-1} with
/// num_colors >= max_degree. Result[e] is the color of edge e.
/// Throws ContractViolation if num_colors < max_degree(g).
[[nodiscard]] std::vector<int> edge_coloring(const BipartiteMultigraph& g, int num_colors);

/// A proper edge coloring with exactly Δ colors (König's bound).
[[nodiscard]] std::vector<int> edge_coloring(const BipartiteMultigraph& g);

/// True if `colors` is a proper edge coloring of g (no two edges sharing a
/// vertex have the same color, all colors in [0, num_colors)).
[[nodiscard]] bool is_proper_coloring(const BipartiteMultigraph& g,
                                      const std::vector<int>& colors, int num_colors);

}  // namespace closfair
