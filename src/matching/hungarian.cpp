#include "matching/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace closfair {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<std::size_t> max_weight_matching(const std::vector<std::vector<double>>& weight) {
  const std::size_t rows = weight.size();
  std::size_t cols = 0;
  for (const auto& row : weight) cols = std::max(cols, row.size());
  for (const auto& row : weight) {
    CF_CHECK_MSG(row.size() == cols || cols == 0, "ragged weight matrix");
    for (double w : row) CF_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  }
  if (rows == 0 || cols == 0) return std::vector<std::size_t>(rows, kUnassigned);

  // Square, padded cost matrix for the minimization form: cost = W - w,
  // where W exceeds every weight; padding cells cost exactly W (equivalent
  // to leaving the row/column unmatched).
  const std::size_t n = std::max(rows, cols);
  double max_w = 0.0;
  for (const auto& row : weight) {
    for (double w : row) max_w = std::max(max_w, w);
  }
  const double big = max_w + 1.0;
  auto cost = [&](std::size_t r, std::size_t c) -> double {
    if (r < rows && c < cols && weight[r][c] > 0.0) return big - weight[r][c];
    return big;
  };

  // Jonker–Volgenant with row/column potentials; 1-based internal arrays.
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<std::size_t> match_col(n + 1, 0);  // column -> row (1-based; 0 = free)
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t r = 1; r <= n; ++r) {
    match_col[0] = r;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match_col[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match_col[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match_col[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match_col[j0] = match_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::size_t> assignment(rows, kUnassigned);
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = match_col[j];
    if (r == 0) continue;
    const std::size_t row = r - 1;
    const std::size_t col = j - 1;
    if (row < rows && col < cols && weight[row][col] > 0.0) {
      assignment[row] = col;
    }
  }
  return assignment;
}

double matching_weight(const std::vector<std::vector<double>>& weight,
                       const std::vector<std::size_t>& assignment) {
  CF_CHECK(assignment.size() == weight.size());
  std::vector<bool> col_used;
  double total = 0.0;
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    if (assignment[r] == kUnassigned) continue;
    CF_CHECK_MSG(assignment[r] < weight[r].size(), "assignment column out of range");
    if (assignment[r] >= col_used.size()) col_used.resize(assignment[r] + 1, false);
    CF_CHECK_MSG(!col_used[assignment[r]], "column matched twice");
    col_used[assignment[r]] = true;
    total += weight[r][assignment[r]];
  }
  return total;
}

}  // namespace closfair
