#include "matching/bipartite.hpp"

#include <algorithm>

namespace closfair {

BipartiteMultigraph::BipartiteMultigraph(std::size_t num_left, std::size_t num_right)
    : left_adj_(num_left), right_adj_(num_right) {}

std::size_t BipartiteMultigraph::add_edge(std::size_t left, std::size_t right) {
  CF_CHECK_MSG(left < left_adj_.size(), "left vertex " << left << " out of range");
  CF_CHECK_MSG(right < right_adj_.size(), "right vertex " << right << " out of range");
  edges_.push_back(Edge{left, right});
  const std::size_t e = edges_.size() - 1;
  left_adj_[left].push_back(e);
  right_adj_[right].push_back(e);
  return e;
}

const BipartiteMultigraph::Edge& BipartiteMultigraph::edge(std::size_t e) const {
  CF_CHECK_MSG(e < edges_.size(), "edge index " << e << " out of range");
  return edges_[e];
}

const std::vector<std::size_t>& BipartiteMultigraph::left_edges(std::size_t l) const {
  CF_CHECK(l < left_adj_.size());
  return left_adj_[l];
}

const std::vector<std::size_t>& BipartiteMultigraph::right_edges(std::size_t r) const {
  CF_CHECK(r < right_adj_.size());
  return right_adj_[r];
}

std::size_t BipartiteMultigraph::max_degree() const {
  std::size_t deg = 0;
  for (const auto& adj : left_adj_) deg = std::max(deg, adj.size());
  for (const auto& adj : right_adj_) deg = std::max(deg, adj.size());
  return deg;
}

}  // namespace closfair
