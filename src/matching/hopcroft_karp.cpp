#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>

namespace closfair {
namespace {

constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

// Working state for one Hopcroft–Karp run. Matches are stored per vertex as
// the *edge index* used, so parallel edges round-trip correctly.
struct HkState {
  const BipartiteMultigraph& g;
  std::vector<std::size_t> match_left;   // left vertex -> edge index or kFree
  std::vector<std::size_t> match_right;  // right vertex -> edge index or kFree
  std::vector<std::size_t> dist;

  explicit HkState(const BipartiteMultigraph& graph)
      : g(graph),
        match_left(graph.num_left(), kFree),
        match_right(graph.num_right(), kFree),
        dist(graph.num_left(), kInf) {}

  [[nodiscard]] std::size_t partner_of_right(std::size_t r) const {
    return g.edge(match_right[r]).left;
  }

  // BFS layering from free left vertices; true if an augmenting path exists.
  bool bfs() {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < g.num_left(); ++l) {
      if (match_left[l] == kFree) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool reachable_free_right = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t e : g.left_edges(l)) {
        const std::size_t r = g.edge(e).right;
        if (match_right[r] == kFree) {
          reachable_free_right = true;
        } else {
          const std::size_t next = partner_of_right(r);
          if (dist[next] == kInf) {
            dist[next] = dist[l] + 1;
            q.push(next);
          }
        }
      }
    }
    return reachable_free_right;
  }

  // DFS along the BFS layering; augments and returns true on success.
  bool dfs(std::size_t l) {
    for (std::size_t e : g.left_edges(l)) {
      const std::size_t r = g.edge(e).right;
      if (match_right[r] == kFree ||
          (dist[partner_of_right(r)] == dist[l] + 1 && dfs(partner_of_right(r)))) {
        match_left[l] = e;
        match_right[r] = e;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }
};

}  // namespace

std::vector<std::size_t> maximum_matching(const BipartiteMultigraph& g) {
  HkState st(g);
  while (st.bfs()) {
    for (std::size_t l = 0; l < g.num_left(); ++l) {
      if (st.match_left[l] == kFree) st.dfs(l);
    }
  }
  std::vector<std::size_t> result;
  for (std::size_t l = 0; l < g.num_left(); ++l) {
    if (st.match_left[l] != kFree) result.push_back(st.match_left[l]);
  }
  return result;
}

bool is_matching(const BipartiteMultigraph& g, const std::vector<std::size_t>& edges) {
  std::vector<bool> left_used(g.num_left(), false);
  std::vector<bool> right_used(g.num_right(), false);
  for (std::size_t e : edges) {
    if (e >= g.num_edges()) return false;
    const auto& edge = g.edge(e);
    if (left_used[edge.left] || right_used[edge.right]) return false;
    left_used[edge.left] = true;
    right_used[edge.right] = true;
  }
  return true;
}

}  // namespace closfair
