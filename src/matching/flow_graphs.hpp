// Builders for the paper's two flow multigraphs.
//
// G^MS (§3): left vertices = source servers, right vertices = destination
// servers, one edge per flow. Its maximum matching gives the maximum
// throughput allocation (Lemma 3.2).
//
// G^C (§5): left vertices = input switches, right vertices = output switches,
// one edge per flow (identified by its switch pair). An n-edge-coloring of
// G^C is a link-disjoint routing of the flows in C_n (footnote 5, Lemma 5.2).
//
// In both graphs, edge index == flow index in the originating FlowSet.
#pragma once

#include "flow/flow.hpp"
#include "matching/bipartite.hpp"
#include "net/clos.hpp"
#include "net/macroswitch.hpp"

namespace closfair {

/// G^MS over server coordinates (usable for flows on either topology).
[[nodiscard]] BipartiteMultigraph server_flow_graph(int num_tors, int servers_per_tor,
                                                    const FlowCollection& specs);
[[nodiscard]] BipartiteMultigraph server_flow_graph(const MacroSwitch& ms,
                                                    const FlowSet& flows);
[[nodiscard]] BipartiteMultigraph server_flow_graph(const ClosNetwork& net,
                                                    const FlowSet& flows);

/// G^C over ToR switch pairs.
[[nodiscard]] BipartiteMultigraph switch_flow_graph(const ClosNetwork& net,
                                                    const FlowSet& flows);

}  // namespace closfair
