#include "matching/flow_graphs.hpp"

namespace closfair {
namespace {

std::size_t server_vertex(int tor, int server, int servers_per_tor) {
  return static_cast<std::size_t>(tor - 1) * static_cast<std::size_t>(servers_per_tor) +
         static_cast<std::size_t>(server - 1);
}

}  // namespace

BipartiteMultigraph server_flow_graph(int num_tors, int servers_per_tor,
                                      const FlowCollection& specs) {
  const auto num_servers =
      static_cast<std::size_t>(num_tors) * static_cast<std::size_t>(servers_per_tor);
  BipartiteMultigraph g(num_servers, num_servers);
  for (const FlowSpec& sp : specs) {
    g.add_edge(server_vertex(sp.src_tor, sp.src_server, servers_per_tor),
               server_vertex(sp.dst_tor, sp.dst_server, servers_per_tor));
  }
  return g;
}

BipartiteMultigraph server_flow_graph(const MacroSwitch& ms, const FlowSet& flows) {
  FlowCollection specs;
  specs.reserve(flows.size());
  for (const Flow& f : flows) specs.push_back(spec_of(ms, f));
  return server_flow_graph(ms.num_tors(), ms.servers_per_tor(), specs);
}

BipartiteMultigraph server_flow_graph(const ClosNetwork& net, const FlowSet& flows) {
  FlowCollection specs;
  specs.reserve(flows.size());
  for (const Flow& f : flows) specs.push_back(spec_of(net, f));
  return server_flow_graph(net.num_tors(), net.servers_per_tor(), specs);
}

BipartiteMultigraph switch_flow_graph(const ClosNetwork& net, const FlowSet& flows) {
  BipartiteMultigraph g(static_cast<std::size_t>(net.num_tors()),
                        static_cast<std::size_t>(net.num_tors()));
  for (const Flow& f : flows) {
    const auto s = net.source_coord(f.src);
    const auto t = net.dest_coord(f.dst);
    g.add_edge(static_cast<std::size_t>(s.tor - 1), static_cast<std::size_t>(t.tor - 1));
  }
  return g;
}

}  // namespace closfair
