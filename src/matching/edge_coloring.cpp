#include "matching/edge_coloring.hpp"

namespace closfair {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Color tables: slot[vertex][color] = the edge colored `color` at that
// vertex, or kNone. A proper coloring keeps at most one edge per slot.
struct ColorState {
  std::vector<std::vector<std::size_t>> slot_left;
  std::vector<std::vector<std::size_t>> slot_right;

  ColorState(std::size_t num_left, std::size_t num_right, int num_colors)
      : slot_left(num_left, std::vector<std::size_t>(static_cast<std::size_t>(num_colors), kNone)),
        slot_right(num_right,
                   std::vector<std::size_t>(static_cast<std::size_t>(num_colors), kNone)) {}

  [[nodiscard]] std::size_t& slot(bool right, std::size_t v, int c) {
    auto& side = right ? slot_right : slot_left;
    return side[v][static_cast<std::size_t>(c)];
  }

  [[nodiscard]] int free_color(bool right, std::size_t v) const {
    const auto& side = right ? slot_right : slot_left;
    for (std::size_t c = 0; c < side[v].size(); ++c) {
      if (side[v][c] == kNone) return static_cast<int>(c);
    }
    return -1;
  }
};

}  // namespace

std::vector<int> edge_coloring(const BipartiteMultigraph& g, int num_colors) {
  CF_CHECK_MSG(static_cast<std::size_t>(num_colors) >= g.max_degree(),
               "edge coloring needs at least Δ = " << g.max_degree() << " colors, got "
                                                   << num_colors);
  std::vector<int> color(g.num_edges(), -1);
  ColorState st(g.num_left(), g.num_right(), num_colors);

  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    const int a = st.free_color(/*right=*/false, edge.left);
    const int b = st.free_color(/*right=*/true, edge.right);
    // Free colors exist: only edges before e are colored, so both endpoints
    // have current degree < Δ <= num_colors in the colored subgraph.
    CF_CHECK(a >= 0 && b >= 0);

    if (a != b) {
      // Color a is free at the left endpoint but used at the right one.
      // Collect the maximal alternating a/b chain starting from the right
      // endpoint's a-edge, then flip every edge on it a <-> b. Each vertex
      // has at most one a-edge and one b-edge, so the chain is a simple
      // path; in a bipartite graph it cannot terminate back at edge.left
      // through an a-edge (parity), so flipping frees color a at edge.right
      // without disturbing its freeness at edge.left.
      std::vector<std::size_t> chain;
      bool right = true;
      std::size_t at = edge.right;
      int want = a;
      while (true) {
        const std::size_t next = st.slot(right, at, want);
        if (next == kNone) break;
        chain.push_back(next);
        const auto& ce = g.edge(next);
        at = right ? ce.left : ce.right;
        right = !right;
        want = (want == a) ? b : a;
      }
      // Flip: clear all old slots first, then install the new colors, so
      // intermediate states never collide.
      for (std::size_t ce_idx : chain) {
        const auto& ce = g.edge(ce_idx);
        st.slot(false, ce.left, color[ce_idx]) = kNone;
        st.slot(true, ce.right, color[ce_idx]) = kNone;
      }
      for (std::size_t ce_idx : chain) {
        const int flipped = (color[ce_idx] == a) ? b : a;
        color[ce_idx] = flipped;
        st.slot(false, g.edge(ce_idx).left, flipped) = ce_idx;
        st.slot(true, g.edge(ce_idx).right, flipped) = ce_idx;
      }
      CF_CHECK_MSG(st.slot(false, edge.left, a) == kNone &&
                       st.slot(true, edge.right, a) == kNone,
                   "alternating chain failed to free a common color");
    }
    color[e] = a;
    st.slot(false, edge.left, a) = e;
    st.slot(true, edge.right, a) = e;
  }
  return color;
}

std::vector<int> edge_coloring(const BipartiteMultigraph& g) {
  return edge_coloring(g, static_cast<int>(g.max_degree()));
}

bool is_proper_coloring(const BipartiteMultigraph& g, const std::vector<int>& colors,
                        int num_colors) {
  if (colors.size() != g.num_edges()) return false;
  for (int c : colors) {
    if (c < 0 || c >= num_colors) return false;
  }
  auto side_ok = [&](std::size_t count, auto edges_of) {
    for (std::size_t v = 0; v < count; ++v) {
      std::vector<bool> used(static_cast<std::size_t>(num_colors), false);
      for (std::size_t e : edges_of(v)) {
        const auto c = static_cast<std::size_t>(colors[e]);
        if (used[c]) return false;
        used[c] = true;
      }
    }
    return true;
  };
  return side_ok(g.num_left(), [&](std::size_t v) { return g.left_edges(v); }) &&
         side_ok(g.num_right(), [&](std::size_t v) { return g.right_edges(v); });
}

}  // namespace closfair
