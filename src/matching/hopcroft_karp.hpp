// Hopcroft–Karp maximum bipartite matching, O(E·√V).
//
// The maximum matching F' of the flow multigraph G^MS is the paper's maximum
// throughput allocation (Lemma 3.2): flows in F' transmit at rate 1, the
// rest at rate 0, so T^MT = |F'|.
#pragma once

#include <vector>

#include "matching/bipartite.hpp"

namespace closfair {

/// A maximum matching as a set of edge indices (at most one per left vertex
/// and one per right vertex). Deterministic for a given graph.
[[nodiscard]] std::vector<std::size_t> maximum_matching(const BipartiteMultigraph& g);

/// True if `edges` is a matching in g (no shared endpoints, valid indices).
[[nodiscard]] bool is_matching(const BipartiteMultigraph& g,
                               const std::vector<std::size_t>& edges);

}  // namespace closfair
